#!/bin/sh
# Reproduce everything: tests, all paper experiments, benchmark timings.
#
#   ./run_all.sh          full run (the AES Table 2 matrix takes ~10-15 min)
#   QUICK=1 ./run_all.sh  reduced-round AES for a fast pass
set -e

if [ -n "$QUICK" ]; then
    export SHERLOCK_BENCH_AES_ROUNDS=2
fi

echo "== lint (ruff) =="
if command -v ruff >/dev/null 2>&1; then
    ruff check src tests benchmarks examples
elif python -c "import ruff" >/dev/null 2>&1; then
    python -m ruff check src tests benchmarks examples
else
    echo "ruff not installed (pip install -e .[lint]); skipping lint"
fi

echo "== docstring coverage (D100-D104 on src/) =="
if command -v ruff >/dev/null 2>&1; then
    ruff check --select D100,D101,D102,D103,D104 src
elif python -c "import ruff" >/dev/null 2>&1; then
    python -m ruff check --select D100,D101,D102,D103,D104 src
else
    echo "ruff not installed; gate enforced by tests/test_docstrings.py"
fi

echo "== unit / integration / property tests =="
python -m pytest tests/ 2>&1 | tee test_output.txt

echo "== executable-docs gate (fenced snippets in README.md + docs/API.md) =="
python -m pytest tests/test_docsnippets.py -q

echo "== smoke fault-injection campaign (50 trials, fixed seed) =="
python -m repro.cli campaign --synthetic 24 --trials 50 --seed 0 \
    --lanes 8 --tech stt-mram --size 64 --arrays 4 --mra 4 \
    --variability 0.12

echo "== vectorized campaign + batch execution smoke =="
python -m repro.cli campaign --synthetic 24 --trials 200 --seed 0 \
    --lanes 8 --tech stt-mram --size 64 --arrays 4 --mra 4 \
    --variability 0.12 --engine vectorized
BATCH_TMP=$(mktemp -d)
printf '[{}, {"s0_x[0]": 5}, {"s1_x[3]": 255}]\n' > "$BATCH_TMP/batch.json"
python -m repro.cli run --workload bitweaving \
    --batch "$BATCH_TMP/batch.json" --engine vectorized

echo "== full fault-injection campaigns (marker-gated tests) =="
python -m pytest tests/ -m campaign 2>&1 | tee campaign_output.txt

echo "== graceful-degradation gate (oversized kernel through the ladder) =="
python - <<'EOF'
import random
import sys

from repro.arch.target import TargetSpec
from repro.core import CompilerConfig, compile_dag
from repro.devices import RERAM
from repro.dfg.evaluate import evaluate
from repro.workloads.synthetic import synthetic_dag

dag = synthetic_dag(num_ops=48, num_inputs=8, seed=7, name="degrade-gate")
target = TargetSpec.square(8, RERAM, num_arrays=2)
program = compile_dag(dag, target, CompilerConfig(mapper="sherlock"),
                      cache=False)
if program.degradation == "none":
    sys.exit("degradation gate: kernel fit outright; gate is not "
             "exercising the ladder")
rng = random.Random(0)
lanes = 8
inputs = {o.name: rng.getrandbits(lanes) for o in dag.inputs()}
got = program.execute(inputs, lanes)
want = evaluate(dag, inputs, lanes)
if got != want:
    bad = sorted(n for n in want if got.get(n) != want[n])
    sys.exit(f"degradation gate: staged execution diverged from the "
             f"reference evaluator on outputs {bad}")
print(f"degradation gate passed: rung {program.degradation!r}, "
      f"{len(program.stages or [])} stages, "
      f"{len(dag.outputs)} outputs bit-identical")
EOF

echo "== hard-fault gate (compile + execute around ~5% dead cells) =="
python - <<'EOF'
import random
import sys

from repro.arch.target import TargetSpec
from repro.core import CompilerConfig, SherlockCompiler
from repro.devices import RERAM, FaultMap
from repro.dfg.evaluate import evaluate
from repro.workloads.synthetic import synthetic_dag

dag = synthetic_dag(num_ops=48, num_inputs=12, seed=11, name="fault-gate")
target = TargetSpec.square(32, RERAM, num_arrays=4)
fault_map = FaultMap.random_map(target, fraction=0.05, seed=11)
program = SherlockCompiler(target, CompilerConfig(mapper="sherlock"),
                           fault_map=fault_map).compile(dag)
rng = random.Random(0)
lanes = 8
inputs = {o.name: rng.getrandbits(lanes) for o in dag.inputs()}
got = program.execute(inputs, lanes, verify_writes=True)
want = evaluate(dag, inputs, lanes)
if got != want:
    bad = sorted(n for n in want if got.get(n) != want[n])
    sys.exit(f"hard-fault gate: execution on {len(fault_map)} dead cells "
             f"diverged from the reference evaluator on outputs {bad}")
print(f"hard-fault gate passed: compiled around {len(fault_map)} dead "
      f"cells, {len(dag.outputs)} outputs bit-identical under "
      f"verify-after-write")
EOF

echo "== multi-array gate (co-scheduled Sobel vs serial spill chain) =="
python - <<'EOF'
import random
import sys

from repro.arch.target import TargetSpec
from repro.core import CompilerConfig, SherlockCompiler
from repro.devices import RERAM
from repro.dfg.evaluate import evaluate
from repro.workloads import get_workload

workload = get_workload("sobel")
dag = workload.build_dag()
lanes = 8
inputs = workload.make_inputs(random.Random(0), lanes)

# 1 array: Sobel overflows the 128 columns, so the ladder spills and
# partitions into serial stages — the pre-refactor baseline schedule
single = SherlockCompiler(
    TargetSpec.square(128, RERAM, num_arrays=1),
    CompilerConfig(mapper="sherlock")).compile(dag)
# 4 arrays, schedule=multi: the co-scheduler partitions clusters across
# arrays and the overlap model prices concurrent execution
multi = SherlockCompiler(
    TargetSpec.square(128, RERAM, num_arrays=4),
    CompilerConfig(mapper="sherlock", schedule="multi")).compile(dag)

want = evaluate(dag, inputs, lanes)
got_multi = multi.execute(inputs, lanes)
got_single = single.execute(inputs, lanes)
if got_multi != want:
    bad = sorted(n for n in want if got_multi.get(n) != want[n])
    sys.exit(f"multi-array gate: co-scheduled execution diverged from "
             f"the reference evaluator on outputs {bad}")
if got_multi != got_single:
    bad = sorted(n for n in got_single if got_multi.get(n) != got_single[n])
    sys.exit(f"multi-array gate: co-scheduled execution diverged from "
             f"the single-array schedule on outputs {bad}")
chain = single.overlap.serial_cycles
makespan = multi.overlap.makespan_cycles
if makespan >= chain:
    sys.exit(f"multi-array gate: co-scheduled makespan {makespan} is not "
             f"below the serial spill-and-partition chain {chain}")
print(f"multi-array gate passed: {len(dag.outputs)} outputs bit-identical "
      f"to reference and single-array schedule; makespan {makespan} vs "
      f"serial chain {chain} cycles "
      f"(latency ratio {makespan / chain:.2f}, "
      f"single degradation {single.degradation!r}, "
      f"{len(single.stages or [])} serial stages)")
EOF

echo "== lifetime campaign gate (wear-leveling + remap extend life) =="
python -m repro.cli lifetime --synthetic 30 --trials 5 --seed 0 \
    --endurance 50 --size 16 --arrays 2 --validate

echo "== serve smoke (CLI batch mode + stats surface) =="
SERVE_TMP=$(mktemp -d)
cat > "$SERVE_TMP/requests.jsonl" <<'EOF'
{"id": "s1", "kernel": "int f(int a, int b){return a ^ (a & b);}", "inputs": {"a": 9, "b": 12}}
{"id": "s2", "synthetic": 20, "seed": 3}
{"id": "s2-again", "synthetic": 20, "seed": 3}
EOF
python -m repro.cli serve --requests "$SERVE_TMP/requests.jsonl" \
    --cache-dir "$SERVE_TMP/cache" --lanes 8 --size 64 --arrays 2 --stats \
    > "$SERVE_TMP/results.jsonl"
cat "$SERVE_TMP/results.jsonl"

echo "== serve gate (corrupted cache + oversized kernel, diff vs evaluator) =="
python - <<'EOF'
import json
import pathlib
import sys
import tempfile

from repro.arch.target import TargetSpec
from repro.devices import RERAM
from repro.dfg.evaluate import evaluate
from repro.serve import ArtifactCache, CompileService, handle_request_file
from repro.serve.server import parse_request_lines

tmp = pathlib.Path(tempfile.mkdtemp(prefix="sherlock-serve-gate-"))
requests = [
    {"id": "g1", "kernel": "int f(int a, int b){return a ^ (a & b);}",
     "inputs": {"a": 9, "b": 12}, "lanes": 8},
    {"id": "g2", "synthetic": 20, "seed": 3, "lanes": 8},
    # oversized for the 16x16 arrays: rides the degradation ladder
    {"id": "g3", "synthetic": 128, "seed": 5, "lanes": 8},
]
request_file = tmp / "requests.jsonl"
request_file.write_text("\n".join(json.dumps(obj) for obj in requests))
want = [evaluate(r.dag, r.inputs, r.lanes)
        for r in parse_request_lines(request_file.read_text(), 8)]

target = TargetSpec.square(16, RERAM, num_arrays=2)
cache = ArtifactCache(tmp / "cache")
with CompileService(target, cache=cache, workers=2) as service:
    first = handle_request_file(service, request_file, 8)
    # corrupt one published artifact mid-run: the second pass must
    # quarantine it and transparently recompile
    victim = next(cache.root.glob("*.json"))
    victim.write_text(victim.read_text()[:25])
    second = handle_request_file(service, request_file, 8)
    stats = service.stats()
    stats_text = service.stats_text()

for batch in (first, second):
    for result, expected in zip(batch, want):
        if result.error is not None:
            sys.exit(f"serve gate: request {result.request_id!r} failed: "
                     f"{result.error}")
        if result.outputs != expected:
            sys.exit(f"serve gate: request {result.request_id!r} diverged "
                     f"from the reference evaluator")
if stats["cache"]["quarantined"] != 1:
    sys.exit(f"serve gate: expected exactly 1 quarantined entry, stats say "
             f"{stats['cache']}")
if stats["errors"] != 0 or stats["completed"] != 2 * len(requests):
    sys.exit(f"serve gate: unexpected service counters {stats}")
for needle in ("breaker: state=closed", "quarantined=1"):
    if needle not in stats_text:
        sys.exit(f"serve gate: stats surface is missing {needle!r}:\n"
                 f"{stats_text}")
degraded = [r.degradation for r in first if r.degradation != "none"]
if not degraded:
    sys.exit("serve gate: the oversized request never rode the "
             "degradation ladder; gate is not exercising it")
print(f"serve gate passed: {2 * len(requests)} requests bit-identical "
      f"across a corrupted cache (quarantined=1), degradations {degraded}")
EOF

echo "== chaos gate (seeded kills + corruption + fault burst, diff vs evaluator) =="
python - <<'EOF'
import random
import sys

from repro.arch.target import TargetSpec
from repro.core import CompilerConfig, SherlockCompiler
from repro.devices import RERAM, FaultMap
from repro.dfg.evaluate import evaluate
from repro.serve import (
    ArrayHealth,
    ArtifactCache,
    CompileService,
    HealthPolicy,
    ServeRequest,
)
from repro.util import ChaosEvent, ChaosInjector, ChaosSchedule, write_victims
from repro.workloads.synthetic import synthetic_dag

import pathlib
import tempfile


class Clock:
    now = 100.0

    def __call__(self):
        return self.now


clock = Clock()
lanes = 8
target = TargetSpec.square(64, RERAM, num_arrays=2)
config = CompilerConfig()
dag_a = synthetic_dag(num_ops=16, num_inputs=6, seed=1, name="chaos-a")
dag_b = synthetic_dag(num_ops=16, num_inputs=6, seed=2, name="chaos-b")
rng = random.Random(0)
inputs = {d.name: {o.name: rng.getrandbits(lanes) for o in d.inputs()}
          for d in (dag_a, dag_b)}
want = {d.name: evaluate(d, inputs[d.name], lanes) for d in (dag_a, dag_b)}
victims = write_victims(
    SherlockCompiler(target, config, cache=False).compile(dag_a),
    dag_a, inputs[dag_a.name], lanes, count=2)

tmp = pathlib.Path(tempfile.mkdtemp(prefix="sherlock-chaos-gate-"))
cache = ArtifactCache(tmp / "cache")
ground = {0: FaultMap(), 1: FaultMap()}
schedule = ChaosSchedule((
    ChaosEvent(at=2, kind="worker-kill", stage="execute"),
    ChaosEvent(at=4, kind="cache-corrupt", stage="compile"),
    ChaosEvent(at=6, kind="fault-burst", stage="execute",
               array_id=0, cells=victims, duration=4),
))
injector = ChaosInjector(schedule, cache=cache, machine_faults=ground)
policy = HealthPolicy(min_samples=2, probation_period_s=5.0,
                      probation_successes=2)


def serve(service, dag, array_id):
    result = service.process([ServeRequest(
        dag=dag, inputs=inputs[dag.name], lanes=lanes,
        request_id=dag.name, array_id=array_id)])[0]
    if result.error is not None:
        sys.exit(f"chaos gate: {dag.name} failed: {result.error}")
    if result.outputs != want[dag.name]:
        sys.exit(f"chaos gate: {dag.name} diverged from the reference "
                 f"evaluator under chaos")
    return result


with CompileService(target, config, cache=cache, workers=1,
                    machine_faults=ground, health_policy=policy,
                    chaos=injector, clock=clock,
                    sleep=lambda _s: None) as service:
    serve(service, dag_a, 0)
    serve(service, dag_b, 1)
    serve(service, dag_b, 1)      # worker kill + retry
    serve(service, dag_a, 0)      # cache corruption fires
    serve(service, dag_b, 1)      # corrupted entry quarantined
    serve(service, dag_a, 0)      # fault burst: dirty -> quarantined
    if service.health.state_of(0) is not ArrayHealth.QUARANTINED:
        sys.exit(f"chaos gate: array 0 is "
                 f"{service.health.state_of(0).value}, expected quarantined")
    offloaded = serve(service, dag_a, 0)
    if offloaded.engine != "cpu" or "quarantined" not in (
            offloaded.offload_reason or ""):
        sys.exit("chaos gate: quarantined array was not offloaded to CPU")
    for _ in range(4):            # B traffic advances past the heal ordinal
        serve(service, dag_b, 1)
    clock.now += 5.1              # probation cool-down elapses
    serve(service, dag_a, 0)
    serve(service, dag_a, 0)      # two clean probes restore the array
    if service.health.state_of(0) is not ArrayHealth.HEALTHY:
        sys.exit("chaos gate: array 0 did not recover after probation")
    snap = service.stats()["health"]
    stats_text = service.stats_text()

if snap["degraded"] < 1 or snap["quarantined"] < 1 or snap["recovered"] < 1:
    sys.exit(f"chaos gate: transition counters incomplete: {snap}")
if cache.stats()["quarantined"] != 1:
    sys.exit(f"chaos gate: expected 1 quarantined cache entry, got "
             f"{cache.stats()}")
for needle in ("health: baseline=", "array 0: state=healthy",
               "transition: array 0 degraded -> quarantined"):
    if needle not in stats_text:
        sys.exit(f"chaos gate: stats surface is missing {needle!r}:\n"
                 f"{stats_text}")
print(f"chaos gate passed: 12 requests bit-identical through a worker "
      f"kill, cache corruption, and a {len(victims)}-cell fault burst; "
      f"array 0 walked healthy -> degraded -> quarantined -> healthy "
      f"(fired: {injector.fired})")
EOF

echo "== scrub gate (planted latent fault found by patrol before any request fails) =="
python - <<'EOF'
import random
import sys

from repro.arch.target import TargetSpec
from repro.core import CompilerConfig, SherlockCompiler
from repro.devices import RERAM, FaultMap
from repro.dfg.evaluate import evaluate
from repro.serve import (
    ArrayHealth,
    CompileService,
    HealthPolicy,
    ScrubPolicy,
    ServeRequest,
)
from repro.util import ChaosEvent, ChaosInjector, ChaosSchedule, latent_victims
from repro.workloads.synthetic import synthetic_dag


class Clock:
    now = 100.0

    def __call__(self):
        return self.now


clock = Clock()
lanes = 8
target = TargetSpec.square(64, RERAM, num_arrays=2)
config = CompilerConfig()
dag_a = synthetic_dag(num_ops=16, num_inputs=6, seed=1, name="scrub-a")
dag_b = synthetic_dag(num_ops=16, num_inputs=6, seed=2, name="scrub-b")


def inputs_for(dag):
    rng = random.Random(0)
    return {o.name: rng.getrandbits(lanes) for o in dag.inputs()}


inputs = {d.name: inputs_for(d) for d in (dag_a, dag_b)}
want = {d.name: evaluate(d, inputs[d.name], lanes) for d in (dag_a, dag_b)}
# the victim is an input cell of dag_a's deterministic compile: preloads
# write it without read-back, so only the patrol scrubber can find it
victims = latent_victims(
    SherlockCompiler(target, config, cache=False).compile(dag_a),
    dag_a, inputs[dag_a.name], lanes, count=1)
ground = {0: FaultMap(), 1: FaultMap()}
space = target.num_arrays * target.rows * target.cols
injector = ChaosInjector(
    ChaosSchedule((ChaosEvent(at=2, kind="latent-fault", stage="execute",
                              array_id=1, cells=victims),)),
    machine_faults=ground)
policy = HealthPolicy(min_samples=1, probation_period_s=5.0,
                      probation_successes=1)


def serve(service, dag, array_id, **kwargs):
    result = service.process([ServeRequest(
        dag=dag, inputs=inputs[dag.name], lanes=lanes,
        request_id=dag.name, array_id=array_id, **kwargs)])[0]
    if result.error is not None:
        sys.exit(f"scrub gate: {dag.name} failed: {result.error}")
    if result.outputs != want[dag.name]:
        sys.exit(f"scrub gate: {dag.name} diverged from the reference "
                 f"evaluator")
    return result


with CompileService(target, config, workers=1, machine_faults=ground,
                    health_policy=policy, placement="health",
                    scrub=ScrubPolicy(budget=2 * space, seed=3, weight=64.0),
                    chaos=injector, clock=clock,
                    sleep=lambda _s: None) as service:
    voted = serve(service, dag_a, 0, redundancy=3)
    if not voted.voted or voted.disagreeing != ():
        sys.exit(f"scrub gate: clean vote was not unanimous: {voted}")
    serve(service, dag_b, 1)
    serve(service, dag_b, 1)          # ordinal 2: latent fault planted
    report = service.scrub()          # patrol finds it, zero failures so far
    if report.latent_faults_found != 1 or sorted(report.discoveries) != [1]:
        sys.exit(f"scrub gate: patrol missed the planted latent fault: "
                 f"found={report.latent_faults_found} "
                 f"arrays={sorted(report.discoveries)}")
    found = [cell for cell, _ in report.discoveries[1].cells()]
    if found != [victims[0]]:
        sys.exit(f"scrub gate: patrol reported {found}, planted {victims}")
    if service.stats()["errors"] != 0:
        sys.exit("scrub gate: a request failed before the patrol ran")
    if service.health.state_of(1) is not ArrayHealth.DEGRADED:
        sys.exit(f"scrub gate: array 1 is "
                 f"{service.health.state_of(1).value}, expected degraded")
    moved = serve(service, dag_b, 1)  # placement shifts degraded traffic
    if moved.placed_array != 0:
        sys.exit(f"scrub gate: degraded array kept its traffic "
                 f"(placed on {moved.placed_array})")
    outvoted = serve(service, dag_a, 0, redundancy=3)
    if outvoted.disagreeing != (1,):  # minority stays bit-identical
        sys.exit(f"scrub gate: expected array 1 outvoted, "
                 f"disagreeing={outvoted.disagreeing}")
    if service.health.state_of(1) is not ArrayHealth.QUARANTINED:
        sys.exit("scrub gate: vote disagreement did not quarantine array 1")
    clock.now += 5.1                  # probation cool-down elapses
    probe = serve(service, dag_b, 1)
    if probe.engine != "cim" or probe.placed_array != 1:
        sys.exit("scrub gate: probation probe did not land on array 1")
    if service.health.state_of(1) is not ArrayHealth.HEALTHY:
        sys.exit("scrub gate: array 1 did not recover after probation")
    final = serve(service, dag_b, 0, redundancy=3)
    if not final.voted or 1 not in final.voters:
        sys.exit("scrub gate: recovered array never voted again")
    snap = service.stats()
    text = service.stats_text()

if snap["scrub"]["latent_faults_found"] != 1 or snap["errors"] != 0:
    sys.exit(f"scrub gate: unexpected counters: scrub={snap['scrub']} "
             f"errors={snap['errors']}")
for needle in ("placement: health", "scrub: passes=1", "votes: 3"):
    if needle not in text:
        sys.exit(f"scrub gate: stats surface is missing {needle!r}:\n{text}")
print(f"scrub gate passed: patrol found the planted latent cell "
      f"{victims[0]} with zero failed requests; array 1 walked degraded "
      f"-> quarantined -> healthy while every answer (3 of them voted) "
      f"stayed bit-identical")
EOF

echo "== health smoke (static fault-map assessment CLI) =="
HEALTH_TMP=$(mktemp -d)
python - <<EOF
from repro.arch.target import TargetSpec
from repro.devices import RERAM, FaultMap
fm = FaultMap.random_map(TargetSpec.square(16, RERAM, num_arrays=4),
                         fraction=0.08, seed=3)
fm.save("$HEALTH_TMP/faults.json")
EOF
python -m repro.cli health --tech reram --size 16 --arrays 4 \
    --fault-map "$HEALTH_TMP/faults.json"

echo "== paper experiments (tables land in benchmarks/results/) =="
python -m pytest benchmarks/ 2>&1 | tee benchmarks/results/full_run.log

echo "== benchmark timings =="
python -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

echo "== perf probes (writes BENCH_sherlock.json; compares when one exists) =="
if [ -f BENCH_sherlock.json ]; then
    python -m repro.cli bench --output BENCH_sherlock.json \
        --compare BENCH_sherlock.json
else
    python -m repro.cli bench --output BENCH_sherlock.json
fi

echo "== examples =="
for example in examples/*.py; do
    echo "-- $example"
    python "$example" > /dev/null
done
echo "all green"
