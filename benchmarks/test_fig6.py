"""Fig. 6: reliability of the BitWeaving scan vs allowed MRA > 2 fraction.

Sweeps the budget of multi-operand operations for both mappers on (a)
ReRAM with direct XOR/OR sensing and (b) STT-MRAM with the NAND-based
lowering, reporting the (latency, P_app) curve of each configuration —
the four series of Fig. 6.  Shape checks:

* more MRA > 2 ops → lower (or equal) latency and higher (or equal) P_app
  at the curve ends;
* ReRAM stays in the "highly reliable" band (P_app < 1e-4), STT-MRAM lands
  orders of magnitude worse (the paper quotes ~1e-2);
* the optimized mapper is faster than naive at every budget.
"""

from __future__ import annotations

import pytest

from conftest import bench_dag, bench_target, save_result
from repro.core.report import format_table
from repro.reliability import mra_sweep

FRACTIONS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


@pytest.fixture(scope="module")
def sweeps():
    dag = bench_dag("bitweaving")
    results = {}
    for tech in ("reram", "stt-mram"):
        target = bench_target(512, tech, mra=4)
        for mapper in ("naive", "sherlock"):
            results[(tech, mapper)] = mra_sweep(dag, target, mapper,
                                                fractions=FRACTIONS, mra=4)
    return results


def test_generate_fig6(sweeps):
    rows = []
    for (tech, mapper), points in sweeps.items():
        for p in points:
            rows.append([tech, mapper, f"{p.allowed_fraction:.0%}",
                         f"{p.achieved_fraction:.1%}",
                         round(p.latency_us, 3), f"{p.p_app:.3e}",
                         p.instructions])
    text = format_table(
        ["tech", "mapper", "allowed MRA>2", "achieved", "latency_us",
         "P_app", "instructions"], rows)
    save_result("fig6.txt", text)


@pytest.mark.parametrize("tech", ("reram", "stt-mram"))
@pytest.mark.parametrize("mapper", ("naive", "sherlock"))
def test_latency_reliability_tradeoff(sweeps, tech, mapper):
    points = sweeps[(tech, mapper)]
    first, last = points[0], points[-1]
    assert last.latency_us <= first.latency_us
    assert last.p_app >= first.p_app


def test_reram_stays_reliable(sweeps):
    for mapper in ("naive", "sherlock"):
        for p in sweeps[("reram", mapper)]:
            assert p.p_app < 1e-4


def test_stt_mram_needs_error_tolerance(sweeps):
    """Sec. 4.2: P_app ~ 1e-2 on STT-MRAM even with NAND lowering."""
    worst = max(p.p_app for p in sweeps[("stt-mram", "sherlock")])
    best = min(p.p_app for p in sweeps[("stt-mram", "sherlock")])
    assert worst > 1e-4
    assert best < 0.5


def test_opt_faster_at_every_budget(sweeps):
    for tech in ("reram", "stt-mram"):
        for naive_p, opt_p in zip(sweeps[(tech, "naive")],
                                  sweeps[(tech, "sherlock")]):
            assert opt_p.latency_us < naive_p.latency_us


def test_opt_improves_reliability(sweeps):
    """Paper: opt improves P_app ~1.5x (ReRAM) / ~1.3x (STT-MRAM) on avg."""
    for tech in ("reram", "stt-mram"):
        naive_avg = sum(p.p_app for p in sweeps[(tech, "naive")])
        opt_avg = sum(p.p_app for p in sweeps[(tech, "sherlock")])
        assert opt_avg <= naive_avg * 1.05


def test_benchmark_sweep_point(benchmark):
    dag = bench_dag("bitweaving")
    target = bench_target(512, "stt-mram", mra=4)

    def one_point():
        # cache=False: this benchmark times real compilation, not the memo
        return mra_sweep(dag, target, "sherlock", fractions=(0.5,), mra=4,
                         cache=False)

    points = benchmark(one_point)
    assert len(points) == 1
