"""Shared infrastructure for the experiment-reproduction benchmarks.

Each benchmark file regenerates one table or figure of the paper.  The
expensive model evaluations (compiling three workloads across the full
configuration matrix) run once per session and are cached here; the
pytest-benchmark fixture then times representative pipeline pieces without
re-running the whole matrix.  Every experiment writes its rendered table to
``benchmarks/results/`` so EXPERIMENTS.md can reference concrete output.
"""

from __future__ import annotations

import os
import pathlib
import random

import pytest

from repro.arch.target import TargetSpec
from repro.core.compiler import SherlockCompiler
from repro.core.config import CompilerConfig
from repro.devices import get_technology
from repro.workloads import get_workload

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: reduce AES rounds for quick runs: SHERLOCK_BENCH_AES_ROUNDS=2
AES_ROUNDS = int(os.environ.get("SHERLOCK_BENCH_AES_ROUNDS", "10"))

import dataclasses


@dataclasses.dataclass(frozen=True)
class ProgramSummary:
    """Lightweight record of one compiled configuration.

    The big workloads (full AES) produce programs with hundreds of
    thousands of instruction objects; caching whole programs for the 48
    Table 2 cells would exhaust memory, so the matrix keeps only what the
    experiments read: the priced metrics, the target, and mapping stats.
    """

    target: TargetSpec
    metrics: object
    stats: dict


_dag_cache: dict[str, object] = {}
_summary_cache: dict[tuple, ProgramSummary] = {}


def bench_dag(workload_name: str):
    """Workload DAG, built once per session."""
    if workload_name not in _dag_cache:
        if workload_name == "aes" and AES_ROUNDS != 10:
            from repro.workloads import aes

            _dag_cache[workload_name] = aes.aes_dag(AES_ROUNDS)
        else:
            _dag_cache[workload_name] = get_workload(workload_name).build_dag()
    return _dag_cache[workload_name]


def bench_target(size: int, tech_name: str, mra: int = 2,
                 num_arrays: int | None = None) -> TargetSpec:
    """A Table 1 style target, auto-sized to hold the largest workload."""
    if num_arrays is None:
        # the AES DAG needs ~500k cells with duplicates; size generously
        num_arrays = max(16, (600_000 // (size * size)) + 1)
    return TargetSpec.square(size, get_technology(tech_name),
                             num_arrays=num_arrays,
                             max_activated_rows=max(2, mra))


def compile_config(workload_name: str, tech_name: str, size: int,
                   mapper: str, mra: int) -> ProgramSummary:
    """Compile one (workload, tech, size, mapper, MRA) cell, cached."""
    key = (workload_name, tech_name, size, mapper, mra)
    if key not in _summary_cache:
        target = bench_target(size, tech_name, mra)
        # Table 2 measures raw performance: the paper applies the NAND-based
        # XOR/OR implementation only in its reliability study (Fig. 6b), so
        # the compiler's automatic lowering on STT-MRAM is disabled here.
        config = CompilerConfig(mapper=mapper, mra=mra, nand_lowering=False)
        dag = bench_dag(workload_name)
        program = SherlockCompiler(target, config).compile(dag)
        _summary_cache[key] = ProgramSummary(
            target=target, metrics=program.metrics,
            stats=program.mapping.stats.as_dict())
        del program
    return _summary_cache[key]


def save_result(name: str, text: str) -> None:
    """Persist a rendered experiment table and echo it to the test log."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}\n")


@pytest.fixture
def rng() -> random.Random:
    return random.Random(20240623)
