"""Table 2: latency and energy across sizes, technologies and mappers.

Regenerates the paper's main table: {bitweaving, sobel, aes} ×
{ReRAM, STT-MRAM} × {1024, 512} × {naive, opt} × {MRA = 2, MRA ≥ 2},
reporting latency and energy per compiled kernel execution, and checks the
shape claims of Sec. 4.1:

* the optimized mapper beats the naive one on every workload;
* gains grow with DAG size (AES > bitweaving);
* MRA ≥ 2 lowers the naive latency (fewer ops), while for the optimized
  mapper it may go either way on small arrays (the paper's own caveat);
* the optimized mapper cuts energy substantially.
"""

from __future__ import annotations

import pytest

from conftest import AES_ROUNDS, bench_dag, compile_config, save_result
from repro.core.report import format_table

WORKLOADS = ("bitweaving", "sobel", "aes")
TECHS = ("reram", "stt-mram")
SIZES = (1024, 512)
MAPPERS = ("naive", "sherlock")
MRAS = (2, 4)

_HEADERS = ["workload", "tech", "metric",
            "naive/1024/2", "naive/1024/>2", "naive/512/2", "naive/512/>2",
            "opt/1024/2", "opt/1024/>2", "opt/512/2", "opt/512/>2"]


def _matrix():
    """All Table 2 cells: (workload, tech) -> {(mapper,size,mra): metrics}."""
    cells = {}
    for workload in WORKLOADS:
        for tech in TECHS:
            entry = {}
            for mapper in MAPPERS:
                for size in SIZES:
                    for mra in MRAS:
                        summary = compile_config(workload, tech, size, mapper, mra)
                        entry[(mapper, size, mra)] = summary.metrics
            cells[(workload, tech)] = entry
    return cells


@pytest.fixture(scope="module")
def table2():
    return _matrix()


def test_generate_table2(table2):
    rows = []
    for (workload, tech), entry in table2.items():
        order = [(m, s, a) for m in MAPPERS for s in SIZES for a in MRAS]
        rows.append([workload, tech, "latency_us"]
                    + [round(entry[k].latency_us, 3) for k in order])
        rows.append([workload, tech, "energy_uJ"]
                    + [round(entry[k].energy_uj, 3) for k in order])
    text = format_table(_HEADERS, rows)
    if AES_ROUNDS != 10:
        text += f"\n(note: AES reduced to {AES_ROUNDS} rounds via env)"
    save_result("table2.txt", text)
    assert rows


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("tech", TECHS)
@pytest.mark.parametrize("size", SIZES)
def test_opt_beats_naive(table2, workload, tech, size):
    """opt wins every cell on bitweaving/sobel; AES is aggregated below
    (row alignment degrades on its ~450-level DAG at small arrays)."""
    if workload == "aes":
        pytest.skip("covered by test_opt_beats_naive_aes_aggregate")
    entry = table2[(workload, tech)]
    for mra in MRAS:
        naive = entry[("naive", size, mra)]
        opt = entry[("sherlock", size, mra)]
        assert opt.latency_us < naive.latency_us, (workload, tech, size, mra)
        assert opt.energy_uj < naive.energy_uj, (workload, tech, size, mra)


@pytest.mark.parametrize("tech", TECHS)
def test_opt_beats_naive_aes_aggregate(table2, tech):
    """AES: opt must win clearly at 1024 and on average over all cells."""
    entry = table2[("aes", tech)]
    naive_1024 = entry[("naive", 1024, 2)]
    opt_1024 = entry[("sherlock", 1024, 2)]
    assert opt_1024.latency_us < naive_1024.latency_us
    assert opt_1024.energy_uj < naive_1024.energy_uj
    total_naive = sum(entry[("naive", s, m)].latency_us
                      for s in SIZES for m in MRAS)
    total_opt = sum(entry[("sherlock", s, m)].latency_us
                    for s in SIZES for m in MRAS)
    assert total_opt < total_naive


def test_substantial_gains_on_every_multicolumn_workload(table2):
    """Sec 4.1 claims larger DAGs gain more; our instruction merging
    degrades over AES's ~450 dependence levels (EXPERIMENTS.md discusses
    the gap), so the asserted floor is a solid win everywhere rather than
    a strict ordering by DAG size."""
    def gain(workload):
        entry = table2[(workload, "reram")]
        return (entry[("naive", 1024, 2)].latency_us
                / entry[("sherlock", 1024, 2)].latency_us)

    for workload in WORKLOADS:
        assert gain(workload) > 1.5, workload


@pytest.mark.parametrize("workload", WORKLOADS)
def test_mra_helps_naive_latency(table2, workload):
    """Node substitution consistently lowers naive latency (~1.28x avg)."""
    improvements = []
    for tech in TECHS:
        entry = table2[(workload, tech)]
        for size in SIZES:
            improvements.append(entry[("naive", size, 2)].latency_us
                                / entry[("naive", size, 4)].latency_us)
    assert sum(improvements) / len(improvements) >= 1.0


@pytest.mark.parametrize("tech", TECHS)
def test_smaller_arrays_slower_for_naive(table2, tech):
    for workload in WORKLOADS:
        entry = table2[(workload, tech)]
        assert (entry[("naive", 512, 2)].instruction_count
                >= entry[("naive", 1024, 2)].instruction_count)


def test_reram_writes_cost_more_than_stt(table2):
    """AES is write-heavy: ReRAM must be slower than STT-MRAM there."""
    reram = table2[("aes", "reram")][("naive", 1024, 2)]
    stt = table2[("aes", "stt-mram")][("naive", 1024, 2)]
    assert reram.latency_us > stt.latency_us


def test_energy_improvement_band(table2):
    """Paper: ~5.4x average energy gain; require a solid improvement."""
    ratios = []
    for (workload, tech), entry in table2.items():
        for size in SIZES:
            ratios.append(entry[("naive", size, 2)].energy_uj
                          / entry[("sherlock", size, 2)].energy_uj)
    assert sum(ratios) / len(ratios) > 1.4


def test_benchmark_compile_bitweaving(benchmark):
    """Time one representative compile (the pipeline's hot path)."""
    from repro.core.compiler import SherlockCompiler
    from repro.core.config import CompilerConfig
    from conftest import bench_target

    dag = bench_dag("bitweaving")
    target = bench_target(512, "reram")

    def compile_once():
        # cache=False: this benchmark times real compilation, not the memo
        return SherlockCompiler(target, CompilerConfig(),
                                cache=False).compile(dag)

    program = benchmark(compile_once)
    assert program.metrics.instruction_count > 0
