"""Fig. 7: energy-delay product of the CIM system vs the CPU baseline.

For every workload, array size (128..1024) and technology, compiles the
kernel with the optimized mapper, scales it to the full dataset (1M-record
column scan / 512×512 image / 64 KiB of AES blocks), and compares its EDP
against the in-order CPU model executing the same work.  Shape checks per
the paper: CIM wins by orders of magnitude, and the per-workload profiles
differ across memory sizes.
"""

from __future__ import annotations

import pytest

from conftest import AES_ROUNDS, compile_config, save_result
from repro.core.report import format_table
from repro.sim.cpu import run_model
from repro.workloads import get_workload

WORKLOADS = ("bitweaving", "sobel", "aes")
SIZES = (128, 256, 512, 1024)
#: AES's ~227k-operand DAG needs thousands of columns below 512x512 —
#: an unrealistic array count — so its sweep starts at 512 (cf. DESIGN.md)
SIZES_PER_WORKLOAD = {"aes": (512, 1024)}
TECHS = ("reram", "stt-mram")


def sizes_for(workload: str) -> tuple[int, ...]:
    return SIZES_PER_WORKLOAD.get(workload, SIZES)


def _cim_edp(workload_name: str, tech: str, size: int) -> tuple[float, float, float]:
    """(latency_us, energy_uJ, EDP) of the full dataset on CIM."""
    workload = get_workload(workload_name)
    summary = compile_config(workload_name, tech, size, "sherlock", 2)
    iterations = workload.dataset_iterations(summary.target.data_width)
    metrics = summary.metrics.scaled(iterations)
    return metrics.latency_us, metrics.energy_uj, metrics.edp


def _cpu_edp(workload_name: str, data_width: int) -> tuple[float, float, float]:
    """CPU metrics for the same dataset."""
    workload = get_workload(workload_name)
    iterations = workload.dataset_iterations(data_width)
    events = workload.cpu_events(data_width).scaled(iterations)
    metrics = run_model(events)
    return metrics.latency_us, metrics.energy_uj, metrics.edp


@pytest.fixture(scope="module")
def fig7():
    table = {}
    for workload in WORKLOADS:
        for tech in TECHS:
            for size in sizes_for(workload):
                cim = _cim_edp(workload, tech, size)
                cpu = _cpu_edp(workload, 4 * size)
                table[(workload, tech, size)] = (cim, cpu)
    return table


def test_generate_fig7(fig7):
    rows = []
    for (workload, tech, size), (cim, cpu) in fig7.items():
        rows.append([workload, tech, size,
                     round(cim[0], 2), round(cim[1], 2), f"{cim[2]:.3e}",
                     round(cpu[0], 2), round(cpu[1], 2), f"{cpu[2]:.3e}",
                     f"{cpu[2] / cim[2]:.1f}x"])
    text = format_table(
        ["workload", "tech", "N", "cim_lat_us", "cim_E_uJ", "cim_EDP",
         "cpu_lat_us", "cpu_E_uJ", "cpu_EDP", "EDP gain"], rows)
    if AES_ROUNDS != 10:
        text += f"\n(note: AES reduced to {AES_ROUNDS} rounds via env)"
    save_result("fig7.txt", text)


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("tech", TECHS)
def test_cim_edp_beats_cpu_by_orders_of_magnitude(fig7, workload, tech):
    # AES at 512 sits at ~8x (mapping degrades on its deep DAG); every other
    # configuration clears 10x and the best exceed three orders of magnitude
    floor = 5 if workload == "aes" else 10
    for size in sizes_for(workload):
        cim, cpu = fig7[(workload, tech, size)]
        assert cpu[2] / cim[2] > floor, (workload, tech, size)


def test_gains_reach_three_orders_of_magnitude(fig7):
    best = max(cpu[2] / cim[2] for cim, cpu in fig7.values())
    assert best > 1e3


def test_profiles_differ_across_sizes(fig7):
    """The paper notes distinct per-workload profiles vs memory size."""
    for workload in WORKLOADS:
        edps = [fig7[(workload, "reram", size)][0][2]
                for size in sizes_for(workload)]
        assert len({round(e, 15) for e in edps}) > 1


def test_benchmark_cpu_model(benchmark):
    from repro.sim.cpu import bitweaving_events

    def run():
        return run_model(bitweaving_events(4096, 8, 32).scaled(8))

    metrics = benchmark(run)
    assert metrics.edp > 0
