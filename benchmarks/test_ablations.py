"""Ablations of Sherlock's design choices (DESIGN.md experiment A1).

The paper motivates three mechanisms inside the optimized mapper; this
bench isolates each:

* **instruction merging** (Sec. 3.3.3) — on vs off;
* **clustering score weights** (Eq. 1) — α/β sensitivity;
* **selective-column hardware** (Sec. 2.1) — with vs without the
  per-column multiplexers that merging depends on;
* **node substitution + NAND lowering interplay** on STT-MRAM.
"""

from __future__ import annotations

import pytest

from conftest import bench_dag, bench_target, save_result
from repro.core.compiler import SherlockCompiler
from repro.core.config import CompilerConfig
from repro.core.report import format_table
from repro.mapping import SherlockOptions, map_sherlock
from repro.workloads.synthetic import synthetic_dag


@pytest.fixture(scope="module")
def sobel_dag():
    return bench_dag("sobel")


@pytest.fixture(scope="module")
def compiled_sobel(sobel_dag):
    target = bench_target(512, "reram")
    compiler = SherlockCompiler(target, CompilerConfig())
    return compiler.transform(sobel_dag), target


def test_instruction_merging_ablation(compiled_sobel):
    work, target = compiled_sobel
    merged = map_sherlock(work, target, SherlockOptions(merge_instructions=True))
    unmerged = map_sherlock(work, target, SherlockOptions(merge_instructions=False))
    rows = [
        ["merging on", len(merged.instructions),
         merged.stats.merged_instruction_savings],
        ["merging off", len(unmerged.instructions),
         unmerged.stats.merged_instruction_savings],
    ]
    save_result("ablation_merging.txt",
                format_table(["config", "instructions", "savings"], rows))
    assert len(merged.instructions) < len(unmerged.instructions)
    assert merged.stats.merged_instruction_savings > 0


def test_score_weight_sensitivity(compiled_sobel):
    work, target = compiled_sobel
    rows = []
    counts = {}
    for alpha, beta in [(1.0, 0.05), (1.0, 0.0), (0.0, 0.05), (2.0, 0.2)]:
        result = map_sherlock(work, target, SherlockOptions(alpha=alpha, beta=beta))
        counts[(alpha, beta)] = len(result.instructions)
        rows.append([alpha, beta, result.stats.clusters,
                     result.stats.gather_moves, len(result.instructions)])
    save_result("ablation_score_weights.txt", format_table(
        ["alpha", "beta", "clusters", "moves", "instructions"], rows))
    # the weights matter (the ablation's finding) but the defaults must stay
    # within ~1.6x of the best sampled setting; the optimum is size- and
    # workload-dependent (beta trades cluster count against load balance)
    default = counts[(1.0, 0.05)]
    assert default <= 1.6 * min(counts.values())


def test_selective_columns_ablation(sobel_dag):
    selective = bench_target(512, "reram")
    full_row = selective.with_(selective_columns=False)
    merged = SherlockCompiler(selective, CompilerConfig()).compile(sobel_dag)
    fallback = SherlockCompiler(full_row, CompilerConfig()).compile(sobel_dag)
    rows = [
        ["selective columns", merged.metrics.instruction_count,
         round(merged.metrics.latency_us, 2)],
        ["full-row only", fallback.metrics.instruction_count,
         round(fallback.metrics.latency_us, 2)],
    ]
    save_result("ablation_selective_columns.txt",
                format_table(["hardware", "instructions", "latency_us"], rows))
    assert merged.metrics.latency_us < fallback.metrics.latency_us


def test_nand_lowering_reliability_cost(sobel_dag):
    """Forcing direct XOR/OR on STT-MRAM: faster but far less reliable."""
    target = bench_target(512, "stt-mram")
    lowered = SherlockCompiler(
        target, CompilerConfig(nand_lowering=True)).compile(sobel_dag)
    direct = SherlockCompiler(
        target, CompilerConfig(nand_lowering=False)).compile(sobel_dag)
    rows = [
        ["nand-lowered", lowered.metrics.instruction_count,
         round(lowered.metrics.latency_us, 2), f"{lowered.metrics.p_app:.3e}"],
        ["direct xor/or", direct.metrics.instruction_count,
         round(direct.metrics.latency_us, 2), f"{direct.metrics.p_app:.3e}"],
    ]
    save_result("ablation_nand_lowering.txt", format_table(
        ["implementation", "instructions", "latency_us", "P_app"], rows))
    assert direct.metrics.latency_us < lowered.metrics.latency_us
    assert direct.metrics.p_app > lowered.metrics.p_app


def test_locality_sensitivity():
    """Clustering pays off on local DAGs and degrades gracefully on random."""
    target = bench_target(256, "reram")
    rows = []
    gains = {}
    for locality in (1.0, 0.9, 0.5, 0.0):
        dag = synthetic_dag(num_ops=600, num_inputs=64, groups=8,
                            locality=locality, seed=7)
        naive = SherlockCompiler(target, CompilerConfig(mapper="naive")).compile(dag)
        opt = SherlockCompiler(target, CompilerConfig()).compile(dag)
        gain = naive.metrics.latency_us / opt.metrics.latency_us
        gains[locality] = gain
        rows.append([locality, round(naive.metrics.latency_us, 2),
                     round(opt.metrics.latency_us, 2), round(gain, 2)])
    save_result("ablation_locality.txt", format_table(
        ["locality", "naive_us", "opt_us", "gain"], rows))
    assert gains[1.0] > gains[0.0] * 0.9


def test_benchmark_clustering(benchmark, compiled_sobel):
    work, target = compiled_sobel
    from repro.mapping.clustering import find_clusters

    def cluster():
        return find_clusters(work, target.usable_rows)

    clusters = benchmark(cluster)
    assert clusters
