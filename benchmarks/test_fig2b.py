"""Fig. 2b: decision-failure exacerbation with multi-row activation.

Regenerates the composite-conductance distributions for 2 vs 4 activated
rows on STT-MRAM (the two panels of Fig. 2b) and tabulates ``P_DF`` per
operation and activation count for both technologies — the quantitative
content behind the figure's overlap regions.
"""

from __future__ import annotations

from conftest import save_result
from repro.core.report import format_table
from repro.devices import (
    RERAM,
    STT_MRAM,
    composite_state,
    decision_failure_probability,
    overlap_curve,
)
from repro.dfg import OpType

OPS = (OpType.AND, OpType.OR, OpType.XOR)
KS = (2, 3, 4, 6, 8)


def test_generate_fig2b_distributions():
    rows = []
    for k in (2, 4):
        curves = overlap_curve(STT_MRAM, k, points=8)
        xs = curves["conductance"]
        for j in range(k + 1):
            peak = max(curves[f"state_{j}"])
            rows.append([k, j, f"{xs[0]:.3e}..{xs[-1]:.3e}", f"{peak:.3e}"])
    text = format_table(["activated rows", "HRS cells j", "G range (S)",
                         "pdf peak"], rows)

    pdf_rows = []
    for tech in (STT_MRAM, RERAM):
        for op in OPS:
            pdf_rows.append([tech.name, op.value] + [
                f"{decision_failure_probability(tech, op, k):.3e}" for k in KS])
    text += "\n\nP_DF per op and activation count:\n"
    text += format_table(["tech", "op"] + [f"k={k}" for k in KS], pdf_rows)
    save_result("fig2b.txt", text)


def test_overlap_grows_with_activated_rows():
    """The figure's message: 4-row sensing overlaps far more than 2-row."""
    for tech in (STT_MRAM, RERAM):
        for op in OPS:
            p2 = decision_failure_probability(tech, op, 2)
            p4 = decision_failure_probability(tech, op, 4)
            assert p4 > p2


def test_stt_mram_margins_much_worse_than_reram():
    for op in OPS:
        assert (decision_failure_probability(STT_MRAM, op, 2)
                > 10 * decision_failure_probability(RERAM, op, 2))


def test_sigma_grows_sqrt_like():
    s1 = composite_state(STT_MRAM, 1, 0)
    s4 = composite_state(STT_MRAM, 4, 0)
    ratio = s4.sigma / s1.sigma
    assert 1.5 < ratio < 2.5  # sqrt(4) = 2 modulo the reference noise floor


def test_benchmark_pdf_evaluation(benchmark):
    def evaluate_all():
        return [decision_failure_probability(tech, op, k)
                for tech in (STT_MRAM, RERAM) for op in OPS for k in KS]

    values = benchmark(evaluate_all)
    assert all(0 <= v <= 1 for v in values)
