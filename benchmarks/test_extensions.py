"""Extension experiments beyond the paper's evaluation.

Three studies the paper's discussion motivates but does not quantify:

* **endurance** — CIM turns intermediate results into NVM writes; how does
  the mapping affect cell wear and projected array lifetime?
* **inter-array parallelism** — the paper's controller issues serially; how
  much makespan does a banked controller recover from Sherlock's schedules?
* **PCM** — the third technology of Sec. 1, absent from Table 2.
"""

from __future__ import annotations

import pytest

from conftest import bench_dag, bench_target, save_result
from repro.core.compiler import SherlockCompiler
from repro.core.config import CompilerConfig
from repro.core.report import format_table
from repro.devices import get_technology
from repro.sim import parallel_latency_cycles, wear_report
from repro.workloads import bfs


@pytest.fixture(scope="module")
def programs():
    dag = bench_dag("bitweaving")
    target = bench_target(512, "reram")
    return {
        mapper: SherlockCompiler(target, CompilerConfig(mapper=mapper)).compile(dag)
        for mapper in ("naive", "sherlock")
    }


def test_endurance_study(programs):
    rows = []
    lifetimes = {}
    for mapper, program in programs.items():
        report = wear_report(program.instructions)
        lifetime = report.lifetime_executions(program.target.technology)
        lifetimes[mapper] = lifetime
        rows.append([mapper, report.total_cell_writes, report.cells_written,
                     report.max_writes_per_cell,
                     round(report.mean_writes_per_cell, 3),
                     f"{lifetime:.2e}"])
    save_result("ext_endurance.txt", format_table(
        ["mapper", "cell writes", "cells", "max/cell", "mean/cell",
         "lifetime (runs)"], rows))
    # fewer writes -> at least no worse projected lifetime
    naive = wear_report(programs["naive"].instructions)
    opt = wear_report(programs["sherlock"].instructions)
    assert opt.total_cell_writes <= naive.total_cell_writes


def test_parallel_controller_study(programs):
    rows = []
    for mapper, program in programs.items():
        serial = program.metrics.latency_cycles
        parallel = parallel_latency_cycles(program.instructions, program.target)
        rows.append([mapper, serial, parallel,
                     round(serial / parallel, 2) if parallel else "-"])
        assert parallel <= serial
    save_result("ext_parallel_arrays.txt", format_table(
        ["mapper", "serial cycles", "banked cycles", "overlap"], rows))


def test_pcm_technology_comparison():
    dag = bench_dag("bitweaving")
    rows = []
    latencies = {}
    for tech_name in ("stt-mram", "reram", "pcm"):
        target = bench_target(512, tech_name)
        program = SherlockCompiler(target, CompilerConfig()).compile(dag)
        m = program.metrics
        latencies[tech_name] = m.latency_us
        rows.append([tech_name, round(m.latency_us, 2),
                     round(m.energy_uj, 2), f"{m.p_app:.2e}",
                     f"{get_technology(tech_name).hrs_lrs_ratio:.1f}"])
    save_result("ext_pcm.txt", format_table(
        ["tech", "latency_us", "energy_uJ", "P_app", "HRS/LRS"], rows))
    # PCM has the slowest writes; STT-MRAM the fastest
    assert latencies["pcm"] > latencies["reram"] > latencies["stt-mram"]


def test_bfs_workload_study():
    """The graph workload has a wide, shallow DAG — a different regime."""
    dag = bfs.bfs_step_dag(16)
    target = bench_target(512, "reram")
    rows = []
    metrics = {}
    for mapper in ("naive", "sherlock"):
        program = SherlockCompiler(target, CompilerConfig(mapper=mapper)).compile(dag)
        metrics[mapper] = program.metrics
        rows.append([mapper, dag.num_ops, program.metrics.instruction_count,
                     round(program.metrics.latency_us, 2),
                     round(program.metrics.energy_uj, 3)])
    save_result("ext_bfs.txt", format_table(
        ["mapper", "dag ops", "instructions", "latency_us", "energy_uJ"], rows))
    assert metrics["sherlock"].latency_us <= metrics["naive"].latency_us


def test_benchmark_parallel_timing(benchmark, programs):
    program = programs["sherlock"]

    def run():
        return parallel_latency_cycles(program.instructions, program.target)

    assert benchmark(run) > 0
