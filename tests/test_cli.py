"""Tests for the ``sherlock`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for command in ("compile", "run", "sweep", "workloads"):
            args = parser.parse_args([command] + (
                ["kernel.c"] if command == "compile" else
                ["--workload", "bitweaving"] if command in ("run", "sweep")
                else []))
            assert args.command == command

    def test_run_requires_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "nope"])


class TestCommands:
    def test_workloads_listing(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "bitweaving" in out and "sobel" in out and "aes" in out

    def test_compile_command(self, tmp_path, capsys):
        source = tmp_path / "kernel.c"
        source.write_text(
            "word_t f(word_t a, word_t b) { return (a & b) ^ ~a; }")
        assert main(["compile", str(source), "--size", "128", "--emit"]) == 0
        captured = capsys.readouterr()
        assert "read [" in captured.out
        assert "write [" in captured.out

    def test_compile_missing_function(self, tmp_path):
        source = tmp_path / "kernel.c"
        source.write_text("word_t f(word_t a) { return a & a; }")
        assert main(["compile", str(source), "--function", "nope"]) == 1

    def test_run_command_verifies(self, capsys):
        assert main(["run", "--workload", "bitweaving", "--size", "256",
                     "--lanes", "4", "--mapper", "naive"]) == 0
        out = capsys.readouterr().out
        assert "functional check passed" in out

    def test_run_stt_mram(self, capsys):
        assert main(["run", "--workload", "bitweaving", "--size", "256",
                     "--lanes", "4", "--tech", "stt-mram"]) == 0
        assert "stt-mram" in capsys.readouterr().out

    def test_sweep_command(self, capsys):
        assert main(["sweep", "--workload", "bitweaving", "--size", "256",
                     "--mra", "4"]) == 0
        out = capsys.readouterr().out
        assert "P_app" in out and "latency_us" in out

    def test_compile_save_and_inspect(self, tmp_path, capsys):
        source = tmp_path / "kernel.c"
        source.write_text(
            "word_t f(word_t a, word_t b) { return (a | b) ^ (a & b); }")
        saved = tmp_path / "program.json"
        assert main(["compile", str(source), "--size", "128",
                     "-o", str(saved)]) == 0
        assert saved.exists()
        assert main(["inspect", str(saved), "--verify", "--lanes", "8"]) == 0
        out = capsys.readouterr().out
        assert "re-verification passed" in out

    def test_unknown_tech_is_reported(self, capsys):
        code = main(["run", "--workload", "bitweaving", "--tech", "dram"])
        assert code == 1
        assert "error:" in capsys.readouterr().err
