"""Tests for the ``sherlock`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for command in ("compile", "run", "sweep", "campaign", "workloads"):
            args = parser.parse_args([command] + (
                ["kernel.c"] if command == "compile" else
                ["--workload", "bitweaving"]
                if command in ("run", "sweep", "campaign")
                else []))
            assert args.command == command

    def test_campaign_requires_a_dag_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign"])

    def test_campaign_workload_and_synthetic_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--workload", "bitweaving",
                                       "--synthetic", "16"])

    def test_run_requires_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "nope"])


class TestCommands:
    def test_workloads_listing(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "bitweaving" in out and "sobel" in out and "aes" in out

    def test_compile_command(self, tmp_path, capsys):
        source = tmp_path / "kernel.c"
        source.write_text(
            "word_t f(word_t a, word_t b) { return (a & b) ^ ~a; }")
        assert main(["compile", str(source), "--size", "128", "--emit"]) == 0
        captured = capsys.readouterr()
        assert "read [" in captured.out
        assert "write [" in captured.out

    def test_compile_missing_function(self, tmp_path):
        source = tmp_path / "kernel.c"
        source.write_text("word_t f(word_t a) { return a & a; }")
        assert main(["compile", str(source), "--function", "nope"]) == 1

    def test_run_command_verifies(self, capsys):
        assert main(["run", "--workload", "bitweaving", "--size", "256",
                     "--lanes", "4", "--mapper", "naive"]) == 0
        out = capsys.readouterr().out
        assert "functional check passed" in out

    def test_run_stt_mram(self, capsys):
        assert main(["run", "--workload", "bitweaving", "--size", "256",
                     "--lanes", "4", "--tech", "stt-mram"]) == 0
        assert "stt-mram" in capsys.readouterr().out

    def test_sweep_command(self, capsys):
        assert main(["sweep", "--workload", "bitweaving", "--size", "256",
                     "--mra", "4"]) == 0
        out = capsys.readouterr().out
        assert "P_app" in out and "latency_us" in out

    def test_compile_save_and_inspect(self, tmp_path, capsys):
        source = tmp_path / "kernel.c"
        source.write_text(
            "word_t f(word_t a, word_t b) { return (a | b) ^ (a & b); }")
        saved = tmp_path / "program.json"
        assert main(["compile", str(source), "--size", "128",
                     "-o", str(saved)]) == 0
        assert saved.exists()
        assert main(["inspect", str(saved), "--verify", "--lanes", "8"]) == 0
        out = capsys.readouterr().out
        assert "re-verification passed" in out

    def test_unknown_tech_is_reported(self, capsys):
        code = main(["run", "--workload", "bitweaving", "--tech", "dram"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_compile_print_passes_and_timings(self, tmp_path, capsys):
        source = tmp_path / "kernel.c"
        source.write_text(
            "word_t f(word_t a, word_t b) { return (a & b) ^ ~a; }")
        assert main(["compile", str(source), "--size", "128",
                     "--print-passes", "--timings"]) == 0
        err = capsys.readouterr().err
        assert "map-sherlock" in err and "terminal" in err  # --print-passes
        assert "d_ops" in err and "total" in err  # --timings table

    def test_compile_dump_ir(self, tmp_path, capsys):
        source = tmp_path / "kernel.c"
        source.write_text(
            "word_t f(word_t a, word_t b) { return a ^ b; }")
        dump = tmp_path / "ir"
        assert main(["compile", str(source), "--size", "128",
                     "--dump-ir", str(dump)]) == 0
        dots = list(dump.glob("*.dot"))
        jsons = list(dump.glob("*.json"))
        assert len(dots) == len(jsons) == 8  # input + 7 passes

    def test_compile_custom_pipeline(self, tmp_path, capsys):
        source = tmp_path / "kernel.c"
        source.write_text(
            "word_t f(word_t a, word_t b) { return a & b; }")
        assert main(["compile", str(source), "--size", "128", "--pipeline",
                     "fold-duplicates,validate,map-naive"]) == 0
        assert "naive" in capsys.readouterr().err

    def test_bad_pipeline_is_reported(self, tmp_path, capsys):
        source = tmp_path / "kernel.c"
        source.write_text("word_t f(word_t a) { return ~a; }")
        assert main(["compile", str(source), "--pipeline", "bogus"]) == 1
        assert "unknown pass" in capsys.readouterr().err

    def test_run_timings(self, capsys):
        assert main(["run", "--workload", "bitweaving", "--size", "256",
                     "--lanes", "4", "--timings"]) == 0
        captured = capsys.readouterr()
        assert "functional check passed" in captured.out
        assert "map-sherlock" in captured.err

    def test_campaign_synthetic(self, capsys):
        assert main(["campaign", "--synthetic", "16", "--trials", "25",
                     "--lanes", "4", "--tech", "stt-mram", "--size", "64",
                     "--arrays", "4", "--mra", "4", "--variability", "0.12",
                     "--policy", "none", "--policy", "reread-vote"]) == 0
        out = capsys.readouterr().out
        assert "reread-vote" in out
        assert "analytic_P_app" in out
        assert "25 trials" in out

    def test_campaign_defaults_to_all_policies(self, capsys):
        assert main(["campaign", "--synthetic", "12", "--trials", "10",
                     "--lanes", "4", "--size", "64", "--arrays", "4"]) == 0
        out = capsys.readouterr().out
        for name in ("none", "reread-vote", "checkpoint-replay",
                     "degrade-mra"):
            assert name in out

    def test_campaign_with_workers(self, capsys):
        assert main(["campaign", "--synthetic", "12", "--trials", "8",
                     "--lanes", "4", "--size", "64", "--arrays", "4",
                     "--policy", "none", "--workers", "2"]) == 0
        assert "8 trials" in capsys.readouterr().out


class TestCampaignValidation:
    def test_zero_trials_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "--synthetic", "12", "--trials", "0"])
        assert excinfo.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    def test_non_integer_trials_rejected_by_parser(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "--synthetic", "12", "--trials", "lots"])
        assert excinfo.value.code == 2

    def test_zero_workers_rejected_by_parser(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "--synthetic", "12", "--trials", "5",
                  "--workers", "0"])
        assert excinfo.value.code == 2

    def test_unknown_policy_lists_the_valid_ones(self, capsys):
        code = main(["campaign", "--synthetic", "12", "--trials", "5",
                     "--size", "64", "--arrays", "4", "--policy", "hope"])
        assert code == 1
        err = capsys.readouterr().err
        assert "unknown recovery policy" in err
        for name in ("none", "reread-vote", "checkpoint-replay",
                     "degrade-mra"):
            assert name in err


class TestWearCommand:
    def test_wear_reports_per_technology_lifetimes(self, capsys):
        assert main(["wear", "--synthetic", "24", "--size", "32",
                     "--arrays", "2"]) == 0
        out = capsys.readouterr().out
        for needle in ("total writes", "hottest cell", "pcm", "reram",
                       "stt-mram", "inf"):
            assert needle in out

    def test_wear_requires_a_dag_source(self):
        with pytest.raises(SystemExit):
            main(["wear"])


class TestLifetimeCommand:
    def test_lifetime_campaign_runs_and_reports(self, capsys):
        assert main(["lifetime", "--synthetic", "24", "--trials", "2",
                     "--endurance", "40", "--size", "16", "--arrays", "2",
                     "--validate"]) == 0
        out = capsys.readouterr().out
        assert "baseline (no mitigation)" in out
        assert "wear-leveling + remap" in out
        assert "extension factor" in out
        assert "0 failure(s)" in out

    def test_lifetime_no_wear_leveling_label(self, capsys):
        assert main(["lifetime", "--synthetic", "24", "--trials", "1",
                     "--endurance", "40", "--size", "16", "--arrays", "2",
                     "--no-wear-leveling"]) == 0
        assert "remap only" in capsys.readouterr().out


class TestFaultMapOption:
    def make_map(self, tmp_path, size=32, arrays=2, fraction=0.05):
        from repro.arch.target import TargetSpec
        from repro.devices import RERAM, FaultMap

        target = TargetSpec.square(size, RERAM, num_arrays=arrays)
        path = tmp_path / "faults.json"
        FaultMap.random_map(target, fraction=fraction, seed=4).save(path)
        return str(path)

    def test_run_with_fault_map_still_verifies(self, tmp_path, capsys):
        path = self.make_map(tmp_path, size=64, arrays=4)
        assert main(["run", "--workload", "bitweaving", "--size", "64",
                     "--arrays", "4", "--lanes", "4",
                     "--fault-map", path]) == 0
        captured = capsys.readouterr()
        assert "functional check passed" in captured.out
        assert "loaded fault map" in captured.err

    def test_malformed_fault_map_exits_one(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"format_version": 1, "faults": [[0, 0, "x"]]}')
        assert main(["run", "--workload", "bitweaving",
                     "--fault-map", str(path)]) == 1
        assert "malformed fault entry" in capsys.readouterr().err

    def test_missing_fault_map_exits_one(self, tmp_path, capsys):
        assert main(["run", "--workload", "bitweaving",
                     "--fault-map", str(tmp_path / "nope.json")]) == 1
        assert "cannot read fault map" in capsys.readouterr().err

    def test_campaign_accepts_fault_map(self, tmp_path, capsys):
        path = self.make_map(tmp_path, size=64, arrays=4)
        assert main(["campaign", "--synthetic", "16", "--trials", "5",
                     "--size", "64", "--arrays", "4", "--policy", "none",
                     "--fault-map", path]) == 0
        assert "loaded fault map" in capsys.readouterr().err


class TestHealthJson:
    def make_map(self, tmp_path, size=32, arrays=2, fraction=0.08):
        from repro.arch.target import TargetSpec
        from repro.devices import RERAM, FaultMap

        target = TargetSpec.square(size, RERAM, num_arrays=arrays)
        path = tmp_path / "faults.json"
        FaultMap.random_map(target, fraction=fraction, seed=4).save(path)
        return str(path), target

    def test_json_round_trips_the_assessment_schema(self, tmp_path, capsys):
        import json

        from repro.devices import FaultMap
        from repro.serve import assess_fault_map

        path, target = self.make_map(tmp_path)
        assert main(["health", "--size", "32", "--arrays", "2",
                     "--fault-map", path, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assessment = assess_fault_map(FaultMap.load(path), target)
        assert document["target"]["num_arrays"] == target.num_arrays
        assert set(document["arrays"]) == {
            str(a) for a in range(target.num_arrays)}
        for array, entry in assessment.items():
            emitted = document["arrays"][str(array)]
            assert emitted["faults"] == entry["faults"]
            assert emitted["density"] == pytest.approx(entry["density"])
            assert emitted["state"] == entry["state"].value
        assert isinstance(document["exclusions"], list)
        assert document["baseline_write_failure_probability"] > 0

    def test_table_mode_is_unchanged(self, tmp_path, capsys):
        path, _ = self.make_map(tmp_path)
        assert main(["health", "--size", "32", "--arrays", "2",
                     "--fault-map", path]) == 0
        out = capsys.readouterr().out
        assert "hard faults" in out and "{" not in out


class TestServeFlags:
    def test_parser_accepts_the_active_integrity_flags(self):
        args = build_parser().parse_args(
            ["serve", "--requests", "r.jsonl", "--shed-policy", "deadline",
             "--placement", "health", "--scrub-every", "8",
             "--scrub-budget", "128"])
        assert args.shed_policy == "deadline"
        assert args.placement == "health"
        assert args.scrub_every == 8 and args.scrub_budget == 128

    @pytest.mark.parametrize("flag,value", [
        ("--shed-policy", "coin-flip"),
        ("--placement", "astrology"),
        ("--scrub-budget", "0"),
    ])
    def test_bad_flag_values_exit_2(self, flag, value):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--requests", "r.jsonl", flag, value])

    def test_serve_batch_with_scrub_and_voting(self, tmp_path, capsys):
        import json

        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            '{"id": "v1", "synthetic": 8, "seed": 1, "redundancy": 3}\n')
        assert main(["serve", "--requests", str(requests), "--size", "64",
                     "--arrays", "2", "--shed-policy", "oldest",
                     "--placement", "health", "--scrub-every", "1",
                     "--scrub-budget", "64", "--stats"]) == 0
        captured = capsys.readouterr()
        result = json.loads(captured.out.splitlines()[0])
        assert result["error"] is None and result["voted"]
        assert "scrub:" in captured.err
        assert "shed_policy: oldest" in captured.err
