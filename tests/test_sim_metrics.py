"""Unit tests for trace cost accounting and the CPU baseline model."""

import math

import pytest

from repro.arch import (
    NotInst,
    ReadInst,
    ShiftInst,
    TargetSpec,
    TransferInst,
    WriteInst,
)
from repro.devices import RERAM, STT_MRAM, decision_failure_probability
from repro.dfg import OpType
from repro.errors import SimulationError
from repro.sim import analyze_trace, operation_failures, p_app_of
from repro.sim.cpu import (
    CpuEvents,
    CpuSpec,
    aes_events,
    bitweaving_events,
    run_model,
    sobel_events,
)


def target(tech=RERAM, size=512, **kwargs):
    kwargs.setdefault("num_arrays", 2)
    return TargetSpec.square(size, tech, **kwargs)


class TestAnalyzeTrace:
    def test_empty_trace(self):
        m = analyze_trace([], target())
        assert m.latency_cycles == 0
        assert m.energy_pj == 0
        assert m.p_app == 0.0

    def test_counts_by_kind(self):
        trace = [
            ReadInst(0, (0,), (1,)),
            ReadInst(0, (0, 1), (1, 2), (OpType.AND, OpType.XOR)),
            WriteInst(0, (0,), 3),
            ShiftInst(0, 2),
            NotInst(0, (0,)),
            TransferInst(0, 1, (0,)),
        ]
        m = analyze_trace(trace, target())
        assert m.instruction_count == 6
        assert (m.plain_reads, m.cim_reads, m.writes) == (1, 1, 1)
        assert (m.shifts, m.rowbuf_nots, m.transfers) == (1, 1, 1)
        assert m.cim_column_ops == 2
        assert m.mra_histogram == {2: 2}
        assert m.movement_instructions == 3

    def test_write_latency_dominates_on_reram(self):
        reads = analyze_trace([ReadInst(0, (0,), (1,))] * 10, target())
        writes = analyze_trace([WriteInst(0, (0,), 1)] * 10, target())
        assert writes.latency_cycles > 5 * reads.latency_cycles

    def test_cycles_quantized(self):
        m = analyze_trace([ShiftInst(0, 1)], target())
        assert m.latency_cycles == max(1, math.ceil(
            target().cost_model.shift_latency_ns()))

    def test_energy_scales_with_data_width(self):
        trace = [WriteInst(0, (0, 1, 2), 1)]
        small = analyze_trace(trace, target(size=512))
        big = analyze_trace(trace, target(size=1024))
        assert big.energy_pj > small.energy_pj  # 4096 vs 2048 lanes

    def test_p_app_matches_failure_model(self):
        trace = [ReadInst(0, (0,), (1, 2), (OpType.XOR,))] * 3
        t = target(STT_MRAM)
        p = decision_failure_probability(STT_MRAM, OpType.XOR, 2)
        m = analyze_trace(trace, t)
        assert m.p_app == pytest.approx(1 - (1 - p) ** 3, rel=1e-9)
        assert p_app_of(trace, t) == pytest.approx(m.p_app, rel=1e-9)

    def test_operation_failures_in_order(self):
        trace = [
            ReadInst(0, (0, 1), (1, 2), (OpType.AND, OpType.XOR)),
            ReadInst(0, (0,), (1, 2, 3), (OpType.OR,)),
        ]
        t = target(STT_MRAM, max_activated_rows=4)
        failures = operation_failures(trace, t)
        assert len(failures) == 3
        assert failures[0] == decision_failure_probability(STT_MRAM, OpType.AND, 2)
        assert failures[2] == decision_failure_probability(STT_MRAM, OpType.OR, 3)

    def test_plain_read_failures_optional(self):
        trace = [ReadInst(0, (0,), (1,))]
        t = target(STT_MRAM)
        assert analyze_trace(trace, t).p_app == 0.0
        assert analyze_trace(trace, t, count_plain_read_failures=True).p_app > 0

    def test_scaled(self):
        trace = [ReadInst(0, (0,), (1, 2), (OpType.AND,)), WriteInst(0, (0,), 3)]
        m = analyze_trace(trace, target())
        m10 = m.scaled(10)
        assert m10.latency_cycles == 10 * m.latency_cycles
        assert m10.energy_pj == pytest.approx(10 * m.energy_pj)
        assert m10.instruction_count == 20
        assert m10.p_app == pytest.approx(1 - (1 - m.p_app) ** 10, rel=1e-6)
        with pytest.raises(SimulationError):
            m.scaled(0)

    def test_edp_units(self):
        m = analyze_trace([WriteInst(0, (0,), 1)], target())
        assert m.edp == pytest.approx(
            (m.energy_pj * 1e-12) * (m.latency_ns * 1e-9))

    def test_summary_keys(self):
        m = analyze_trace([ShiftInst(0, 1)], target())
        summary = m.summary()
        assert {"latency_us", "energy_nj", "edp_js", "p_app"} <= set(summary)


class TestCpuModel:
    def test_events_compose(self):
        a = CpuEvents(1, 2, 3)
        b = CpuEvents(10, 20, 30)
        assert (a + b) == CpuEvents(11, 22, 33)
        assert a.scaled(3) == CpuEvents(3, 6, 9)

    def test_latency_monotone_in_events(self):
        base = run_model(CpuEvents(1000, 500, 100))
        more = run_model(CpuEvents(2000, 1000, 200))
        assert more.latency_ns > base.latency_ns
        assert more.energy_pj > base.energy_pj

    def test_dram_dominates_streaming(self):
        spec = CpuSpec()
        cached = run_model(CpuEvents(0, 1000, 0),
                           CpuSpec(l1_hit_rate=1.0, l2_hit_rate=0.0))
        streaming = run_model(CpuEvents(0, 1000, 0), spec)
        assert streaming.latency_ns > 3 * cached.latency_ns

    def test_bad_spec_rejected(self):
        with pytest.raises(SimulationError):
            CpuSpec(l1_hit_rate=0.9, l2_hit_rate=0.5)
        with pytest.raises(SimulationError):
            CpuSpec(clock_ghz=0)

    def test_workload_event_scaling(self):
        small = bitweaving_events(64, 8, 1)
        big = bitweaving_events(64, 8, 32)
        assert big.alu_ops == 32 * small.alu_ops
        assert sobel_events(100).loads == 900
        assert aes_events(2).loads > aes_events(1).loads

    def test_edp_property(self):
        m = run_model(CpuEvents(100, 50, 10))
        assert m.edp == pytest.approx(
            (m.energy_pj * 1e-12) * (m.latency_ns * 1e-9))

    def test_cim_beats_cpu_on_bitweaving(self):
        """Sanity anchor for Fig. 7: CIM EDP well below CPU EDP."""
        from repro.core import CompilerConfig, SherlockCompiler
        from repro.workloads import bitweaving

        dag = bitweaving.between_batch_dag(segments=4)
        t = target(size=512)
        program = SherlockCompiler(t, CompilerConfig()).compile(dag)
        cpu = run_model(bitweaving_events(t.data_width, 8, 4))
        assert program.metrics.edp < cpu.edp
