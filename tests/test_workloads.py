"""Unit tests for the workload generators and their reference semantics."""

import random

import pytest

from repro.dfg import evaluate
from repro.errors import SherlockError
from repro.workloads import WORKLOADS, aes, bitweaving, get_workload, sobel
from repro.workloads.bitslice import (
    absolute,
    constant_slices,
    equals,
    less_than,
    negate,
    ripple_add,
    shift_left,
    subtract,
)
from repro.dfg.builder import DFGBuilder
from repro.workloads.synthetic import synthetic_dag


def eval_slices(builder, slice_wires, inputs, lanes, outputs_prefix="o"):
    """Helper: mark slices as outputs, evaluate, decode per-lane ints."""
    dag = None
    for i, w in enumerate(slice_wires):
        builder.output(f"{outputs_prefix}[{i}]", w)
    dag = builder.build()
    out = evaluate(dag, inputs, lanes)
    values = []
    for lane in range(lanes):
        v = 0
        for i in range(len(slice_wires)):
            v |= ((out[f"{outputs_prefix}[{i}]"] >> lane) & 1) << i
        values.append(v)
    return values


def make_slice_inputs(name, values, bits):
    return {f"{name}[{i}]": sum(((v >> i) & 1) << lane
                                for lane, v in enumerate(values))
            for i in range(bits)}


class TestBitslice:
    LANES = 16

    def _rand(self, bits, seed):
        rng = random.Random(seed)
        return [rng.randrange(1 << bits) for _ in range(self.LANES)]

    def _wire_inputs(self, b, name, bits):
        return [b.input(f"{name}[{i}]") for i in range(bits)]

    def test_ripple_add(self):
        b = DFGBuilder()
        xs = self._wire_inputs(b, "x", 6)
        ys = self._wire_inputs(b, "y", 6)
        x_vals, y_vals = self._rand(6, 1), self._rand(6, 2)
        result = ripple_add(b, xs, ys)
        inputs = {**make_slice_inputs("x", x_vals, 6),
                  **make_slice_inputs("y", y_vals, 6)}
        got = eval_slices(b, result, inputs, self.LANES)
        assert got == [x + y for x, y in zip(x_vals, y_vals)]

    def test_ripple_add_mixed_widths(self):
        b = DFGBuilder()
        xs = self._wire_inputs(b, "x", 3)
        ys = self._wire_inputs(b, "y", 7)
        x_vals, y_vals = self._rand(3, 3), self._rand(7, 4)
        result = ripple_add(b, xs, ys)
        inputs = {**make_slice_inputs("x", x_vals, 3),
                  **make_slice_inputs("y", y_vals, 7)}
        got = eval_slices(b, result, inputs, self.LANES)
        assert got == [x + y for x, y in zip(x_vals, y_vals)]

    def test_ripple_add_modular_width(self):
        b = DFGBuilder()
        xs = self._wire_inputs(b, "x", 4)
        ys = self._wire_inputs(b, "y", 4)
        x_vals, y_vals = self._rand(4, 5), self._rand(4, 6)
        result = ripple_add(b, xs, ys, width=4)
        inputs = {**make_slice_inputs("x", x_vals, 4),
                  **make_slice_inputs("y", y_vals, 4)}
        got = eval_slices(b, result, inputs, self.LANES)
        assert got == [(x + y) % 16 for x, y in zip(x_vals, y_vals)]

    def test_shift_left(self):
        b = DFGBuilder()
        xs = self._wire_inputs(b, "x", 4)
        x_vals = self._rand(4, 7)
        result = shift_left(b, xs, 2)
        got = eval_slices(b, result, make_slice_inputs("x", x_vals, 4),
                          self.LANES)
        assert got == [x << 2 for x in x_vals]

    def test_negate_twos_complement(self):
        b = DFGBuilder()
        xs = self._wire_inputs(b, "x", 5)
        x_vals = self._rand(5, 8)
        result = negate(b, xs)
        got = eval_slices(b, result, make_slice_inputs("x", x_vals, 5),
                          self.LANES)
        assert got == [(-x) % 32 for x in x_vals]

    def test_subtract_sign(self):
        b = DFGBuilder()
        xs = self._wire_inputs(b, "x", 5)
        ys = self._wire_inputs(b, "y", 5)
        x_vals, y_vals = self._rand(5, 9), self._rand(5, 10)
        result = subtract(b, xs, ys)
        width = len(result)
        inputs = {**make_slice_inputs("x", x_vals, 5),
                  **make_slice_inputs("y", y_vals, 5)}
        got = eval_slices(b, result, inputs, self.LANES)
        assert got == [(x - y) % (1 << width) for x, y in zip(x_vals, y_vals)]

    def test_absolute(self):
        b = DFGBuilder()
        xs = self._wire_inputs(b, "x", 4)
        ys = self._wire_inputs(b, "y", 4)
        x_vals, y_vals = self._rand(4, 11), self._rand(4, 12)
        result = absolute(b, subtract(b, xs, ys))
        inputs = {**make_slice_inputs("x", x_vals, 4),
                  **make_slice_inputs("y", y_vals, 4)}
        got = eval_slices(b, result, inputs, self.LANES)
        assert got == [abs(x - y) for x, y in zip(x_vals, y_vals)]

    def test_equals_and_less_than(self):
        b = DFGBuilder()
        xs = self._wire_inputs(b, "x", 4)
        ys = self._wire_inputs(b, "y", 4)
        x_vals, y_vals = self._rand(4, 13), self._rand(4, 14)
        eq = equals(b, xs, ys)
        lt = less_than(b, xs, ys)
        b.output("eq", eq)
        b.output("lt", lt)
        dag = b.build()
        inputs = {**make_slice_inputs("x", x_vals, 4),
                  **make_slice_inputs("y", y_vals, 4)}
        out = evaluate(dag, inputs, self.LANES)
        for lane in range(self.LANES):
            assert ((out["eq"] >> lane) & 1) == (x_vals[lane] == y_vals[lane])
            assert ((out["lt"] >> lane) & 1) == (x_vals[lane] < y_vals[lane])

    def test_constant_slices(self):
        b = DFGBuilder()
        xs = self._wire_inputs(b, "x", 4)
        c = constant_slices(b, 5, 4)
        result = ripple_add(b, xs, c, width=4)
        x_vals = self._rand(4, 15)
        got = eval_slices(b, result, make_slice_inputs("x", x_vals, 4),
                          self.LANES)
        assert got == [(x + 5) % 16 for x in x_vals]


class TestBitweaving:
    def test_slices_roundtrip(self):
        values = [0b1010, 0b0001, 0b1111]
        slices = bitweaving.to_slices(values, 4)
        # MSB first: slice 0 holds bit 3
        for lane, v in enumerate(values):
            rebuilt = 0
            for i in range(4):
                rebuilt |= ((slices[i] >> lane) & 1) << (3 - i)
            assert rebuilt == v

    def test_between_reference(self):
        assert bitweaving.between_reference(2, 5, [1, 3, 4, 5, 6]) == 0b00110

    def test_scan_inputs_reject_oversized(self):
        with pytest.raises(SherlockError):
            bitweaving.scan_inputs(300, 10, [1], bits=8)

    def test_batch_dag_semantics(self):
        rng = random.Random(0)
        dag = bitweaving.between_batch_dag(bits=4, segments=3)
        segs = [[rng.randrange(16) for _ in range(10)] for _ in range(3)]
        inputs = bitweaving.batch_scan_inputs(3, 12, segs, bits=4)
        out = evaluate(dag, inputs, lanes=10)
        for j, column in enumerate(segs):
            assert out[f"s{j}_return"] == bitweaving.between_reference(
                3, 12, column)

    def test_scan_iterations(self):
        assert bitweaving.scan_iterations(1000, 256) == 4
        assert bitweaving.scan_iterations(1, 256) == 1
        with pytest.raises(SherlockError):
            bitweaving.scan_iterations(0, 256)

    def test_iteration_dag_shape(self):
        dag = bitweaving.iteration_dag()
        assert dag.num_ops > 5
        assert len(dag.outputs) == 5


class TestSobel:
    def test_reference(self):
        flat = [[10, 10, 10], [10, 10, 10], [10, 10, 10]]
        assert sobel.sobel_reference(flat) == 0
        edge = [[0, 0, 255], [0, 0, 255], [0, 0, 255]]
        assert sobel.sobel_reference(edge) == 4 * 255

    def test_dag_matches_reference(self):
        rng = random.Random(3)
        lanes = 12
        nbs = [[[rng.randrange(256) for _ in range(3)] for _ in range(3)]
               for _ in range(lanes)]
        dag = sobel.sobel_dag()
        out = evaluate(dag, sobel.neighbourhood_inputs(nbs), lanes)
        got = sobel.decode_magnitudes(out, lanes)
        assert got == [sobel.sobel_reference(nb) for nb in nbs]

    def test_tile_dag_matches_reference(self):
        rng = random.Random(4)
        lanes = 3
        tile = 2
        windows = [[[rng.randrange(256) for _ in range(tile + 2)]
                    for _ in range(tile + 2)] for _ in range(lanes)]
        dag = sobel.sobel_tile_dag(tile)
        out = evaluate(dag, sobel.tile_inputs(windows, tile), lanes)
        grids = sobel.decode_tile_magnitudes(out, lanes, tile)
        for lane in range(lanes):
            for r in range(tile):
                for c in range(tile):
                    nb = [[windows[lane][r + dr][c + dc] for dc in range(3)]
                          for dr in range(3)]
                    assert grids[lane][r][c] == sobel.sobel_reference(nb)

    def test_tile_shares_inputs(self):
        """Adjacent tile positions reuse window pixels (one input node)."""
        dag = sobel.sobel_tile_dag(tile=2)
        names = [o.name for o in dag.inputs()]
        assert len(names) == len(set(names))
        assert len(names) == (2 + 2) ** 2 * 8

    def test_image_helpers(self):
        image = [[r * 10 + c for c in range(5)] for r in range(4)]
        nbs = sobel.image_neighbourhoods(image)
        assert len(nbs) == 2 * 3
        assert nbs[0][1][1] == image[1][1]
        with pytest.raises(SherlockError):
            sobel.image_neighbourhoods([[1, 2], [3, 4]])
        assert sobel.image_iterations(512, 512, 2048) == (510 * 510 + 2047) // 2048


class TestAes:
    def test_fips_reference(self):
        assert aes.encrypt_reference(aes.FIPS_PLAINTEXT, aes.FIPS_KEY) == \
            aes.FIPS_CIPHERTEXT

    def test_sbox_known_values(self):
        table = aes.sbox_table()
        assert table[0x00] == 0x63
        assert table[0x01] == 0x7C
        assert table[0x53] == 0xED
        assert table[0xFF] == 0x16

    def test_sbox_is_a_permutation(self):
        assert sorted(aes.sbox_table()) == list(range(256))

    def test_gf_mul_int(self):
        assert aes.gf_mul_int(0x57, 0x13) == 0xFE  # FIPS-197 example
        assert aes.gf_mul_int(0, 0xAB) == 0
        assert aes.gf_mul_int(1, 0xAB) == 0xAB

    def test_sbox_circuit_exhaustive(self):
        from repro.dfg import DFGBuilder

        b = DFGBuilder("sbox")
        x = [b.input(f"x[{i}]") for i in range(8)]
        for i, w in enumerate(aes.sbox_circuit(b, x)):
            b.output(f"y[{i}]", w)
        dag = b.build()
        inputs = {f"x[{i}]": sum(((v >> i) & 1) << v for v in range(256))
                  for i in range(8)}
        out = evaluate(dag, inputs, 256)
        table = aes.sbox_table()
        for v in range(256):
            got = sum(((out[f"y[{i}]"] >> v) & 1) << i for i in range(8))
            assert got == table[v]

    def test_key_expansion_first_round(self):
        # FIPS-197 A.1: w[4..7] of the 000102...0f key schedule
        rks = aes.expand_key(aes.FIPS_KEY)
        assert rks[1][:4] == [0xD6, 0xAA, 0x74, 0xFD]

    def test_reduced_round_dag_matches_reference(self):
        dag = aes.aes_dag(rounds=1)
        blocks = [bytes(range(16)), b"\x00" * 16]
        inputs = aes.block_inputs(blocks, aes.FIPS_KEY, rounds=1)
        out = evaluate(dag, inputs, len(blocks))
        got = aes.decode_blocks(out, len(blocks))
        assert got == [aes.encrypt_reference(blk, aes.FIPS_KEY, rounds=1)
                       for blk in blocks]

    def test_bad_args_rejected(self):
        with pytest.raises(SherlockError):
            aes.aes_dag(rounds=0)
        with pytest.raises(SherlockError):
            aes.expand_key(b"short")
        with pytest.raises(SherlockError):
            aes.encrypt_reference(b"short", aes.FIPS_KEY)


class TestSynthetic:
    def test_deterministic(self):
        a = synthetic_dag(num_ops=50, seed=3)
        b = synthetic_dag(num_ops=50, seed=3)
        assert [n.op for n in a.op_nodes()] == [n.op for n in b.op_nodes()]

    def test_size(self):
        dag = synthetic_dag(num_ops=120, num_inputs=16)
        assert dag.num_ops == 120
        dag.validate()

    def test_no_duplicate_operands(self):
        dag = synthetic_dag(num_ops=300, seed=9)
        for node in dag.op_nodes():
            assert len(set(node.operands)) == node.arity

    def test_bad_args(self):
        with pytest.raises(SherlockError):
            synthetic_dag(num_ops=0)
        with pytest.raises(SherlockError):
            synthetic_dag(locality=2.0)


class TestRegistry:
    def test_registry_contents(self):
        assert set(WORKLOADS) == {"bitweaving", "sobel", "aes", "bfs"}
        with pytest.raises(SherlockError):
            get_workload("nope")

    @pytest.mark.parametrize("name", ["bitweaving", "sobel", "bfs"])
    def test_workload_reference_check(self, name):
        workload = get_workload(name)
        dag = workload.build_dag()
        rng = random.Random(1)
        lanes = 4
        inputs = workload.make_inputs(rng, lanes)
        outputs = evaluate(dag, inputs, lanes)
        workload.check(inputs, outputs, lanes)  # must not raise

    def test_cpu_events_positive(self):
        for workload in WORKLOADS.values():
            events = workload.cpu_events(2048)
            assert events.alu_ops > 0 and events.loads > 0
            assert workload.dataset_iterations(2048) >= 1
