"""Tests for graceful degradation: recycling, partitioning, the ladder.

Covers the three rungs end to end — liveness-based cell recycling in the
layout and both mappers, the spill-and-partition fallback, and the retry
ladder the compiler walks — plus the structured capacity diagnostics and
their CLI rendering.
"""

import random

import pytest

from repro.arch.layout import Layout
from repro.arch.target import TargetSpec
from repro.cli import main
from repro.core import (
    CompileReport,
    CompilerConfig,
    SherlockCompiler,
    clear_compile_cache,
    compile_dag,
    save_program,
)
from repro.devices import RERAM
from repro.dfg import DFGBuilder, blevel_order, evaluate, schedule_liveness
from repro.dfg.liveness import NEVER_DEAD
from repro.errors import CapacityError, MappingError, SherlockError
from repro.workloads import get_workload
from repro.workloads.synthetic import synthetic_dag


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_compile_cache()
    yield
    clear_compile_cache()


def small_target(rows=8, cols=2, num_arrays=2, **kwargs):
    kwargs.setdefault("data_width", 8)
    return TargetSpec(RERAM, rows=rows, cols=cols, num_arrays=num_arrays,
                      **kwargs)


def random_inputs(dag, seed=0, lanes=8):
    rng = random.Random(seed)
    return {o.name: rng.getrandbits(lanes) for o in dag.inputs()}


class TestLayoutRecycling:
    def test_release_returns_cells_to_the_pool(self):
        layout = Layout(small_target())
        layout.place(1, 0)
        freed_addr = layout.place(2, 0)
        layout.place(3, 0)
        before = layout.cells_used
        assert layout.release(2) == 1
        assert layout.cells_used == before - 1
        assert layout.column_reusable(0) == 1
        assert layout.reusable_columns() == [0]
        assert not layout.is_placed(2)

    def test_place_reuses_the_lowest_freed_row_first(self):
        layout = Layout(small_target())
        a = layout.place(1, 0)
        b = layout.place(2, 0)
        layout.release(1)
        layout.release(2)
        reused = layout.place(3, 0)
        assert reused == a  # lowest freed row, deterministically
        assert layout.recycled == 1
        assert layout.place(4, 0) == b

    def test_reuse_false_ignores_the_pool(self):
        layout = Layout(small_target())
        freed = layout.place(1, 0)
        layout.release(1)
        fresh = layout.place(2, 0, reuse=False)
        assert fresh != freed
        assert layout.recycled == 0
        assert layout.column_reusable(0) == 1

    def test_release_duplicates_keeps_the_primary(self):
        layout = Layout(small_target())
        primary = layout.place(7, 0)
        layout.place(7, 1)
        layout.place(7, 2)
        assert layout.duplicates == 2
        assert layout.release_duplicates(7) == 2
        assert layout.duplicates == 0
        assert layout.copies(7) == [primary]
        # releasing again is a no-op
        assert layout.release_duplicates(7) == 0

    def test_residents_reports_column_occupants(self):
        layout = Layout(small_target())
        layout.place(5, 0)
        layout.place(3, 0)
        layout.place(9, 1)
        assert layout.residents(0) == [3, 5]
        layout.release(5)
        assert layout.residents(0) == [3]


class TestLiveness:
    def make_chain(self):
        b = DFGBuilder()
        x, y, z = b.inputs("x", "y", "z")
        t = x & y
        b.output("o", t | z)
        return b.build()

    def test_last_use_and_outputs_never_die(self):
        dag = self.make_chain()
        schedule = blevel_order(dag)
        live = schedule_liveness(dag, schedule)
        out_id = dag.outputs["o"]
        assert live.last_use[out_id] == NEVER_DEAD
        # x and y die at the AND (position 0); the AND result and z die
        # at the OR (position 1)
        x_id = {o.name: o.node_id for o in dag.inputs()}["x"]
        assert live.last_use[x_id] == 0
        assert not live.dead_before(x_id, 0)
        assert live.is_dead(x_id, 0)
        assert live.dead_before(x_id, 1)

    def test_dying_at_buckets_are_sorted_and_complete(self):
        dag = self.make_chain()
        live = schedule_liveness(dag, blevel_order(dag))
        dying = [oid for bucket in live.dying_at.values() for oid in bucket]
        # every non-output operand dies exactly once
        assert len(dying) == len(set(dying)) == dag.num_operands - 1
        for bucket in live.dying_at.values():
            assert bucket == sorted(bucket)

    def test_unconsumed_source_is_dead_from_the_start(self):
        b = DFGBuilder()
        x, y, z = b.inputs("x", "y", "z")
        b.output("o", x & y)  # z never consumed, not an output
        dag = b.build()
        live = schedule_liveness(dag, blevel_order(dag))
        z_id = {o.name: o.node_id for o in dag.inputs()}["z"]
        assert live.dead_before(z_id, 0)


class TestCapacityError:
    def test_suggested_arrays_scales_with_the_overshoot(self):
        err = CapacityError("too big", required_cells=100,
                            available_cells=40, num_arrays=2)
        assert err.suggested_num_arrays == 5  # ceil(2 * 100/40)
        assert any("--arrays 5" in line for line in err.details())

    def test_suggestion_always_adds_at_least_one_array(self):
        err = CapacityError("barely", required_cells=41,
                            available_cells=40, num_arrays=4)
        assert err.suggested_num_arrays == 5

    def test_explicit_suggestion_is_honored(self):
        err = CapacityError("x", suggested_num_arrays=9)
        assert err.suggested_num_arrays == 9

    def test_no_fields_means_no_detail_lines(self):
        assert CapacityError("just a message").details() == []

    def test_is_a_mapping_error(self):
        err = CapacityError("x")
        assert isinstance(err, MappingError)
        assert isinstance(err, SherlockError)


class TestRecycling:
    def test_recycle_always_is_bit_identical_to_reference(self):
        dag = synthetic_dag(num_ops=24, num_inputs=6, seed=3, name="rec")
        target = TargetSpec.square(32, RERAM, num_arrays=4)
        for mapper in ("naive", "sherlock"):
            program = compile_dag(
                dag, target,
                CompilerConfig(mapper=mapper, recycle="always"), cache=False)
            assert program.verify(random_inputs(dag), lanes=8)

    def test_default_compile_does_not_recycle(self):
        dag = synthetic_dag(num_ops=24, num_inputs=6, seed=3, name="rec")
        target = TargetSpec.square(32, RERAM, num_arrays=4)
        program = compile_dag(dag, target, cache=False)
        assert program.degradation == "none"
        assert program.mapping.stats.recycled_cells == 0

    def test_recycle_never_skips_the_recycle_rung(self):
        b = DFGBuilder()
        x, y, z = b.inputs("x", "y", "z")
        b.output("computed", x & y)
        b.output("homeless", z)
        dag = b.build()
        tiny = TargetSpec(RERAM, rows=3, cols=1, data_width=4, num_arrays=1,
                          column_fill_factor=1.0)
        program = compile_dag(
            dag, tiny, CompilerConfig(mapper="naive", recycle="never"),
            cache=False)
        rungs = [a.rung for a in program.ladder]
        assert "naive+recycle" not in rungs
        assert program.degradation == "naive+partitioned"

    def test_bad_recycle_value_rejected(self):
        with pytest.raises(SherlockError, match="recycle"):
            CompilerConfig(recycle="sometimes")

    def test_bad_fallback_value_rejected(self):
        with pytest.raises(SherlockError, match="fallback"):
            CompilerConfig(fallback="maybe")


class TestGatherFallback:
    """The naive mapper's gather step recycles dead copies before failing."""

    def test_near_capacity_gather_compiles_by_reclaiming_dead_cells(self):
        # 30 ops on 4 narrow columns: the cursor placement fits, but the
        # gather copies exhaust every column's free rows — a DAG this
        # mapper used to reject.  recycled > 0 proves the last-resort
        # reclaim (not plain free space) is what made it fit.
        dag = synthetic_dag(num_ops=30, num_inputs=5, seed=0, name="gather")
        target = small_target(rows=12, cols=2, num_arrays=2)
        program = compile_dag(
            dag, target, CompilerConfig(mapper="naive", fallback="strict"),
            cache=False)
        assert program.degradation == "none"
        assert program.mapping.stats.recycled_cells > 0
        assert program.verify(random_inputs(dag), lanes=8)


class TestPartitioning:
    def oversized(self):
        dag = synthetic_dag(num_ops=48, num_inputs=8, seed=7, name="big")
        target = TargetSpec.square(8, RERAM, num_arrays=2)
        return dag, target

    def test_oversized_dag_compiles_in_stages(self):
        dag, target = self.oversized()
        program = compile_dag(dag, target, CompilerConfig(mapper="sherlock"),
                              cache=False)
        assert program.stages is not None and len(program.stages) >= 2
        assert program.degradation == "sherlock+partitioned"

    def test_adjacent_stages_are_bridged_in_array(self):
        dag, target = self.oversized()
        program = compile_dag(dag, target, CompilerConfig(mapper="sherlock"),
                              cache=False)
        later = program.stages[1:]
        assert any(stage.bridge for stage in later)
        assert any(stage.bridged for stage in later)

    def test_staged_execution_matches_the_reference_evaluator(self):
        dag, target = self.oversized()
        program = compile_dag(dag, target, CompilerConfig(mapper="sherlock"),
                              cache=False)
        inputs = random_inputs(dag, seed=5)
        assert program.execute(inputs, lanes=8) == evaluate(dag, inputs, 8)

    def test_both_mappers_partition_correctly(self):
        # a single 6x6 array: small enough that even the naive mapper's
        # recycle rung fails and both mappers must spill into stages
        dag = synthetic_dag(num_ops=48, num_inputs=8, seed=7, name="big")
        target = TargetSpec.square(6, RERAM, num_arrays=1)
        for mapper in ("naive", "sherlock"):
            program = compile_dag(dag, target, CompilerConfig(mapper=mapper),
                                  cache=False)
            assert program.stages
            assert program.degradation == f"{mapper}+partitioned"
            assert program.verify(random_inputs(dag), lanes=8)

    def test_staged_program_round_trips_through_serialization(self, tmp_path):
        """Staged programs serialize (format v2) and reload bit-identically."""
        from repro.core import load_program

        dag, target = self.oversized()
        program = compile_dag(dag, target, cache=False)
        assert program.stages  # the gate: this must exercise staging
        path = tmp_path / "staged.json"
        save_program(program, path)
        loaded = load_program(path)
        assert loaded.stages is not None
        assert len(loaded.stages) == len(program.stages)
        assert loaded.instructions == program.instructions
        assert loaded.degradation == program.degradation
        assert [a.rung for a in loaded.ladder] == \
            [a.rung for a in program.ladder]
        inputs = random_inputs(dag, seed=9)
        assert loaded.execute(inputs, lanes=8) == \
            program.execute(inputs, lanes=8)

    def test_combined_mapping_prices_the_bridges(self):
        dag, target = self.oversized()
        program = compile_dag(dag, target, cache=False)
        per_stage = sum(len(s.bridge) + len(s.mapping.instructions)
                        for s in program.stages)
        assert len(program.instructions) == per_stage

    def test_single_op_that_cannot_fit_raises_capacity_error(self):
        b = DFGBuilder()
        x, y = b.inputs("x", "y")
        b.output("o", x & y)  # needs 3 cells; the target only has 2
        dag = b.build()
        tiny = TargetSpec(RERAM, rows=2, cols=1, data_width=4, num_arrays=1,
                          column_fill_factor=1.0)
        with pytest.raises(CapacityError, match="every degradation rung"):
            compile_dag(dag, tiny, CompilerConfig(mapper="naive"),
                        cache=False)


class TestLadder:
    def oversized(self):
        dag = synthetic_dag(num_ops=48, num_inputs=8, seed=7, name="big")
        target = TargetSpec.square(8, RERAM, num_arrays=2)
        return dag, target

    def test_attempts_are_recorded_in_rung_order(self):
        dag, target = self.oversized()
        program = compile_dag(dag, target, CompilerConfig(mapper="sherlock"),
                              cache=False)
        rungs = [a.rung for a in program.ladder]
        assert rungs[0] == "sherlock"
        assert rungs == ["sherlock", "sherlock+recycle",
                         "sherlock+partitioned"]
        assert [a.succeeded for a in program.ladder] == [False, False, True]
        assert program.ladder[-1].stages == len(program.stages)
        assert program.ladder[0].error  # the base failure is kept

    def test_ladder_rungs_appear_as_pass_events(self):
        dag, target = self.oversized()
        program = compile_dag(dag, target, cache=False)
        names = [e.name for e in program.pass_events]
        assert any(name.startswith("ladder:") for name in names)

    def test_strict_mode_fails_fast(self):
        dag, target = self.oversized()
        with pytest.raises(MappingError):
            compile_dag(dag, target, CompilerConfig(fallback="strict"),
                        cache=False)

    def test_naive_fallback_runs_after_sherlock_partitioning_fails(self):
        # full-ladder shape: the sherlock rungs are attempted before the
        # naive+partitioned rung even exists in the attempt list
        dag, target = self.oversized()
        program = compile_dag(dag, target, cache=False)
        assert "naive+partitioned" not in [a.rung for a in program.ladder]

    def test_compile_report_renders_the_ladder(self):
        dag, target = self.oversized()
        program = compile_dag(dag, target, cache=False)
        text = CompileReport.from_program(program).render()
        assert "sherlock+partitioned" in text
        assert "degradation level" in text

    def test_ladder_result_is_cached(self):
        dag, target = self.oversized()
        first = compile_dag(dag, target)
        second = compile_dag(dag, target)
        assert second.degradation == first.degradation
        assert [a.rung for a in second.ladder] == \
               [a.rung for a in first.ladder]
        assert len(second.stages) == len(first.stages)
        assert second.verify(random_inputs(dag), lanes=8)


# (workload, array size, mapper, smallest num_arrays that compiles strict)
BOUNDARY_CASES = [
    ("bfs", 32, "sherlock", 3),
    ("bitweaving", 64, "sherlock", 4),
    ("bitweaving", 64, "naive", 2),
]


class TestCapacityBoundary:
    """Pin each workload's capacity cliff and the ladder's save below it."""

    @pytest.mark.parametrize("workload,size,mapper,boundary", BOUNDARY_CASES)
    def test_smallest_fitting_target_compiles_strict(self, workload, size,
                                                     mapper, boundary):
        dag = get_workload(workload).build_dag()
        target = TargetSpec.square(size, RERAM, num_arrays=boundary,
                                   max_activated_rows=4)
        program = compile_dag(dag, target,
                              CompilerConfig(mapper=mapper,
                                             fallback="strict"),
                              cache=False)
        assert program.degradation == "none"

    @pytest.mark.parametrize("workload,size,mapper,boundary", BOUNDARY_CASES)
    def test_one_array_below_fails_strict_but_ladders(self, workload, size,
                                                      mapper, boundary):
        w = get_workload(workload)
        dag = w.build_dag()
        target = TargetSpec.square(size, RERAM, num_arrays=boundary - 1,
                                   max_activated_rows=4)
        with pytest.raises(CapacityError):
            compile_dag(dag, target,
                        CompilerConfig(mapper=mapper, fallback="strict"),
                        cache=False)
        program = compile_dag(dag, target, CompilerConfig(mapper=mapper),
                              cache=False)
        assert program.degradation != "none"
        inputs = w.make_inputs(random.Random(0), 8)
        assert program.verify(inputs, lanes=8)


class TestCLI:
    def test_flags_are_parsed(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", "--workload", "bfs", "--fallback", "strict",
             "--recycle", "always"])
        assert args.fallback == "strict" and args.recycle == "always"

    def test_strict_failure_prints_capacity_details(self, capsys):
        rc = main(["run", "--workload", "bfs", "--size", "32",
                   "--arrays", "2", "--lanes", "4", "--fallback", "strict"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "error:" in err
        assert "required cells" in err
        assert "--arrays" in err  # the actionable suggestion

    def test_ladder_run_succeeds_and_reports_degradation(self, capsys):
        rc = main(["run", "--workload", "bfs", "--size", "32",
                   "--arrays", "2", "--lanes", "4"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "functional check passed" in captured.out
        assert "degradation" in captured.err
        assert "sherlock+partitioned" in captured.err
