"""Unit tests for the architecture layer: target spec, ISA, layout."""

import pytest

from repro.arch import (
    CellAddr,
    Layout,
    NotInst,
    ReadInst,
    ShiftInst,
    TargetSpec,
    TransferInst,
    WriteInst,
    program_text,
)
from repro.devices import RERAM, STT_MRAM
from repro.dfg import OpType
from repro.errors import MappingError, SimulationError, TargetError


class TestTargetSpec:
    def test_square_follows_table1_data_width(self):
        for size, width in [(128, 512), (256, 1024), (512, 2048), (1024, 4096)]:
            t = TargetSpec.square(size, RERAM)
            assert (t.rows, t.cols, t.data_width) == (size, size, width)

    def test_square_accepts_technology_name(self):
        t = TargetSpec.square(128, "stt-mram")
        assert t.technology is STT_MRAM

    def test_capacity(self):
        t = TargetSpec.square(128, RERAM, num_arrays=4)
        assert t.cells_per_array == 128 * 128
        assert t.capacity == 4 * 128 * 128

    def test_usable_rows_fill_factor(self):
        t = TargetSpec.square(100, RERAM, column_fill_factor=0.8)
        assert t.usable_rows == 80

    def test_mra_capped_by_technology(self):
        with pytest.raises(TargetError):
            TargetSpec.square(128, RERAM,
                              max_activated_rows=RERAM.max_activated_rows + 1)

    def test_invalid_geometry(self):
        with pytest.raises(TargetError):
            TargetSpec(RERAM, rows=1, cols=8, data_width=64)
        with pytest.raises(TargetError):
            TargetSpec(RERAM, rows=8, cols=8, data_width=0)
        with pytest.raises(TargetError):
            TargetSpec(RERAM, rows=8, cols=8, data_width=64, clock_ghz=0)

    def test_with_override(self):
        t = TargetSpec.square(128, RERAM)
        t2 = t.with_(max_activated_rows=4)
        assert t2.max_activated_rows == 4
        assert t2.rows == t.rows

    def test_describe_mentions_key_facts(self):
        text = TargetSpec.square(256, RERAM).describe()
        assert "reram" in text and "256x256" in text


class TestInstructions:
    def test_cim_read_text_format(self):
        inst = ReadInst(0, (4, 8, 12, 16), (933, 934),
                        (OpType.XOR, OpType.AND, OpType.OR, OpType.XOR))
        assert inst.to_text() == "read [0][4,8,12,16][933,934] [xor,and,or,xor]"

    def test_plain_read_text(self):
        assert ReadInst(0, (1, 5, 9, 13), (5,)).to_text() == "read [0][1,5,9,13][5]"

    def test_write_text(self):
        assert WriteInst(0, (4, 8), 932).to_text() == "write [0][4,8][932]"

    def test_shift_text_directions(self):
        assert ShiftInst(0, 3).to_text() == "shift [0] R[3]"
        assert ShiftInst(0, -2).to_text() == "shift [0] L[2]"

    def test_not_and_xfer_text(self):
        assert NotInst(1, (3,)).to_text() == "not [1][3]"
        assert TransferInst(0, 2, (7,)).to_text() == "xfer [0->2][7]"

    def test_program_text_joins_lines(self):
        text = program_text([WriteInst(0, (1,), 0), ShiftInst(0, 1)])
        assert text.splitlines() == ["write [0][1][0]", "shift [0] R[1]"]

    def test_plain_read_single_row_only(self):
        with pytest.raises(SimulationError):
            ReadInst(0, (1,), (2, 3))

    def test_cim_read_needs_two_rows(self):
        with pytest.raises(SimulationError):
            ReadInst(0, (1,), (2,), (OpType.AND,))

    def test_cim_read_rejects_not(self):
        with pytest.raises(SimulationError):
            ReadInst(0, (1,), (2, 3), (OpType.NOT,))

    def test_ops_must_match_cols(self):
        with pytest.raises(SimulationError):
            ReadInst(0, (1, 2), (3, 4), (OpType.AND,))

    def test_duplicate_cols_rejected(self):
        with pytest.raises(SimulationError):
            ReadInst(0, (1, 1), (3,))
        with pytest.raises(SimulationError):
            WriteInst(0, (2, 2), 0)

    def test_zero_shift_rejected(self):
        with pytest.raises(SimulationError):
            ShiftInst(0, 0)

    def test_self_transfer_rejected(self):
        with pytest.raises(SimulationError):
            TransferInst(0, 0, (1,))


class TestLayout:
    def make(self, rows=8, cols=4, num_arrays=2):
        target = TargetSpec(RERAM, rows=rows, cols=cols, data_width=16,
                            num_arrays=num_arrays)
        return Layout(target)

    def test_place_fills_rows_in_order(self):
        layout = self.make()
        a0 = layout.place(10, 0)
        a1 = layout.place(11, 0)
        assert (a0.row, a1.row) == (0, 1)
        assert layout.column_fill(0) == 2

    def test_global_column_split(self):
        layout = self.make(cols=4)
        assert layout.split(0) == (0, 0)
        assert layout.split(5) == (1, 1)
        assert layout.global_col(1, 1) == 5
        with pytest.raises(MappingError):
            layout.split(8)

    def test_column_overflow_raises(self):
        layout = self.make(rows=2)
        layout.place(0, 0)
        layout.place(1, 0)
        with pytest.raises(MappingError):
            layout.place(2, 0)

    def test_copies_and_duplicates(self):
        layout = self.make()
        layout.place(7, 0)
        layout.place(7, 1)
        assert len(layout.copies(7)) == 2
        assert layout.duplicates == 1
        assert layout.primary(7).col == 0

    def test_copy_in_column(self):
        layout = self.make()
        layout.place(7, 1)
        assert layout.copy_in_column(7, 1) is not None
        assert layout.copy_in_column(7, 0) is None

    def test_unplaced_lookup(self):
        layout = self.make()
        assert not layout.is_placed(99)
        with pytest.raises(MappingError):
            layout.primary(99)

    def test_stats(self):
        layout = self.make(rows=8, cols=4)
        layout.place(0, 0)
        layout.place(1, 0)
        layout.place(2, 5)  # array 1
        assert layout.cells_used == 3
        assert layout.columns_used == 2
        assert layout.arrays_used == 2
        assert 0 < layout.utilization() < 1

    def test_placements_snapshot(self):
        layout = self.make()
        layout.place(3, 0)
        snap = layout.placements()
        assert snap[3][0] == CellAddr(0, 0, 0)
