"""Quality gates on the public API surface.

Every subpackage must import cleanly, export exactly what its ``__all__``
advertises, and document every public callable — the kind of invariants
that quietly rot in a growing codebase.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.arch",
    "repro.core",
    "repro.devices",
    "repro.dfg",
    "repro.frontend",
    "repro.mapping",
    "repro.reliability",
    "repro.sim",
    "repro.workloads",
]

MODULES = PACKAGES + [
    "repro.cli",
    "repro.errors",
    "repro.arch.isa",
    "repro.arch.layout",
    "repro.arch.parse",
    "repro.arch.target",
    "repro.core.compiler",
    "repro.core.config",
    "repro.core.report",
    "repro.core.serialize",
    "repro.devices.arraymodel",
    "repro.devices.failure",
    "repro.devices.faultmap",
    "repro.devices.technology",
    "repro.dfg.blevel",
    "repro.dfg.builder",
    "repro.dfg.compose",
    "repro.dfg.dot",
    "repro.dfg.evaluate",
    "repro.dfg.graph",
    "repro.dfg.ops",
    "repro.dfg.transforms",
    "repro.frontend.ast_nodes",
    "repro.frontend.lexer",
    "repro.frontend.lower",
    "repro.frontend.parser",
    "repro.mapping.base",
    "repro.mapping.clustering",
    "repro.mapping.codegen",
    "repro.mapping.multiarray",
    "repro.mapping.naive",
    "repro.mapping.optimized",
    "repro.reliability.campaign",
    "repro.reliability.lifetime",
    "repro.reliability.recovery",
    "repro.reliability.sweep",
    "repro.sim.cpu",
    "repro.sim.endurance",
    "repro.sim.executor",
    "repro.sim.metrics",
    "repro.sim.vectorized",
    "repro.sim.wearlevel",
    "repro.workloads.aes",
    "repro.workloads.bfs",
    "repro.workloads.bitslice",
    "repro.workloads.bitweaving",
    "repro.workloads.dna",
    "repro.workloads.sobel",
    "repro.workloads.synthetic",
]


@pytest.mark.parametrize("name", MODULES)
def test_module_imports_and_documents_itself(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol}"


@pytest.mark.parametrize("name", MODULES)
def test_public_callables_have_docstrings(name):
    module = importlib.import_module(name)
    missing = []
    for attr_name, attr in vars(module).items():
        if attr_name.startswith("_"):
            continue
        if getattr(attr, "__module__", None) != name:
            continue  # re-exported from elsewhere
        if inspect.isfunction(attr) or inspect.isclass(attr):
            if not inspect.getdoc(attr):
                missing.append(attr_name)
            if inspect.isclass(attr):
                for meth_name, meth in vars(attr).items():
                    if meth_name.startswith("_") or not inspect.isfunction(meth):
                        continue
                    if meth.__name__ == "<lambda>":
                        continue  # dataclass field defaults
                    if not inspect.getdoc(meth):
                        missing.append(f"{attr_name}.{meth_name}")
    assert not missing, f"{name}: undocumented public callables: {missing}"
