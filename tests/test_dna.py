"""Tests for the DNA k-mer matching workload."""

import random

import pytest

from repro.core import CompilerConfig, TargetSpec, compile_dag
from repro.devices import RERAM, STT_MRAM
from repro.dfg import evaluate
from repro.errors import SherlockError
from repro.workloads import dna


def random_dna(rng, length):
    return "".join(rng.choice("ACGT") for _ in range(length))


class TestEncoding:
    def test_roundtrip_codes(self):
        assert dna.encode_sequence("ACGT") == [0, 1, 2, 3]
        assert dna.encode_sequence("acgt") == [0, 1, 2, 3]

    def test_bad_base_rejected(self):
        with pytest.raises(SherlockError):
            dna.encode_sequence("ACGU")

    def test_find_all(self):
        assert dna.find_all("ACGTACGT", "ACG") == [0, 4]
        assert dna.find_all("AAAA", "AA") == [0, 1, 2]


class TestMatchDag:
    def test_matches_reference_on_random_text(self):
        rng = random.Random(0)
        text = random_dna(rng, 64)
        pattern = text[10:18]  # guarantee at least one hit
        positions = list(range(0, 56, 4)) + [10]
        dag = dna.kmer_match_dag(8)
        inputs = dna.match_inputs(text, pattern, positions)
        out = evaluate(dag, inputs, len(positions))
        assert out["hit"] == dna.match_reference(text, pattern, positions)
        assert out["hit"] != 0  # position 10 must hit

    def test_no_false_positives(self):
        text = "ACGT" * 8
        dag = dna.kmer_match_dag(4)
        positions = list(range(0, 28))
        inputs = dna.match_inputs(text, "TTTT", positions)
        out = evaluate(dag, inputs, len(positions))
        assert out["hit"] == 0

    def test_out_of_range_position_rejected(self):
        with pytest.raises(SherlockError):
            dna.match_inputs("ACGT", "ACG", [2])

    def test_dag_shape(self):
        dag = dna.kmer_match_dag(5)
        # 2*5 XNORs + 9 AND chain
        assert dag.num_ops == 10 + 9


class TestOnHardware:
    def test_full_scan_on_cim(self):
        """Scan a reference text for a k-mer, lane per candidate position."""
        rng = random.Random(7)
        text = random_dna(rng, 100)
        pattern = text[37:45]
        k = len(pattern)
        dag = dna.kmer_match_dag(k)
        target = TargetSpec.square(64, RERAM, num_arrays=8)
        program = compile_dag(dag, target)
        lanes = 32
        hits = []
        for start in range(0, len(text) - k + 1, lanes):
            positions = [min(start + i, len(text) - k) for i in range(lanes)]
            out = program.execute(dna.match_inputs(text, pattern, positions),
                                  lanes)
            for lane, pos in enumerate(positions):
                if (out["hit"] >> lane) & 1 and (not hits or hits[-1] != pos):
                    hits.append(pos)
        assert sorted(set(hits)) == dna.find_all(text, pattern)

    def test_node_substitution_merges_the_and_chain(self):
        """The deep AND chain is ideal fuel for MRA > 2 merging."""
        dag = dna.kmer_match_dag(8)
        target = TargetSpec.square(64, STT_MRAM, num_arrays=8,
                                   max_activated_rows=8)
        binary = compile_dag(dag, target, CompilerConfig(mra=2))
        merged = compile_dag(dag, target, CompilerConfig(mra=8))
        assert merged.dag.num_ops < binary.dag.num_ops
        assert max(n.arity for n in merged.dag.op_nodes()) > 2
        rng = random.Random(1)
        text = random_dna(rng, 32)
        inputs = dna.match_inputs(text, text[3:11], [0, 3, 9])
        assert binary.execute(inputs, 3) == merged.execute(inputs, 3)
        # merging trades instructions for reliability
        assert merged.metrics.instruction_count < binary.metrics.instruction_count
        assert merged.metrics.p_app >= binary.metrics.p_app
