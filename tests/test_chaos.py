"""Tests for the deterministic chaos harness (repro.util.chaos).

The acceptance test at the bottom is the PR's end-to-end gate: one serve
loop survives seeded worker kills, artifact-cache corruption, and an
injected write-failure burst with bit-identical outputs throughout,
while the health registry walks the burst's victim array through
HEALTHY -> DEGRADED -> QUARANTINED -> (probation) -> HEALTHY.
"""

import pytest

from repro.core.compiler import SherlockCompiler
from repro.core.config import CompilerConfig
from repro.devices import FaultMap
from repro.dfg.evaluate import evaluate
from repro.errors import ServeError, WorkerCrashError
from repro.serve import ArrayHealth, ArtifactCache, CompileService, HealthPolicy
from repro.util import (
    ChaosEvent,
    ChaosInjector,
    ChaosSchedule,
    latent_victims,
    write_victims,
)

from tests.test_serve import (
    FakeClock,
    inputs_for,
    request_for,
    small_dag,
    small_target,
)


class TestChaosEvents:
    @pytest.mark.parametrize("kwargs", [
        {"at": 0, "kind": "coffee-spill"},
        {"at": 0, "kind": "worker-kill", "stage": "ship-it"},
        {"at": -1, "kind": "worker-kill"},
        {"at": 0, "kind": "fault-burst", "duration": 0},
        {"at": 0, "kind": "fault-burst", "fault": "stuck-sideways"},
    ])
    def test_rejects_invalid_events(self, kwargs):
        with pytest.raises((ServeError, ValueError)):
            ChaosEvent(**kwargs)

    def test_schedule_sorts_and_validates(self):
        late = ChaosEvent(at=5, kind="worker-kill")
        early = ChaosEvent(at=1, kind="worker-kill")
        schedule = ChaosSchedule((late, early))
        assert schedule.events == (early, late)
        with pytest.raises(ServeError):
            ChaosSchedule(("not-an-event",))

    def test_generate_is_seed_deterministic(self):
        first = ChaosSchedule.generate(7, horizon=10, kills=3, corruptions=2)
        again = ChaosSchedule.generate(7, horizon=10, kills=3, corruptions=2)
        other = ChaosSchedule.generate(8, horizon=10, kills=3, corruptions=2)
        assert first == again
        assert first != other
        kinds = [e.kind for e in first.events]
        assert kinds.count("worker-kill") == 3
        assert kinds.count("cache-corrupt") == 2
        assert all(0 <= e.at < 10 for e in first.events)


class TestChaosInjector:
    def test_kill_fires_at_its_ordinal_exactly_once(self):
        injector = ChaosInjector(ChaosSchedule(
            (ChaosEvent(at=2, kind="worker-kill"),)))
        injector("execute", None)  # ordinal 0
        injector("execute", None)  # ordinal 1
        with pytest.raises(WorkerCrashError):
            injector("execute", None)  # ordinal 2
        injector("execute", None)  # ordinal 3: consumed, no re-fire
        assert injector.fired == [("execute", 2, "worker-kill")]
        with pytest.raises(ServeError):
            injector("deploy", None)

    def test_stages_have_independent_clocks(self):
        injector = ChaosInjector(ChaosSchedule(
            (ChaosEvent(at=0, kind="worker-kill", stage="compile"),)))
        injector("execute", None)  # execute ordinal 0: nothing
        with pytest.raises(WorkerCrashError):
            injector("compile", None)  # compile ordinal 0

    def test_fault_burst_installs_and_heals(self):
        ground = FaultMap()
        injector = ChaosInjector(
            ChaosSchedule((ChaosEvent(
                at=0, kind="fault-burst", array_id=3,
                cells=((0, 1, 2), (0, 1, 3)), duration=2),)),
            machine_faults={3: ground})
        injector("execute", None)  # ordinal 0: burst
        assert ground.fault_at(0, 1, 2) is not None
        assert ground.fault_at(0, 1, 3) is not None
        injector("execute", None)  # ordinal 1: still faulty
        assert ground.fault_at(0, 1, 2) is not None
        injector("execute", None)  # ordinal 2: heal fires
        assert ground.fault_at(0, 1, 2) is None
        assert ground.fault_at(0, 1, 3) is None

    def test_wear_is_permanent(self):
        ground = FaultMap()
        injector = ChaosInjector(
            ChaosSchedule((ChaosEvent(at=0, kind="wear", array_id=0,
                                      cells=((0, 2, 2),), fault="dead"),)),
            machine_faults={0: ground})
        for _ in range(5):
            injector("execute", None)
        assert ground.fault_at(0, 2, 2) is not None

    def test_cache_corrupt_truncates_the_first_entry(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        target, config, dag = small_target(), CompilerConfig(), small_dag()
        program = SherlockCompiler(target, config, cache=False).compile(dag)
        key = ArtifactCache.key_for(dag, target, config)
        cache.put(key, program)
        injector = ChaosInjector(
            ChaosSchedule((ChaosEvent(at=0, kind="cache-corrupt",
                                      stage="compile"),)),
            cache=cache)
        injector("compile", None)
        victim = sorted(cache.root.glob("*.json"))[0]
        assert len(victim.read_text()) == 25
        assert cache.get(key) is None  # quarantined, not served
        assert cache.stats()["quarantined"] == 1


class TestWriteVictims:
    def test_victims_are_nonzero_output_placements(self):
        target, config, dag = small_target(), CompilerConfig(), small_dag()
        program = SherlockCompiler(target, config, cache=False).compile(dag)
        inputs = inputs_for(dag)
        victims = write_victims(program, dag, inputs, 8, count=2)
        assert 1 <= len(victims) <= 2
        placements = program.layout.placements()
        expected = evaluate(dag, inputs, 8)
        for victim in victims:
            owners = [name for name, node in dag.outputs.items()
                      if any((a.array, a.row, a.col) == victim
                             for a in placements.get(node, []))]
            assert owners, f"victim {victim} is not an output placement"
            assert any(expected[name] != 0 for name in owners)
        with pytest.raises(ServeError):
            write_victims(program, dag, inputs, 8, count=0)


# ----------------------------------------------------------------------
# the end-to-end chaos acceptance gate
# ----------------------------------------------------------------------
class TestChaosAcceptance:
    def test_serve_loop_survives_seeded_chaos_bit_identically(self, tmp_path):
        clock = FakeClock()
        lanes = 8
        target = small_target(num_arrays=2)
        config = CompilerConfig()
        dag_a, dag_b = small_dag(seed=1), small_dag(seed=2)
        expect_a = evaluate(dag_a, inputs_for(dag_a), lanes)
        expect_b = evaluate(dag_b, inputs_for(dag_b), lanes)
        # victim cells come from the deterministic compile of dag_a, so
        # the burst provably hits output cells the serve loop will write
        program_a = SherlockCompiler(target, config, cache=False
                                     ).compile(dag_a)
        victims = write_victims(program_a, dag_a, inputs_for(dag_a), lanes,
                                count=2)
        cache = ArtifactCache(tmp_path)
        ground = {0: FaultMap(), 1: FaultMap()}
        schedule = ChaosSchedule((
            ChaosEvent(at=2, kind="worker-kill", stage="execute"),
            ChaosEvent(at=4, kind="cache-corrupt", stage="compile"),
            ChaosEvent(at=6, kind="fault-burst", stage="execute",
                       array_id=0, cells=victims, duration=4),
        ))
        injector = ChaosInjector(schedule, cache=cache,
                                 machine_faults=ground)
        policy = HealthPolicy(min_samples=2, probation_period_s=5.0,
                              probation_successes=2)
        transitions = []

        def serve_one(service, dag, array_id):
            result = service.process([request_for(dag, lanes=lanes,
                                                  array_id=array_id)])[0]
            assert result.error is None, result.error
            assert result.outputs == (expect_a if dag is dag_a else expect_b)
            return result

        with CompileService(target, config, cache=cache, workers=1,
                            machine_faults=ground, health_policy=policy,
                            chaos=injector, clock=clock,
                            sleep=lambda _s: None) as service:
            # phase 1 — clean traffic on both fleet arrays
            serve_one(service, dag_a, 0)   # compile 0 / execute 0
            serve_one(service, dag_b, 1)   # compile 1 / execute 1
            # phase 2 — the worker serving B crashes; the retry succeeds
            serve_one(service, dag_b, 1)   # kill at execute 2, retry at 3
            assert service.stats()["retries"] >= 1
            # phase 3 — a published artifact is corrupted on disk; the
            # next lookups quarantine it and transparently recompile
            serve_one(service, dag_a, 0)   # corrupt fires at compile 4
            serve_one(service, dag_b, 1)
            assert cache.stats()["quarantined"] == 1
            # phase 4 — a write-failure burst hits A's output cells: the
            # run hard-faults, the in-loop remap rung recovers it, and
            # the dirty samples walk array 0 down the ladder one rung
            # each (HEALTHY -> DEGRADED -> QUARANTINED)
            serve_one(service, dag_a, 0)   # burst at execute 6; dirty
            assert service.health.state_of(0) is ArrayHealth.QUARANTINED
            assert service.health.snapshot()["degraded"] >= 1
            # phase 5 — quarantine diverts A to the CPU baseline, still
            # bit-identical; B traffic keeps flowing on CIM (and advances
            # the execute clock past the burst's heal ordinal)
            offloaded = serve_one(service, dag_a, 0)
            assert offloaded.engine == "cpu"
            assert "quarantined" in offloaded.offload_reason
            for _ in range(4):             # execute 7..10 (heal at 10)
                assert serve_one(service, dag_b, 1).engine == "cim"
            assert ground[0].fault_at(*victims[0]) is None
            # phase 6 — probation: after the cool-down, probes reach CIM
            # and two clean probes restore the array
            clock.advance(5.1)
            assert serve_one(service, dag_a, 0).engine == "cim"
            assert service.health.state_of(0) is ArrayHealth.QUARANTINED
            assert serve_one(service, dag_a, 0).engine == "cim"
            assert service.health.state_of(0) is ArrayHealth.HEALTHY

            assert injector.fired == [
                ("execute", 2, "worker-kill"),
                ("compile", 4, "cache-corrupt"),
                ("execute", 6, "fault-burst"),
            ]
            snap = service.stats()["health"]
            assert snap["degraded"] >= 1
            assert snap["quarantined"] >= 1
            assert snap["recovered"] >= 1
            transitions = [(t["array"], t["from"], t["to"])
                           for t in snap["transitions"]]
            text = service.stats_text()
        assert [(a, f, t) for a, f, t in transitions if a == 0] == [
            (0, "healthy", "degraded"),
            (0, "degraded", "quarantined"),
            (0, "quarantined", "healthy"),
        ]
        # the operator-facing stats surface shows the whole story
        assert "health: baseline=" in text
        assert "array 0: state=healthy" in text
        assert "transition: array 0 degraded -> quarantined" in text


class TestLatentFaults:
    def test_latent_fault_event_is_permanent(self):
        ground = FaultMap()
        injector = ChaosInjector(
            ChaosSchedule((ChaosEvent(at=0, kind="latent-fault", array_id=1,
                                      cells=((0, 4, 4),)),)),
            machine_faults={1: ground})
        for _ in range(5):
            injector("execute", None)
        assert ground.fault_at(0, 4, 4) is not None

    def test_latent_victims_are_nonzero_input_placements(self):
        target, config, dag = small_target(), CompilerConfig(), small_dag()
        program = SherlockCompiler(target, config, cache=False).compile(dag)
        inputs = inputs_for(dag)
        victims = latent_victims(program, dag, inputs, 8, count=2)
        assert 1 <= len(victims) <= 2
        placements = program.layout.placements()
        for victim in victims:
            owners = [op.name for op in dag.inputs()
                      if any((a.array, a.row, a.col) == victim
                             for a in placements.get(op.node_id, []))]
            assert owners, f"victim {victim} is not an input placement"
            assert any(inputs[name] != 0 for name in owners)
        with pytest.raises(ServeError):
            latent_victims(program, dag, inputs, 8, count=0)
        with pytest.raises(ServeError):
            latent_victims(program, dag, {k: 0 for k in inputs}, 8)


# ----------------------------------------------------------------------
# the active-integrity acceptance gate
# ----------------------------------------------------------------------
class TestActiveIntegrityAcceptance:
    def test_scrub_finds_planted_latents_before_any_request_fails(self):
        """The PR's end-to-end gate for the active-integrity layer.

        A chaos event plants a latent fault (an input cell no write ever
        verifies) on array 1.  The patrol scrubber must diagnose it
        before any request fails; the discovery degrades the array, so
        health-aware placement visibly shifts its traffic to array 0; a
        voted request outvotes the still-poisoned array bit-identically,
        quarantining it; and after probation the array earns its way
        back and votes again.
        """
        from repro.serve import ScrubPolicy
        from repro.util import latent_victims

        clock = FakeClock()
        lanes = 8
        target = small_target(num_arrays=2)
        config = CompilerConfig()
        dag_a, dag_b = small_dag(seed=1), small_dag(seed=2)
        expect_a = evaluate(dag_a, inputs_for(dag_a), lanes)
        expect_b = evaluate(dag_b, inputs_for(dag_b), lanes)
        # the victim comes from the deterministic compile of dag_a: an
        # input cell carrying a nonzero lane mask, written by preloads
        # only — no verify-after-write ladder ever reads it back
        program_a = SherlockCompiler(target, config, cache=False
                                     ).compile(dag_a)
        victims = latent_victims(program_a, dag_a, inputs_for(dag_a),
                                 lanes, count=1)
        ground = {0: FaultMap(), 1: FaultMap()}
        space = target.num_arrays * target.rows * target.cols
        injector = ChaosInjector(
            ChaosSchedule((ChaosEvent(at=2, kind="latent-fault",
                                      stage="execute", array_id=1,
                                      cells=victims),)),
            machine_faults=ground)
        policy = HealthPolicy(min_samples=1, probation_period_s=5.0,
                              probation_successes=1)

        def serve_one(service, dag, expect, **kwargs):
            result = service.process([request_for(dag, lanes=lanes,
                                                  **kwargs)])[0]
            assert result.error is None, result.error
            assert result.outputs == expect
            return result

        with CompileService(target, config, workers=1,
                            machine_faults=ground, health_policy=policy,
                            placement="health", chaos=injector,
                            scrub=ScrubPolicy(budget=2 * space, seed=3,
                                              weight=64.0),
                            clock=clock, sleep=lambda _s: None) as service:
            # phase 1 — clean traffic, including a unanimous vote
            voted = serve_one(service, dag_a, expect_a, array_id=0,
                              redundancy=3)
            assert voted.voted and voted.disagreeing == ()
            serve_one(service, dag_b, expect_b, array_id=1)
            # phase 2 — the chaos event plants the latent fault silently
            serve_one(service, dag_b, expect_b, array_id=1)  # ordinal 2
            assert injector.fired == [("execute", 2, "latent-fault")]
            assert ground[1].fault_at(*victims[0]) is not None
            # phase 3 — the patrol scrubber finds it before any request
            # does: zero failed requests so far, and the march test
            # reports exactly the planted cell
            report = service.scrub()
            assert report.latent_faults_found == 1
            assert sorted(report.discoveries) == [1]
            found = [cell for cell, _ in report.discoveries[1].cells()]
            assert found == [victims[0]]
            assert service.stats()["errors"] == 0
            assert service.health.state_of(1) is ArrayHealth.DEGRADED
            # phase 4 — placement visibly shifts the degraded array's
            # traffic onto its healthy peer
            moved = serve_one(service, dag_b, expect_b, array_id=1)
            assert moved.placed_array == 0
            stats = service.stats()
            assert stats["placement_shifts"] >= 1
            text = service.stats_text()
            assert "placement: health" in text
            assert "state=degraded" in text
            assert "latent=1" in text
            # phase 5 — a voted request outvotes the poisoned array:
            # the answer stays bit-identical, the minority is reported,
            # and the disagreement quarantines the array
            outvoted = serve_one(service, dag_a, expect_a, array_id=0,
                                 redundancy=3)
            assert outvoted.voted
            assert outvoted.disagreeing == (1,)
            assert service.health.state_of(1) is ArrayHealth.QUARANTINED
            parked = service.process([request_for(dag_b, lanes=lanes,
                                                  array_id=1)])[0]
            assert parked.engine == "cpu"
            assert "quarantined" in parked.offload_reason
            # phase 6 — probation: the probe lands on array 1 itself
            # (placement never steals probe traffic), compiles around
            # the now-known cell, runs clean, and restores the array
            clock.advance(5.1)
            probe = serve_one(service, dag_b, expect_b, array_id=1)
            assert probe.engine == "cim" and probe.placed_array == 1
            assert service.health.state_of(1) is ArrayHealth.HEALTHY
            # phase 7 — the recovered array votes again, bit-identically
            final = serve_one(service, dag_b, expect_b, array_id=0,
                              redundancy=3)
            assert final.voted and 1 in final.voters
            snap = service.stats()
        assert snap["errors"] == 0
        assert snap["votes"] == 3
        assert snap["vote_disagreements"] == 1
        assert snap["scrub"]["latent_faults_found"] == 1
        assert snap["health"]["arrays"][1]["scrub_faults"] == 1
        assert snap["health"]["arrays"][1]["vote_disagreements"] == 1
