"""Executable documentation: fenced ``python`` snippets in the docs run.

Every ```` ```python ```` block in the documented files is executed, in
order, with one shared namespace per file (so a quickstart can build on
names an earlier block defined, the way a reader follows the page).
Blocks that are intentionally illustrative — pseudo-code, slow full
benchmark sweeps — opt out with an HTML comment on the line above the
fence::

    <!-- snippet: no-run -->
    ```python
    ...

Snippets execute inside a temporary working directory, so examples may
freely write artifact files (``BENCH_sherlock.json``, ``artifacts/``).
"""

from __future__ import annotations

import dataclasses
import pathlib

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
DOC_FILES = ["README.md", "docs/API.md"]
NO_RUN_MARKER = "<!-- snippet: no-run -->"


@dataclasses.dataclass
class Snippet:
    """One fenced python block: where it lives and whether it runs."""

    path: str
    line: int  # 1-based line of the first code line
    code: str
    no_run: bool


def extract_snippets(relpath: str) -> list[Snippet]:
    """All ```` ```python ```` blocks of one doc file, in page order."""
    lines = (REPO_ROOT / relpath).read_text().splitlines()
    snippets = []
    i = 0
    while i < len(lines):
        if lines[i].strip().startswith("```python"):
            no_run = any(NO_RUN_MARKER in prev
                         for prev in lines[max(0, i - 2):i])
            j = i + 1
            while j < len(lines) and lines[j].strip() != "```":
                j += 1
            if j == len(lines):
                pytest.fail(f"{relpath}:{i + 1}: unterminated code fence")
            snippets.append(Snippet(relpath, i + 2,
                                    "\n".join(lines[i + 1:j]), no_run))
            i = j + 1
        else:
            i += 1
    return snippets


@pytest.mark.parametrize("relpath", DOC_FILES)
def test_documented_snippets_execute(relpath, tmp_path, monkeypatch):
    """Each doc file's runnable snippets execute cleanly in sequence."""
    snippets = extract_snippets(relpath)
    runnable = [s for s in snippets if not s.no_run]
    assert runnable, f"{relpath} has no runnable python snippets"
    monkeypatch.chdir(tmp_path)
    namespace: dict = {"__name__": f"docsnippet_{relpath}"}
    for snippet in runnable:
        code = compile(snippet.code, f"{relpath}:{snippet.line}", "exec")
        try:
            exec(code, namespace)  # noqa: S102 - executing our own docs
        except Exception as error:  # pragma: no cover - failure reporting
            pytest.fail(f"{relpath}:{snippet.line}: snippet raised "
                        f"{type(error).__name__}: {error}")


def test_no_run_marker_is_exceptional():
    """Most snippets must stay runnable; no-run is a narrow escape hatch."""
    all_snippets = [s for relpath in DOC_FILES
                    for s in extract_snippets(relpath)]
    skipped = [s for s in all_snippets if s.no_run]
    assert len(skipped) <= max(1, len(all_snippets) // 3), (
        "too many doc snippets are marked no-run: "
        + ", ".join(f"{s.path}:{s.line}" for s in skipped))
