"""Unit tests for the DAG transformations of Sec. 3.3.3."""

import pytest

from repro.dfg import (
    DataFlowGraph,
    DFGBuilder,
    OpType,
    common_subexpression_elimination,
    eliminate_dead_nodes,
    evaluate,
    nand_lower,
    split_multi_operand,
    substitute_nodes,
)
from repro.errors import GraphError


def xor_chain(n: int) -> DataFlowGraph:
    """x0 ^ x1 ^ ... ^ x(n-1) as a left-leaning chain of binary XORs."""
    b = DFGBuilder("chain")
    wires = b.inputs(*[f"x{i}" for i in range(n)])
    acc = wires[0]
    for w in wires[1:]:
        acc = acc ^ w
    b.output("o", acc)
    return b.build()


def random_eval_equal(before: DataFlowGraph, after: DataFlowGraph, lanes: int = 16) -> bool:
    """Compare both graphs on a few deterministic pseudo-random inputs."""
    import random

    rng = random.Random(1234)
    names = sorted(o.name for o in before.inputs())
    for _ in range(8):
        inputs = {n: rng.getrandbits(lanes) for n in names}
        if evaluate(before, inputs, lanes) != evaluate(after, inputs, lanes):
            return False
    return True


class TestSubstituteNodes:
    def test_chain_fuses_to_single_node(self):
        dag = xor_chain(4)
        report = substitute_nodes(dag, max_operands=8)
        assert dag.num_ops == 1
        node = next(dag.op_nodes())
        assert node.arity == 4
        assert report.merges_applied == 2
        assert report.ops_before == 3
        assert report.ops_after == 1

    def test_semantics_preserved(self):
        dag = xor_chain(6)
        reference = dag.copy()
        substitute_nodes(dag, max_operands=4)
        assert random_eval_equal(reference, dag)

    def test_respects_max_operands(self):
        dag = xor_chain(8)
        substitute_nodes(dag, max_operands=3)
        for node in dag.op_nodes():
            assert node.arity <= 3

    def test_zero_budget_blocks_all_merges(self):
        dag = xor_chain(5)
        report = substitute_nodes(dag, max_operands=8, allowed_fraction=0.0)
        assert report.merges_applied == 0
        assert dag.num_ops == 4

    def test_partial_budget(self):
        dag = xor_chain(9)  # 8 binary ops
        substitute_nodes(dag, max_operands=4, allowed_fraction=0.5)
        multi = sum(1 for n in dag.op_nodes() if n.arity > 2)
        assert 0 < multi / dag.num_ops <= 0.5

    def test_mixed_types_not_fused(self):
        b = DFGBuilder()
        x, y, z = b.inputs("x", "y", "z")
        b.output("o", (x & y) | z)
        dag = b.build()
        report = substitute_nodes(dag, max_operands=8)
        assert report.merges_applied == 0

    def test_shared_result_not_fused(self):
        b = DFGBuilder()
        x, y, z = b.inputs("x", "y", "z")
        t = x ^ y
        b.output("a", t ^ z)
        b.output("b", t)  # t has another use: cannot be fused away
        dag = b.build()
        report = substitute_nodes(dag, max_operands=8)
        assert report.merges_applied == 0

    def test_fanout_two_not_fused(self):
        b = DFGBuilder()
        x, y, z = b.inputs("x", "y", "z")
        t = x ^ y
        b.output("a", t ^ z)
        b.output("b", t ^ x)
        dag = b.build()
        substitute_nodes(dag, max_operands=8)
        assert dag.num_ops == 3

    def test_non_associative_untouched(self):
        b = DFGBuilder()
        x, y, z = b.inputs("x", "y", "z")
        b.output("o", b.nand(b.nand(x, y), z))
        dag = b.build()
        report = substitute_nodes(dag, max_operands=8)
        assert report.merges_applied == 0

    def test_invalid_args_rejected(self):
        dag = xor_chain(3)
        with pytest.raises(GraphError):
            substitute_nodes(dag, max_operands=1)
        with pytest.raises(GraphError):
            substitute_nodes(dag, max_operands=4, allowed_fraction=1.5)


class TestSplitMultiOperand:
    def test_split_restores_binary(self):
        dag = xor_chain(8)
        substitute_nodes(dag, max_operands=8)
        reference = dag.copy()
        split_multi_operand(dag, max_operands=2)
        for node in dag.op_nodes():
            assert node.arity == 2
        assert random_eval_equal(reference, dag)

    def test_split_to_intermediate_arity(self):
        dag = xor_chain(9)
        substitute_nodes(dag, max_operands=16)
        split_multi_operand(dag, max_operands=3)
        for node in dag.op_nodes():
            assert node.arity <= 3
        dag.validate()

    def test_inverted_op_split_keeps_semantics(self):
        b = DFGBuilder()
        ws = b.inputs("a", "b", "c", "d")
        b.output("o", b.nand(*ws))
        dag = b.build()
        reference = dag.copy()
        split_multi_operand(dag, max_operands=2)
        assert random_eval_equal(reference, dag)
        # top must stay NAND, inner nodes are AND
        hist = dag.op_histogram()
        assert hist[OpType.NAND] == 1
        assert hist[OpType.AND] == 2


class TestNandLower:
    @pytest.mark.parametrize("make", [
        lambda b, x, y: x ^ y,
        lambda b, x, y: x | y,
        lambda b, x, y: b.xnor(x, y),
        lambda b, x, y: b.nor(x, y),
    ])
    def test_binary_lowering_semantics(self, make):
        b = DFGBuilder()
        x, y = b.inputs("x", "y")
        b.output("o", make(b, x, y))
        dag = b.build()
        reference = dag.copy()
        nand_lower(dag)
        assert random_eval_equal(reference, dag)
        for node in dag.op_nodes():
            assert node.op in (OpType.NAND, OpType.AND, OpType.NOT)

    def test_multi_operand_xor_lowered(self):
        dag = xor_chain(5)
        substitute_nodes(dag, max_operands=8)
        reference = dag.copy()
        nand_lower(dag)
        assert random_eval_equal(reference, dag)
        for node in dag.op_nodes():
            assert node.op.base is not OpType.XOR
            assert node.op.base is not OpType.OR

    def test_multi_operand_or_lowered_flat(self):
        b = DFGBuilder()
        ws = b.inputs("a", "b", "c")
        b.output("o", b.or_(*ws))
        dag = b.build()
        reference = dag.copy()
        nand_lower(dag)
        assert random_eval_equal(reference, dag)
        top = [n for n in dag.op_nodes() if n.op is OpType.NAND]
        assert any(n.arity == 3 for n in top)

    def test_and_untouched(self):
        b = DFGBuilder()
        x, y = b.inputs("x", "y")
        b.output("o", x & y)
        dag = b.build()
        assert nand_lower(dag) == 0
        assert next(dag.op_nodes()).op is OpType.AND


class TestDeadNodeElimination:
    def test_removes_dead_chain(self):
        b = DFGBuilder()
        x, y = b.inputs("x", "y")
        live = x & y
        dead = x ^ y
        dead2 = dead | y  # noqa: F841  (dead on purpose)
        b.output("o", live)
        dag = b.build()
        removed = eliminate_dead_nodes(dag)
        assert removed >= 2
        assert dag.num_ops == 1

    def test_keeps_declared_inputs(self):
        b = DFGBuilder()
        x, y = b.inputs("x", "y")
        b.output("o", x & x)
        b.input("unused")
        dag = DataFlowGraph()
        dag = b._dag  # builder graph, pre-validate (y unused)
        eliminate_dead_nodes(dag)
        names = {o.name for o in dag.inputs()}
        assert "unused" in names and "y" in names

    def test_noop_on_live_graph(self):
        dag = xor_chain(4)
        assert eliminate_dead_nodes(dag) == 0


class TestCSE:
    def test_duplicate_ops_merged(self):
        b = DFGBuilder()
        x, y = b.inputs("x", "y")
        t1 = x & y
        t2 = x & y
        b.output("o", t1 ^ t2)
        dag = b.build()
        reference = dag.copy()
        removed = common_subexpression_elimination(dag)
        assert removed == 1
        assert random_eval_equal(reference, dag)

    def test_commutative_matching(self):
        b = DFGBuilder()
        x, y = b.inputs("x", "y")
        b.output("o", (x & y) ^ (y & x))
        dag = b.build()
        assert common_subexpression_elimination(dag) == 1

    def test_cascading_cse(self):
        b = DFGBuilder()
        x, y, z = b.inputs("x", "y", "z")
        t1 = (x & y) | z
        t2 = (y & x) | z
        b.output("o", t1 ^ t2)
        dag = b.build()
        reference = dag.copy()
        removed = common_subexpression_elimination(dag)
        assert removed == 2
        assert random_eval_equal(reference, dag)

    def test_different_ops_kept(self):
        b = DFGBuilder()
        x, y = b.inputs("x", "y")
        b.output("o", (x & y) ^ (x | y))
        dag = b.build()
        assert common_subexpression_elimination(dag) == 0
