"""Tests for the pass-manager pipeline, pipeline specs, and compile cache."""

import dataclasses
import json
import pathlib
import time

import pytest

from repro.core import (
    CompilerConfig,
    FunctionPass,
    PASS_REGISTRY,
    PassReport,
    SherlockCompiler,
    TargetSpec,
    clear_compile_cache,
    compile_cache_info,
    compile_dag,
    default_pipeline,
    parse_pipeline,
)
from repro.core.passes import CompilationContext, get_pass, register_pass
from repro.devices import RERAM, STT_MRAM
from repro.dfg import DFGBuilder, graph_stats, structural_hash
from repro.errors import MappingError, SherlockError
from repro.reliability import mra_sweep
from repro.workloads import bitweaving

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def target(tech=RERAM, size=64, **kwargs):
    kwargs.setdefault("num_arrays", 8)
    kwargs.setdefault("max_activated_rows", 4)
    return TargetSpec.square(size, tech, **kwargs)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_compile_cache()
    yield
    clear_compile_cache()


@pytest.fixture
def scan_dag():
    return bitweaving.between_dag(bits=8)


class TestGoldenCodegen:
    """The pass pipeline must reproduce the pre-refactor codegen exactly."""

    @pytest.mark.parametrize("mapper", ["sherlock", "naive"])
    def test_bitweaving_text_is_byte_identical(self, scan_dag, mapper):
        golden = (GOLDEN_DIR / f"bitweaving_{mapper}_mra4.txt").read_text()
        program = SherlockCompiler(
            target(), CompilerConfig(mapper=mapper, mra=4),
            cache=False).compile(scan_dag)
        assert program.text() + "\n" == golden


class TestPipelineSpec:
    def test_default_pipeline_names(self):
        names = parse_pipeline(default_pipeline("sherlock"))
        assert names == ("fold-duplicates", "cse", "mra-substitute",
                         "nand-lower", "arity-clamp", "validate",
                         "map-sherlock")

    def test_unknown_pass_rejected(self):
        with pytest.raises(SherlockError, match="unknown pass 'frobnicate'"):
            parse_pipeline("frobnicate,map-sherlock")

    def test_duplicate_terminal_rejected(self):
        with pytest.raises(SherlockError, match="more than one terminal"):
            parse_pipeline("map-naive,map-sherlock")

    def test_terminal_must_be_last(self):
        with pytest.raises(SherlockError, match="must be last"):
            parse_pipeline("map-sherlock,validate")

    def test_missing_terminal_rejected(self):
        with pytest.raises(SherlockError, match="no terminal"):
            parse_pipeline("cse,validate")

    def test_empty_segment_rejected(self):
        with pytest.raises(SherlockError, match="empty pass name"):
            parse_pipeline("cse,,map-naive")

    def test_config_roundtrip_through_dict(self):
        spec = "cse,mra-substitute,arity-clamp,validate,map-naive"
        config = CompilerConfig(pipeline=spec, cse=True, mra=4)
        rebuilt = CompilerConfig(**dataclasses.asdict(config))
        assert rebuilt == config
        assert rebuilt.pipeline == spec
        assert rebuilt.effective_pipeline() == parse_pipeline(spec)

    def test_pipeline_derives_mapper(self):
        config = CompilerConfig(pipeline="validate,map-naive")
        assert config.mapper == "naive"

    def test_invalid_spec_rejected_at_config_time(self):
        with pytest.raises(SherlockError):
            CompilerConfig(pipeline="cse,nonsense,map-naive")
        with pytest.raises(SherlockError):
            CompilerConfig(pipeline="cse,validate")

    def test_custom_pipeline_compiles_and_verifies(self, scan_dag):
        config = CompilerConfig(
            pipeline="fold-duplicates,arity-clamp,validate,map-naive")
        program = compile_dag(scan_dag, target(), config)
        inputs = bitweaving.scan_inputs(10, 200, [3] * 8)
        assert program.verify(inputs, lanes=8)


class TestPassManagerInstrumentation:
    def test_events_cover_every_pass(self, scan_dag):
        program = compile_dag(scan_dag, target(), cache=False)
        names = [e.name for e in program.pass_events]
        assert tuple(names) == parse_pipeline(default_pipeline("sherlock"))
        assert all(e.wall_s >= 0 for e in program.pass_events)

    def test_skip_notes_recorded(self, scan_dag):
        program = compile_dag(scan_dag, target(), cache=False)
        by_name = {e.name: e for e in program.pass_events}
        assert by_name["cse"].skipped  # cse defaults off
        terminal = by_name["map-sherlock"]
        assert not terminal.skipped
        assert terminal.notes["instructions"] == len(program.instructions)

    def test_stats_deltas_track_substitution(self, scan_dag):
        program = compile_dag(scan_dag, target(),
                              CompilerConfig(mra=4), cache=False)
        event = next(e for e in program.pass_events
                     if e.name == "mra-substitute")
        assert event.op_delta < 0  # merges removed op nodes
        assert event.before.ops - event.after.ops == event.notes["merges"]

    def test_pass_report_renders_table(self, scan_dag):
        program = compile_dag(scan_dag, target(), cache=False)
        text = PassReport.from_program(program).render()
        assert "mra-substitute" in text and "d_ops" in text
        assert "total" in text

    def test_dump_ir_writes_snapshot_per_pass(self, scan_dag, tmp_path):
        compiler = SherlockCompiler(target(), dump_ir_dir=tmp_path,
                                    cache=False)
        compiler.compile(scan_dag)
        dots = sorted(p.name for p in tmp_path.glob("*.dot"))
        # the input snapshot plus one per pass
        assert len(dots) == len(default_pipeline("sherlock").split(",")) + 1
        assert dots[0] == "00-input.dot"
        assert dots[-1] == "07-map-sherlock.dot"
        data = json.loads((tmp_path / "05-arity-clamp.json").read_text())
        assert {"operands", "ops", "outputs"} <= set(data)

    def test_validate_passes_mode(self, scan_dag):
        compiler = SherlockCompiler(target(), validate_passes=True,
                                    cache=False)
        program = compiler.compile(scan_dag)
        assert program.instructions

    def test_transform_matches_compile_dag(self, scan_dag):
        compiler = SherlockCompiler(target(), CompilerConfig(mra=4),
                                    cache=False)
        transformed = compiler.transform(scan_dag)
        program = compiler.compile(scan_dag)
        assert structural_hash(transformed) == structural_hash(program.dag)

    def test_custom_registered_pass_runs(self, scan_dag):
        seen = []

        def spy(ctx: CompilationContext):
            seen.append(graph_stats(ctx.dag).ops)
            return {"noted": True}

        name = "test-spy"
        register_pass(FunctionPass(name=name, description="test spy", fn=spy))
        try:
            config = CompilerConfig(pipeline=f"{name},validate,map-naive")
            program = compile_dag(scan_dag, target(), config, cache=False)
            assert seen and program.pass_events[0].notes == {"noted": True}
        finally:
            del PASS_REGISTRY[name]

    def test_duplicate_registration_rejected(self):
        with pytest.raises(SherlockError, match="already registered"):
            register_pass(FunctionPass(name="validate", description="dup",
                                       fn=lambda ctx: None))

    def test_get_pass_lists_known_names(self):
        with pytest.raises(SherlockError, match="registered passes"):
            get_pass("nope")


class TestNandLoweringPass:
    def test_auto_on_stt_mram(self, scan_dag):
        program = compile_dag(scan_dag, target(STT_MRAM), cache=False)
        event = next(e for e in program.pass_events if e.name == "nand-lower")
        assert not event.skipped and event.notes["rewritten"] > 0

    def test_skipped_on_reram(self, scan_dag):
        program = compile_dag(scan_dag, target(RERAM), cache=False)
        event = next(e for e in program.pass_events if e.name == "nand-lower")
        assert event.skipped


class TestStructuralHash:
    def test_name_irrelevant(self, scan_dag):
        renamed = scan_dag.copy(name="other")
        assert structural_hash(renamed) == structural_hash(scan_dag)

    def test_structure_relevant(self):
        b = DFGBuilder()
        x, y = b.inputs("x", "y")
        b.output("o", x & y)
        and_dag = b.build()
        b2 = DFGBuilder()
        x, y = b2.inputs("x", "y")
        b2.output("o", x | y)
        or_dag = b2.build()
        assert structural_hash(and_dag) != structural_hash(or_dag)


class TestCompileCache:
    def test_hit_on_identical_request(self, scan_dag):
        first = compile_dag(scan_dag, target())
        second = compile_dag(scan_dag, target())
        info = compile_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1
        assert second.text() == first.text()
        assert second.mapping.instructions is not first.mapping.instructions

    def test_different_config_misses(self, scan_dag):
        compile_dag(scan_dag, target(), CompilerConfig(mra=2))
        compile_dag(scan_dag, target(), CompilerConfig(mra=4))
        assert compile_cache_info()["hits"] == 0

    def test_mutating_a_program_cannot_poison_the_cache(self, scan_dag):
        inputs = bitweaving.scan_inputs(10, 200, [3] * 8)
        first = compile_dag(scan_dag, target())
        first.instructions.clear()  # caller breaks their own copy
        second = compile_dag(scan_dag, target())
        assert second.verify(inputs, lanes=8)

    def test_cache_can_be_bypassed(self, scan_dag):
        compile_dag(scan_dag, target(), cache=False)
        compile_dag(scan_dag, target(), cache=False)
        info = compile_cache_info()
        assert info["hits"] == 0 and info["misses"] == 0

    def test_repeated_sweep_is_served_from_cache(self, scan_dag):
        """Re-sweeping the same DAG hits the cache for every point."""
        fractions = (0.0, 0.5, 1.0)
        t = target(max_activated_rows=4)
        start = time.perf_counter()
        cold = mra_sweep(scan_dag, t, fractions=fractions)
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        warm = mra_sweep(scan_dag, t, fractions=fractions)
        warm_s = time.perf_counter() - start
        info = compile_cache_info()
        assert info["hits"] == len(fractions)
        assert warm == cold
        # a cache hit skips clustering/codegen entirely; allow generous
        # slack so the assertion never flakes on a loaded machine
        assert warm_s < max(cold_s, 0.001)


class TestPassthroughPlacementFailure:
    def test_error_names_output_and_occupancy(self):
        b = DFGBuilder()
        x, y, z = b.inputs("x", "y", "z")
        b.output("computed", x & y)
        b.output("homeless", z)  # passthrough: needs its own cell
        dag = b.build()
        # 3 rows x 1 col x 1 array = 3 cells: x, y and the AND result fill
        # the entire machine, leaving no cell for the passthrough output
        tiny = TargetSpec(technology=RERAM, rows=3, cols=1, data_width=4,
                          num_arrays=1, column_fill_factor=1.0)
        with pytest.raises(MappingError) as err:
            compile_dag(dag, tiny,
                        CompilerConfig(mapper="naive", fallback="strict"),
                        cache=False)
        message = str(err.value)
        assert "'homeless'" in message
        assert "3/3 cells" in message
        assert "1/1 columns" in message

    def test_ladder_compiles_what_strict_rejects(self):
        # the same DAG compiles through the degradation ladder: recycling
        # frees the dead AND operands' cells for the passthrough output
        b = DFGBuilder()
        x, y, z = b.inputs("x", "y", "z")
        b.output("computed", x & y)
        b.output("homeless", z)
        dag = b.build()
        tiny = TargetSpec(technology=RERAM, rows=3, cols=1, data_width=4,
                          num_arrays=1, column_fill_factor=1.0)
        program = compile_dag(dag, tiny,
                              CompilerConfig(mapper="naive",
                                             fallback="ladder"),
                              cache=False)
        assert program.degradation != "none"
        assert [a.rung for a in program.ladder][0] == "naive"
        assert not program.ladder[0].succeeded
        program.verify({"x": 0b1100, "y": 0b1010, "z": 0b0110}, lanes=4)
