"""Tests for persistent fault maps, verify-after-write, and remapping."""

import dataclasses
import json
import random

import pytest

from repro.arch import CellAddr, TargetSpec
from repro.arch.layout import Layout
from repro.core import CompilerConfig, SherlockCompiler
from repro.devices import RERAM, STT_MRAM, CellFault, FaultMap
from repro.dfg.evaluate import evaluate
from repro.errors import (
    DeviceError,
    HardFaultError,
    MappingError,
    SherlockError,
    SimulationError,
)
from repro.mapping.naive import map_naive
from repro.mapping.optimized import map_sherlock
from repro.sim import ArrayMachine
from repro.workloads.synthetic import synthetic_dag


def small_target(**kwargs):
    kwargs.setdefault("num_arrays", 2)
    return TargetSpec(RERAM, rows=16, cols=16, data_width=32, **kwargs)


class TestFaultMapBasics:
    def test_empty_map_is_falsy_and_all_healthy(self):
        fm = FaultMap()
        assert not fm
        assert len(fm) == 0
        assert fm.is_healthy(0, 0, 0)
        assert fm.fault_at(0, 0, 0) is None

    def test_set_and_query(self):
        fm = FaultMap()
        fm.set_fault(0, 1, 2, CellFault.STUCK1)
        fm.mark_dead(1, 3, 4)
        assert fm.fault_at(0, 1, 2) is CellFault.STUCK1
        assert fm.fault_at(1, 3, 4) is CellFault.DEAD
        assert not fm.is_healthy(0, 1, 2)
        assert fm.counts() == {"stuck1": 1, "dead": 1}
        assert len(fm) == 2

    def test_set_fault_rejects_non_fault(self):
        with pytest.raises(DeviceError):
            FaultMap().set_fault(0, 0, 0, "dead")

    def test_forced_values(self):
        mask = 0xFF
        assert CellFault.STUCK0.forced_value(mask) == 0
        assert CellFault.DEAD.forced_value(mask) == 0
        assert CellFault.STUCK1.forced_value(mask) == mask

    def test_merge_first_diagnosis_wins(self):
        first = FaultMap()
        first.set_fault(0, 0, 0, CellFault.STUCK0)
        second = FaultMap()
        second.set_fault(0, 0, 0, CellFault.STUCK1)
        second.mark_dead(0, 1, 1)
        added = first.merge(second)
        assert added == 1
        assert first.fault_at(0, 0, 0) is CellFault.STUCK0
        assert first.fault_at(0, 1, 1) is CellFault.DEAD

    def test_copy_is_independent(self):
        fm = FaultMap()
        fm.mark_dead(0, 0, 0)
        clone = fm.copy()
        clone.mark_dead(0, 1, 1)
        assert len(fm) == 1 and len(clone) == 2


class TestFaultMapDerivation:
    def test_from_wear_thresholds(self):
        counts = {(0, 0, 0): 10, (0, 1, 0): 9, (0, 2, 0): 11}
        fm = FaultMap.from_wear(counts, RERAM, endurance=10)
        assert not fm.is_healthy(0, 0, 0)
        assert fm.is_healthy(0, 1, 0)
        assert not fm.is_healthy(0, 2, 0)
        assert fm.counts() == {"dead": 2}

    def test_from_wear_uses_technology_endurance(self):
        counts = {(0, 0, 0): int(RERAM.endurance_cycles)}
        assert len(FaultMap.from_wear(counts, RERAM)) == 1
        # STT-MRAM endures forever: nothing ever wears out
        assert len(FaultMap.from_wear({(0, 0, 0): 10**18}, STT_MRAM)) == 0

    def test_from_wear_rejects_bad_endurance(self):
        with pytest.raises(DeviceError):
            FaultMap.from_wear({}, RERAM, endurance=0)

    def test_random_map_reproducible_and_sized(self):
        target = small_target()
        a = FaultMap.random_map(target, fraction=0.1, seed=3)
        b = FaultMap.random_map(target, fraction=0.1, seed=3)
        assert a.cells() == b.cells()
        total = target.num_arrays * target.rows * target.cols
        assert len(a) == round(0.1 * total)

    def test_random_map_rejects_bad_fraction(self):
        with pytest.raises(DeviceError):
            FaultMap.random_map(small_target(), fraction=1.5)


class TestFaultMapPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        fm = FaultMap.random_map(small_target(), fraction=0.05, seed=1,
                                 kinds=(CellFault.DEAD, CellFault.STUCK0,
                                        CellFault.STUCK1))
        path = tmp_path / "faults.json"
        fm.save(path)
        assert FaultMap.load(path).cells() == fm.cells()

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(DeviceError):
            FaultMap.load(tmp_path / "nope.json")

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json")
        with pytest.raises(DeviceError):
            FaultMap.load(path)

    @pytest.mark.parametrize("document", [
        [],                                            # not an object
        {"faults": []},                                # missing version
        {"format_version": 99, "faults": []},          # wrong version
        {"format_version": 1},                         # missing faults
        {"format_version": 1, "faults": "x"},          # faults not a list
        {"format_version": 1, "faults": [[0, 0, "dead"]]},   # short entry
        {"format_version": 1, "faults": [[0, 0, -1, "dead"]]},  # negative
        {"format_version": 1, "faults": [[0, 0, 0, "melted"]]},  # bad kind
        {"format_version": 1,
         "faults": [[0, 0, 0, "dead"], [0, 0, 0, "stuck0"]]},  # duplicate
    ])
    def test_from_dict_rejects_malformed(self, document):
        with pytest.raises(DeviceError):
            FaultMap.from_dict(document)

    def test_load_rejects_malformed_file(self, tmp_path):
        path = tmp_path / "malformed.json"
        path.write_text(json.dumps({"format_version": 1, "faults": "bad"}))
        with pytest.raises(DeviceError):
            FaultMap.load(path)


class TestFaultAwarePlacement:
    def test_layout_skips_faulty_rows(self):
        target = small_target()
        fm = FaultMap()
        fm.mark_dead(0, 0, 0)
        layout = Layout(target, fault_map=fm)
        addr = layout.place(1, 0)
        assert layout.cell_healthy(addr.array, addr.row, addr.col)
        assert (addr.array, addr.row, addr.col) != (0, 0, 0)

    def test_place_at_refuses_faulty_cell(self):
        target = small_target()
        fm = FaultMap()
        fm.mark_dead(0, 5, 0)
        layout = Layout(target, fault_map=fm)
        with pytest.raises(MappingError):
            layout.place_at(1, 0, 5)

    @pytest.mark.parametrize("mapper", [map_naive, map_sherlock])
    def test_mappers_avoid_faulty_cells(self, mapper):
        target = small_target()
        fm = FaultMap.random_map(target, fraction=0.05, seed=2)
        compiler = SherlockCompiler(target, CompilerConfig(), fault_map=fm)
        program = compiler.compile(synthetic_dag(num_ops=24, num_inputs=8,
                                                 seed=4))
        for addrs in program.layout.placements().values():
            for addr in addrs:
                assert fm.is_healthy(addr.array, addr.row, addr.col)

    def test_fault_aware_execution_matches_reference(self):
        target = small_target()
        fm = FaultMap.random_map(target, fraction=0.05, seed=5)
        dag = synthetic_dag(num_ops=24, num_inputs=8, seed=4)
        program = SherlockCompiler(target, CompilerConfig(),
                                   fault_map=fm).compile(dag)
        rng = random.Random(0)
        lanes = 8
        inputs = {o.name: rng.getrandbits(lanes) for o in dag.inputs()}
        assert program.execute(inputs, lanes) == evaluate(dag, inputs, lanes)

    def test_fault_aware_compiles_hit_the_cache_by_digest(self):
        """Equal-content maps share cache entries; different maps miss."""
        from repro.core.compiler import _COMPILE_CACHE, clear_compile_cache

        clear_compile_cache()
        try:
            target = small_target()
            dag = synthetic_dag(num_ops=24, num_inputs=8, seed=4)
            fm_a = FaultMap()
            fm_a.mark_dead(0, 0, 0)
            fm_b = fm_a.copy()  # same content, different object
            first = SherlockCompiler(target, CompilerConfig(),
                                     fault_map=fm_a).compile(dag)
            assert _COMPILE_CACHE.misses == 1
            second = SherlockCompiler(target, CompilerConfig(),
                                      fault_map=fm_b).compile(dag)
            assert _COMPILE_CACHE.hits == 1
            assert second.instructions == first.instructions
            # a different map is a different key
            fm_c = FaultMap()
            fm_c.mark_dead(0, 1, 1)
            third = SherlockCompiler(target, CompilerConfig(),
                                     fault_map=fm_c).compile(dag)
            assert _COMPILE_CACHE.misses == 2
            assert third.fault_map.fault_at(0, 1, 1) is not None
            # fault-blind compiles never collide with fault-aware ones
            SherlockCompiler(target, CompilerConfig()).compile(dag)
            assert _COMPILE_CACHE.misses == 3
        finally:
            clear_compile_cache()

    def test_cache_hits_cannot_be_poisoned_by_later_map_mutation(self):
        """Cached fault maps are frozen copies of the compile-time content."""
        from repro.core.compiler import clear_compile_cache

        clear_compile_cache()
        try:
            target = small_target()
            dag = synthetic_dag(num_ops=24, num_inputs=8, seed=4)
            fm = FaultMap()
            fm.mark_dead(0, 0, 0)
            SherlockCompiler(target, CompilerConfig(),
                             fault_map=fm).compile(dag)
            fm.mark_dead(0, 5, 5)  # mutate the live map after compiling
            # an equal-content requester still gets the compile-time map
            fresh = FaultMap()
            fresh.mark_dead(0, 0, 0)
            hit = SherlockCompiler(target, CompilerConfig(),
                                   fault_map=fresh).compile(dag)
            assert len(hit.fault_map) == 1
            assert hit.fault_map.fault_at(0, 5, 5) is None
        finally:
            clear_compile_cache()


def failing_write_target(probability, **kwargs):
    tech = dataclasses.replace(RERAM, write_failure_probability=probability)
    kwargs.setdefault("num_arrays", 1)
    return TargetSpec(tech, rows=16, cols=8, data_width=32, **kwargs)


class TestVerifyAfterWrite:
    def test_recovers_all_injected_failures(self):
        """Acceptance: 100% recovery below the spare-capacity limit."""
        target = failing_write_target(0.3)
        m = ArrayMachine(target, lanes=8, fault_rng=random.Random(1),
                         verify_writes=True, write_retries=8)
        wrote = {}
        rng = random.Random(2)
        for row in range(target.rows):
            for col in range(target.cols):
                value = rng.getrandbits(8)
                m._commit(0, row, col, value)
                wrote[(row, col)] = value
        assert m.write_failures_injected > 0
        for (row, col), value in wrote.items():
            assert m.peek(CellAddr(0, row, col)) == value
        assert not m.discovered_faults
        assert m.writes_verified >= len(wrote)
        # every injected failure was detected by a read-back and retried
        assert m.write_retries_used == m.write_failures_injected

    def test_stuck_cell_escalates_to_spare(self):
        fm = FaultMap()
        fm.set_fault(0, 2, 3, CellFault.STUCK0)
        target = small_target(num_arrays=1)
        m = ArrayMachine(target, lanes=8, fault_map=fm, verify_writes=True,
                         write_retries=1,
                         spare_pool=[CellAddr(0, 9, 3)])
        m._commit(0, 2, 3, 0b1011)
        assert m.remaps == [((0, 2, 3), (0, 9, 3))]
        # later accesses are transparently redirected
        assert m.peek(CellAddr(0, 2, 3)) == 0b1011
        assert m.discovered_faults.fault_at(0, 2, 3) is CellFault.DEAD

    def test_exhausted_spares_raise_hard_fault(self):
        fm = FaultMap()
        fm.set_fault(0, 2, 3, CellFault.STUCK1)
        target = small_target(num_arrays=1)
        m = ArrayMachine(target, lanes=8, fault_map=fm, verify_writes=True,
                         write_retries=2, spare_pool=[])
        with pytest.raises(HardFaultError) as excinfo:
            m._commit(0, 2, 3, 0b0110)
        message = str(excinfo.value)
        assert "array=0" in message and "col=3" in message

    def test_write_retries_validation(self):
        with pytest.raises(SimulationError):
            ArrayMachine(small_target(), write_retries=-1)
        with pytest.raises(SherlockError):
            CompilerConfig(write_retries=-2)

    def test_unverified_path_never_draws_write_failures(self):
        """Write-failure injection must not touch the unverified RNG path."""
        target = failing_write_target(0.5)
        m = ArrayMachine(target, lanes=8, fault_rng=random.Random(9),
                         verify_writes=False)
        for row in range(8):
            m._commit(0, row, 0, 0b1010)
        assert m.write_failures_injected == 0
        for row in range(8):
            assert m.peek(CellAddr(0, row, 0)) == 0b1010


class TestCompilerRemap:
    def test_remap_recompiles_around_discovered_faults(self):
        target = small_target()
        dag = synthetic_dag(num_ops=24, num_inputs=8, seed=4)
        compiler = SherlockCompiler(target, CompilerConfig())
        program = compiler.compile(dag)
        victim = next(iter(program.layout.placements().values()))[0]
        discovered = FaultMap()
        discovered.mark_dead(victim.array, victim.row, victim.col)
        remapped = compiler.remap(program, discovered)
        assert remapped.degradation == "remap"
        assert remapped.ladder[-1].rung == "remap"
        for addrs in remapped.layout.placements().values():
            for addr in addrs:
                assert (addr.array, addr.row, addr.col) != (
                    victim.array, victim.row, victim.col)
        rng = random.Random(0)
        lanes = 8
        inputs = {o.name: rng.getrandbits(lanes) for o in dag.inputs()}
        machine = remapped.machine(lanes)
        assert remapped.execute(inputs, lanes) == evaluate(dag, inputs, lanes)
        assert machine.fault_map is not None

    def test_remap_merges_with_existing_map(self):
        target = small_target()
        dag = synthetic_dag(num_ops=24, num_inputs=8, seed=4)
        seed_map = FaultMap()
        seed_map.mark_dead(0, 0, 0)
        compiler = SherlockCompiler(target, CompilerConfig(),
                                    fault_map=seed_map)
        program = compiler.compile(dag)
        discovered = FaultMap()
        discovered.mark_dead(1, 1, 1)
        remapped = compiler.remap(program, discovered)
        assert len(remapped.fault_map) == 2


class TestStrictConfigUnchanged:
    def test_zero_retry_strict_codegen_is_byte_identical(self):
        """Acceptance: the hard-fault machinery must not perturb codegen."""
        target = small_target()
        dag = synthetic_dag(num_ops=24, num_inputs=8, seed=4)
        default = SherlockCompiler(target, CompilerConfig(),
                                   cache=False).compile(dag)
        strict = SherlockCompiler(
            target, CompilerConfig(fallback="strict", write_retries=0),
            cache=False).compile(dag)
        assert strict.text() == default.text()
