"""Docstring-coverage gate for the library sources.

Mirrors the relaxed ruff pydocstyle selection in pyproject.toml (the
missing-docstring rules D100-D104 only): every module, public class,
public method and public module-level function under ``src/repro`` must
carry a docstring.  This test keeps the gate enforceable even where ruff
itself is not installed; ``run_all.sh`` additionally runs the real ruff
check when available.
"""

import ast
import pathlib

import pytest

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
SOURCES = sorted(SRC.rglob("*.py"))

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _public(name: str) -> bool:
    return not name.startswith("_")


def _missing_docstrings(tree: ast.Module, is_package: bool) -> list[str]:
    missing = []
    if ast.get_docstring(tree) is None:
        missing.append("D104 package" if is_package else "D100 module")
    for node in tree.body:
        if isinstance(node, _FUNCTION_NODES) and _public(node.name) \
                and ast.get_docstring(node) is None:
            missing.append(f"D103 function {node.name}")
    for node in ast.walk(tree):
        if not (isinstance(node, ast.ClassDef) and _public(node.name)):
            continue
        if ast.get_docstring(node) is None:
            missing.append(f"D101 class {node.name}")
        for child in node.body:
            if isinstance(child, _FUNCTION_NODES) and _public(child.name) \
                    and ast.get_docstring(child) is None:
                missing.append(f"D102 method {node.name}.{child.name}")
    return missing


def test_sources_were_collected():
    assert len(SOURCES) > 50  # the glob actually found the package


@pytest.mark.parametrize(
    "path", SOURCES, ids=[str(p.relative_to(SRC)) for p in SOURCES])
def test_public_surface_is_documented(path):
    tree = ast.parse(path.read_text())
    missing = _missing_docstrings(tree, is_package=path.name == "__init__.py")
    assert not missing, (
        f"{path.relative_to(SRC)} is missing docstrings: {missing}")
