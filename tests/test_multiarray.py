"""Tests for the multi-array co-scheduler (assignment, mapping, ladder).

The acceptance gate lives in ``TestAcceptance``: on Sobel with four
arrays the co-scheduled program must produce outputs identical to the
reference evaluator while reporting a strictly lower modeled
critical-path latency than the serial spill-and-partition chain the
single-array ladder falls back to.
"""

import random

import pytest

from repro.arch import TargetSpec
from repro.arch.isa import TransferInst, instruction_arrays
from repro.core import CompilerConfig, SherlockCompiler, compile_dag
from repro.core.report import MultiArrayReport
from repro.devices import RERAM, CellFault, FaultMap
from repro.dfg.evaluate import evaluate
from repro.errors import CapacityError, MappingError
from repro.mapping import (
    MultiArrayOptions,
    apply_recompute,
    assign_arrays,
    find_clusters,
    map_multiarray,
    merge_clusters,
)
from repro.workloads import get_workload
from repro.workloads.synthetic import synthetic_dag

LANES = 8


def wide_dag(num_ops=64, num_inputs=16, seed=5, name="multi-wide"):
    """A synthetic DAG with enough parallelism to spread across arrays."""
    return synthetic_dag(num_ops=num_ops, num_inputs=num_inputs, seed=seed,
                         name=name)


def dag_inputs(dag, seed=0, lanes=LANES):
    rng = random.Random(seed)
    return {o.name: rng.getrandbits(lanes) for o in dag.inputs()}


class TestAssignArrays:
    def test_parallel_dag_spreads_over_arrays(self):
        dag = wide_dag()
        target = TargetSpec.square(16, RERAM, num_arrays=4)
        assignment = assign_arrays(dag, target)
        assert set(assignment.array_of) == {op.node_id
                                            for op in dag.op_nodes()}
        assert assignment.arrays_used() > 1
        assert all(0 <= a < 4 for a in assignment.array_of.values())

    def test_cluster_mode_keeps_clusters_whole(self):
        dag = wide_dag()
        target = TargetSpec.square(16, RERAM, num_arrays=4)
        clusters = find_clusters(dag, target.usable_rows)
        clusters, _ = merge_clusters(clusters, 4, target.usable_rows, dag)
        assignment = assign_arrays(dag, target, clusters=clusters)
        for cluster in clusters:
            homes = {assignment.array_of[op] for op in cluster.ops}
            assert len(homes) == 1, "cluster split across arrays"

    def test_cross_array_edges_are_priced(self):
        dag = wide_dag()
        target = TargetSpec.square(16, RERAM, num_arrays=4)
        assignment = assign_arrays(dag, target)
        priced = assignment.bridge_cycles + assignment.recompute_cycles
        if assignment.arrays_used() > 1:
            assert priced > 0
        assert assignment.bridge_cycles >= assignment.bridge_edges

    def test_recompute_disabled(self):
        dag = wide_dag()
        target = TargetSpec.square(16, RERAM, num_arrays=4)
        options = MultiArrayOptions(recompute=False)
        assignment = assign_arrays(dag, target, options)
        assert not assignment.recomputed
        assert assignment.recompute_cycles == 0

    def test_single_array_has_no_bridges(self):
        dag = wide_dag()
        target = TargetSpec.square(64, RERAM, num_arrays=1)
        assignment = assign_arrays(dag, target)
        assert assignment.arrays_used() == 1
        assert assignment.bridge_edges == 0
        assert not assignment.recomputed


class TestApplyRecompute:
    def test_duplication_preserves_semantics(self):
        dag = wide_dag(num_ops=96, num_inputs=12, seed=9)
        target = TargetSpec.square(16, RERAM, num_arrays=4)
        work = dag.copy()
        assignment = assign_arrays(work, target)
        before = work.num_ops
        clones = apply_recompute(work, assignment)
        assert work.num_ops == before + clones
        work.validate()
        inputs = dag_inputs(dag)
        assert evaluate(work, inputs, LANES) == evaluate(dag, inputs, LANES)

    def test_clones_are_assigned_to_their_array(self):
        dag = wide_dag(num_ops=96, num_inputs=12, seed=9)
        target = TargetSpec.square(16, RERAM, num_arrays=4)
        work = dag.copy()
        assignment = assign_arrays(work, target)
        apply_recompute(work, assignment)
        assert set(assignment.array_of) >= {op.node_id
                                            for op in work.op_nodes()}


class TestMapMultiarray:
    def test_program_executes_correctly(self):
        dag = wide_dag()
        target = TargetSpec.square(32, RERAM, num_arrays=4)
        program = compile_dag(dag, target,
                              CompilerConfig(mapper="sherlock",
                                             schedule="multi"), cache=False)
        inputs = dag_inputs(dag)
        assert program.execute(inputs, LANES) == evaluate(dag, inputs, LANES)

    def test_schedule_spans_multiple_arrays(self):
        dag = wide_dag()
        target = TargetSpec.square(32, RERAM, num_arrays=4)
        result = map_multiarray(dag, target)
        touched = {a for inst in result.instructions
                   for a in instruction_arrays(inst)}
        assert len(touched) > 1
        assert result.stats.mapper == "multiarray"
        assert result.stats.clusters > 0

    def test_cross_array_operands_lower_to_xfer(self):
        dag = wide_dag()
        target = TargetSpec.square(32, RERAM, num_arrays=4)
        options = MultiArrayOptions(recompute=False)
        result = map_multiarray(dag, target, options)
        xfers = [i for i in result.instructions
                 if isinstance(i, TransferInst)]
        assert xfers, "multi-array schedule without recompute needs bridges"
        assert result.stats.cross_array_transfers == len(xfers)

    def test_source_dag_is_not_mutated(self):
        dag = wide_dag()
        before = dag.num_ops
        map_multiarray(dag, TargetSpec.square(32, RERAM, num_arrays=4))
        assert dag.num_ops == before

    def test_fault_map_constrains_placement(self):
        dag = wide_dag()
        target = TargetSpec.square(32, RERAM, num_arrays=4)
        fault_map = FaultMap.random_map(target, fraction=0.04, seed=3)
        program = SherlockCompiler(
            target, CompilerConfig(mapper="sherlock", schedule="multi"),
            fault_map=fault_map).compile(dag)
        inputs = dag_inputs(dag)
        assert program.execute(inputs, LANES) == evaluate(dag, inputs, LANES)

    def test_single_array_multi_schedule_still_works(self):
        dag = wide_dag()
        target = TargetSpec.square(64, RERAM, num_arrays=1)
        program = compile_dag(dag, target,
                              CompilerConfig(mapper="sherlock",
                                             schedule="multi"), cache=False)
        inputs = dag_inputs(dag)
        assert program.execute(inputs, LANES) == evaluate(dag, inputs, LANES)
        assert not any(isinstance(i, TransferInst)
                       for i in program.instructions)

    def test_bad_merge_headroom_rejected(self):
        dag = wide_dag()
        target = TargetSpec.square(32, RERAM, num_arrays=4)
        with pytest.raises(MappingError, match="merge_headroom"):
            map_multiarray(dag, target, MultiArrayOptions(merge_headroom=0))

    def test_overlap_metrics_report_concurrency(self):
        dag = wide_dag()
        target = TargetSpec.square(32, RERAM, num_arrays=4)
        program = compile_dag(dag, target,
                              CompilerConfig(mapper="sherlock",
                                             schedule="multi"), cache=False)
        overlap = program.overlap
        assert overlap.makespan_cycles < overlap.serial_cycles
        assert len(overlap.busy_cycles) > 1
        assert overlap.speedup > 1.0


class TestCapacitySuggestion:
    """Regression: ``suggested_num_arrays`` is validated, not just guessed."""

    def _dead_array_target(self):
        target = TargetSpec.square(8, RERAM, num_arrays=1)
        fault_map = FaultMap()
        for row in range(target.rows):
            for col in range(target.cols):
                fault_map.set_fault(0, row, col, CellFault.DEAD)
        return target, fault_map

    def test_exhausted_ladder_validates_its_suggestion(self):
        dag = synthetic_dag(num_ops=48, num_inputs=8, seed=7,
                            name="suggestion-gate")
        target, fault_map = self._dead_array_target()
        with pytest.raises(CapacityError) as excinfo:
            SherlockCompiler(target, CompilerConfig(mapper="sherlock"),
                             fault_map=fault_map).compile(dag)
        err = excinfo.value
        assert err.suggested_num_arrays is not None
        assert err.suggested_num_arrays > target.num_arrays
        assert err.suggestion_validated is True
        assert "validated" in "\n".join(err.details())

    def test_validated_suggestion_actually_compiles(self):
        dag = synthetic_dag(num_ops=48, num_inputs=8, seed=7,
                            name="suggestion-gate")
        target, fault_map = self._dead_array_target()
        with pytest.raises(CapacityError) as excinfo:
            SherlockCompiler(target, CompilerConfig(mapper="sherlock"),
                             fault_map=fault_map).compile(dag)
        suggested = excinfo.value.suggested_num_arrays
        retry = SherlockCompiler(
            target.with_(num_arrays=suggested),
            CompilerConfig(mapper="sherlock", schedule="multi"),
            fault_map=fault_map).compile(dag)
        inputs = dag_inputs(dag)
        assert retry.execute(inputs, LANES) == evaluate(dag, inputs, LANES)


class TestAcceptance:
    """The issue's bar: Sobel on 4 arrays beats the serial spill chain."""

    @pytest.fixture(scope="class")
    def programs(self):
        dag = get_workload("sobel").build_dag()
        single = SherlockCompiler(
            TargetSpec.square(128, RERAM, num_arrays=1),
            CompilerConfig(mapper="sherlock"), cache=False).compile(dag)
        multi = SherlockCompiler(
            TargetSpec.square(128, RERAM, num_arrays=4),
            CompilerConfig(mapper="sherlock", schedule="multi"),
            cache=False).compile(dag)
        return dag, single, multi

    def test_single_array_baseline_is_the_spill_chain(self, programs):
        _, single, _ = programs
        assert single.degradation != "none"
        assert len(single.stages or []) > 1

    def test_multi_array_fits_without_degradation(self, programs):
        _, _, multi = programs
        assert multi.degradation == "none"

    def test_outputs_identical_to_reference(self, programs):
        dag, single, multi = programs
        workload = get_workload("sobel")
        inputs = workload.make_inputs(random.Random(0), LANES)
        want = evaluate(dag, inputs, LANES)
        assert multi.execute(inputs, LANES) == want
        assert single.execute(inputs, LANES) == want

    def test_critical_path_beats_serial_spill_chain(self, programs):
        _, single, multi = programs
        chain = single.overlap.serial_cycles
        assert multi.overlap.makespan_cycles < chain


class TestReportAndCli:
    def test_multiarray_report_renders(self):
        dag = wide_dag()
        target = TargetSpec.square(32, RERAM, num_arrays=4)
        program = compile_dag(dag, target,
                              CompilerConfig(mapper="sherlock",
                                             schedule="multi"), cache=False)
        text = MultiArrayReport.from_program(program).render()
        assert "schedule multi" in text
        assert "makespan" in text and "bus:" in text
        assert "util_%" in text

    def test_cli_compile_report_shows_occupancy(self, tmp_path, capsys):
        from repro.cli import main

        source = tmp_path / "kernel.c"
        source.write_text(
            "word_t f(word_t a, word_t b, word_t c, word_t d) "
            "{ return (a & b) ^ (c | d) ^ ~a; }")
        assert main(["compile", str(source), "--size", "32", "--arrays", "4",
                     "--schedule", "multi", "--report"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "transfer" in out

    def test_cli_single_schedule_is_default_and_identical(self, tmp_path,
                                                          capsys):
        from repro.cli import main

        source = tmp_path / "kernel.c"
        source.write_text(
            "word_t f(word_t a, word_t b) { return (a & b) ^ ~a; }")
        assert main(["compile", str(source), "--size", "64", "--arrays", "1",
                     "--emit"]) == 0
        default_text = capsys.readouterr().out
        assert main(["compile", str(source), "--size", "64", "--arrays", "1",
                     "--schedule", "single", "--emit"]) == 0
        assert capsys.readouterr().out == default_text
