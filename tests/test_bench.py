"""Tests for the benchmark probe registry, reports, and regression gate."""

import json

import pytest

from repro.bench import (
    BENCHMARKS,
    SCHEMA,
    BenchReport,
    ProbeResult,
    Timer,
    benchmark,
    compare_reports,
    load_report,
    select_probes,
)
from repro.cli import main
from repro.errors import BenchError


def _result(name, median, better="lower", unit="s"):
    return ProbeResult(name=name, group="test", unit=unit, better=better,
                       repeats=1, median=median, values=(median,))


def _report(*results):
    return BenchReport(schema=SCHEMA, created=0.0, git_rev="testrev",
                       machine={"cpus": 1}, repeats=1,
                       probes=tuple(results))


class TestTimer:
    def test_measure_returns_one_value_per_repeat(self):
        values = Timer(repeats=3).measure(lambda: sum(range(100)))
        assert len(values) == 3
        assert all(v >= 0.0 for v in values)

    def test_setup_runs_before_every_repeat(self):
        calls = []
        Timer(repeats=4).measure(lambda: calls.append("work"),
                                 setup=lambda: calls.append("setup"))
        assert calls == ["setup", "work"] * 4

    def test_throughput_converts_to_items_per_second(self):
        values = Timer(repeats=2).throughput(lambda: sum(range(1000)), 500)
        assert len(values) == 2
        assert all(v > 0.0 for v in values)

    def test_rejects_bad_repeats_and_items(self):
        with pytest.raises(BenchError, match="positive"):
            Timer(repeats=0)
        with pytest.raises(BenchError, match="positive"):
            Timer(repeats=1).throughput(lambda: None, 0)


class TestRegistry:
    def test_at_least_four_builtin_probes(self):
        assert len(BENCHMARKS) >= 4
        assert {"compile.cold", "compile.warm", "campaign.serial",
                "campaign.parallel"} <= set(BENCHMARKS)

    def test_duplicate_names_rejected(self):
        with pytest.raises(BenchError, match="already registered"):
            benchmark("compile.cold", group="compile")(lambda timer: ([], {}))

    def test_bad_direction_rejected(self):
        with pytest.raises(BenchError, match="direction"):
            benchmark("tmp.bad", group="tmp", better="sideways")

    def test_select_by_group(self):
        names = [probe.name for probe in select_probes(["compile"])]
        assert names == ["compile.cold", "compile.ladder",
                         "compile.multiarray", "compile.warm"]

    def test_select_all_when_unspecified(self):
        assert len(select_probes(None)) == len(BENCHMARKS)

    def test_unknown_selection_lists_probes_and_groups(self):
        with pytest.raises(BenchError, match="probes:.*groups:"):
            select_probes(["bogus"])


class TestReportRoundTrip:
    def test_write_then_load_is_identity(self, tmp_path):
        report = _report(_result("a.x", 1.5), _result("a.y", 2.0,
                                                      better="higher",
                                                      unit="trials/s"))
        path = tmp_path / "bench.json"
        report.write(path)
        assert load_report(path) == report

    def test_wrong_schema_rejected(self):
        with pytest.raises(BenchError, match="schema"):
            BenchReport.from_dict({"schema": "sherlock-bench/v999"})

    def test_missing_key_rejected(self):
        with pytest.raises(BenchError, match="missing required key"):
            BenchReport.from_dict({"schema": SCHEMA, "created": 0.0})

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text("not json {")
        with pytest.raises(BenchError, match="not valid JSON"):
            load_report(path)

    def test_render_names_every_probe_and_the_revision(self):
        report = _report(_result("a.x", 1.5), _result("a.y", 2.0))
        text = report.render()
        assert "a.x" in text and "a.y" in text and "testrev" in text


class TestCompareReports:
    def test_within_threshold_is_ok(self):
        comparison = compare_reports(_report(_result("p", 1.0)),
                                     _report(_result("p", 1.1)))
        assert comparison.ok
        assert comparison.deltas[0].status == "ok"

    def test_slower_wall_time_regresses(self):
        comparison = compare_reports(_report(_result("p", 1.0)),
                                     _report(_result("p", 1.5)),
                                     threshold=0.25)
        assert not comparison.ok
        assert comparison.regressions[0].name == "p"
        assert "FAIL" in comparison.render()

    def test_faster_wall_time_improves(self):
        comparison = compare_reports(_report(_result("p", 1.0)),
                                     _report(_result("p", 0.5)))
        assert comparison.ok
        assert comparison.deltas[0].status == "improved"

    def test_higher_is_better_direction_is_mirrored(self):
        slower = compare_reports(
            _report(_result("p", 1000.0, better="higher")),
            _report(_result("p", 500.0, better="higher")))
        faster = compare_reports(
            _report(_result("p", 1000.0, better="higher")),
            _report(_result("p", 2000.0, better="higher")))
        assert not slower.ok
        assert faster.ok and faster.deltas[0].status == "improved"

    def test_new_and_missing_probes_never_fail_the_gate(self):
        comparison = compare_reports(_report(_result("old", 1.0)),
                                     _report(_result("new", 1.0)))
        assert comparison.ok
        statuses = {d.name: d.status for d in comparison.deltas}
        assert statuses == {"new": "new", "old": "missing"}

    def test_degenerate_baseline_is_ok(self):
        comparison = compare_reports(_report(_result("p", 0.0)),
                                     _report(_result("p", 5.0)))
        assert comparison.deltas[0].status == "ok"

    def test_nonpositive_threshold_rejected(self):
        with pytest.raises(BenchError, match="positive"):
            compare_reports(_report(), _report(), threshold=0.0)


class TestBenchCLI:
    def test_list_prints_the_probe_table(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "compile.cold" in out and "campaign.parallel" in out

    def test_bench_writes_a_valid_report(self, tmp_path, capsys):
        output = tmp_path / "BENCH_sherlock.json"
        assert main(["bench", "-o", str(output), "--probe", "compile.warm",
                     "--repeats", "1"]) == 0
        data = json.loads(output.read_text())
        assert data["schema"] == SCHEMA
        assert [p["name"] for p in data["probes"]] == ["compile.warm"]
        assert len(data["probes"][0]["values"]) == 1
        assert "compile.warm" in capsys.readouterr().out

    def test_compare_against_fresh_baseline_passes(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main(["bench", "-o", str(baseline), "--probe", "compile.warm",
                     "--repeats", "1"]) == 0
        current = tmp_path / "current.json"
        assert main(["bench", "-o", str(current), "--probe", "compile.warm",
                     "--repeats", "1", "--compare", str(baseline)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_compare_flags_a_regression_with_exit_1(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main(["bench", "-o", str(baseline), "--probe", "compile.warm",
                     "--repeats", "1"]) == 0
        doctored = json.loads(baseline.read_text())
        doctored["probes"][0]["median"] /= 100.0  # pretend we used to be fast
        baseline.write_text(json.dumps(doctored))
        current = tmp_path / "current.json"
        assert main(["bench", "-o", str(current), "--probe", "compile.warm",
                     "--repeats", "1", "--compare", str(baseline)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_unknown_probe_is_reported(self, tmp_path, capsys):
        code = main(["bench", "-o", str(tmp_path / "b.json"),
                     "--probe", "bogus"])
        assert code == 1
        assert "unknown benchmark probe" in capsys.readouterr().err
