"""Unit tests for the device models: technologies, P_DF, array costs."""

import math

import pytest

from repro.devices import (
    PCM,
    RERAM,
    STT_MRAM,
    ArrayCostModel,
    Technology,
    application_failure_probability,
    composite_state,
    decision_failure_probability,
    get_technology,
    overlap_curve,
)
from repro.dfg import OpType
from repro.errors import DeviceError


class TestTechnology:
    def test_stt_mram_resistances_from_table1(self):
        # RA = 7.5 ohm.um^2, r = 20 nm  ->  R_P = RA / (pi r^2) ~ 5.97 kOhm
        assert STT_MRAM.r_lrs_ohm == pytest.approx(5968.3, rel=1e-3)
        # TMR 150% -> R_AP = 2.5 R_P
        assert STT_MRAM.r_hrs_ohm == pytest.approx(2.5 * STT_MRAM.r_lrs_ohm)
        assert STT_MRAM.hrs_lrs_ratio == pytest.approx(2.5)

    def test_reram_window_much_wider_than_stt(self):
        assert RERAM.hrs_lrs_ratio > 10 * STT_MRAM.hrs_lrs_ratio

    def test_conductance_helpers(self):
        assert RERAM.g_lrs == pytest.approx(1 / RERAM.r_lrs_ohm)
        assert RERAM.sigma_g_lrs == pytest.approx(
            RERAM.sigma_rel_lrs / RERAM.r_lrs_ohm)

    def test_get_technology_lookup(self):
        assert get_technology("ReRAM") is RERAM
        assert get_technology("stt-mram") is STT_MRAM
        assert get_technology("pcm") is PCM
        with pytest.raises(DeviceError):
            get_technology("dram")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(DeviceError):
            Technology("bad", r_lrs_ohm=1e4, r_hrs_ohm=5e3,  # HRS < LRS
                       sigma_rel_lrs=0.05, sigma_rel_hrs=0.05,
                       sigma_ref_siemens=0, write_latency_ns=10,
                       write_energy_pj_per_bit=1, read_latency_ns=2,
                       read_energy_pj_per_bit=0.2)
        with pytest.raises(DeviceError):
            Technology("bad", r_lrs_ohm=5e3, r_hrs_ohm=1e4,
                       sigma_rel_lrs=1.5, sigma_rel_hrs=0.05,
                       sigma_ref_siemens=0, write_latency_ns=10,
                       write_energy_pj_per_bit=1, read_latency_ns=2,
                       read_energy_pj_per_bit=0.2)

    def test_with_variability(self):
        noisy = RERAM.with_variability(0.2, 0.4)
        assert noisy.sigma_rel_lrs == 0.2
        assert noisy.name == RERAM.name


class TestCompositeStates:
    def test_mean_interpolates_between_pure_states(self):
        k = 4
        s0 = composite_state(RERAM, k, 0)
        sk = composite_state(RERAM, k, k)
        assert s0.mu == pytest.approx(k * RERAM.g_lrs)
        assert sk.mu == pytest.approx(k * RERAM.g_hrs)
        assert s0.mu > sk.mu  # more HRS cells -> lower conductance

    def test_adjacent_gap_constant(self):
        gaps = []
        for j in range(4):
            a = composite_state(RERAM, 4, j)
            b = composite_state(RERAM, 4, j + 1)
            gaps.append(a.mu - b.mu)
        for g in gaps:
            assert g == pytest.approx(RERAM.g_lrs - RERAM.g_hrs)

    def test_sigma_grows_with_k(self):
        s2 = composite_state(STT_MRAM, 2, 0)
        s4 = composite_state(STT_MRAM, 4, 0)
        s8 = composite_state(STT_MRAM, 8, 0)
        assert s2.sigma < s4.sigma < s8.sigma

    def test_lrs_states_noisier_than_hrs_states(self):
        # absolute conductance noise is larger in the low-resistance state
        all_lrs = composite_state(RERAM, 4, 0)
        all_hrs = composite_state(RERAM, 4, 4)
        assert all_lrs.sigma > all_hrs.sigma

    def test_bad_args_rejected(self):
        with pytest.raises(DeviceError):
            composite_state(RERAM, 0, 0)
        with pytest.raises(DeviceError):
            composite_state(RERAM, 2, 3)


class TestDecisionFailure:
    def test_more_rows_less_reliable(self):
        for op in (OpType.AND, OpType.OR, OpType.XOR):
            p2 = decision_failure_probability(STT_MRAM, op, 2)
            p4 = decision_failure_probability(STT_MRAM, op, 4)
            p8 = decision_failure_probability(STT_MRAM, op, 8)
            assert p2 < p4 < p8, op

    def test_wider_window_more_reliable(self):
        for op in (OpType.AND, OpType.OR, OpType.XOR):
            assert (decision_failure_probability(RERAM, op, 2)
                    < decision_failure_probability(STT_MRAM, op, 2))

    def test_xor_or_worse_than_and_on_stt(self):
        """The paper's motivation for NAND-lowering on STT-MRAM."""
        p_and = decision_failure_probability(STT_MRAM, OpType.AND, 2)
        p_or = decision_failure_probability(STT_MRAM, OpType.OR, 2)
        p_xor = decision_failure_probability(STT_MRAM, OpType.XOR, 2)
        assert p_and < p_or
        assert p_and < p_xor
        assert p_xor >= p_or  # XOR needs both boundaries

    def test_inverted_ops_share_boundaries(self):
        for base, inv in ((OpType.AND, OpType.NAND), (OpType.OR, OpType.NOR),
                          (OpType.XOR, OpType.XNOR)):
            assert (decision_failure_probability(STT_MRAM, base, 3)
                    == decision_failure_probability(STT_MRAM, inv, 3))

    def test_calibration_bands(self):
        """The spreads are calibrated to the bands the paper reports."""
        p_nand_stt = decision_failure_probability(STT_MRAM, OpType.NAND, 2)
        p_xor_stt = decision_failure_probability(STT_MRAM, OpType.XOR, 2)
        p_xor_reram = decision_failure_probability(RERAM, OpType.XOR, 2)
        assert 1e-7 < p_nand_stt < 1e-3   # 'suitable for error-tolerant apps'
        assert p_xor_stt > 1e-4           # 'much more unreliable'
        assert p_xor_reram < 1e-7         # 'highly reliable'

    def test_single_row_read_is_very_reliable(self):
        p = decision_failure_probability(STT_MRAM, OpType.NOT, 1)
        assert p < decision_failure_probability(STT_MRAM, OpType.AND, 2)
        assert p < 1e-6

    def test_k_above_technology_limit_rejected(self):
        with pytest.raises(DeviceError):
            decision_failure_probability(STT_MRAM, OpType.AND,
                                         STT_MRAM.max_activated_rows + 1)

    def test_probability_bounded(self):
        noisy = STT_MRAM.with_variability(0.4, 0.4)
        p = decision_failure_probability(noisy, OpType.XOR, 8)
        assert 0.0 <= p <= 1.0


class TestApplicationFailure:
    def test_empty_application_never_fails(self):
        assert application_failure_probability([]) == 0.0

    def test_single_op(self):
        assert application_failure_probability([0.25]) == pytest.approx(0.25)

    def test_union_formula(self):
        p = application_failure_probability([0.1, 0.2])
        assert p == pytest.approx(1 - 0.9 * 0.8)

    def test_many_tiny_probabilities_accumulate(self):
        p = application_failure_probability([1e-9] * 1_000_000)
        assert p == pytest.approx(-math.expm1(1_000_000 * math.log1p(-1e-9)))
        assert p > 0

    def test_certain_failure_dominates(self):
        assert application_failure_probability([0.0, 1.0, 0.0]) == 1.0

    def test_out_of_range_rejected(self):
        with pytest.raises(DeviceError):
            application_failure_probability([1.5])


class TestOverlapCurve:
    def test_fig2b_series_shape(self):
        curves = overlap_curve(STT_MRAM, 2, points=64)
        assert set(curves) == {"conductance", "state_0", "state_1", "state_2"}
        assert len(curves["conductance"]) == 64
        # each pdf peaks near its composite mean
        xs = curves["conductance"]
        peak0 = xs[max(range(64), key=lambda i: curves["state_0"][i])]
        peak2 = xs[max(range(64), key=lambda i: curves["state_2"][i])]
        assert peak0 > peak2  # all-LRS has the higher conductance


class TestArrayCostModel:
    def test_latency_grows_with_rows(self):
        small = ArrayCostModel(RERAM, 128, 128)
        big = ArrayCostModel(RERAM, 1024, 1024)
        assert big.read_latency_ns() > small.read_latency_ns()
        assert big.write_latency_ns() > small.write_latency_ns()

    def test_write_much_slower_than_read_on_reram(self):
        m = ArrayCostModel(RERAM, 512, 512)
        assert m.write_latency_ns() > 5 * m.read_latency_ns()

    def test_reram_writes_slower_than_stt(self):
        r = ArrayCostModel(RERAM, 512, 512)
        s = ArrayCostModel(STT_MRAM, 512, 512)
        assert r.write_latency_ns() > s.write_latency_ns()
        assert r.read_latency_ns() == s.read_latency_ns()

    def test_mra_read_slightly_slower(self):
        m = ArrayCostModel(STT_MRAM, 512, 512)
        assert m.read_latency_ns(4) > m.read_latency_ns(2) > m.read_latency_ns(1)

    def test_energy_scales_with_lanes_and_cols(self):
        m = ArrayCostModel(STT_MRAM, 512, 512)
        assert m.read_energy_pj(4, 2, 2048) > m.read_energy_pj(4, 2, 512)
        assert m.read_energy_pj(8, 2, 512) > m.read_energy_pj(2, 2, 512)
        assert m.write_energy_pj(4, 512) > m.read_energy_pj(4, 2, 512)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(DeviceError):
            ArrayCostModel(RERAM, 0, 128)
        m = ArrayCostModel(RERAM, 128, 128)
        with pytest.raises(DeviceError):
            m.read_latency_ns(0)
