"""Unit tests for the functional array machine."""

import random

import pytest

from repro.arch import (
    CellAddr,
    NotInst,
    ReadInst,
    ShiftInst,
    TargetSpec,
    TransferInst,
    WriteInst,
)
from repro.devices import RERAM, STT_MRAM
from repro.dfg import OpType
from repro.errors import SimulationError
from repro.sim import ArrayMachine


def make_machine(lanes=8, **kwargs):
    kwargs.setdefault("num_arrays", 2)
    target = TargetSpec(RERAM, rows=16, cols=8, data_width=32, **kwargs)
    return ArrayMachine(target, lanes=lanes)


class TestCells:
    def test_poke_peek_roundtrip(self):
        m = make_machine()
        m.poke(CellAddr(0, 3, 2), 0b1011)
        assert m.peek(CellAddr(0, 3, 2)) == 0b1011

    def test_poke_masks_to_lanes(self):
        m = make_machine(lanes=4)
        m.poke(CellAddr(0, 0, 0), 0xFF)
        assert m.peek(CellAddr(0, 0, 0)) == 0xF

    def test_peek_uninitialized_raises(self):
        m = make_machine()
        with pytest.raises(SimulationError):
            m.peek(CellAddr(0, 0, 0))

    def test_out_of_range_raises(self):
        m = make_machine()
        with pytest.raises(SimulationError):
            m.poke(CellAddr(0, 99, 0), 1)
        with pytest.raises(SimulationError):
            m.poke(CellAddr(5, 0, 0), 1)


class TestReadWrite:
    def test_plain_read_then_write_copies_cell(self):
        m = make_machine()
        m.poke(CellAddr(0, 2, 5), 0b0110)
        m.run([ReadInst(0, (5,), (2,)), WriteInst(0, (5,), 7)])
        assert m.peek(CellAddr(0, 7, 5)) == 0b0110

    @pytest.mark.parametrize("op,expected", [
        (OpType.AND, 0b1000), (OpType.OR, 0b1110), (OpType.XOR, 0b0110),
        (OpType.NAND, 0b0111), (OpType.NOR, 0b0001), (OpType.XNOR, 0b1001),
    ])
    def test_cim_read_computes(self, op, expected):
        m = make_machine(lanes=4)
        m.poke(CellAddr(0, 0, 3), 0b1100)
        m.poke(CellAddr(0, 1, 3), 0b1010)
        m.run([ReadInst(0, (3,), (0, 1), (op,))])
        assert m.rowbuf(0)[3] == expected

    def test_cim_read_three_rows(self):
        m = make_machine(lanes=4)
        for row, val in [(0, 0b1100), (1, 0b1010), (2, 0b0110)]:
            m.poke(CellAddr(0, row, 0), val)
        m.run([ReadInst(0, (0,), (0, 1, 2), (OpType.XOR,))])
        assert m.rowbuf(0)[0] == 0b1100 ^ 0b1010 ^ 0b0110

    def test_per_column_heterogeneous_ops(self):
        m = make_machine(lanes=4)
        for col in (1, 2):
            m.poke(CellAddr(0, 0, col), 0b1100)
            m.poke(CellAddr(0, 1, col), 0b1010)
        m.run([ReadInst(0, (1, 2), (0, 1), (OpType.AND, OpType.XOR))])
        assert m.rowbuf(0) == {1: 0b1000, 2: 0b0110}

    def test_read_uninitialized_cell_raises(self):
        m = make_machine()
        with pytest.raises(SimulationError):
            m.run([ReadInst(0, (0,), (0,))])

    def test_write_from_empty_rowbuf_raises(self):
        m = make_machine()
        with pytest.raises(SimulationError):
            m.run([WriteInst(0, (0,), 0)])


class TestShiftNotTransfer:
    def test_shift_moves_rowbuf_columns(self):
        m = make_machine(lanes=4)
        m.poke(CellAddr(0, 0, 2), 0b0101)
        m.run([ReadInst(0, (2,), (0,)), ShiftInst(0, 3)])
        assert m.rowbuf(0) == {5: 0b0101}

    def test_shift_left(self):
        m = make_machine(lanes=4)
        m.poke(CellAddr(0, 0, 4), 0b1111)
        m.run([ReadInst(0, (4,), (0,)), ShiftInst(0, -4)])
        assert m.rowbuf(0) == {0: 0b1111}

    def test_shift_drops_out_of_range(self):
        m = make_machine(lanes=4)
        m.poke(CellAddr(0, 0, 7), 1)
        m.run([ReadInst(0, (7,), (0,)), ShiftInst(0, 1)])
        assert m.rowbuf(0) == {}

    def test_not_inverts_selected_columns(self):
        m = make_machine(lanes=4)
        m.poke(CellAddr(0, 0, 1), 0b0101)
        m.run([ReadInst(0, (1,), (0,)), NotInst(0, (1,))])
        assert m.rowbuf(0)[1] == 0b1010

    def test_not_on_empty_rowbuf_raises(self):
        m = make_machine()
        with pytest.raises(SimulationError):
            m.run([NotInst(0, (0,))])

    def test_transfer_between_arrays(self):
        m = make_machine(lanes=4)
        m.poke(CellAddr(0, 0, 3), 0b1001)
        m.run([ReadInst(0, (3,), (0,)), TransferInst(0, 1, (3,)),
               WriteInst(1, (3,), 9)])
        assert m.peek(CellAddr(1, 9, 3)) == 0b1001

    def test_transfer_from_empty_rowbuf_raises(self):
        m = make_machine()
        with pytest.raises(SimulationError):
            m.run([TransferInst(0, 1, (0,))])


class TestMoveSequence:
    def test_full_gather_move(self):
        """read -> shift -> write relocates a bit to another column/row."""
        m = make_machine(lanes=4)
        m.poke(CellAddr(0, 5, 2), 0b1110)
        m.run([
            ReadInst(0, (2,), (5,)),
            ShiftInst(0, 4),
            WriteInst(0, (6,), 11),
        ])
        assert m.peek(CellAddr(0, 11, 6)) == 0b1110


class TestFaultInjection:
    def test_faults_flip_lanes_with_high_probability(self):
        target = TargetSpec(
            STT_MRAM.with_variability(0.4, 0.4), rows=16, cols=8,
            data_width=32, num_arrays=1)
        m = ArrayMachine(target, lanes=64, fault_rng=random.Random(0))
        m.poke(CellAddr(0, 0, 0), 0)
        m.poke(CellAddr(0, 1, 0), 0)
        for _ in range(50):
            m.execute(ReadInst(0, (0,), (0, 1), (OpType.XOR,)))
        assert m.injected_faults > 0

    def test_no_rng_means_deterministic(self):
        m = make_machine(lanes=4)
        m.poke(CellAddr(0, 0, 0), 0b1100)
        m.poke(CellAddr(0, 1, 0), 0b1010)
        results = set()
        for _ in range(5):
            m.execute(ReadInst(0, (0,), (0, 1), (OpType.XOR,)))
            results.add(m.rowbuf(0)[0])
        assert results == {0b0110}
        assert m.injected_faults == 0
