"""Unit tests for the functional array machine."""

import math
import random

import pytest

from repro.arch import (
    CellAddr,
    NotInst,
    ReadInst,
    ShiftInst,
    TargetSpec,
    TransferInst,
    WriteInst,
)
from repro.devices import RERAM, STT_MRAM
from repro.devices.failure import decision_failure_probability
from repro.dfg import OpType
from repro.dfg.ops import apply_op
from repro.errors import SimulationError
from repro.sim import ArrayMachine


def make_machine(lanes=8, machine_kwargs=None, **kwargs):
    kwargs.setdefault("num_arrays", 2)
    target = TargetSpec(RERAM, rows=16, cols=8, data_width=32, **kwargs)
    return ArrayMachine(target, lanes=lanes, **(machine_kwargs or {}))


class TestCells:
    def test_poke_peek_roundtrip(self):
        m = make_machine()
        m.poke(CellAddr(0, 3, 2), 0b1011)
        assert m.peek(CellAddr(0, 3, 2)) == 0b1011

    def test_poke_masks_to_lanes(self):
        m = make_machine(lanes=4)
        m.poke(CellAddr(0, 0, 0), 0xFF)
        assert m.peek(CellAddr(0, 0, 0)) == 0xF

    def test_peek_uninitialized_raises(self):
        m = make_machine()
        with pytest.raises(SimulationError):
            m.peek(CellAddr(0, 0, 0))

    def test_out_of_range_raises(self):
        m = make_machine()
        with pytest.raises(SimulationError):
            m.poke(CellAddr(0, 99, 0), 1)
        with pytest.raises(SimulationError):
            m.poke(CellAddr(5, 0, 0), 1)


class TestReadWrite:
    def test_plain_read_then_write_copies_cell(self):
        m = make_machine()
        m.poke(CellAddr(0, 2, 5), 0b0110)
        m.run([ReadInst(0, (5,), (2,)), WriteInst(0, (5,), 7)])
        assert m.peek(CellAddr(0, 7, 5)) == 0b0110

    @pytest.mark.parametrize("op,expected", [
        (OpType.AND, 0b1000), (OpType.OR, 0b1110), (OpType.XOR, 0b0110),
        (OpType.NAND, 0b0111), (OpType.NOR, 0b0001), (OpType.XNOR, 0b1001),
    ])
    def test_cim_read_computes(self, op, expected):
        m = make_machine(lanes=4)
        m.poke(CellAddr(0, 0, 3), 0b1100)
        m.poke(CellAddr(0, 1, 3), 0b1010)
        m.run([ReadInst(0, (3,), (0, 1), (op,))])
        assert m.rowbuf(0)[3] == expected

    def test_cim_read_three_rows(self):
        m = make_machine(lanes=4)
        for row, val in [(0, 0b1100), (1, 0b1010), (2, 0b0110)]:
            m.poke(CellAddr(0, row, 0), val)
        m.run([ReadInst(0, (0,), (0, 1, 2), (OpType.XOR,))])
        assert m.rowbuf(0)[0] == 0b1100 ^ 0b1010 ^ 0b0110

    def test_per_column_heterogeneous_ops(self):
        m = make_machine(lanes=4)
        for col in (1, 2):
            m.poke(CellAddr(0, 0, col), 0b1100)
            m.poke(CellAddr(0, 1, col), 0b1010)
        m.run([ReadInst(0, (1, 2), (0, 1), (OpType.AND, OpType.XOR))])
        assert m.rowbuf(0) == {1: 0b1000, 2: 0b0110}

    def test_read_uninitialized_cell_raises(self):
        m = make_machine()
        with pytest.raises(SimulationError):
            m.run([ReadInst(0, (0,), (0,))])

    def test_write_from_empty_rowbuf_raises(self):
        m = make_machine()
        with pytest.raises(SimulationError):
            m.run([WriteInst(0, (0,), 0)])


class TestShiftNotTransfer:
    def test_shift_moves_rowbuf_columns(self):
        m = make_machine(lanes=4)
        m.poke(CellAddr(0, 0, 2), 0b0101)
        m.run([ReadInst(0, (2,), (0,)), ShiftInst(0, 3)])
        assert m.rowbuf(0) == {5: 0b0101}

    def test_shift_left(self):
        m = make_machine(lanes=4)
        m.poke(CellAddr(0, 0, 4), 0b1111)
        m.run([ReadInst(0, (4,), (0,)), ShiftInst(0, -4)])
        assert m.rowbuf(0) == {0: 0b1111}

    def test_shift_drops_out_of_range(self):
        m = make_machine(lanes=4)
        m.poke(CellAddr(0, 0, 7), 1)
        m.run([ReadInst(0, (7,), (0,)), ShiftInst(0, 1)])
        assert m.rowbuf(0) == {}

    def test_strict_shift_raises_on_live_column_loss(self):
        m = make_machine(lanes=4, machine_kwargs={"strict_shift": True})
        m.poke(CellAddr(0, 0, 7), 1)
        m.execute(ReadInst(0, (7,), (0,)))
        with pytest.raises(SimulationError, match="live row-buffer column 7"):
            m.execute(ShiftInst(0, 1))

    def test_strict_shift_tolerates_stale_columns(self):
        """Only the most recent read's columns are live; stale ones may drop."""
        m = make_machine(lanes=4, machine_kwargs={"strict_shift": True})
        m.poke(CellAddr(0, 0, 7), 0b0011)
        m.poke(CellAddr(0, 0, 0), 0b0101)
        m.execute(ReadInst(0, (7,), (0,)))  # col 7 live
        m.execute(ReadInst(0, (0,), (0,)))  # col 0 live, col 7 now stale
        m.execute(ShiftInst(0, 1))          # stale col 7 falls off silently
        assert m.rowbuf(0) == {1: 0b0101}

    def test_strict_shift_tracks_liveness_through_shifts(self):
        m = make_machine(lanes=4, machine_kwargs={"strict_shift": True})
        m.poke(CellAddr(0, 0, 5), 1)
        m.execute(ReadInst(0, (5,), (0,)))
        m.execute(ShiftInst(0, 2))  # live column now at 7
        with pytest.raises(SimulationError, match="live row-buffer column 7"):
            m.execute(ShiftInst(0, 1))

    def test_default_mode_still_drops_silently(self):
        m = make_machine(lanes=4)
        m.poke(CellAddr(0, 0, 7), 1)
        m.run([ReadInst(0, (7,), (0,)), ShiftInst(0, 1)])
        assert m.rowbuf(0) == {}

    def test_not_inverts_selected_columns(self):
        m = make_machine(lanes=4)
        m.poke(CellAddr(0, 0, 1), 0b0101)
        m.run([ReadInst(0, (1,), (0,)), NotInst(0, (1,))])
        assert m.rowbuf(0)[1] == 0b1010

    def test_not_on_empty_rowbuf_raises(self):
        m = make_machine()
        with pytest.raises(SimulationError):
            m.run([NotInst(0, (0,))])

    def test_transfer_between_arrays(self):
        m = make_machine(lanes=4)
        m.poke(CellAddr(0, 0, 3), 0b1001)
        m.run([ReadInst(0, (3,), (0,)), TransferInst(0, 1, (3,)),
               WriteInst(1, (3,), 9)])
        assert m.peek(CellAddr(1, 9, 3)) == 0b1001

    def test_transfer_from_empty_rowbuf_raises(self):
        m = make_machine()
        with pytest.raises(SimulationError):
            m.run([TransferInst(0, 1, (0,))])


class TestMoveSequence:
    def test_full_gather_move(self):
        """read -> shift -> write relocates a bit to another column/row."""
        m = make_machine(lanes=4)
        m.poke(CellAddr(0, 5, 2), 0b1110)
        m.run([
            ReadInst(0, (2,), (5,)),
            ShiftInst(0, 4),
            WriteInst(0, (6,), 11),
        ])
        assert m.peek(CellAddr(0, 11, 6)) == 0b1110


class TestFaultInjection:
    def test_faults_flip_lanes_with_high_probability(self):
        target = TargetSpec(
            STT_MRAM.with_variability(0.4, 0.4), rows=16, cols=8,
            data_width=32, num_arrays=1)
        m = ArrayMachine(target, lanes=64, fault_rng=random.Random(0))
        m.poke(CellAddr(0, 0, 0), 0)
        m.poke(CellAddr(0, 1, 0), 0)
        for _ in range(50):
            m.execute(ReadInst(0, (0,), (0, 1), (OpType.XOR,)))
        assert m.injected_faults > 0

    def test_no_rng_means_deterministic(self):
        m = make_machine(lanes=4)
        m.poke(CellAddr(0, 0, 0), 0b1100)
        m.poke(CellAddr(0, 1, 0), 0b1010)
        results = set()
        for _ in range(5):
            m.execute(ReadInst(0, (0,), (0, 1), (OpType.XOR,)))
            results.add(m.rowbuf(0)[0])
        assert results == {0b0110}
        assert m.injected_faults == 0

    @staticmethod
    def _faulty_machine(seed, lanes=16):
        target = TargetSpec(
            STT_MRAM.with_variability(0.3, 0.3), rows=16, cols=8,
            data_width=32, num_arrays=2)
        return ArrayMachine(target, lanes=lanes,
                            fault_rng=random.Random(seed))

    @staticmethod
    def _mixed_trace():
        return [
            ReadInst(0, (0, 1), (0, 1), (OpType.AND, OpType.XOR)),
            WriteInst(0, (0,), 5),
            ReadInst(0, (2,), (0,)),           # plain read
            ShiftInst(0, 1),
            NotInst(0, (1,)),
            ReadInst(0, (0, 1), (0, 1, 2), (OpType.NOR, OpType.OR)),
            TransferInst(0, 1, (0,)),
            WriteInst(1, (0,), 3),
        ]

    def _preload(self, m):
        for row in range(3):
            for col in (0, 1, 2):
                m.poke(CellAddr(0, row, col), (0b1100 >> row) | col)

    def test_seeded_rng_is_reproducible(self):
        """Same seed -> identical outputs and identical fault accounting."""
        states = []
        for _ in range(2):
            m = self._faulty_machine(seed=1234)
            self._preload(m)
            m.run(self._mixed_trace())
            states.append((m.injected_faults, m.rowbuf(0), m.rowbuf(1),
                           m.peek(CellAddr(0, 5, 0)), m.peek(CellAddr(1, 3, 0))))
        assert states[0] == states[1]

    def test_different_seeds_diverge(self):
        faults = set()
        for seed in range(8):
            m = self._faulty_machine(seed)
            self._preload(m)
            for _ in range(20):
                m.run(self._mixed_trace())
            faults.add(m.injected_faults)
        assert len(faults) > 1

    def test_injected_faults_accounting_across_mixed_trace(self):
        """injected_faults equals the observed flips, sense by sense."""
        observed = []

        class Counter:
            def on_sense(self, machine, op, k, values, result, resense):
                true = (values[0] if op is None
                        else apply_op(op, values, machine.mask))
                observed.append((result ^ true).bit_count())
                return result

        target = TargetSpec(
            STT_MRAM.with_variability(0.3, 0.3), rows=16, cols=8,
            data_width=32, num_arrays=2)
        m = ArrayMachine(target, lanes=16, fault_rng=random.Random(99),
                         observer=Counter())
        self._preload(m)
        for _ in range(25):
            m.run(self._mixed_trace())
        assert m.injected_faults == sum(observed)
        assert m.injected_faults > 0
        # 5 sensed columns per trace iteration (2 + 1 plain + 2)
        assert len(observed) == 25 * 5

    def test_flip_rate_matches_p_df(self):
        """Empirical flip rate agrees with the analytic P_DF (5-sigma)."""
        tech = STT_MRAM.with_variability(0.3, 0.3)
        p = decision_failure_probability(tech, OpType.XOR, 2)
        assert 0.001 < p < 0.5  # the test needs a measurable rate
        target = TargetSpec(tech, rows=16, cols=8, data_width=32,
                            num_arrays=1)
        lanes, repeats = 64, 1500
        m = ArrayMachine(target, lanes=lanes, fault_rng=random.Random(7))
        m.poke(CellAddr(0, 0, 0), 0)
        m.poke(CellAddr(0, 1, 0), 0)
        for _ in range(repeats):
            m.execute(ReadInst(0, (0,), (0, 1), (OpType.XOR,)))
        n = lanes * repeats
        empirical = m.injected_faults / n
        sigma = math.sqrt(p * (1 - p) / n)
        assert abs(empirical - p) < 5 * sigma

    def test_p_one_flips_every_lane(self, monkeypatch):
        """Degenerate P_DF >= 1 must flip all lanes, not loop forever."""
        import repro.sim.executor as executor_mod

        monkeypatch.setattr(executor_mod, "cached_p_df",
                            lambda tech, op, k: 1.0)
        m = make_machine(lanes=8, machine_kwargs={
            "fault_rng": random.Random(0)})
        m.poke(CellAddr(0, 0, 0), 0)
        m.poke(CellAddr(0, 1, 0), 0)
        m.execute(ReadInst(0, (0,), (0, 1), (OpType.XOR,)))
        assert m.rowbuf(0)[0] == m.mask
        assert m.injected_faults == 8


class TestSnapshotRestore:
    def test_roundtrip_restores_cells_rowbuf_and_liveness(self):
        m = make_machine(lanes=4, machine_kwargs={"strict_shift": True})
        m.poke(CellAddr(0, 0, 2), 0b1010)
        m.execute(ReadInst(0, (2,), (0,)))
        state = m.snapshot()
        m.execute(ShiftInst(0, 2))
        m.execute(WriteInst(0, (4,), 9))
        m.restore(state)
        assert m.rowbuf(0) == {2: 0b1010}
        with pytest.raises(SimulationError):
            m.peek(CellAddr(0, 9, 4))
        # liveness was restored too: shifting col 2 off the edge raises
        with pytest.raises(SimulationError):
            m.execute(ShiftInst(0, 6))

    def test_restore_does_not_reset_fault_accounting(self):
        target = TargetSpec(
            STT_MRAM.with_variability(0.4, 0.4), rows=16, cols=8,
            data_width=32, num_arrays=1)
        m = ArrayMachine(target, lanes=64, fault_rng=random.Random(0))
        m.poke(CellAddr(0, 0, 0), 0)
        m.poke(CellAddr(0, 1, 0), 0)
        state = m.snapshot()
        for _ in range(30):
            m.execute(ReadInst(0, (0,), (0, 1), (OpType.XOR,)))
        before = m.injected_faults
        assert before > 0
        m.restore(state)
        assert m.injected_faults == before


class TestSenseObserver:
    def test_observer_sees_plain_and_cim_senses(self):
        calls = []

        class Spy:
            def on_sense(self, machine, op, k, values, result, resense):
                calls.append((op, k, tuple(values), result))
                return result

        m = make_machine(lanes=4, machine_kwargs={"observer": Spy()})
        m.poke(CellAddr(0, 0, 0), 0b1100)
        m.poke(CellAddr(0, 1, 0), 0b1010)
        m.run([ReadInst(0, (0,), (0, 1), (OpType.AND,)),
               ReadInst(0, (0,), (0,))])
        assert calls == [(OpType.AND, 2, (0b1100, 0b1010), 0b1000),
                         (None, 1, (0b1100,), 0b1100)]

    def test_observer_return_value_lands_in_rowbuf(self):
        class Override:
            def on_sense(self, machine, op, k, values, result, resense):
                return 0b0001

        m = make_machine(lanes=4, machine_kwargs={"observer": Override()})
        m.poke(CellAddr(0, 0, 3), 0b1111)
        m.execute(ReadInst(0, (3,), (0,)))
        assert m.rowbuf(0)[3] == 0b0001

    def test_resense_redraws_faults(self):
        seen = []

        class Resenser:
            def on_sense(self, machine, op, k, values, result, resense):
                seen.append([resense() for _ in range(20)])
                return result

        target = TargetSpec(
            STT_MRAM.with_variability(0.4, 0.4), rows=16, cols=8,
            data_width=32, num_arrays=1)
        m = ArrayMachine(target, lanes=64, fault_rng=random.Random(3),
                         observer=Resenser())
        m.poke(CellAddr(0, 0, 0), 0)
        m.poke(CellAddr(0, 1, 0), 0)
        m.execute(ReadInst(0, (0,), (0, 1), (OpType.XOR,)))
        assert len(set(seen[0])) > 1  # fresh draws differ


class TestStuckAtSense:
    """Permanent faults force sensed values across every op boundary."""

    def fault_machine(self, kind, cell=(0, 0, 0), lanes=8, mra=4,
                      fault_rng=None):
        from repro.devices import FaultMap

        fm = FaultMap()
        fm.set_fault(*cell, kind)
        target = TargetSpec(RERAM, rows=16, cols=8, data_width=32,
                            num_arrays=2, max_activated_rows=mra)
        return ArrayMachine(target, lanes=lanes, fault_map=fm,
                            fault_rng=fault_rng)

    @pytest.mark.parametrize("kind", ["STUCK0", "STUCK1", "DEAD"])
    @pytest.mark.parametrize("op", [OpType.AND, OpType.OR, OpType.XOR])
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_stuck_cell_in_k_row_sense(self, kind, op, k):
        """Every op x every activation count up to the MRA limit."""
        from repro.devices import CellFault

        fault = CellFault[kind]
        m = self.fault_machine(fault)
        values = [0b1011, 0b0111, 0b1101, 0b0110][:k]
        for row, value in enumerate(values):
            m.poke(CellAddr(0, row, 0), value)  # row 0 bounces: faulty
        m.execute(ReadInst(0, (0,), tuple(range(k)), (op,)))
        expected = apply_op(op, [fault.forced_value(m.mask), *values[1:]],
                            m.mask)
        assert m.rowbuf(0)[0] == expected

    @pytest.mark.parametrize("kind", ["STUCK0", "STUCK1", "DEAD"])
    def test_stuck_cell_in_plain_read_and_not(self, kind):
        """The NOT boundary: plain read of a stuck cell, then row-buffer NOT."""
        from repro.devices import CellFault

        fault = CellFault[kind]
        m = self.fault_machine(fault)
        forced = fault.forced_value(m.mask)
        m.execute(ReadInst(0, (0,), (0,)))
        assert m.rowbuf(0)[0] == forced
        m.execute(NotInst(0, (0,)))
        assert m.rowbuf(0)[0] == (~forced) & m.mask

    def test_healthy_rows_unaffected(self):
        from repro.devices import CellFault

        m = self.fault_machine(CellFault.STUCK1, cell=(0, 5, 5))
        m.poke(CellAddr(0, 0, 0), 0b1010)
        m.execute(ReadInst(0, (0,), (0,)))
        assert m.rowbuf(0)[0] == 0b1010

    def test_writes_bounce_off_faulty_cells(self):
        from repro.devices import CellFault

        m = self.fault_machine(CellFault.STUCK0)
        m.poke(CellAddr(0, 0, 0), 0b1111)  # bounces
        assert m.peek(CellAddr(0, 0, 0)) == 0
        m.poke(CellAddr(0, 1, 0), 0b1111)  # healthy neighbor sticks
        assert m.peek(CellAddr(0, 1, 0)) == 0b1111

    def test_stuck_sense_is_deterministic_not_gaussian(self):
        """Unlike decision failures, hard faults never redraw.

        On a high-variability technology with an active fault RNG the
        sensed op result still varies (transient injection), but the
        faulty cell's contribution — what the observer sees loaded — is
        the same forced value on every sense, and peek never wavers.
        """
        from repro.devices import CellFault, FaultMap

        fm = FaultMap()
        fm.set_fault(0, 0, 0, CellFault.STUCK1)
        target = TargetSpec(STT_MRAM.with_variability(0.4, 0.4), rows=16,
                            cols=8, data_width=32, num_arrays=1)
        loaded = []

        class Spy:
            def on_sense(self, machine, op, k, values, result, resense):
                loaded.append(values[0])
                return result

        m = ArrayMachine(target, lanes=64, fault_rng=random.Random(3),
                         fault_map=fm, observer=Spy())
        m.poke(CellAddr(0, 1, 0), 0b0110)
        for _ in range(20):
            m.execute(ReadInst(0, (0,), (0, 1), (OpType.XOR,)))
        assert set(loaded) == {m.mask}  # forced on every one of 20 senses
        assert {m.peek(CellAddr(0, 0, 0)) for _ in range(20)} == {m.mask}


class TestTransfer:
    """Direct coverage of the Fig. 4 ``xfer`` bridge instruction."""

    def test_cross_array_copy(self):
        """xfer carries sensed row-buffer bits onto another array."""
        m = make_machine()
        m.poke(CellAddr(0, 2, 3), 0b1010)
        m.run([
            ReadInst(0, (3,), (2,)),
            TransferInst(0, dst_array=1, cols=(3,)),
            WriteInst(1, (3,), 5),
        ])
        assert m.peek(CellAddr(1, 5, 3)) == 0b1010
        # the source cell is untouched and the source array keeps its buffer
        assert m.peek(CellAddr(0, 2, 3)) == 0b1010

    def test_copies_only_named_columns(self):
        m = make_machine()
        m.poke(CellAddr(0, 0, 1), 0b01)
        m.poke(CellAddr(0, 0, 2), 0b10)
        m.run([ReadInst(0, (1, 2), (0,)),
               TransferInst(0, dst_array=1, cols=(1,)),
               WriteInst(1, (1,), 0)])
        assert m.peek(CellAddr(1, 0, 1)) == 0b01
        with pytest.raises(SimulationError):
            # column 2 never crossed, so writing it on array 1 is illegal
            m.execute(WriteInst(1, (2,), 0))

    def test_same_array_is_rejected(self):
        with pytest.raises(SimulationError):
            TransferInst(0, dst_array=0, cols=(1,))

    def test_empty_cols_is_rejected(self):
        with pytest.raises(SimulationError):
            TransferInst(0, dst_array=1, cols=())

    def test_empty_source_buffer_raises(self):
        m = make_machine()
        with pytest.raises(SimulationError):
            m.execute(TransferInst(0, dst_array=1, cols=(4,)))

    def test_out_of_range_destination_raises(self):
        m = make_machine()  # num_arrays=2
        m.poke(CellAddr(0, 0, 0), 1)
        m.execute(ReadInst(0, (0,), (0,)))
        with pytest.raises(SimulationError):
            m.execute(TransferInst(0, dst_array=5, cols=(0,)))

    def test_stuck_cell_at_destination_forces_written_value(self):
        """A bridge into a stuck destination cell lands the forced value."""
        from repro.devices import CellFault, FaultMap

        fm = FaultMap()
        fm.set_fault(1, 5, 3, CellFault.STUCK1)
        m = make_machine(machine_kwargs={"fault_map": fm})
        m.poke(CellAddr(0, 2, 3), 0b0000)
        m.run([ReadInst(0, (3,), (2,)),
               TransferInst(0, dst_array=1, cols=(3,)),
               WriteInst(1, (3,), 5)])
        # the xfer itself is clean; the stuck cell corrupts the commit
        assert m.peek(CellAddr(1, 5, 3)) == m.mask
