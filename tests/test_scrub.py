"""Tests for the patrol scrubber (repro.serve.scrub).

The determinism tests are the load-bearing ones: the CI scrub gate
replays "planted latent fault found before any request fails", which only
works if the same seed and budget sequence always probes the same cells
in the same order and reports the same discoveries.
"""

import pytest

from repro.devices import CellFault, FaultMap
from repro.errors import ServeError
from repro.serve import PatrolScrubber, ScrubPolicy
from repro.serve.scrub import march_test

from tests.test_serve import small_target


def cell_space(target):
    return target.num_arrays * target.rows * target.cols


class TestScrubPolicy:
    @pytest.mark.parametrize("kwargs", [
        {"budget": 0},
        {"budget": -4},
        {"weight": -1.0},
        {"every_requests": -1},
    ])
    def test_rejects_invalid_policies(self, kwargs):
        with pytest.raises(ServeError):
            ScrubPolicy(**kwargs)


class TestMarchTest:
    def test_healthy_cell_passes_both_elements(self):
        ground = FaultMap()
        assert march_test(ground, (0, 1, 2), 0xFF) is None
        assert march_test(None, (0, 1, 2), 0xFF) is None

    def test_stuck_at_classification(self):
        ground = FaultMap()
        ground.set_fault(0, 1, 2, CellFault.STUCK0)
        ground.set_fault(0, 1, 3, CellFault.STUCK1)
        assert march_test(ground, (0, 1, 2), 0xFF) is CellFault.STUCK0
        assert march_test(ground, (0, 1, 3), 0xFF) is CellFault.STUCK1

    def test_dead_observes_as_its_forced_behavior(self):
        # the fault model forces a DEAD cell to 0 at sense time, exactly
        # like STUCK0 — the march element reports the observed kind
        ground = FaultMap()
        ground.mark_dead(0, 2, 2)
        observed = march_test(ground, (0, 2, 2), 0xFF)
        assert observed in (CellFault.STUCK0, CellFault.DEAD)

    def test_rejects_non_positive_mask(self):
        with pytest.raises(ServeError):
            march_test(FaultMap(), (0, 0, 0), 0)


class TestPatrolScrubber:
    def test_same_seed_and_budget_probe_identically(self):
        target = small_target()
        ground = FaultMap()
        ground.set_fault(0, 3, 5, CellFault.STUCK0)
        ground.set_fault(1, 7, 9, CellFault.STUCK1)
        fleet = {0: ground.copy(), 1: ground.copy()}
        runs = []
        for _ in range(2):
            scrubber = PatrolScrubber(target, ScrubPolicy(seed=7))
            reports = [scrubber.scrub(fleet, budget=512) for _ in range(3)]
            runs.append([
                (r.probed, sorted((a, sorted(m.cells()))
                                  for a, m in r.discoveries.items()))
                for r in reports])
        assert runs[0] == runs[1]

    def test_different_seeds_probe_differently(self):
        target = small_target()
        fleet = {0: FaultMap()}
        first = PatrolScrubber(target, ScrubPolicy(seed=1)).scrub(
            fleet, budget=64)
        second = PatrolScrubber(target, ScrubPolicy(seed=2)).scrub(
            fleet, budget=64)
        assert first.probed != second.probed

    def test_full_sweep_finds_every_latent_fault(self):
        target = small_target()
        ground = FaultMap()
        planted = [(0, 3, 5), (1, 7, 9), (0, 60, 60)]
        for cell in planted:
            ground.set_fault(*cell, CellFault.STUCK0)
        scrubber = PatrolScrubber(target)
        report = scrubber.scrub({4: ground}, budget=cell_space(target))
        assert report.cells_probed == cell_space(target)
        assert report.latent_faults_found == len(planted)
        found = report.discoveries[4]
        for cell in planted:
            assert found.fault_at(*cell) is CellFault.STUCK0
        assert scrubber.stats()["sweeps"] == 1

    def test_known_cells_are_skipped_for_free(self):
        target = small_target()
        ground = FaultMap()
        ground.set_fault(0, 3, 5, CellFault.STUCK0)
        known = ground.copy()  # everything already diagnosed
        scrubber = PatrolScrubber(target)
        report = scrubber.scrub({0: ground}, {0: known},
                                budget=cell_space(target))
        assert report.latent_faults_found == 0
        # the known cell cost no budget: a full-space budget still walks
        # every *unknown* cell exactly once
        assert report.cells_probed == cell_space(target) - 1

    def test_budget_splits_round_robin_across_the_fleet(self):
        target = small_target()
        fleet = {0: FaultMap(), 1: FaultMap(), 2: FaultMap()}
        report = PatrolScrubber(target).scrub(fleet, budget=100)
        assert report.cells_probed == 100
        assert sorted(report.probed_per_array) == [0, 1, 2]
        assert sorted(report.probed_per_array.values()) == [33, 33, 34]

    def test_cursor_resumes_and_wraps(self):
        target = small_target()
        fleet = {0: FaultMap()}
        scrubber = PatrolScrubber(target)
        half = cell_space(target) // 2
        first = scrubber.scrub(fleet, budget=half)
        second = scrubber.scrub(fleet, budget=half)
        cells = [cell for _, cell in first.probed + second.probed]
        assert len(set(cells)) == cell_space(target)  # no repeats yet
        assert scrubber.stats()["sweeps"] == 1
        third = scrubber.scrub(fleet, budget=4)
        assert [cell for _, cell in third.probed] == cells[:4]  # wrapped

    def test_empty_fleet_and_bad_budget(self):
        scrubber = PatrolScrubber(small_target())
        assert scrubber.scrub({}).cells_probed == 0
        with pytest.raises(ServeError):
            scrubber.scrub({0: FaultMap()}, budget=0)

    def test_stats_accumulate(self):
        target = small_target()
        ground = FaultMap()
        ground.set_fault(0, 1, 1, CellFault.STUCK0)
        scrubber = PatrolScrubber(target)
        scrubber.scrub({0: ground}, budget=cell_space(target))
        scrubber.scrub({0: ground}, budget=cell_space(target))
        stats = scrubber.stats()
        assert stats["passes"] == 2
        assert stats["cells_probed"] == 2 * cell_space(target)
        assert stats["latent_faults_found"] == 2  # no known map: re-found
        assert stats["arrays"][0]["cells_probed"] == stats["cells_probed"]
