"""Tests for the Fig. 6 reliability sweeps and the Pareto helper."""

import pytest

from repro.arch import TargetSpec
from repro.devices import RERAM, STT_MRAM
from repro.reliability import SweepPoint, mra_sweep, pareto_front
from repro.workloads import bitweaving


@pytest.fixture(scope="module")
def scan_dag():
    return bitweaving.between_batch_dag(bits=8, segments=4)


@pytest.fixture(scope="module")
def reram_sweep(scan_dag):
    target = TargetSpec.square(128, RERAM, num_arrays=8, max_activated_rows=4)
    return mra_sweep(scan_dag, target, "sherlock",
                     fractions=(0.0, 0.5, 1.0), mra=4)


class TestMraSweep:
    def test_point_fields(self, reram_sweep):
        for point in reram_sweep:
            assert point.latency_us > 0
            assert point.energy_uj > 0
            assert 0 <= point.p_app <= 1
            assert 0 <= point.achieved_fraction <= 1

    def test_zero_budget_is_binary(self, reram_sweep):
        assert reram_sweep[0].achieved_fraction == 0.0

    def test_achieved_fraction_monotone_in_budget(self, reram_sweep):
        # achieved is trace-relative (CIM column ops) while the budget is
        # DAG-relative, so the two scales differ; monotonicity must hold
        achieved = [p.achieved_fraction for p in reram_sweep]
        assert achieved == sorted(achieved)

    def test_merging_reduces_latency_endpoints(self, reram_sweep):
        assert reram_sweep[-1].latency_us <= reram_sweep[0].latency_us
        assert reram_sweep[-1].p_app >= reram_sweep[0].p_app

    def test_naive_curve_monotone_in_papp(self, scan_dag):
        """Sec. 4.2: the naive probability curve is regular (monotone)."""
        target = TargetSpec.square(128, RERAM, num_arrays=8,
                                   max_activated_rows=4)
        points = mra_sweep(scan_dag, target, "naive",
                           fractions=(0.0, 0.3, 0.6, 1.0), mra=4)
        p_apps = [p.p_app for p in points]
        assert p_apps == sorted(p_apps)

    def test_stt_much_less_reliable(self, scan_dag, reram_sweep):
        target = TargetSpec.square(128, STT_MRAM, num_arrays=8,
                                   max_activated_rows=4)
        stt = mra_sweep(scan_dag, target, "sherlock", fractions=(1.0,), mra=4)
        assert stt[0].p_app > 100 * reram_sweep[-1].p_app


class TestParetoFront:
    def test_dominated_points_removed(self):
        points = [
            SweepPoint(0.0, 0.0, 10.0, 1.0, 1e-9, 100),
            SweepPoint(0.5, 0.4, 8.0, 1.0, 1e-7, 90),
            SweepPoint(1.0, 0.9, 9.0, 1.0, 1e-6, 95),  # dominated by #2
        ]
        front = pareto_front(points)
        assert points[2] not in front
        assert points[0] in front and points[1] in front

    def test_front_sorted_by_latency(self, reram_sweep):
        front = pareto_front(reram_sweep)
        latencies = [p.latency_us for p in front]
        assert latencies == sorted(latencies)
        assert front  # never empty for a non-empty sweep
