"""Tests for the per-array health registry and its scheduler bridges."""

import random

import pytest

from repro.arch import TargetSpec
from repro.arch.isa import instruction_arrays
from repro.core import CompilerConfig, SherlockCompiler
from repro.devices import RERAM, CellFault, FaultMap
from repro.dfg.evaluate import evaluate
from repro.errors import ServeError
from repro.serve import (
    ArrayHealth,
    CompileService,
    HealthPolicy,
    HealthRegistry,
    assess_fault_map,
    subarray_exclusions,
    subarray_penalties,
)
from repro.workloads.synthetic import synthetic_dag

from tests.test_serve import FakeClock, request_for, small_dag, small_target

#: one-step-per-sample ladder policy for deterministic unit tests
FAST = HealthPolicy(min_samples=1, probation_period_s=10.0,
                    probation_successes=2)


def registry(policy=FAST, clock=None, on_transition=None):
    return HealthRegistry(RERAM, policy, clock=clock or FakeClock(),
                          on_transition=on_transition)


def dirty(reg, array_id=0, **kwargs):
    """One rate-1.0 sample (all writes retried)."""
    return reg.record_execution(array_id, writes_verified=0,
                                write_retries_used=8, **kwargs)


def clean(reg, array_id=0):
    """One rate-0.0 sample (all writes verified first try)."""
    return reg.record_execution(array_id, writes_verified=8)


class TestHealthPolicy:
    @pytest.mark.parametrize("kwargs", [
        {"window": 0},
        {"min_samples": 0},
        {"ewma_alpha": 0.0},
        {"ewma_alpha": 1.5},
        {"baseline_floor": 0.0},
        {"degrade_factor": 1.0, "recover_factor": 2.0},  # recover >= degrade
        {"quarantine_factor": 4.0},  # quarantine <= degrade
        {"probation_period_s": -1.0},
        {"probation_successes": 0},
    ])
    def test_rejects_invalid_policies(self, kwargs):
        with pytest.raises(ServeError):
            HealthPolicy(**kwargs)

    def test_baseline_floor_applies(self):
        class Perfect:
            write_failure_probability = 0.0

        reg = HealthRegistry(Perfect(), FAST)
        assert reg.baseline == FAST.baseline_floor


class TestHealthRegistry:
    def test_untracked_arrays_are_healthy_and_allowed(self):
        reg = registry()
        assert reg.state_of(7) is ArrayHealth.HEALTHY
        assert reg.allow(7)
        assert reg.failure_rate(7) == 0.0
        assert reg.census() == (0, 0)

    def test_one_ladder_step_per_sample(self):
        reg = registry()
        assert dirty(reg) is ArrayHealth.DEGRADED
        assert dirty(reg) is ArrayHealth.QUARANTINED
        snap = reg.snapshot()
        assert snap["degraded"] == 1
        assert snap["quarantined"] == 1
        assert [t["to"] for t in snap["transitions"]] == [
            "degraded", "quarantined"]

    def test_min_samples_gates_transitions(self):
        reg = registry(HealthPolicy(min_samples=4))
        assert reg.record_execution(0, hard_fault=True) is ArrayHealth.HEALTHY
        assert clean(reg) is ArrayHealth.HEALTHY
        assert clean(reg) is ArrayHealth.HEALTHY
        # fourth sample meets min_samples; ewma has decayed below the
        # degrade threshold? 1.0 * 0.75^3 is still >> 8x baseline
        assert clean(reg) is ArrayHealth.DEGRADED

    def test_hard_fault_is_a_weighted_sample_not_instant_quarantine(self):
        reg = registry(HealthPolicy())  # default min_samples=4
        state = reg.record_execution(0, hard_fault=True)
        assert state is ArrayHealth.HEALTHY
        assert reg.snapshot()["arrays"][0]["hard_faults"] == 1

    def test_injected_failures_do_not_double_count_their_retries(self):
        reg = registry()
        # 4 injected soft failures surfaced as the 4 retries they cost:
        # rate = max(4, 4) / (16 + 4), not (4 + 4) / 20
        reg.record_execution(0, writes_verified=16, write_retries_used=4,
                             write_failures_injected=4)
        assert reg.failure_rate(0) == pytest.approx(4 / 20)

    def test_degraded_recovers_below_the_hysteresis_band(self):
        reg = registry()
        dirty(reg)
        assert reg.state_of(0) is ArrayHealth.DEGRADED
        for _ in range(40):  # ewma decays by 0.75x per clean sample
            state = clean(reg)
            if state is ArrayHealth.HEALTHY:
                break
        assert reg.state_of(0) is ArrayHealth.HEALTHY
        assert reg.snapshot()["recovered"] == 1

    def test_quarantine_probation_and_recovery(self):
        clock = FakeClock()
        reg = registry(clock=clock)
        dirty(reg)
        dirty(reg)
        assert reg.state_of(0) is ArrayHealth.QUARANTINED
        assert not reg.allow(0)  # cool-down in force
        clock.advance(10.1)
        assert reg.allow(0)  # probes admitted
        assert clean(reg) is ArrayHealth.QUARANTINED  # 1 of 2 clean probes
        assert clean(reg) is ArrayHealth.HEALTHY
        snap = reg.snapshot()
        assert snap["recovered"] == 1
        assert snap["arrays"][0]["probes"] == 2
        # estimators reset: the poisoned pre-quarantine ewma is gone
        assert reg.failure_rate(0) == 0.0

    def test_dirty_probe_restarts_the_cooldown(self):
        clock = FakeClock()
        reg = registry(clock=clock)
        dirty(reg)
        dirty(reg)
        clock.advance(10.1)
        assert reg.allow(0)
        clean(reg)
        dirty(reg)  # dirty probe: clean streak broken, cool-down restarts
        assert reg.state_of(0) is ArrayHealth.QUARANTINED
        assert not reg.allow(0)
        clock.advance(10.1)
        assert reg.allow(0)
        assert clean(reg) is ArrayHealth.QUARANTINED
        assert clean(reg) is ArrayHealth.HEALTHY

    def test_on_transition_callback_sees_every_move(self):
        seen = []
        reg = registry(on_transition=lambda *args: seen.append(args))
        dirty(reg, array_id=3)
        dirty(reg, array_id=3)
        assert [(a, old.value, new.value) for a, old, new, _ in seen] == [
            (3, "healthy", "degraded"), (3, "degraded", "quarantined")]
        assert all(isinstance(reason, str) and reason for *_ignored,
                   reason in seen)

    def test_force_state_and_census(self):
        clock = FakeClock()
        reg = registry(clock=clock)
        clean(reg, array_id=0)
        clean(reg, array_id=1)
        reg.force_state(1, ArrayHealth.QUARANTINED, reason="operator")
        assert reg.census() == (1, 2)
        assert not reg.allow(1)
        with pytest.raises(ServeError):
            reg.force_state(0, "quarantined")  # not an ArrayHealth

    def test_snapshot_shape(self):
        reg = registry()
        reg.record_execution(0, writes_verified=8, write_retries_used=2,
                             discovered_faults=1)
        reg.note_breaker_trip()
        snap = reg.snapshot()
        assert snap["baseline"] == pytest.approx(
            RERAM.write_failure_probability)
        assert snap["breaker_trips"] == 1
        entry = snap["arrays"][0]
        assert entry["samples"] == 1
        assert entry["retries"] == 2
        assert entry["faults_discovered"] == 1
        assert 0.0 < entry["failure_rate"] <= 1.0
        assert entry["window_rate"] == pytest.approx(entry["failure_rate"])


# ----------------------------------------------------------------------
# static fault-map assessment and the multi-array bridge
# ----------------------------------------------------------------------
def saturate(fault_map, target, array, fraction):
    """Mark the first ``fraction`` of the array's usable window dead."""
    budget = int(target.usable_rows * target.cols * fraction) + 1
    for row in range(target.usable_rows):
        for col in range(target.cols):
            if budget == 0:
                return
            fault_map.mark_dead(array, row, col)
            budget -= 1


class TestFaultMapAssessment:
    def test_subarray_exclusions_flags_saturated_arrays(self):
        target = TargetSpec.square(16, RERAM, num_arrays=3)
        fm = FaultMap()
        saturate(fm, target, 1, 0.30)
        assert subarray_exclusions(fm, target) == (1,)
        assert subarray_exclusions(None, target) == ()
        with pytest.raises(ServeError):
            subarray_exclusions(fm, target, max_fault_fraction=0.0)

    def test_never_excludes_every_array(self):
        target = TargetSpec.square(16, RERAM, num_arrays=2)
        fm = FaultMap()
        saturate(fm, target, 0, 0.40)
        saturate(fm, target, 1, 0.30)
        # both are over threshold; the least-faulty one stays in service
        assert subarray_exclusions(fm, target) == (0,)

    def test_assess_fault_map_states(self):
        target = TargetSpec.square(16, RERAM, num_arrays=3)
        fm = FaultMap()
        saturate(fm, target, 1, 0.10)
        saturate(fm, target, 2, 0.30)
        assessment = assess_fault_map(fm, target)
        assert assessment[0]["state"] is ArrayHealth.HEALTHY
        assert assessment[1]["state"] is ArrayHealth.DEGRADED
        assert assessment[2]["state"] is ArrayHealth.QUARANTINED
        assert assessment[2]["density"] > 0.25
        with pytest.raises(ServeError):
            assess_fault_map(fm, target, degrade_fraction=0.5,
                             quarantine_fraction=0.25)

    def test_exclude_arrays_config_is_normalized_and_honored(self):
        config = CompilerConfig(schedule="multi", exclude_arrays=[2, 1, 2])
        assert config.exclude_arrays == (1, 2)
        dag = synthetic_dag(num_ops=48, num_inputs=12, seed=5,
                            name="excl-test")
        target = TargetSpec.square(16, RERAM, num_arrays=4)
        program = SherlockCompiler(target, config, cache=False).compile(dag)
        used = set()
        for inst in program.instructions:
            used |= set(instruction_arrays(inst))
        assert used and not used & {1, 2}
        rng = random.Random(0)
        inputs = {o.name: rng.getrandbits(8) for o in dag.inputs()}
        assert program.execute(inputs, 8) == evaluate(dag, inputs, 8)


# ----------------------------------------------------------------------
# the service's health-driven offload ladder
# ----------------------------------------------------------------------
class TestServiceHealthIntegration:
    def test_quarantined_array_is_offloaded_then_probed(self):
        clock = FakeClock()
        policy = HealthPolicy(min_samples=1, probation_period_s=5.0,
                              probation_successes=1)
        dag = small_dag()
        with CompileService(small_target(num_arrays=4), CompilerConfig(),
                            workers=1, clock=clock,
                            health_policy=policy) as service:
            service.health.force_state(0, ArrayHealth.QUARANTINED)
            result = service.process([request_for(dag, array_id=0)])[0]
            assert result.error is None
            assert result.engine == "cpu"
            assert "quarantined" in result.offload_reason
            clock.advance(5.1)  # probation: the probe reaches CIM again
            probe = service.process([request_for(dag, array_id=0)])[0]
            assert probe.error is None
            assert probe.engine == "cim"
            assert service.health.state_of(0) is ArrayHealth.HEALTHY

    def test_degraded_fleet_offloads_but_admits_probes(self):
        clock = FakeClock()
        policy = HealthPolicy(min_samples=1, probation_period_s=5.0,
                              probation_successes=1)
        dag = small_dag()
        with CompileService(small_target(num_arrays=4), CompilerConfig(),
                            workers=1, clock=clock,
                            health_policy=policy) as service:
            # track three arrays, then quarantine two: 1/3 healthy is
            # below the 0.5 min_healthy_fraction, so the fleet degrades
            for array_id in (0, 1, 2):
                service.process([request_for(dag, array_id=array_id)])
            service.health.force_state(1, ArrayHealth.QUARANTINED)
            service.health.force_state(2, ArrayHealth.QUARANTINED)
            result = service.process([request_for(dag, array_id=0)])[0]
            assert result.engine == "cpu"
            assert "degraded-fleet" in result.offload_reason
            assert service.health.snapshot()["quarantined"] == 2

    def test_stats_surface_carries_health(self):
        dag = small_dag()
        with CompileService(small_target(), CompilerConfig(),
                            workers=1) as service:
            service.process([request_for(dag)])
            stats = service.stats()
            assert stats["health"]["arrays"][0]["samples"] >= 1
            text = service.stats_text()
            assert "health: baseline=" in text
            assert "array 0: state=healthy" in text


# ----------------------------------------------------------------------
# scrub samples, vote disagreements, concurrency
# ----------------------------------------------------------------------
class TestActiveIntegritySamples:
    def test_scrub_discovery_is_a_weighted_sample(self):
        reg = registry()
        # 1 latent fault in 160 cells at weight 16 => rate 0.1, far above
        # any threshold: one sample walks HEALTHY -> DEGRADED
        state = reg.record_scrub(0, cells_probed=160, latent_faults=1)
        assert state is ArrayHealth.DEGRADED
        snap = reg.snapshot()["arrays"][0]
        assert snap["scrub_probes"] == 160
        assert snap["scrub_faults"] == 1
        assert snap["faults_discovered"] == 1

    def test_clean_scrub_slice_recovers_a_degraded_array(self):
        reg = registry()
        # 1 latent in 8000 cells at weight 16 => rate 2e-3: inside the
        # degraded band (8e-4 .. 6.4e-3 for the ReRAM baseline)
        reg.record_scrub(0, cells_probed=8000, latent_faults=1)
        assert reg.state_of(0) is ArrayHealth.DEGRADED
        for _ in range(32):  # rate-0 samples decay the EWMA
            reg.record_scrub(0, cells_probed=64)
        assert reg.state_of(0) is ArrayHealth.HEALTHY

    def test_scrub_on_quarantined_array_updates_counters_only(self):
        clock = FakeClock()
        reg = registry(clock=clock)
        reg.force_state(0, ArrayHealth.QUARANTINED)
        clock.advance(60.0)  # probation window is open
        reg.record_scrub(0, cells_probed=64)
        reg.record_scrub(0, cells_probed=64)
        snap = reg.snapshot()["arrays"][0]
        assert snap["scrub_probes"] == 128
        # background sweeps are not probation probes
        assert snap["probes"] == 0
        assert reg.state_of(0) is ArrayHealth.QUARANTINED

    def test_scrub_rejects_negative_counts(self):
        with pytest.raises(ServeError):
            registry().record_scrub(0, cells_probed=-1)

    def test_vote_disagreement_counts_like_a_hard_fault(self):
        reg = registry()
        assert reg.record_vote_disagreement(0) is ArrayHealth.DEGRADED
        assert reg.record_vote_disagreement(0) is ArrayHealth.QUARANTINED
        snap = reg.snapshot()
        assert snap["vote_disagreements"] == 2
        assert snap["arrays"][0]["vote_disagreements"] == 2

    def test_concurrent_hammer_loses_no_samples_or_transitions(self):
        import threading

        reg = registry(policy=HealthPolicy(min_samples=1))
        moves = []
        reg._on_transition = lambda *t: moves.append(t)
        threads_per_array, samples = 4, 50

        def hammer(array_id, seed):
            rng = random.Random(seed)
            for _ in range(samples):
                if rng.random() < 0.5:
                    dirty(reg, array_id)
                else:
                    clean(reg, array_id)

        threads = [
            threading.Thread(target=hammer, args=(array_id, seed))
            for array_id in (0, 1) for seed in range(threads_per_array)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = reg.snapshot()
        for array_id in (0, 1):
            rec = snap["arrays"][array_id]
            assert rec["samples"] == threads_per_array * samples
            assert rec["state"] in ("healthy", "degraded", "quarantined")
            assert 0.0 <= rec["failure_rate"] <= 1.0
        # every callback-visible move is also in the per-array tallies
        assert len(moves) == sum(
            snap["arrays"][a]["transitions"] for a in (0, 1))
        assert (snap["degraded"] + snap["quarantined"] + snap["recovered"]
                >= len([m for m in moves]) // 3 or moves == [])


class TestSubarrayPenalties:
    def test_degraded_band_arrays_are_penalized(self):
        target = TargetSpec.square(16, RERAM, num_arrays=4)
        fault_map = FaultMap()
        cells = target.usable_rows * target.cols
        # array 1: ~10% density (degraded band); array 2: >25% (quarantine)
        for index in range(max(2, cells // 10)):
            fault_map.set_fault(1, index // target.cols,
                                index % target.cols, CellFault.STUCK0)
        for index in range(cells // 3):
            fault_map.set_fault(2, index // target.cols,
                                index % target.cols, CellFault.STUCK1)
        penalties = dict(subarray_penalties(fault_map, target, penalty=3.0))
        assert penalties == {1: 3.0}  # quarantined array is excluded, not
        # penalized; healthy arrays carry no penalty
        assert subarray_exclusions(fault_map, target) == (2,)

    def test_penalties_round_trip_through_config(self):
        config = CompilerConfig(
            schedule="multi",
            array_penalties=subarray_penalties(FaultMap(),
                                               small_target()) or
            ((1, 2.5),))
        assert config.array_penalties == ((1, 2.5),)
        with pytest.raises(Exception):
            CompilerConfig(array_penalties=((-1, 2.0),))

    def test_rejects_negative_penalty(self):
        with pytest.raises(ServeError):
            subarray_penalties(FaultMap(), small_target(), penalty=-1.0)
