"""Tests for the shared bounded-retry/backoff helper (repro.util.retry)."""

import random

import pytest

from repro.errors import (
    RetryExhaustedError,
    SherlockError,
    WorkerCrashError,
)
from repro.util import RetryPolicy, compute_backoff, retry_call


class Flaky:
    """Callable failing ``failures`` times before returning ``value``."""

    def __init__(self, failures, value="ok", error=WorkerCrashError):
        self.failures = failures
        self.value = value
        self.error = error
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error(f"transient #{self.calls}")
        return self.value


def no_sleep(_delay):
    pass


class TestComputeBackoff:
    def test_first_retry_draws_from_base_floor(self):
        rng = random.Random(0)
        for _ in range(50):
            delay = compute_backoff(1, 0.0, base_delay_s=0.05,
                                    max_delay_s=2.0, rng=rng)
            assert 0.05 <= delay <= 2.0

    def test_decorrelated_window_grows_with_previous_delay(self):
        rng = random.Random(1)
        for _ in range(50):
            delay = compute_backoff(2, 0.4, base_delay_s=0.05,
                                    max_delay_s=10.0, rng=rng)
            assert 0.05 <= delay <= 3 * 0.4

    def test_max_delay_clamps(self):
        rng = random.Random(2)
        for _ in range(50):
            delay = compute_backoff(3, 100.0, base_delay_s=0.05,
                                    max_delay_s=1.5, rng=rng)
            assert delay <= 1.5

    def test_invalid_inputs_raise(self):
        rng = random.Random(0)
        with pytest.raises(SherlockError):
            compute_backoff(0, 0.0, base_delay_s=0.1, max_delay_s=1.0,
                            rng=rng)
        with pytest.raises(SherlockError):
            compute_backoff(1, 0.0, base_delay_s=2.0, max_delay_s=1.0,
                            rng=rng)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(SherlockError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(SherlockError):
            RetryPolicy(base_delay_s=-1.0)
        with pytest.raises(SherlockError):
            RetryPolicy(base_delay_s=1.0, max_delay_s=0.5)

    def test_classification_by_type(self):
        policy = RetryPolicy(retryable=(WorkerCrashError,))
        assert policy.is_retryable(WorkerCrashError("x"))
        assert not policy.is_retryable(ValueError("x"))

    def test_classify_callable_can_veto(self):
        policy = RetryPolicy(
            retryable=(OSError,),
            classify=lambda e: getattr(e, "errno", None) != 28)
        assert policy.is_retryable(OSError(5, "io"))
        assert not policy.is_retryable(OSError(28, "enospc"))


class TestRetryCall:
    def test_success_first_try(self):
        flaky = Flaky(0)
        assert retry_call(flaky, sleep=no_sleep) == "ok"
        assert flaky.calls == 1

    def test_transient_failures_are_retried(self):
        flaky = Flaky(2)
        policy = RetryPolicy(max_attempts=3, retryable=(WorkerCrashError,))
        assert retry_call(flaky, policy=policy, sleep=no_sleep) == "ok"
        assert flaky.calls == 3

    def test_fatal_error_propagates_unchanged(self):
        def fatal():
            raise SherlockError("bad kernel")

        policy = RetryPolicy(max_attempts=5, retryable=(WorkerCrashError,))
        with pytest.raises(SherlockError, match="bad kernel"):
            retry_call(fatal, policy=policy, sleep=no_sleep)

    def test_exhaustion_wraps_last_error(self):
        flaky = Flaky(10)
        policy = RetryPolicy(max_attempts=3, retryable=(WorkerCrashError,))
        with pytest.raises(RetryExhaustedError) as excinfo:
            retry_call(flaky, policy=policy, sleep=no_sleep, label="job 7")
        assert flaky.calls == 3
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.last_error, WorkerCrashError)
        assert isinstance(excinfo.value.__cause__, WorkerCrashError)
        assert "job 7" in str(excinfo.value)

    def test_max_attempts_one_never_retries(self):
        flaky = Flaky(1)
        policy = RetryPolicy(max_attempts=1, retryable=(WorkerCrashError,))
        with pytest.raises(RetryExhaustedError):
            retry_call(flaky, policy=policy, sleep=no_sleep)
        assert flaky.calls == 1

    def test_sleep_receives_backoff_delays(self):
        delays = []
        flaky = Flaky(3)
        policy = RetryPolicy(max_attempts=4, retryable=(WorkerCrashError,),
                             base_delay_s=0.01, max_delay_s=0.5, seed=42)
        retry_call(flaky, policy=policy, sleep=delays.append)
        assert len(delays) == 3
        assert all(0.01 <= d <= 0.5 for d in delays)

    def test_seeded_policy_is_deterministic(self):
        policy = RetryPolicy(max_attempts=4, retryable=(WorkerCrashError,),
                             base_delay_s=0.01, max_delay_s=0.5, seed=7)
        runs = []
        for _ in range(2):
            delays = []
            retry_call(Flaky(3), policy=policy, sleep=delays.append)
            runs.append(delays)
        assert runs[0] == runs[1]

    def test_on_retry_hook_observes_each_retry(self):
        events = []
        flaky = Flaky(2)
        policy = RetryPolicy(max_attempts=3, retryable=(WorkerCrashError,))
        retry_call(flaky, policy=policy, sleep=no_sleep,
                   on_retry=lambda a, e, d: events.append((a, str(e))))
        assert [a for a, _ in events] == [1, 2]
        assert "transient #1" in events[0][1]
