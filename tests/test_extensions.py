"""Tests for the reproduction extensions: instruction-text round-trips,
program serialization, endurance analysis, parallel-array timing."""

import random

import pytest

from repro.arch import (
    NotInst,
    ReadInst,
    ShiftInst,
    TargetSpec,
    TransferInst,
    WriteInst,
    parse_instruction,
    parse_program,
)
from repro.core import CompilerConfig, compile_dag, load_program, save_program
from repro.devices import PCM, RERAM, STT_MRAM
from repro.dfg import DFGBuilder, OpType
from repro.errors import SimulationError
from repro.sim import (
    analyze_trace,
    parallel_latency_cycles,
    static_write_counts,
    wear_report,
)
from repro.workloads import bitweaving


def target(**kwargs):
    kwargs.setdefault("num_arrays", 8)
    return TargetSpec.square(64, RERAM, **kwargs)


class TestInstructionParsing:
    CASES = [
        ReadInst(0, (1, 5, 9, 13), (5,)),
        ReadInst(0, (4, 8, 12, 16), (3, 4),
                 (OpType.XOR, OpType.AND, OpType.OR, OpType.XOR)),
        WriteInst(2, (4, 8, 12, 16), 9),
        ShiftInst(0, 3),
        ShiftInst(1, -2),
        NotInst(1, (3, 7)),
        TransferInst(0, 2, (7,)),
    ]

    @pytest.mark.parametrize("inst", CASES, ids=lambda i: i.to_text())
    def test_roundtrip(self, inst):
        assert parse_instruction(inst.to_text()) == inst

    def test_program_roundtrip(self):
        dag = bitweaving.between_dag(bits=4)
        program = compile_dag(dag, target())
        text = program.text()
        assert parse_program(text) == program.instructions

    def test_comments_and_blanks_skipped(self):
        text = "# header\n\nwrite [0][1][2]\n   \n# done\n"
        assert parse_program(text) == [WriteInst(0, (1,), 2)]

    def test_malformed_rejected(self):
        for bad in ("noop [0]", "read [0][1]", "write [0][][2]",
                    "read [0][1][2,3] [frob]", "shift [0] U[1]"):
            with pytest.raises(SimulationError):
                parse_instruction(bad)


class TestSerialization:
    def roundtrip(self, tmp_path, dag, config=None, tech=RERAM):
        t = TargetSpec.square(64, tech, num_arrays=8)
        program = compile_dag(dag, t, config)
        path = tmp_path / "program.json"
        save_program(program, path)
        return program, load_program(path)

    def test_roundtrip_preserves_instructions(self, tmp_path):
        dag = bitweaving.between_dag(bits=4)
        original, loaded = self.roundtrip(tmp_path, dag)
        assert loaded.instructions == original.instructions
        assert loaded.target == original.target
        assert loaded.config == original.config

    def test_loaded_program_executes(self, tmp_path):
        dag = bitweaving.between_dag(bits=4)
        original, loaded = self.roundtrip(tmp_path, dag)
        rng = random.Random(0)
        column = [rng.randrange(16) for _ in range(12)]
        inputs = bitweaving.scan_inputs(3, 12, column, bits=4)
        assert loaded.execute(inputs, 12) == original.execute(inputs, 12)
        assert loaded.verify(inputs, 12)

    def test_metrics_survive_roundtrip(self, tmp_path):
        dag = bitweaving.between_dag(bits=4)
        original, loaded = self.roundtrip(tmp_path, dag)
        assert loaded.metrics.latency_cycles == original.metrics.latency_cycles
        assert loaded.metrics.energy_pj == pytest.approx(
            original.metrics.energy_pj)

    def test_custom_technology_roundtrips(self, tmp_path):
        custom = RERAM.with_variability(0.09, 0.2)
        dag = bitweaving.between_dag(bits=4)
        t = TargetSpec.square(64, custom, num_arrays=8)
        program = compile_dag(dag, t)
        path = tmp_path / "p.json"
        save_program(program, path)
        loaded = load_program(path)
        assert loaded.target.technology.sigma_rel_lrs == 0.09

    def test_builder_dag_roundtrip(self, tmp_path):
        b = DFGBuilder()
        x, y = b.inputs("x", "y")
        b.output("o", ~(x ^ y) & x)
        original, loaded = self.roundtrip(tmp_path, b.build(),
                                          CompilerConfig(mapper="naive"))
        assert loaded.execute({"x": 0b1100, "y": 0b1010}, 4) == \
            original.execute({"x": 0b1100, "y": 0b1010}, 4)


class TestDegradedSerialization:
    """Format v2: staged, multi-array and fault-aware programs round-trip."""

    def oversized(self):
        from repro.workloads.synthetic import synthetic_dag

        dag = synthetic_dag(num_ops=48, num_inputs=8, seed=7, name="big")
        return dag, TargetSpec.square(8, RERAM, num_arrays=2)

    def golden_fixed_point(self, tmp_path, program):
        """After one id-normalizing roundtrip the codec is byte-stable.

        Loading renumbers DAG node ids compactly (as v1 always did), so
        the golden property is: the *second* and *third* serializations
        are byte-identical — the codec reaches a fixed point.
        """
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        third = tmp_path / "third.json"
        save_program(program, first)
        save_program(load_program(first), second)
        save_program(load_program(second), third)
        assert second.read_text() == third.read_text()
        return load_program(third)

    def test_golden_staged_roundtrip_is_byte_stable(self, tmp_path):
        dag, t = self.oversized()
        program = compile_dag(dag, t, cache=False)
        assert program.stages  # exercises the staged branch of the codec
        final = self.golden_fixed_point(tmp_path, program)
        assert final.instructions == program.instructions

    def test_golden_single_roundtrip_is_byte_stable(self, tmp_path):
        dag = bitweaving.between_dag(bits=4)
        program = compile_dag(dag, target())
        final = self.golden_fixed_point(tmp_path, program)
        assert final.instructions == program.instructions

    def test_multiarray_program_round_trips(self, tmp_path):
        from repro.workloads.synthetic import synthetic_dag

        dag = synthetic_dag(num_ops=32, num_inputs=8, seed=3, name="multi")
        t = TargetSpec.square(32, RERAM, num_arrays=4)
        program = compile_dag(dag, t, CompilerConfig(schedule="multi"),
                              cache=False)
        path = tmp_path / "multi.json"
        save_program(program, path)
        loaded = load_program(path)
        assert loaded.instructions == program.instructions
        rng = random.Random(0)
        inputs = {o.name: rng.getrandbits(8) for o in dag.inputs()}
        assert loaded.execute(inputs, 8) == program.execute(inputs, 8)

    def test_fault_map_travels_with_the_program(self, tmp_path):
        from repro.core import SherlockCompiler
        from repro.devices import FaultMap
        from repro.workloads.synthetic import synthetic_dag

        dag = synthetic_dag(num_ops=24, num_inputs=8, seed=4)
        t = TargetSpec.square(16, RERAM, num_arrays=2)
        fm = FaultMap.random_map(t, fraction=0.03, seed=5)
        program = SherlockCompiler(t, CompilerConfig(),
                                   fault_map=fm).compile(dag)
        path = tmp_path / "faulty.json"
        save_program(program, path)
        loaded = load_program(path)
        assert loaded.fault_map is not None
        assert loaded.fault_map.cells() == fm.cells()
        rng = random.Random(1)
        inputs = {o.name: rng.getrandbits(8) for o in dag.inputs()}
        assert loaded.execute(inputs, 8, verify_writes=True) == \
            program.execute(inputs, 8, verify_writes=True)

    def test_ladder_and_degradation_survive(self, tmp_path):
        dag, t = self.oversized()
        program = compile_dag(dag, t, cache=False)
        path = tmp_path / "ladder.json"
        save_program(program, path)
        loaded = load_program(path)
        assert loaded.degradation == program.degradation != "none"
        assert [(a.rung, a.succeeded, a.stages) for a in loaded.ladder] == \
            [(a.rung, a.succeeded, a.stages) for a in program.ladder]

    def test_staged_metrics_survive_roundtrip(self, tmp_path):
        dag, t = self.oversized()
        program = compile_dag(dag, t, cache=False)
        path = tmp_path / "staged.json"
        save_program(program, path)
        loaded = load_program(path)
        assert loaded.metrics.latency_cycles == program.metrics.latency_cycles
        assert loaded.overlap.makespan_cycles == \
            program.overlap.makespan_cycles

    def test_version_1_documents_still_load(self, tmp_path):
        """A v1 document (no stages/ladder/fault map keys) loads fine."""
        import json

        dag = bitweaving.between_dag(bits=4)
        program = compile_dag(dag, target())
        path = tmp_path / "v1.json"
        save_program(program, path)
        document = json.loads(path.read_text())
        document["format_version"] = 1
        for key in ("ladder", "degradation", "fault_map"):
            document.pop(key, None)
        path.write_text(json.dumps(document))
        loaded = load_program(path)
        assert loaded.instructions == program.instructions
        assert loaded.fault_map is None
        assert loaded.degradation == "none"


class TestSerializationErrors:
    def test_bad_format_version(self, tmp_path):
        import json

        from repro.errors import SherlockError

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 999}))
        with pytest.raises(SherlockError, match="unsupported program format"):
            load_program(path)

    def test_tampered_placements_rejected(self, tmp_path):
        import json

        from repro.errors import SherlockError

        dag = bitweaving.between_dag(bits=4)
        program = compile_dag(dag, target())
        path = tmp_path / "p.json"
        save_program(program, path)
        document = json.loads(path.read_text())
        document["placements"]["999999"] = [[0, 0, 0]]
        path.write_text(json.dumps(document))
        with pytest.raises(SherlockError, match="unknown operand"):
            load_program(path)


class TestEndurance:
    def test_static_counts_match_machine(self):
        dag = bitweaving.between_dag(bits=4)
        program = compile_dag(dag, target())
        rng = random.Random(0)
        column = [rng.randrange(16) for _ in range(8)]
        inputs = bitweaving.scan_inputs(3, 12, column, bits=4)
        from repro.sim import ArrayMachine, preload_sources

        machine = ArrayMachine(program.target, 8)
        preload_sources(machine, program.layout, program.dag, inputs)
        machine.run(program.instructions)
        assert machine.write_counts == static_write_counts(program.instructions)

    def test_wear_report_fields(self):
        trace = [WriteInst(0, (0, 1), 5), WriteInst(0, (0,), 5)]
        report = wear_report(trace)
        assert report.total_cell_writes == 3
        assert report.cells_written == 2
        assert report.max_writes_per_cell == 2
        assert report.hottest_cell == (0, 5, 0)
        assert report.mean_writes_per_cell == pytest.approx(1.5)

    def test_empty_trace(self):
        report = wear_report([])
        assert report.max_writes_per_cell == 0
        assert report.lifetime_executions(RERAM) == float("inf")

    def test_lifetime_ordering_by_technology(self):
        trace = [WriteInst(0, (0,), 1)] * 4
        report = wear_report(trace)
        assert (report.lifetime_executions(STT_MRAM)
                > report.lifetime_executions(RERAM)
                > report.lifetime_executions(PCM))

    def test_single_write_per_cell_in_compiled_program(self):
        """Each cell is allocated once, so one run writes it at most once."""
        dag = bitweaving.between_dag(bits=8)
        program = compile_dag(dag, target())
        assert wear_report(program.instructions).max_writes_per_cell == 1


class TestParallelTiming:
    def test_single_array_equals_serial(self):
        trace = [ReadInst(0, (0,), (1,)), WriteInst(0, (0,), 2),
                 ShiftInst(0, 1)]
        t = target()
        serial = analyze_trace(trace, t).latency_cycles
        assert parallel_latency_cycles(trace, t) == serial

    def test_two_arrays_overlap(self):
        trace = [WriteInst(0, (0,), 1), WriteInst(1, (0,), 1)]
        t = target()
        serial = analyze_trace(trace, t).latency_cycles
        parallel = parallel_latency_cycles(trace, t)
        assert parallel == serial // 2

    def test_transfer_synchronizes(self):
        trace = [
            WriteInst(0, (0,), 1),  # both arrays do one write in parallel,
            WriteInst(1, (0,), 1),  # then the transfer joins their clocks
            TransferInst(0, 1, (0,)),
            WriteInst(1, (0,), 2),
        ]
        t = target()
        parallel = parallel_latency_cycles(trace, t)
        cost = t.cost_model
        import math

        write = max(1, math.ceil(cost.write_latency_ns() * t.clock_ghz))
        xfer = max(1, math.ceil(cost.transfer_latency_ns() * t.clock_ghz))
        assert parallel == write + xfer + write

    def test_parallel_never_exceeds_serial(self):
        dag = bitweaving.between_batch_dag(bits=8, segments=8)
        program = compile_dag(dag, target(num_arrays=16))
        serial = program.metrics.latency_cycles
        parallel = parallel_latency_cycles(program.instructions, program.target)
        assert parallel <= serial

    def test_empty_trace(self):
        assert parallel_latency_cycles([], target()) == 0
