"""Differential tests: the vectorized backend vs the interpreted reference.

The contract of ``repro.sim.vectorized`` is bit-exactness on every
deterministic run: same outputs *and* the same machine counters as the
interpreted :class:`~repro.sim.executor.ArrayMachine` across the whole
semantic matrix — every ISA op, MRA level, stuck-at fault-map pattern,
verify-after-write escalation, staged (spill-and-partition) and
multi-array programs.  Only injected-fault draw streams may differ
(distribution-equivalent by construction, checked statistically).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch.target import TargetSpec
from repro.core.compiler import SherlockCompiler, compile_dag
from repro.core.config import CompilerConfig
from repro.devices import RERAM, STT_MRAM, CellFault, FaultMap
from repro.dfg import DataFlowGraph, OpType, evaluate, evaluate_many
from repro.errors import HardFaultError, SherlockError
from repro.sim.endurance import static_write_counts
from repro.sim.executor import extract_outputs, preload_sources
from repro.sim.vectorized import (
    ENGINES,
    VectorMachine,
    execute as vector_execute,
    resolve_engine,
    validate_engine,
)
from repro.workloads import get_workload
from repro.workloads.synthetic import synthetic_dag

BINARY_OPS = [OpType.AND, OpType.OR, OpType.XOR,
              OpType.NAND, OpType.NOR, OpType.XNOR]


def _inputs_for(dag, lanes: int, seed: int = 0) -> dict[str, int]:
    rng = random.Random(seed)
    return {op.name: rng.getrandbits(lanes) for op in dag.inputs()}


def _op_dag(op: OpType, arity: int) -> DataFlowGraph:
    """One op of each type plus consumers, so senses feed further senses."""
    dag = DataFlowGraph(f"op-{op.value}-{arity}")
    values = [dag.add_input(f"x{i}") for i in range(max(arity, 2))]
    if op is OpType.NOT:
        first = dag.add_op(op, [values[0]])
    else:
        first = dag.add_op(op, values[:arity])
    second = dag.add_op(OpType.XOR, [first, values[-1]])
    dag.mark_output(first, "direct")
    dag.mark_output(second, "chained")
    return dag


def _differential(program, inputs, lanes: int) -> dict[str, int]:
    """Outputs of both engines, asserted bit-identical (and returned)."""
    interpreted = program.execute(inputs, lanes, engine="interpreted")
    vectorized = program.execute(inputs, lanes, engine="vectorized")
    assert interpreted == vectorized
    return vectorized


class TestEngineSelection:
    def test_unknown_engine_rejected_with_valid_list(self):
        program = compile_dag(_op_dag(OpType.AND, 2),
                              TargetSpec.square(16, RERAM), cache=False)
        with pytest.raises(SherlockError, match=r"auto, interpreted, vectorized"):
            program.execute(_inputs_for(program.source_dag, 8), 8,
                            engine="turbo")

    def test_validate_engine_accepts_all_engines(self):
        for engine in ("auto",) + ENGINES:
            assert validate_engine(engine) == engine
        with pytest.raises(SherlockError):
            validate_engine("auto", allow_auto=False)

    def test_auto_resolution_is_conservative(self):
        assert resolve_engine("auto") == "vectorized"
        assert resolve_engine("auto", fault_rng=7) == "interpreted"
        assert resolve_engine("auto", verify_writes=True) == "interpreted"
        assert resolve_engine("auto", observer=object()) == "interpreted"
        assert resolve_engine("interpreted", fault_rng=7) == "interpreted"

    def test_vectorized_rejects_observer(self):
        program = compile_dag(_op_dag(OpType.AND, 2),
                              TargetSpec.square(16, RERAM), cache=False)
        with pytest.raises(SherlockError, match="observer"):
            program.execute(_inputs_for(program.source_dag, 8), 8,
                            observer=object(), engine="vectorized")


class TestOpMatrix:
    @pytest.mark.parametrize("mra", [2, 4])
    @pytest.mark.parametrize("op", BINARY_OPS + [OpType.NOT])
    def test_every_isa_op_every_mra(self, op, mra):
        arities = [1] if op is OpType.NOT else [2, 3]
        for arity in arities:
            dag = _op_dag(op, arity)
            target = TargetSpec.square(32, RERAM, max_activated_rows=max(2, mra))
            program = compile_dag(dag, target, CompilerConfig(mra=mra),
                                  cache=False)
            inputs = _inputs_for(dag, 16, seed=arity)
            outputs = _differential(program, inputs, 16)
            assert outputs == evaluate(dag, inputs, 16)

    @pytest.mark.parametrize("lanes", [1, 8, 64, 100])
    def test_lane_widths_including_multiword(self, lanes):
        dag = synthetic_dag(num_ops=24, num_inputs=6, seed=5, name="lanes")
        program = compile_dag(dag, TargetSpec.square(64, RERAM), cache=False)
        inputs = _inputs_for(dag, lanes, seed=lanes)
        outputs = _differential(program, inputs, lanes)
        assert outputs == evaluate(dag, inputs, lanes)

    def test_error_messages_match_interpreter(self):
        dag = _op_dag(OpType.AND, 2)
        program = compile_dag(dag, TargetSpec.square(16, RERAM), cache=False)
        errors = {}
        for engine in ENGINES:
            with pytest.raises(SherlockError) as info:
                program.execute({"x0": 1}, 8, engine=engine)
            errors[engine] = str(info.value)
        assert errors["interpreted"] == errors["vectorized"]


class TestFaultMapMatrix:
    @pytest.mark.parametrize("kinds", [
        (CellFault.STUCK0,),
        (CellFault.STUCK1,),
        (CellFault.DEAD,),
        (CellFault.STUCK0, CellFault.STUCK1, CellFault.DEAD),
    ])
    def test_stuck_at_patterns(self, kinds):
        dag = synthetic_dag(num_ops=20, num_inputs=6, seed=2, name="faulty")
        target = TargetSpec.square(32, RERAM)
        fm = FaultMap.random_map(target, 0.03, seed=9, kinds=kinds)
        program = SherlockCompiler(target, CompilerConfig(),
                                   fault_map=fm).compile(dag)
        inputs = _inputs_for(dag, 16, seed=3)
        _differential(program, inputs, 16)

    def test_write_counts_match_on_faulty_arrays(self):
        dag = synthetic_dag(num_ops=16, num_inputs=5, seed=4, name="wc")
        target = TargetSpec.square(32, RERAM)
        fm = FaultMap.random_map(target, 0.02, seed=1,
                                 kinds=(CellFault.STUCK0, CellFault.STUCK1))
        program = SherlockCompiler(target, CompilerConfig(),
                                   fault_map=fm).compile(dag)
        inputs = _inputs_for(dag, 8)
        machine = program.machine(8)
        preload_sources(machine, program.layout, program.dag, inputs)
        machine.run(program.instructions)
        extract_outputs(machine, program.layout, program.dag)
        vmachine = VectorMachine(8)
        vector_execute(program, inputs, lanes=8, machine=vmachine)
        assert vmachine.write_counts == machine.write_counts


def _verified_interpreted(program, inputs, lanes):
    """Interpreted verify-after-write run exposing the machine counters."""
    machine = program.machine(lanes, verify_writes=True)
    if program.stages is not None:
        from repro.mapping.partition import execute_staged

        outputs = execute_staged(program.stages, program.dag,
                                 program.target, inputs, lanes,
                                 machine=machine)
    else:
        preload_sources(machine, program.layout, program.dag, inputs)
        machine.run(program.instructions)
        outputs = extract_outputs(machine, program.layout, program.dag)
    return outputs, machine


class TestVerifyAfterWrite:
    def test_counters_bit_identical_with_stuck_cells_and_spares(self):
        dag = synthetic_dag(num_ops=18, num_inputs=6, seed=6, name="verify")
        target = TargetSpec.square(32, RERAM)
        fm = FaultMap.random_map(target, 0.02, seed=5,
                                 kinds=(CellFault.STUCK0, CellFault.STUCK1,
                                        CellFault.DEAD))
        program = SherlockCompiler(target, CompilerConfig(),
                                   fault_map=fm).compile(dag)
        inputs = _inputs_for(dag, 8, seed=7)
        expected, machine = _verified_interpreted(program, inputs, 8)
        vmachine = VectorMachine(8)
        got = vector_execute(program, inputs, lanes=8, verify_writes=True,
                             machine=vmachine)
        assert got == expected
        assert vmachine.writes_verified == machine.writes_verified
        assert vmachine.write_retries_used == machine.write_retries_used
        assert vmachine.remaps == machine.remaps
        assert (vmachine.discovered_faults.cells()
                == machine.discovered_faults.cells())
        assert vmachine.write_counts == machine.write_counts

    def test_hard_fault_errors_byte_identical(self):
        dag = synthetic_dag(num_ops=40, num_inputs=6, seed=8, name="hard")
        target = TargetSpec.square(8, RERAM, num_arrays=2)
        program = compile_dag(dag, target, CompilerConfig(), cache=False)
        assert program.stages is not None  # staged: no spare pool
        fm = FaultMap()
        cell = next(iter(static_write_counts(program.instructions)))
        fm.mark_dead(*cell)
        faulty = SherlockCompiler(target, CompilerConfig()).compile(dag)
        object.__setattr__(faulty, "fault_map", fm)
        inputs = _inputs_for(dag, 8)
        messages = {}
        for engine in ENGINES:
            with pytest.raises(HardFaultError) as info:
                faulty.execute(inputs, 8, verify_writes=True, engine=engine)
            messages[engine] = str(info.value)
        assert messages["interpreted"] == messages["vectorized"]


class TestStagedAndMultiArray:
    def test_staged_program_differential(self):
        dag = synthetic_dag(num_ops=40, num_inputs=6, seed=8, name="staged")
        target = TargetSpec.square(8, RERAM, num_arrays=2)
        program = compile_dag(dag, target, CompilerConfig(), cache=False)
        assert program.stages is not None
        inputs = _inputs_for(dag, 8, seed=1)
        outputs = _differential(program, inputs, 8)
        assert outputs == evaluate(dag, inputs, 8)

    def test_multi_array_schedule_differential(self):
        dag = get_workload("sobel").build_dag()
        target = TargetSpec.square(128, RERAM, num_arrays=4)
        program = compile_dag(dag, target,
                              CompilerConfig(schedule="multi"), cache=False)
        inputs = get_workload("sobel").make_inputs(random.Random(2), 8)
        _differential(program, inputs, 8)


class TestExecuteMany:
    def test_matches_per_set_execution_across_chunks(self):
        dag = synthetic_dag(num_ops=20, num_inputs=5, seed=3, name="many")
        program = compile_dag(dag, TargetSpec.square(32, RERAM), cache=False)
        sets = [_inputs_for(dag, 16, seed=i) for i in range(10)]
        per_set = [program.execute(s, 16, engine="interpreted")
                   for s in sets]
        assert program.execute_many(sets, 16) == per_set
        assert program.execute_many(sets, 16, chunk=3) == per_set
        assert program.execute_many(sets, 16, engine="interpreted") == per_set
        assert evaluate_many(dag, sets, 16) == per_set

    def test_bad_inputs_rejected_per_set(self):
        dag = synthetic_dag(num_ops=8, num_inputs=4, seed=0, name="bad")
        program = compile_dag(dag, TargetSpec.square(32, RERAM), cache=False)
        good = _inputs_for(dag, 16)
        with pytest.raises(SherlockError, match="missing"):
            program.execute_many([good, {"x0": 1}], 16)


class TestInjectionStatistics:
    def test_flip_totals_statistically_consistent(self):
        """Streams differ by design; distributions must not."""
        dag = synthetic_dag(num_ops=24, num_inputs=8, seed=3, name="inj")
        tech = STT_MRAM.with_variability(0.12, 0.12)
        target = TargetSpec.square(64, tech, num_arrays=4,
                                   max_activated_rows=4)
        program = compile_dag(dag, target, CompilerConfig(mra=4),
                              cache=False)
        inputs = _inputs_for(dag, 16)
        totals = {}
        for engine in ENGINES:
            flips = 0
            for trial in range(60):
                if engine == "interpreted":
                    machine = program.machine(16,
                                              fault_rng=random.Random(trial))
                    preload_sources(machine, program.layout, program.dag,
                                    inputs)
                    machine.run(program.instructions)
                    flips += machine.injected_faults
                else:
                    vmachine = VectorMachine(16)
                    vector_execute(program, inputs, lanes=16,
                                   fault_rng=trial, machine=vmachine)
                    flips += vmachine.injected_faults
            totals[engine] = flips
        assert totals["vectorized"] > 0
        ratio = totals["vectorized"] / totals["interpreted"]
        assert 0.7 < ratio < 1.4, totals


@st.composite
def _dags(draw):
    num_inputs = draw(st.integers(2, 5))
    num_ops = draw(st.integers(1, 25))
    dag = DataFlowGraph("hyp-vec")
    values = [dag.add_input(f"x{i}") for i in range(num_inputs)]
    values.append(dag.add_const(draw(st.integers(0, 1))))
    for _ in range(num_ops):
        op = draw(st.sampled_from(BINARY_OPS + [OpType.NOT]))
        if op is OpType.NOT:
            operands = [draw(st.sampled_from(values))]
        else:
            arity = draw(st.integers(2, 3))
            operands = draw(st.permutations(values))[:arity]
        values.append(dag.add_op(op, operands))
    for index in range(draw(st.integers(1, 3))):
        dag.mark_output(draw(st.sampled_from(values)), f"out{index}")
    return dag


class TestPropertyDifferential:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(dag=_dags(), seed=st.integers(0, 2**32 - 1),
           mra=st.sampled_from([2, 4]))
    def test_any_dag_any_mra_bit_identical(self, dag, seed, mra):
        target = TargetSpec.square(64, RERAM, max_activated_rows=max(2, mra))
        program = compile_dag(dag, target, CompilerConfig(mra=mra),
                              cache=False)
        rng = random.Random(seed)
        inputs = {op.name: rng.getrandbits(16) for op in dag.inputs()}
        outputs = _differential(program, inputs, 16)
        assert outputs == evaluate(dag, inputs, 16)
