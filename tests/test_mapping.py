"""Unit tests for the naive mapper, clustering, and the Sherlock mapper."""

import random

import pytest

from repro.arch import ReadInst, TargetSpec
from repro.dfg import DataFlowGraph, DFGBuilder, evaluate
from repro.errors import MappingError
from repro.mapping import (
    SherlockOptions,
    find_clusters,
    map_naive,
    map_sherlock,
    merge_clusters,
)
from repro.sim import ArrayMachine, extract_outputs, preload_sources


def small_target(rows=16, cols=8, num_arrays=2, **kwargs):
    return TargetSpec(
        __import__("repro.devices", fromlist=["RERAM"]).RERAM,
        rows=rows, cols=cols, data_width=32, num_arrays=num_arrays,
        max_activated_rows=4, **kwargs)


def tree_dag(leaves=8) -> DataFlowGraph:
    """Balanced reduction tree of ANDs."""
    b = DFGBuilder("tree")
    level = b.inputs(*[f"x{i}" for i in range(leaves)])
    while len(level) > 1:
        level = [level[i] & level[i + 1] for i in range(0, len(level), 2)]
    b.output("root", level[0])
    return b.build()


def chains_dag(n=4, depth=5) -> DataFlowGraph:
    """Independent XOR chains joined by a final OR tree."""
    b = DFGBuilder("chains")
    tops = []
    for c in range(n):
        acc = b.input(f"a{c}") ^ b.input(f"b{c}")
        for d in range(depth):
            acc = acc ^ b.input(f"i{c}_{d}")
        tops.append(acc)
    acc = tops[0]
    for t in tops[1:]:
        acc = acc | t
    b.output("o", acc)
    return b.build()


def run_and_check(result, dag, lanes=32, seed=0):
    """Execute a mapping result and compare with the DAG reference."""
    rng = random.Random(seed)
    inputs = {o.name: rng.getrandbits(lanes) for o in dag.inputs()}
    machine = ArrayMachine(result.target, lanes)
    preload_sources(machine, result.layout, dag, inputs)
    machine.run(result.instructions)
    outputs = extract_outputs(machine, result.layout, dag)
    assert outputs == evaluate(dag, inputs, lanes)
    return outputs


class TestNaiveMapper:
    def test_produces_correct_program(self):
        dag = tree_dag()
        run_and_check(map_naive(dag, small_target()), dag)

    def test_every_operand_placed(self):
        dag = tree_dag()
        result = map_naive(dag, small_target())
        for operand in dag.operand_nodes():
            assert result.layout.is_placed(operand.node_id)

    def test_single_column_fit_needs_no_moves(self):
        """Small DAG in one column: the paper's best case for Algorithm 1."""
        b = DFGBuilder()
        x, y, z = b.inputs("x", "y", "z")
        b.output("o", (x & y) ^ z)
        dag = b.build()
        result = map_naive(dag, small_target(rows=32))
        assert result.stats.gather_moves == 0
        assert result.layout.columns_used == 1

    def test_overflow_across_columns_causes_moves(self):
        dag = chains_dag(n=6, depth=6)
        result = map_naive(dag, small_target(rows=8, cols=16))
        assert result.layout.columns_used > 1
        assert result.stats.gather_moves > 0
        run_and_check(result, dag)

    def test_capacity_exhaustion_raises(self):
        dag = chains_dag(n=8, depth=8)
        with pytest.raises(MappingError):
            map_naive(dag, small_target(rows=4, cols=2, num_arrays=1))

    def test_stats_populated(self):
        dag = tree_dag()
        result = map_naive(dag, small_target())
        assert result.stats.mapper == "naive"
        assert result.stats.cells_used >= dag.num_operands


class TestClustering:
    def test_chain_forms_single_cluster(self):
        b = DFGBuilder()
        acc = b.input("a") & b.input("b")
        for i in range(5):
            acc = acc & b.input(f"x{i}")
        b.output("o", acc)
        dag = b.build()
        clusters = find_clusters(dag, c_max=64)
        assert len(clusters) == 1
        assert clusters[0].size == dag.num_ops

    def test_footprint_respected(self):
        dag = chains_dag(n=6, depth=8)
        c_max = 10
        for cluster in find_clusters(dag, c_max):
            assert cluster.footprint <= c_max

    def test_footprint_counts_results_and_externals(self):
        b = DFGBuilder()
        x, y = b.inputs("x", "y")
        t = x & y
        b.output("o", t & x)
        dag = b.build()
        (cluster,) = find_clusters(dag, c_max=64)
        # cells: x, y, t, result = 4
        assert cluster.footprint == 4

    def test_independent_chains_get_distinct_clusters(self):
        dag = chains_dag(n=4, depth=4)
        clusters = find_clusters(dag, c_max=8)
        assert len(clusters) >= 4

    def test_merge_clusters_reduces_count(self):
        dag = chains_dag(n=4, depth=3)
        clusters = find_clusters(dag, c_max=6)
        merged, merges = merge_clusters(clusters, k=2, c_max=64, dag=dag)
        assert len(merged) <= max(2, len(clusters) - merges)
        assert merges > 0
        total_ops = sum(c.size for c in merged)
        assert total_ops == dag.num_ops

    def test_merge_stops_when_nothing_fits(self):
        dag = chains_dag(n=4, depth=4)
        clusters = find_clusters(dag, c_max=8)
        merged, _ = merge_clusters(clusters, k=1, c_max=8, dag=dag)
        for cluster in merged:
            assert cluster.footprint <= 8
        assert len(merged) > 1  # k=1 is unreachable under the bound

    def test_all_ops_assigned_exactly_once(self):
        dag = chains_dag(n=3, depth=5)
        clusters = find_clusters(dag, c_max=12)
        seen = [op for c in clusters for op in c.ops]
        assert sorted(seen) == sorted(n.node_id for n in dag.op_nodes())


class TestSherlockMapper:
    def test_produces_correct_program(self):
        dag = chains_dag()
        run_and_check(map_sherlock(dag, small_target()), dag)

    def test_fewer_instructions_than_naive_on_structured_dag(self):
        dag = chains_dag(n=8, depth=10)
        target = small_target(rows=16, cols=16)
        naive = map_naive(dag, target)
        opt = map_sherlock(dag, target)
        assert len(opt.instructions) < len(naive.instructions)
        assert opt.stats.gather_moves <= naive.stats.gather_moves
        run_and_check(opt, dag)
        run_and_check(naive, dag)

    def test_merging_reduces_instruction_count(self):
        dag = chains_dag(n=8, depth=10)
        target = small_target(rows=16, cols=16)
        merged = map_sherlock(dag, target)
        unmerged = map_sherlock(dag, target,
                                SherlockOptions(merge_instructions=False))
        assert len(merged.instructions) < len(unmerged.instructions)
        assert merged.stats.merged_instruction_savings > 0
        run_and_check(merged, dag)
        run_and_check(unmerged, dag)

    def test_merged_reads_carry_multiple_columns(self):
        dag = chains_dag(n=8, depth=10)
        result = map_sherlock(dag, small_target(rows=16, cols=16))
        assert any(isinstance(i, ReadInst) and i.ops and len(i.cols) > 1
                   for i in result.instructions)

    def test_non_selective_target_falls_back_to_per_op(self):
        dag = chains_dag()
        target = small_target(selective_columns=False)
        result = map_sherlock(dag, target)
        for inst in result.instructions:
            if isinstance(inst, ReadInst) and inst.ops:
                assert len(inst.cols) == 1
        run_and_check(result, dag)

    def test_too_many_clusters_raise(self):
        dag = chains_dag(n=8, depth=8)
        with pytest.raises(MappingError):
            map_sherlock(dag, small_target(rows=4, cols=2, num_arrays=1))

    def test_cluster_stats_reported(self):
        dag = chains_dag()
        result = map_sherlock(dag, small_target())
        assert result.stats.clusters is not None
        assert result.stats.clusters >= 1

    def test_not_ops_supported(self):
        b = DFGBuilder()
        x, y = b.inputs("x", "y")
        b.output("o", ~(x & y) ^ ~y)
        dag = b.build()
        run_and_check(map_sherlock(dag, small_target()), dag)
        run_and_check(map_naive(dag, small_target()), dag)

    def test_multi_operand_ops_supported(self):
        b = DFGBuilder()
        ws = b.inputs("a", "b", "c", "d")
        b.output("o", b.and_(*ws))
        dag = b.build()
        result = map_sherlock(dag, small_target())
        reads = [i for i in result.instructions
                 if isinstance(i, ReadInst) and i.ops]
        assert any(len(r.rows) == 4 for r in reads)
        run_and_check(result, dag)

    def test_arity_above_target_mra_rejected(self):
        b = DFGBuilder()
        ws = b.inputs(*"abcdef")
        b.output("o", b.and_(*ws))
        dag = b.build()
        with pytest.raises(MappingError):
            map_sherlock(dag, small_target())  # MRA limit is 4


class TestDeterminism:
    def test_same_dag_same_program(self):
        dag = chains_dag(n=5, depth=6)
        target = small_target()
        a = map_sherlock(dag, target)
        b = map_sherlock(dag, target)
        assert [i.to_text() for i in a.instructions] == \
               [i.to_text() for i in b.instructions]

    def test_naive_deterministic(self):
        dag = chains_dag(n=5, depth=6)
        target = small_target()
        a = map_naive(dag, target)
        b = map_naive(dag, target)
        assert [i.to_text() for i in a.instructions] == \
               [i.to_text() for i in b.instructions]
