"""Tests for the wear-out lifetime campaign (baseline vs mitigation)."""

import pytest

from repro.arch import TargetSpec
from repro.core import CompilerConfig
from repro.devices import RERAM, FaultMap
from repro.errors import SimulationError
from repro.reliability import run_lifetime
from repro.workloads.synthetic import synthetic_dag


def small_target():
    return TargetSpec(RERAM, rows=16, cols=16, data_width=32, num_arrays=2)


def small_dag():
    return synthetic_dag(num_ops=24, num_inputs=8, seed=4)


@pytest.fixture(scope="module")
def campaign():
    """One shared campaign run (the expensive part of this module)."""
    return run_lifetime(small_dag(), small_target(), CompilerConfig(),
                        trials=4, seed=7, endurance=40.0,
                        endurance_spread=0.15, validate=True, lanes=8)


class TestMitigationExtendsLife:
    def test_mitigation_extends_executions_to_death(self, campaign):
        """Acceptance: wear-leveling + remap demonstrably extend lifetime."""
        assert campaign.mean_mitigated_death > campaign.mean_baseline_death
        for base, mitigated in zip(campaign.baseline_deaths,
                                   campaign.mitigated_deaths):
            assert mitigated is None or base is None or mitigated > base

    def test_remap_happens_after_baseline_death(self, campaign):
        # the first remap *is* the baseline's death event: same endurance
        # draws, so the first cell to die is discovered at the same epoch
        for base, remap in zip(campaign.baseline_deaths,
                               campaign.first_remaps):
            assert remap is not None and base is not None
            assert remap >= base

    def test_recompiled_programs_stay_correct(self, campaign):
        assert campaign.validation_failures == 0
        assert all(n > 0 for n in campaign.recompiles)

    def test_wilson_machinery(self, campaign):
        lo, hi = campaign.mitigated_death_wilson
        assert 0.0 <= lo <= hi <= 1.0
        assert campaign.baseline_dead == campaign.trials  # all aged to death
        assert campaign.extension_factor > 1.0

    def test_summary_is_flat_and_complete(self, campaign):
        summary = campaign.summary()
        for key in ("baseline_mean_death", "mitigated_mean_death",
                    "mean_first_remap", "extension_factor",
                    "baseline_dead_ci95_lo", "mitigated_dead_ci95_hi"):
            assert key in summary
        assert summary["trials"] == 4


class TestDeterminismAndVariants:
    def test_same_seed_same_result(self):
        kwargs = dict(trials=2, seed=3, endurance=40.0,
                      endurance_spread=0.1)
        a = run_lifetime(small_dag(), small_target(), **kwargs)
        b = run_lifetime(small_dag(), small_target(), **kwargs)
        assert a.baseline_deaths == b.baseline_deaths
        assert a.mitigated_deaths == b.mitigated_deaths
        assert a.first_remaps == b.first_remaps

    def test_remap_only_still_extends(self):
        result = run_lifetime(small_dag(), small_target(), trials=2, seed=5,
                              endurance=40.0, wear_leveling=False)
        assert result.wear_leveling is False
        assert result.mean_mitigated_death > result.mean_baseline_death

    def test_horizon_censors(self):
        result = run_lifetime(small_dag(), small_target(), trials=2, seed=5,
                              endurance=40.0, horizon=10)
        assert result.baseline_deaths == (None, None)
        assert result.mitigated_deaths == (None, None)
        assert result.baseline_dead == 0

    def test_zero_spread_gives_deterministic_endurance(self):
        result = run_lifetime(small_dag(), small_target(), trials=2, seed=1,
                              endurance_spread=0.0, endurance=40.0)
        assert result.baseline_deaths[0] == result.baseline_deaths[1]

    def test_preexisting_fault_map_is_respected(self):
        seed_map = FaultMap.random_map(small_target(), fraction=0.03, seed=2)
        result = run_lifetime(small_dag(), small_target(), trials=1, seed=1,
                              endurance=40.0, fault_map=seed_map,
                              validate=True, lanes=8)
        assert result.validation_failures == 0


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"trials": 0},
        {"horizon": 0},
        {"endurance": 0.0},
        {"rotation_stride": 0},
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(SimulationError):
            run_lifetime(small_dag(), small_target(), **kwargs)
