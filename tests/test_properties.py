"""Property-based tests (hypothesis) for the core invariants.

The central property of the whole compiler: *any* well-formed DAG, compiled
with either mapper under any configuration, executes to exactly the values
the reference evaluator computes.  Around it, structural invariants of the
IR, the transforms, and the reliability model.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch import TargetSpec
from repro.core import CompilerConfig, SherlockCompiler
from repro.devices import (
    RERAM,
    STT_MRAM,
    application_failure_probability,
    decision_failure_probability,
)
from repro.dfg import (
    DataFlowGraph,
    OpType,
    blevel_order,
    compute_blevels,
    eliminate_dead_nodes,
    evaluate,
    fold_duplicate_operands,
    nand_lower,
    split_multi_operand,
    substitute_nodes,
)

BINARY_OPS = [OpType.AND, OpType.OR, OpType.XOR,
              OpType.NAND, OpType.NOR, OpType.XNOR]


@st.composite
def dags(draw, max_ops: int = 40, allow_dup_operands: bool = False):
    """Random well-formed DAGs (op type/shape chosen by hypothesis)."""
    num_inputs = draw(st.integers(2, 6))
    num_ops = draw(st.integers(1, max_ops))
    dag = DataFlowGraph("hyp")
    values = [dag.add_input(f"x{i}") for i in range(num_inputs)]
    values.append(dag.add_const(draw(st.integers(0, 1))))
    for _ in range(num_ops):
        op = draw(st.sampled_from(BINARY_OPS + [OpType.NOT]))
        if op is OpType.NOT:
            operands = [draw(st.sampled_from(values))]
        else:
            arity = draw(st.integers(2, 3))
            if allow_dup_operands:
                operands = [draw(st.sampled_from(values)) for _ in range(arity)]
            else:
                operands = draw(st.permutations(values))[:arity]
        values.append(dag.add_op(op, operands))
    num_outputs = draw(st.integers(1, 3))
    for i in range(num_outputs):
        dag.mark_output(values[-(i + 1)], f"o{i}")
    return dag


def random_inputs(dag: DataFlowGraph, seed: int, lanes: int) -> dict[str, int]:
    rng = random.Random(seed)
    return {o.name: rng.getrandbits(lanes) for o in dag.inputs()}


TARGET = TargetSpec(RERAM, rows=24, cols=12, data_width=48, num_arrays=4,
                    max_activated_rows=4)

# deliberately tight: many generated DAGs only compile through the
# graceful-degradation ladder (recycling and/or partitioning)
NEAR_CAPACITY_TARGET = TargetSpec(RERAM, rows=10, cols=4, data_width=16,
                                  num_arrays=2, max_activated_rows=4)


class TestCompilerCorrectness:
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(dag=dags(), mapper=st.sampled_from(["naive", "sherlock"]),
           seed=st.integers(0, 2**32 - 1))
    def test_compiled_program_matches_reference(self, dag, mapper, seed):
        program = SherlockCompiler(TARGET, CompilerConfig(mapper=mapper)).compile(dag)
        inputs = random_inputs(dag, seed, lanes=16)
        assert program.verify(inputs, lanes=16)

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(dag=dags(), mapper=st.sampled_from(["naive", "sherlock"]),
           seed=st.integers(0, 2**32 - 1))
    def test_ladder_matches_reference_near_capacity(self, dag, mapper, seed):
        """Degraded compiles (recycle/partition) stay bit-identical."""
        compiler = SherlockCompiler(NEAR_CAPACITY_TARGET,
                                    CompilerConfig(mapper=mapper))
        program = compiler.compile(dag)
        inputs = random_inputs(dag, seed, lanes=16)
        assert program.verify(inputs, lanes=16)

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(dag=dags(allow_dup_operands=True), seed=st.integers(0, 2**32 - 1))
    def test_duplicate_operands_compile_correctly(self, dag, seed):
        program = SherlockCompiler(TARGET, CompilerConfig()).compile(dag)
        inputs = random_inputs(dag, seed, lanes=16)
        assert program.verify(inputs, lanes=16)

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(dag=dags(), mra=st.integers(2, 4), fraction=st.floats(0.0, 1.0),
           seed=st.integers(0, 2**32 - 1))
    def test_mra_configs_compile_correctly(self, dag, mra, fraction, seed):
        config = CompilerConfig(mra=mra, mra_fraction=fraction)
        program = SherlockCompiler(TARGET, config).compile(dag)
        inputs = random_inputs(dag, seed, lanes=16)
        assert program.verify(inputs, lanes=16)

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(dag=dags(), seed=st.integers(0, 2**32 - 1))
    def test_stt_mram_nand_lowering_correct(self, dag, seed):
        target = TargetSpec(STT_MRAM, rows=24, cols=12, data_width=48,
                            num_arrays=4, max_activated_rows=4)
        program = SherlockCompiler(target, CompilerConfig()).compile(dag)
        assert all(n.op.base in (OpType.AND, OpType.NOT)
                   for n in program.dag.op_nodes())
        inputs = random_inputs(dag, seed, lanes=16)
        assert program.verify(inputs, lanes=16)


class TestTransformProperties:
    @settings(max_examples=50, deadline=None)
    @given(dag=dags(), max_operands=st.integers(2, 6),
           fraction=st.floats(0.0, 1.0), seed=st.integers(0, 2**31))
    def test_substitution_preserves_semantics(self, dag, max_operands,
                                              fraction, seed):
        reference = dag.copy()
        original_max = max(n.arity for n in dag.op_nodes())
        substitute_nodes(dag, max_operands, fraction)
        dag.validate()
        for node in dag.op_nodes():
            # merging never exceeds the bound; pre-existing wider ops stay
            assert node.arity <= max(max_operands, original_max)
        inputs = random_inputs(dag, seed, 16)
        assert evaluate(dag, inputs, 16) == evaluate(reference, inputs, 16)

    @settings(max_examples=50, deadline=None)
    @given(dag=dags(), seed=st.integers(0, 2**31))
    def test_nand_lowering_preserves_semantics(self, dag, seed):
        reference = dag.copy()
        nand_lower(dag)
        dag.validate()
        inputs = random_inputs(dag, seed, 16)
        assert evaluate(dag, inputs, 16) == evaluate(reference, inputs, 16)

    @settings(max_examples=50, deadline=None)
    @given(dag=dags(max_ops=20), seed=st.integers(0, 2**31))
    def test_substitute_then_split_roundtrips_semantics(self, dag, seed):
        reference = dag.copy()
        substitute_nodes(dag, 8)
        split_multi_operand(dag, 2)
        dag.validate()
        for node in dag.op_nodes():
            assert node.arity <= 2
        inputs = random_inputs(dag, seed, 16)
        assert evaluate(dag, inputs, 16) == evaluate(reference, inputs, 16)

    @settings(max_examples=50, deadline=None)
    @given(dag=dags(allow_dup_operands=True), seed=st.integers(0, 2**31))
    def test_fold_duplicates_preserves_semantics(self, dag, seed):
        reference = dag.copy()
        fold_duplicate_operands(dag)
        dag.validate()
        for node in dag.op_nodes():
            assert len(set(node.operands)) == node.arity
        inputs = random_inputs(dag, seed, 16)
        assert evaluate(dag, inputs, 16) == evaluate(reference, inputs, 16)

    @settings(max_examples=50, deadline=None)
    @given(dag=dags(), seed=st.integers(0, 2**31))
    def test_dce_preserves_outputs(self, dag, seed):
        reference = dag.copy()
        eliminate_dead_nodes(dag)
        dag.validate()
        inputs = random_inputs(dag, seed, 16)
        assert evaluate(dag, inputs, 16) == evaluate(reference, inputs, 16)


class TestStructuralProperties:
    @settings(max_examples=50, deadline=None)
    @given(dag=dags())
    def test_blevel_is_topological_and_positive(self, dag):
        levels = compute_blevels(dag)
        for op_id, level in levels.items():
            assert level >= 1
            for pred in dag.pred_ops(op_id):
                assert levels[pred] > level
        order = blevel_order(dag)
        position = {op: i for i, op in enumerate(order)}
        for op_id in order:
            for pred in dag.pred_ops(op_id):
                assert position[pred] < position[op_id]

    @settings(max_examples=50, deadline=None)
    @given(dag=dags())
    def test_copy_roundtrip(self, dag):
        clone = dag.copy()
        clone.validate()
        assert clone.num_ops == dag.num_ops
        assert clone.outputs == dag.outputs

    @settings(max_examples=30, deadline=None)
    @given(dag=dags(), mapper=st.sampled_from(["naive", "sherlock"]))
    def test_every_live_operand_is_placed(self, dag, mapper):
        program = SherlockCompiler(TARGET, CompilerConfig(mapper=mapper)).compile(dag)
        layout = program.layout
        for node in program.dag.op_nodes():
            for oid in node.operands:
                assert layout.is_placed(oid)
            assert layout.is_placed(node.result)


class TestReliabilityProperties:
    @settings(max_examples=100, deadline=None)
    @given(ps=st.lists(st.floats(0.0, 1.0), max_size=20))
    def test_p_app_bounds(self, ps):
        p = application_failure_probability(ps)
        assert 0.0 <= p <= 1.0
        if ps:
            assert p >= max(ps) - 1e-12

    @settings(max_examples=100, deadline=None)
    @given(ps=st.lists(st.floats(0.0, 0.5), min_size=1, max_size=10),
           extra=st.floats(0.0, 0.5))
    def test_p_app_monotone_in_ops(self, ps, extra):
        assert (application_failure_probability(ps + [extra])
                >= application_failure_probability(ps) - 1e-12)

    @settings(max_examples=60, deadline=None)
    @given(op=st.sampled_from([OpType.AND, OpType.OR, OpType.XOR]),
           k=st.integers(2, 7))
    def test_pdf_monotone_in_k(self, op, k):
        for tech in (RERAM, STT_MRAM):
            assert (decision_failure_probability(tech, op, k + 1)
                    >= decision_failure_probability(tech, op, k))
