"""Tests for the Monte-Carlo fault-injection campaign engine."""

import pytest

from repro.arch import ReadInst, TargetSpec
from repro.core.compiler import compile_dag
from repro.core.config import CompilerConfig
from repro.core.report import RecoveryReport
from repro.devices import STT_MRAM
from repro.errors import SimulationError
from repro.reliability import (
    ShardOutcome,
    analytic_failure_probability,
    run_campaign,
    run_trial_block,
    sense_failure_probabilities,
    shard_ranges,
    wilson_interval,
)
from repro.reliability import campaign as campaign_module
from repro.workloads import get_workload
from repro.workloads.synthetic import synthetic_dag


@pytest.fixture(scope="module")
def program():
    """A small synthetic program in a measurable-failure-rate regime."""
    tech = STT_MRAM.with_variability(0.12, 0.12)
    target = TargetSpec.square(64, tech, num_arrays=4, max_activated_rows=4)
    dag = synthetic_dag(num_ops=24, num_inputs=8, seed=3, name="camp")
    return compile_dag(dag, target,
                       CompilerConfig(mapper="sherlock", mra=4), cache=False)


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(37, 200)
        assert lo < 37 / 200 < hi

    def test_stays_in_unit_interval_at_extremes(self):
        assert wilson_interval(0, 50)[0] == 0.0
        assert wilson_interval(50, 50)[1] == 1.0
        assert wilson_interval(0, 50)[1] > 0.0  # zero successes != zero rate
        assert wilson_interval(50, 50)[0] < 1.0

    def test_narrows_with_trials(self):
        lo1, hi1 = wilson_interval(10, 100)
        lo2, hi2 = wilson_interval(100, 1000)
        assert hi2 - lo2 < hi1 - lo1

    def test_rejects_bad_counts(self):
        with pytest.raises(SimulationError):
            wilson_interval(1, 0)
        with pytest.raises(SimulationError):
            wilson_interval(5, 4)


class TestAnalyticModel:
    def test_sense_probabilities_cover_every_sensed_column(self, program):
        sensed = 0
        for inst in program.instructions:
            if isinstance(inst, ReadInst):
                sensed += len(inst.cols)
        assert len(sense_failure_probabilities(program)) == sensed

    def test_lane_compounding_monotone(self, program):
        p8 = analytic_failure_probability(program, 8)
        p64 = analytic_failure_probability(program, 64)
        assert 0.0 < p8 < p64 <= 1.0

    def test_exceeds_trace_p_app(self, program):
        """Lane-compounded P includes plain reads and all lanes."""
        assert analytic_failure_probability(program, 64) \
            >= program.metrics.p_app


class TestCampaignMechanics:
    def test_deterministic_for_same_seed(self, program):
        a = run_campaign(program, trials=50, seed=9, lanes=8)
        b = run_campaign(program, trials=50, seed=9, lanes=8)
        assert a == b

    def test_different_seeds_draw_different_faults(self, program):
        a = run_campaign(program, trials=50, seed=1, lanes=8)
        b = run_campaign(program, trials=50, seed=2, lanes=8)
        assert a.injected_faults != b.injected_faults

    def test_output_failures_bounded_by_decision_failures(self, program):
        result = run_campaign(program, trials=200, seed=0, lanes=8)
        assert result.output_failures <= result.decision_failures
        assert 0.0 <= result.analytic_p_app <= 1.0

    def test_fixed_inputs_are_honored(self, program):
        inputs = {o.name: 0 for o in program.source_dag.inputs()}
        result = run_campaign(program, trials=30, seed=0, lanes=8,
                              inputs=inputs)
        assert result.trials == 30

    def test_bad_policy_fails_fast(self, program):
        with pytest.raises(SimulationError, match="unknown recovery policy"):
            run_campaign(program, trials=10, policy="hope")

    def test_bad_trial_count_rejected(self, program):
        with pytest.raises(SimulationError, match="positive"):
            run_campaign(program, trials=0)


class TestModelValidation:
    def test_empirical_rate_within_wilson_of_analytic(self, program):
        """The acceptance-criteria experiment: >= 1000 seeded trials must
        put the analytic prediction inside the 95% Wilson interval of the
        empirical decision-failure rate."""
        result = run_campaign(program, trials=1000, seed=0, policy="none",
                              lanes=8)
        lo, hi = result.decision_wilson
        assert lo <= result.analytic_p_app <= hi
        assert result.analytic_within_interval


class TestPoliciesReduceFailures:
    @pytest.fixture(scope="class")
    def results(self, program):
        """One campaign per policy, all on the same seeded fault streams."""
        return {name: run_campaign(program, trials=300, seed=7,
                                   policy=name, lanes=8)
                for name in ("none", "reread-vote", "checkpoint-replay",
                             "degrade-mra")}

    def test_baseline_actually_fails(self, results):
        assert results["none"].output_failures >= 10

    @pytest.mark.parametrize("policy", ["reread-vote", "checkpoint-replay",
                                        "degrade-mra"])
    def test_policy_beats_no_recovery(self, results, policy):
        assert results[policy].output_failures \
            < results["none"].output_failures

    @pytest.mark.parametrize("policy", ["reread-vote", "checkpoint-replay",
                                        "degrade-mra"])
    def test_overhead_is_priced(self, results, policy):
        result = results[policy]
        assert result.stats.overhead_latency_cycles > 0
        assert result.stats.overhead_energy_pj > 0
        assert result.latency_overhead_frac > 0
        assert result.energy_overhead_frac > 0

    def test_no_recovery_has_no_overhead(self, results):
        assert results["none"].stats.overhead_latency_cycles == 0
        assert results["none"].latency_overhead_frac == 0.0

    def test_recovery_report_renders_all_policies(self, results):
        report = RecoveryReport.from_results(list(results.values()))
        text = report.render()
        for name in results:
            assert name in text
        assert "ci95_lo" in text
        assert "camp" in text  # program footer

    def test_summary_keys(self, results):
        summary = results["reread-vote"].summary()
        assert summary["output_rate"] <= summary["decision_rate"]
        assert summary["overhead_latency_frac"] > 0


class TestShardRanges:
    def test_blocks_cover_the_trial_range_contiguously(self):
        for trials, workers in ((1, 1), (7, 2), (100, 3), (1000, 4)):
            ranges = shard_ranges(trials, workers)
            assert ranges[0][0] == 0
            assert sum(count for _, count in ranges) == trials
            for (first, count), (next_first, _) in zip(ranges, ranges[1:]):
                assert next_first == first + count

    def test_blocks_are_balanced_and_non_empty(self):
        ranges = shard_ranges(101, 4)
        counts = [count for _, count in ranges]
        assert min(counts) >= 1
        assert max(counts) - min(counts) <= 1

    def test_never_more_blocks_than_trials(self):
        assert shard_ranges(3, 8) == [(0, 1), (1, 1), (2, 1)]

    def test_rejects_bad_counts(self):
        with pytest.raises(SimulationError, match="positive"):
            shard_ranges(0, 2)
        with pytest.raises(SimulationError, match="positive"):
            shard_ranges(10, 0)


class TestParallelCampaigns:
    def test_parallel_bit_identical_to_serial(self, program):
        """The acceptance experiment: same master seed, sharded workers,
        identical failure counts (CampaignResult compares all counters)."""
        serial = run_campaign(program, trials=60, seed=9, lanes=8, workers=1)
        parallel = run_campaign(program, trials=60, seed=9, lanes=8,
                                workers=2)
        assert serial == parallel

    def test_parallel_bit_identical_with_recovery_policy(self, program):
        serial = run_campaign(program, trials=40, seed=5, lanes=8,
                              policy="reread-vote", workers=1)
        parallel = run_campaign(program, trials=40, seed=5, lanes=8,
                                policy="reread-vote", workers=3)
        assert serial == parallel

    def test_trial_blocks_merge_to_the_serial_counters(self, program):
        whole = run_trial_block(program, 0, 30, 9, "none", 8)
        merged = ShardOutcome()
        for first, count in shard_ranges(30, 4):
            merged.merge(run_trial_block(program, first, count, 9,
                                         "none", 8))
        assert merged == whole

    def test_zero_workers_rejected(self, program):
        with pytest.raises(SimulationError, match="positive"):
            run_campaign(program, trials=10, workers=0)

    def test_pool_failure_falls_back_to_serial(self, program, monkeypatch):
        """When the pool cannot even be created, the campaign warns and
        degrades to the serial path — same result, no crash."""
        def broken_pool(*args, **kwargs):
            raise OSError("no process support here")

        monkeypatch.setattr(campaign_module, "ProcessPoolExecutor",
                            broken_pool)
        with pytest.warns(RuntimeWarning, match="running serially"):
            fallback = run_campaign(program, trials=20, seed=3, lanes=8,
                                    workers=2)
        assert fallback == run_campaign(program, trials=20, seed=3, lanes=8,
                                        workers=1)

    def test_failed_shards_are_retried_serially(self, program, monkeypatch):
        """A shard slot coming back None (timeout / dead worker) is re-run
        in-process; the merged result still matches the serial campaign."""
        monkeypatch.setattr(
            campaign_module, "_parallel_outcomes",
            lambda program, ranges, *args, **kwargs: [None] * len(ranges))
        retried = run_campaign(program, trials=25, seed=4, lanes=8,
                               workers=2)
        assert retried == run_campaign(program, trials=25, seed=4, lanes=8,
                                       workers=1)

    def test_shard_recovery_retries_transient_failures(self, program,
                                                       monkeypatch):
        """The in-process shard re-run rides ``repro.util.retry``: a
        transient OSError on the first recovery attempt is re-attempted,
        and the merged counters stay bit-identical to the serial run."""
        serial = run_campaign(program, trials=25, seed=4, lanes=8, workers=1)
        real_block = campaign_module.run_trial_block
        flaky = {"raised": False}

        def flaky_block(*args, **kwargs):
            if not flaky["raised"]:
                flaky["raised"] = True
                raise OSError("transient recovery failure")
            return real_block(*args, **kwargs)

        monkeypatch.setattr(
            campaign_module, "_parallel_outcomes",
            lambda program, ranges, *args, **kwargs: [None] * len(ranges))
        monkeypatch.setattr(campaign_module, "run_trial_block", flaky_block)
        recovered = run_campaign(program, trials=25, seed=4, lanes=8,
                                 workers=2)
        assert flaky["raised"]
        assert recovered == serial

    def test_shard_recovery_propagates_fatal_errors(self, program,
                                                    monkeypatch):
        """Errors outside the retryable allowlist fail the campaign
        immediately instead of burning the bounded retry budget."""
        monkeypatch.setattr(
            campaign_module, "_parallel_outcomes",
            lambda program, ranges, *args, **kwargs: [None] * len(ranges))

        def fatal_block(*args, **kwargs):
            raise SimulationError("shard is deterministically broken")

        monkeypatch.setattr(campaign_module, "run_trial_block", fatal_block)
        with pytest.raises(SimulationError, match="deterministically"):
            run_campaign(program, trials=10, seed=1, lanes=8, workers=2)


@pytest.mark.campaign
class TestFullCampaign:
    """Large campaign over a real workload; excluded from tier-1 by marker."""

    def test_bitweaving_campaign_model_validation(self):
        tech = STT_MRAM.with_variability(0.1, 0.1)
        target = TargetSpec.square(256, tech, num_arrays=16,
                                   max_activated_rows=4)
        dag = get_workload("bitweaving").build_dag()
        program = compile_dag(dag, target,
                              CompilerConfig(mapper="sherlock", mra=4),
                              cache=False)
        result = run_campaign(program, trials=1000, seed=0, lanes=8)
        lo, hi = result.decision_wilson
        assert lo <= result.analytic_p_app <= hi

    def test_bitweaving_policies_reduce_failures(self):
        tech = STT_MRAM.with_variability(0.12, 0.12)
        target = TargetSpec.square(256, tech, num_arrays=16,
                                   max_activated_rows=4)
        dag = get_workload("bitweaving").build_dag()
        program = compile_dag(dag, target,
                              CompilerConfig(mapper="sherlock", mra=4),
                              cache=False)
        base = run_campaign(program, trials=300, seed=0, lanes=8)
        for name in ("reread-vote", "checkpoint-replay", "degrade-mra"):
            recovered = run_campaign(program, trials=300, seed=0,
                                     policy=name, lanes=8)
            assert recovered.output_failures <= base.output_failures
