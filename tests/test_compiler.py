"""Integration tests for the end-to-end compiler pipeline."""

import random

import pytest

from repro.core import (
    TABLE2_CONFIGS,
    CompilerConfig,
    ProgramReport,
    TargetSpec,
    compile_dag,
    format_table,
    render_reports,
)
from repro.devices import RERAM, STT_MRAM
from repro.dfg import DFGBuilder, OpType
from repro.errors import SherlockError
from repro.frontend import c_to_dfg
from repro.workloads import bitweaving


def target(tech=RERAM, size=64, **kwargs):
    kwargs.setdefault("num_arrays", 8)
    kwargs.setdefault("max_activated_rows", 4)
    return TargetSpec.square(size, tech, **kwargs)


@pytest.fixture
def scan_dag():
    return bitweaving.between_dag(bits=8)


class TestConfig:
    def test_defaults(self):
        config = CompilerConfig()
        assert config.mapper == "sherlock"
        assert config.mra == 2

    def test_invalid_mapper(self):
        with pytest.raises(SherlockError):
            CompilerConfig(mapper="magic")

    def test_invalid_mra(self):
        with pytest.raises(SherlockError):
            CompilerConfig(mra=1)
        with pytest.raises(SherlockError):
            CompilerConfig(mra_fraction=-0.5)

    def test_with_override(self):
        config = CompilerConfig().with_(mra=4)
        assert config.mra == 4

    def test_table2_matrix(self):
        assert len(TABLE2_CONFIGS) == 4
        assert TABLE2_CONFIGS["opt/mra>2"].mra > 2


class TestPipeline:
    def test_compile_and_verify(self, scan_dag):
        program = compile_dag(scan_dag, target())
        rng = random.Random(0)
        column = bitweaving.random_column(rng, 16)
        inputs = bitweaving.scan_inputs(10, 200, column)
        assert program.verify(inputs, lanes=16)

    def test_text_matches_fig4_format(self, scan_dag):
        program = compile_dag(scan_dag, target())
        text = program.text()
        assert text.splitlines()
        assert any(line.startswith("read [") for line in text.splitlines())
        assert any("[and]" in line or "[xor]" in line or "[nand]" in line
                   for line in text.splitlines())

    def test_metrics_cached_and_consistent(self, scan_dag):
        program = compile_dag(scan_dag, target())
        assert program.metrics is program.metrics
        assert program.metrics.instruction_count == len(program.instructions)

    def test_mra_transform_applied(self, scan_dag):
        base = compile_dag(scan_dag, target(), CompilerConfig(mra=2))
        merged = compile_dag(scan_dag, target(), CompilerConfig(mra=4))
        assert max(n.arity for n in merged.dag.op_nodes()) > 2
        assert all(n.arity <= 2 for n in base.dag.op_nodes())

    def test_mra_clamped_to_target(self, scan_dag):
        t = target(max_activated_rows=2)
        program = compile_dag(scan_dag, t, CompilerConfig(mra=8))
        assert all(n.arity <= 2 for n in program.dag.op_nodes())

    def test_nand_lowering_auto_on_stt(self, scan_dag):
        program = compile_dag(scan_dag, target(STT_MRAM))
        ops = {n.op.base for n in program.dag.op_nodes()}
        assert OpType.XOR not in ops and OpType.OR not in ops

    def test_nand_lowering_off_on_reram(self, scan_dag):
        program = compile_dag(scan_dag, target(RERAM))
        ops = {n.op.base for n in program.dag.op_nodes()}
        assert OpType.XOR in ops or OpType.OR in ops

    def test_nand_lowering_forced(self, scan_dag):
        program = compile_dag(scan_dag, target(RERAM),
                              CompilerConfig(nand_lowering=True))
        ops = {n.op.base for n in program.dag.op_nodes()}
        assert ops <= {OpType.AND, OpType.NOT}

    def test_cse_reduces_ops(self):
        b = DFGBuilder()
        x, y = b.inputs("x", "y")
        b.output("o", (x & y) ^ (y & x))
        dag = b.build()
        plain = compile_dag(dag, target(), CompilerConfig(cse=False))
        deduped = compile_dag(dag, target(), CompilerConfig(cse=True))
        assert deduped.dag.num_ops < plain.dag.num_ops
        inputs = {"x": 0b1100, "y": 0b1010}
        assert plain.verify(inputs, 4) and deduped.verify(inputs, 4)

    def test_source_dag_untouched(self, scan_dag):
        before = scan_dag.num_ops
        compile_dag(scan_dag, target(STT_MRAM), CompilerConfig(mra=4))
        assert scan_dag.num_ops == before

    def test_passthrough_output(self):
        b = DFGBuilder()
        x, y = b.inputs("x", "y")
        b.output("direct", x)  # aliases an input
        b.output("computed", x & y)
        dag = b.build()
        program = compile_dag(dag, target())
        out = program.execute({"x": 0b1001, "y": 0b1111}, 4)
        assert out == {"direct": 0b1001, "computed": 0b1001}

    def test_fault_injection_path(self, scan_dag):
        noisy = STT_MRAM.with_variability(0.4, 0.4)
        t = target(noisy)
        program = compile_dag(scan_dag, t, CompilerConfig(nand_lowering=False))
        rng = random.Random(0)
        column = bitweaving.random_column(rng, 16)
        inputs = bitweaving.scan_inputs(10, 200, column)
        clean = program.execute(inputs, 16)
        noisy_out = program.execute(inputs, 16, fault_rng=random.Random(7))
        assert clean != noisy_out  # 40% variability must corrupt something

    def test_verify_reports_mismatch(self, scan_dag, monkeypatch):
        program = compile_dag(scan_dag, target())
        rng = random.Random(0)
        column = bitweaving.random_column(rng, 8)
        inputs = bitweaving.scan_inputs(10, 200, column)
        # sabotage one instruction: flip a write row
        from repro.arch import WriteInst

        for i, inst in enumerate(program.instructions):
            if isinstance(inst, WriteInst):
                last = program.instructions[-1]
                if isinstance(last, WriteInst) and i == len(program.instructions) - 1:
                    break
        last = program.instructions[-1]
        if isinstance(last, WriteInst):
            program.instructions[-1] = WriteInst(
                last.array, last.cols, (last.row + 1) % program.target.rows)
            with pytest.raises(SherlockError):
                program.verify(inputs, 8)


class TestReporting:
    def test_program_report(self, scan_dag):
        program = compile_dag(scan_dag, target())
        report = ProgramReport.from_program(program, "scan")
        assert report.workload == "scan"
        assert report.latency_us > 0
        assert report.technology == "reram"
        text = render_reports([report])
        assert "scan" in text and "reram" in text

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 0.000001]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "1.00e-06" in text

    def test_empty_table(self):
        text = format_table(["x"], [])
        assert "x" in text


class TestFrontendIntegration:
    def test_c_to_execution(self):
        source = """
        word_t popcount_parity(word_t a, word_t b, word_t c) {
            return a ^ b ^ c;
        }
        """
        dag = c_to_dfg(source)
        program = compile_dag(dag, target())
        out = program.execute({"a": 0b1100, "b": 0b1010, "c": 0b0110}, 4)
        assert out["return"] == 0b1100 ^ 0b1010 ^ 0b0110
