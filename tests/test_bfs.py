"""Tests for the bulk-bitwise BFS workload (graph-processing extension)."""

import random

import pytest

from repro.core import CompilerConfig, TargetSpec, compile_dag
from repro.devices import RERAM
from repro.dfg import evaluate
from repro.errors import SherlockError
from repro.workloads import bfs


def random_graph(rng, n, density=0.2):
    return [[1 if rng.random() < density and i != j else 0
             for j in range(n)] for i in range(n)]


class TestStepSemantics:
    def test_single_step_matches_reference(self):
        rng = random.Random(0)
        n = 8
        lanes = 6
        graphs = [random_graph(rng, n) for _ in range(lanes)]
        frontiers = [{rng.randrange(n)} for _ in range(lanes)]
        visited = [set(f) for f in frontiers]
        dag = bfs.bfs_step_dag(n)
        out = evaluate(dag, bfs.step_inputs(graphs, frontiers, visited), lanes)
        for lane in range(lanes):
            expected = bfs.step_reference(graphs[lane], frontiers[lane],
                                          visited[lane])
            assert bfs.decode_step(out, lane, n) == expected

    def test_empty_frontier_stays_empty(self):
        n = 4
        dag = bfs.bfs_step_dag(n)
        graphs = [[[1] * n for _ in range(n)]]
        out = evaluate(dag, bfs.step_inputs(graphs, [set()], [set()]), 1)
        assert bfs.decode_step(out, 0, n) == (set(), set())

    def test_visited_vertices_not_revisited(self):
        n = 3
        graph = [[0, 1, 0], [0, 0, 0], [0, 1, 0]]  # 1 -> 0 and 1 -> 2
        dag = bfs.bfs_step_dag(n)
        out = evaluate(dag, bfs.step_inputs([graph], [{1}], [{0, 1}]), 1)
        next_frontier, new_visited = bfs.decode_step(out, 0, n)
        assert next_frontier == {2}
        assert new_visited == {0, 1, 2}

    def test_bad_args(self):
        with pytest.raises(SherlockError):
            bfs.bfs_step_dag(1)
        with pytest.raises(SherlockError):
            bfs.step_inputs([], [], [])


class TestIterativeBfsOnHardware:
    def test_multi_step_traversal_matches_reference(self):
        """Iterate the compiled step program until the frontier drains."""
        rng = random.Random(3)
        n = 8
        lanes = 4
        graphs = [random_graph(rng, n, density=0.25) for _ in range(lanes)]
        sources = [rng.randrange(n) for _ in range(lanes)]
        dag = bfs.bfs_step_dag(n)
        target = TargetSpec.square(64, RERAM, num_arrays=8)
        program = compile_dag(dag, target, CompilerConfig())

        frontiers = [{s} for s in sources]
        visited = [{s} for s in sources]
        for _ in range(n):  # at most n levels
            inputs = bfs.step_inputs(graphs, frontiers, visited)
            out = program.execute(inputs, lanes)
            for lane in range(lanes):
                frontiers[lane], visited[lane] = bfs.decode_step(out, lane, n)
            if not any(frontiers):
                break
        for lane in range(lanes):
            expected = set(bfs.bfs_reference(graphs[lane], sources[lane]))
            assert visited[lane] == expected

    def test_mappers_agree(self):
        n = 6
        dag = bfs.bfs_step_dag(n)
        target = TargetSpec.square(64, RERAM, num_arrays=8)
        rng = random.Random(5)
        graphs = [random_graph(rng, n, 0.3)]
        inputs = bfs.step_inputs(graphs, [{0}], [{0}])
        naive = compile_dag(dag, target, CompilerConfig(mapper="naive"))
        opt = compile_dag(dag, target, CompilerConfig(mapper="sherlock"))
        assert naive.execute(inputs, 1) == opt.execute(inputs, 1)
