"""Unit tests for the data-flow graph IR."""

import pytest

from repro.dfg import (
    DataFlowGraph,
    DFGBuilder,
    OperandKind,
    OpType,
    blevel_order,
    compute_blevels,
    critical_path_length,
    evaluate,
    to_dot,
)
from repro.dfg.graph import input_ids, iter_edges
from repro.errors import GraphError


def make_simple() -> DataFlowGraph:
    """(a & b) ^ c with the XOR result as output."""
    dag = DataFlowGraph("simple")
    a = dag.add_input("a")
    b = dag.add_input("b")
    c = dag.add_input("c")
    t = dag.add_op(OpType.AND, [a, b])
    r = dag.add_op(OpType.XOR, [t, c])
    dag.mark_output(r, "r")
    return dag


class TestConstruction:
    def test_add_input_creates_operand(self):
        dag = DataFlowGraph()
        a = dag.add_input("a")
        node = dag.operand(a)
        assert node.kind is OperandKind.INPUT
        assert node.name == "a"
        assert node.is_source

    def test_duplicate_input_rejected(self):
        dag = DataFlowGraph()
        dag.add_input("a")
        with pytest.raises(GraphError):
            dag.add_input("a")

    def test_const_values_restricted(self):
        dag = DataFlowGraph()
        dag.add_const(0)
        dag.add_const(1)
        with pytest.raises(GraphError):
            dag.add_const(2)

    def test_add_op_returns_result_operand(self):
        dag = make_simple()
        assert dag.num_ops == 2
        # inputs + two results
        assert dag.num_operands == 5

    def test_op_arity_checked(self):
        dag = DataFlowGraph()
        a = dag.add_input("a")
        with pytest.raises(GraphError):
            dag.add_op(OpType.AND, [a])
        with pytest.raises(GraphError):
            dag.add_op(OpType.NOT, [a, a])

    def test_unknown_operand_rejected(self):
        dag = DataFlowGraph()
        a = dag.add_input("a")
        with pytest.raises(GraphError):
            dag.add_op(OpType.AND, [a, 999])

    def test_duplicate_output_name_rejected(self):
        dag = make_simple()
        out = next(iter(dag.outputs.values()))
        with pytest.raises(GraphError):
            dag.mark_output(out, "r")

    def test_validate_passes_on_wellformed(self):
        make_simple().validate()


class TestStructure:
    def test_pred_succ_ops(self):
        dag = make_simple()
        ops = dag.topological_ops()
        assert len(ops) == 2
        first, second = ops
        assert dag.pred_ops(first) == []
        assert dag.pred_ops(second) == [first]
        assert dag.succ_ops(first) == [second]
        assert dag.succ_ops(second) == []

    def test_topological_order_respects_deps(self):
        dag = DataFlowGraph()
        a, b = dag.add_input("a"), dag.add_input("b")
        t1 = dag.add_op(OpType.AND, [a, b])
        t2 = dag.add_op(OpType.OR, [t1, a])
        t3 = dag.add_op(OpType.XOR, [t2, t1])
        dag.mark_output(t3, "o")
        order = dag.topological_ops()
        pos = {op_id: i for i, op_id in enumerate(order)}
        for op_id in order:
            for pred in dag.pred_ops(op_id):
                assert pos[pred] < pos[op_id]

    def test_consumers_tracking(self):
        dag = DataFlowGraph()
        a, b = dag.add_input("a"), dag.add_input("b")
        t = dag.add_op(OpType.AND, [a, b])
        dag.add_op(OpType.OR, [t, a])
        dag.add_op(OpType.XOR, [t, b])
        assert len(dag.consumers(t)) == 2
        assert len(dag.consumers(a)) == 2

    def test_live_nodes_excludes_dead(self):
        dag = make_simple()
        a = input_ids(dag)["a"]
        b = input_ids(dag)["b"]
        dag.add_op(OpType.OR, [a, b])  # dead op
        live_operands, live_ops = dag.live_nodes()
        assert len(live_ops) == 2

    def test_iter_edges_count(self):
        dag = make_simple()
        # AND: 2 in + 1 out, XOR: 2 in + 1 out
        assert len(list(iter_edges(dag))) == 6

    def test_copy_is_independent(self):
        dag = make_simple()
        clone = dag.copy()
        a, b = clone.add_input("x"), clone.add_input("y")
        clone.add_op(OpType.AND, [a, b])
        assert clone.num_ops == dag.num_ops + 1
        dag.validate()
        clone.validate()

    def test_op_histogram(self):
        dag = make_simple()
        hist = dag.op_histogram()
        assert hist[OpType.AND] == 1
        assert hist[OpType.XOR] == 1


class TestMutation:
    def test_replace_op_updates_consumers(self):
        dag = DataFlowGraph()
        a, b, c = dag.add_input("a"), dag.add_input("b"), dag.add_input("c")
        t = dag.add_op(OpType.AND, [a, b])
        dag.mark_output(t, "o")
        producer = dag.operand(t).producer
        dag.replace_op(producer, operands=[a, b, c])
        assert dag.op(producer).arity == 3
        assert producer in dag.consumers(c)
        dag.validate()

    def test_delete_op_with_consumer_rejected(self):
        dag = make_simple()
        first = dag.topological_ops()[0]
        with pytest.raises(GraphError):
            dag.delete_op(first)

    def test_delete_op_removes_result(self):
        dag = DataFlowGraph()
        a, b = dag.add_input("a"), dag.add_input("b")
        t = dag.add_op(OpType.AND, [a, b])
        op_id = dag.operand(t).producer
        dag.delete_op(op_id)
        assert dag.num_ops == 0
        with pytest.raises(GraphError):
            dag.operand(t)

    def test_delete_output_op_rejected(self):
        dag = DataFlowGraph()
        a, b = dag.add_input("a"), dag.add_input("b")
        t = dag.add_op(OpType.AND, [a, b])
        dag.mark_output(t, "o")
        with pytest.raises(GraphError):
            dag.delete_op(dag.operand(t).producer)


class TestBLevel:
    def test_single_chain(self):
        dag = DataFlowGraph()
        a, b = dag.add_input("a"), dag.add_input("b")
        t1 = dag.add_op(OpType.AND, [a, b])
        t2 = dag.add_op(OpType.OR, [t1, b])
        t3 = dag.add_op(OpType.XOR, [t2, a])
        dag.mark_output(t3, "o")
        levels = compute_blevels(dag)
        order = dag.topological_ops()
        assert [levels[o] for o in order] == [3, 2, 1]
        assert critical_path_length(dag) == 3

    def test_blevel_order_is_topological(self):
        dag = DataFlowGraph()
        a, b, c, d = (dag.add_input(n) for n in "abcd")
        t1 = dag.add_op(OpType.AND, [a, b])
        t2 = dag.add_op(OpType.OR, [c, d])
        t3 = dag.add_op(OpType.XOR, [t1, t2])
        dag.mark_output(t3, "o")
        order = blevel_order(dag)
        pos = {op_id: i for i, op_id in enumerate(order)}
        for op_id in order:
            for pred in dag.pred_ops(op_id):
                assert pos[pred] < pos[op_id]

    def test_exit_node_has_blevel_one(self):
        dag = make_simple()
        levels = compute_blevels(dag)
        assert min(levels.values()) == 1


class TestEvaluate:
    def test_and_xor(self):
        dag = make_simple()
        out = evaluate(dag, {"a": 0b1100, "b": 0b1010, "c": 0b1111}, lanes=4)
        assert out["r"] == (0b1100 & 0b1010) ^ 0b1111

    def test_not_masks_to_lanes(self):
        b = DFGBuilder()
        a = b.input("a")
        b.output("o", ~a)
        out = evaluate(b.build(), {"a": 0b0101}, lanes=4)
        assert out["o"] == 0b1010

    def test_const_broadcast(self):
        b = DFGBuilder()
        a = b.input("a")
        one = b.const(1)
        b.output("o", a ^ one)
        out = evaluate(b.build(), {"a": 0b0011}, lanes=4)
        assert out["o"] == 0b1100

    def test_missing_input_rejected(self):
        dag = make_simple()
        with pytest.raises(GraphError):
            evaluate(dag, {"a": 0, "b": 0}, lanes=4)

    def test_unknown_input_rejected(self):
        dag = make_simple()
        with pytest.raises(GraphError):
            evaluate(dag, {"a": 0, "b": 0, "c": 0, "zz": 1}, lanes=4)

    def test_oversized_input_rejected(self):
        dag = make_simple()
        with pytest.raises(GraphError):
            evaluate(dag, {"a": 16, "b": 0, "c": 0}, lanes=4)

    @pytest.mark.parametrize("op,expected", [
        (OpType.AND, 0b1000),
        (OpType.OR, 0b1110),
        (OpType.XOR, 0b0110),
        (OpType.NAND, 0b0111),
        (OpType.NOR, 0b0001),
        (OpType.XNOR, 0b1001),
    ])
    def test_all_binary_ops(self, op, expected):
        b = DFGBuilder()
        x, y = b.inputs("x", "y")
        b.output("o", b.op(op, [x, y]))
        out = evaluate(b.build(), {"x": 0b1100, "y": 0b1010}, lanes=4)
        assert out["o"] == expected

    @pytest.mark.parametrize("op,expected", [
        (OpType.AND, 0b1000 & 0b0110),
        (OpType.OR, 0b1100 | 0b1010 | 0b0110),
        (OpType.XOR, 0b1100 ^ 0b1010 ^ 0b0110),
    ])
    def test_multi_operand_ops(self, op, expected):
        b = DFGBuilder()
        x, y, z = b.inputs("x", "y", "z")
        b.output("o", b.op(op, [x, y, z]))
        out = evaluate(b.build(), {"x": 0b1100, "y": 0b1010, "z": 0b0110}, lanes=4)
        assert out["o"] == expected


class TestBuilder:
    def test_operator_overloads(self):
        b = DFGBuilder("maj")
        x, y, z = b.inputs("x", "y", "z")
        b.output("maj", (x & y) | (x & z) | (y & z))
        dag = b.build()
        out = evaluate(dag, {"x": 0b1100, "y": 0b1010, "z": 0b0110}, lanes=4)
        assert out["maj"] == 0b1110

    def test_build_requires_output(self):
        b = DFGBuilder()
        b.input("a")
        with pytest.raises(GraphError):
            b.build()

    def test_cross_builder_rejected(self):
        b1, b2 = DFGBuilder(), DFGBuilder()
        a = b1.input("a")
        c = b2.input("c")
        with pytest.raises(GraphError):
            b1.and_(a, c)

    def test_named_helpers(self):
        b = DFGBuilder()
        x, y = b.inputs("x", "y")
        b.output("a", b.nand(x, y))
        b.output("b", b.nor(x, y))
        b.output("c", b.xnor(x, y))
        b.output("d", b.not_(x))
        out = evaluate(b.build(), {"x": 0b1100, "y": 0b1010}, lanes=4)
        assert out == {"a": 0b0111, "b": 0b0001, "c": 0b1001, "d": 0b0011}


class TestDot:
    def test_dot_contains_all_nodes(self):
        dag = make_simple()
        dot = to_dot(dag)
        assert dot.count("shape=box") == 2
        assert dot.count("shape=ellipse") == 5
        assert "digraph" in dot
        assert "b=2" in dot  # b-level annotation of the AND
