"""Tests for DAG composition (repro.dfg.compose) and Monte-Carlo validation
of the analytic decision-failure model."""

import random

import pytest

from repro.devices import RERAM, STT_MRAM, composite_state, decision_failure_probability
from repro.dfg import DFGBuilder, OpType, evaluate, union
from repro.errors import GraphError


def make_and():
    b = DFGBuilder("and")
    x, y = b.inputs("x", "y")
    b.output("o", x & y)
    return b.build()


def make_xor_shared():
    b = DFGBuilder("xor")
    x, z = b.inputs("x", "z")
    b.output("o", x ^ z)
    return b.build()


class TestUnion:
    def test_outputs_prefixed(self):
        merged = union([make_and(), make_and()], ["a_", "b_"])
        assert set(merged.outputs) == {"a_o", "b_o"}

    def test_equally_named_inputs_shared(self):
        merged = union([make_and(), make_xor_shared()])
        names = [o.name for o in merged.inputs()]
        assert sorted(names) == ["x", "y", "z"]  # single 'x'

    def test_semantics_preserved(self):
        merged = union([make_and(), make_xor_shared()], ["g0_", "g1_"])
        out = evaluate(merged, {"x": 0b1100, "y": 0b1010, "z": 0b0110}, 4)
        assert out == {"g0_o": 0b1000, "g1_o": 0b1010}

    def test_default_prefixes(self):
        merged = union([make_and(), make_and()])
        assert set(merged.outputs) == {"g0_o", "g1_o"}

    def test_errors(self):
        with pytest.raises(GraphError):
            union([])
        with pytest.raises(GraphError):
            union([make_and()], ["a_", "b_"])

    def test_ops_accumulate(self):
        merged = union([make_and()] * 3)
        assert merged.num_ops == 3
        merged.validate()


class TestMonteCarloValidation:
    """The analytic P_DF must match direct sampling of the physics.

    Samples per-cell conductances from the same Gaussians the model
    integrates, applies the equal-z-score threshold, and compares the
    empirical failure rate against the analytic value.  Run where the
    probability is large enough to measure (a high-variability device).
    """

    def _empirical(self, tech, op, k, trials=200_000, seed=9):
        rng = random.Random(seed)
        boundaries = {
            OpType.AND: [(k - 1, k)],
            OpType.OR: [(0, 1)],
        }[op]
        failures = 0
        for j_left, j_right in boundaries:
            left = composite_state(tech, k, j_left)
            right = composite_state(tech, k, j_right)
            gap = abs(left.mu - right.mu)
            spread = left.sigma + right.sigma
            # threshold at the equal-z point between the two states
            if left.mu > right.mu:
                thresh = left.mu - gap * left.sigma / spread
            else:
                thresh = left.mu + gap * left.sigma / spread
            for _ in range(trials // 2):
                g_left = rng.gauss(left.mu, left.sigma)
                g_right = rng.gauss(right.mu, right.sigma)
                if left.mu > right.mu:
                    failures += g_left <= thresh
                    failures += g_right > thresh
                else:
                    failures += g_left >= thresh
                    failures += g_right < thresh
        return failures / (trials * len(boundaries))

    @pytest.mark.parametrize("op,k", [(OpType.AND, 2), (OpType.OR, 2),
                                      (OpType.AND, 4), (OpType.OR, 4)])
    def test_analytic_matches_sampling(self, op, k):
        tech = STT_MRAM.with_variability(0.25, 0.25)  # measurable P_DF
        analytic = decision_failure_probability(tech, op, k)
        # the analytic value is the *average* of the two per-side errors
        empirical = self._empirical(tech, op, k)
        assert empirical == pytest.approx(analytic, rel=0.15)

    def test_reliable_device_rarely_fails_in_simulation(self):
        p = decision_failure_probability(RERAM, OpType.AND, 2)
        assert p < 1e-10  # sampling would never see a failure
