"""Smoke tests: every shipped example must run end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 600) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "functional check passed" in out
    assert "read [" in out


def test_database_scan():
    out = run_example("database_scan.py")
    assert "functionally verified" in out
    assert "speedup" in out


def test_sobel_edge():
    out = run_example("sobel_edge.py")
    assert "verified" in out
    assert "edge magnitude map" in out


@pytest.mark.slow
def test_aes_encrypt_reduced():
    out = run_example("aes_encrypt.py", "--rounds", "2")
    assert "[ok]" in out
    assert "MISMATCH" not in out
