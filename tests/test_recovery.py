"""Unit tests for the detect-and-recover execution policies."""

import random

import pytest

from repro.arch import TargetSpec
from repro.core.compiler import compile_dag
from repro.core.config import CompilerConfig
from repro.devices import RERAM, STT_MRAM
from repro.dfg import OpType
from repro.errors import SimulationError
from repro.reliability.recovery import (
    POLICIES,
    CheckpointReplay,
    DegradeMra,
    NoRecovery,
    RecoveryStats,
    RereadVote,
    _majority,
    execute_with_recovery,
    get_policy,
)
from repro.sim import ArrayMachine
from repro.workloads.synthetic import synthetic_dag


def faulty_program(sigma=0.12, num_ops=24, seed=3):
    tech = STT_MRAM.with_variability(sigma, sigma)
    target = TargetSpec.square(64, tech, num_arrays=4, max_activated_rows=4)
    dag = synthetic_dag(num_ops=num_ops, num_inputs=8, seed=seed, name="rec")
    return compile_dag(dag, target,
                       CompilerConfig(mapper="sherlock", mra=4), cache=False)


def random_inputs(program, lanes, seed=0):
    rng = random.Random(seed)
    return {o.name: rng.getrandbits(lanes)
            for o in program.source_dag.inputs()}


def plain_machine(lanes=8):
    target = TargetSpec(RERAM, rows=16, cols=8, data_width=32, num_arrays=2)
    return ArrayMachine(target, lanes=lanes)


class TestMajority:
    def test_three_way(self):
        assert _majority([0b1100, 0b1010, 0b1001], 0xF) == 0b1000

    def test_outvotes_single_disagreement(self):
        assert _majority([0b0110, 0b0110, 0b1111], 0xF) == 0b0110

    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_matches_per_lane_counting(self, n):
        rng = random.Random(n)
        lanes = 16
        mask = (1 << lanes) - 1
        for _ in range(50):
            senses = [rng.getrandbits(lanes) for _ in range(n)]
            expected = 0
            for lane in range(lanes):
                ones = sum((s >> lane) & 1 for s in senses)
                if ones > n // 2:
                    expected |= 1 << lane
            assert _majority(senses, mask) == expected


class TestRegistry:
    def test_all_policies_registered(self):
        assert set(POLICIES) == {"none", "reread-vote", "checkpoint-replay",
                                 "degrade-mra"}

    def test_get_policy_builds_named_instances(self):
        for name in POLICIES:
            policy = get_policy(name)
            assert policy.name == name
            assert policy.stats == RecoveryStats()

    def test_unknown_policy_raises(self):
        with pytest.raises(SimulationError, match="unknown recovery policy"):
            get_policy("pray")

    def test_even_vote_count_rejected(self):
        with pytest.raises(SimulationError, match="odd"):
            RereadVote(votes=4)

    def test_bad_checkpoint_interval_rejected(self):
        with pytest.raises(SimulationError, match="interval"):
            CheckpointReplay(interval=0)


class TestRereadVoteUnit:
    def test_outvotes_a_faulty_first_sense(self):
        policy = RereadVote(votes=3)
        machine = plain_machine()
        good = 0b0110
        senses = iter([good, good])
        value = policy.on_sense(machine, OpType.AND, 2, [0b1110, 0b0111],
                                0b1111, lambda: next(senses))
        assert value == good
        assert policy.stats.votes == 1
        assert policy.stats.extra_senses == 2
        assert policy.stats.disagreements == 1
        assert policy.stats.overhead_latency_cycles > 0
        assert policy.stats.overhead_energy_pj > 0

    def test_plain_reads_are_not_voted(self):
        policy = RereadVote()
        value = policy.on_sense(plain_machine(), None, 1, [0b1010], 0b1010,
                                lambda: 0)
        assert value == 0b1010
        assert policy.stats.votes == 0
        assert policy.stats.overhead_latency_cycles == 0


class TestDegradeMraUnit:
    def test_agreeing_double_sense_is_accepted(self):
        policy = DegradeMra(retries=2)
        value = policy.on_sense(plain_machine(), OpType.AND, 3,
                                [0b1110, 0b0111, 0b0110], 0b0110,
                                lambda: 0b0110)
        assert value == 0b0110
        assert policy.stats.extra_senses == 1
        assert policy.stats.degraded_ops == 0

    def test_persistent_disagreement_degrades_to_mra2_chain(self):
        policy = DegradeMra(retries=1)
        machine = plain_machine()  # no fault_rng: the chain is exact
        values = [0b1110, 0b0111, 0b0110]
        # detection pair disagrees, retry pair disagrees -> degrade
        senses = iter([0b0001, 0b1000, 0b0100])
        value = policy.on_sense(machine, OpType.AND, 3, values, 0b1111,
                                lambda: next(senses))
        assert value == 0b1110 & 0b0111 & 0b0110
        assert policy.stats.degraded_ops == 1
        assert policy.stats.degraded_reads == 2   # k-1 two-row senses
        assert policy.stats.degraded_writes == 1  # k-2 write-backs
        assert policy.stats.overhead_latency_cycles > 0

    def test_inverted_op_chain_applies_final_not(self):
        policy = DegradeMra(retries=0)
        machine = plain_machine(lanes=4)
        values = [0b1100, 0b1010]
        # NAND is k=2: nothing to degrade to -> accept the detection sense
        senses = iter([0b0001])
        value = policy.on_sense(machine, OpType.NAND, 2, values, 0b1111,
                                lambda: next(senses))
        assert value == 0b0001
        assert policy.stats.retries_exhausted == 1
        # with k=3 the chain runs and the final inversion applies
        policy = DegradeMra(retries=0)
        values = [0b1100, 0b1010, 0b0110]
        senses = iter([0b0001])
        value = policy.on_sense(machine, OpType.NAND, 3, values, 0b1111,
                                lambda: next(senses))
        assert value == (~(0b1100 & 0b1010 & 0b0110)) & 0xF
        assert policy.stats.degraded_ops == 1


class TestCheckpointReplay:
    def test_fault_free_run_takes_no_rollbacks(self):
        program = faulty_program()
        inputs = random_inputs(program, lanes=8)
        policy = CheckpointReplay(interval=16)
        outputs = policy.execute(program, inputs, lanes=8, fault_rng=None)
        assert outputs == program.execute(inputs, lanes=8)
        assert policy.stats.checkpoints > 1
        assert policy.stats.rollbacks == 0
        assert policy.stats.overhead_latency_cycles == 0

    def test_rollback_replays_and_recovers(self):
        """A seed where plain execution fails but replay recovers."""
        program = faulty_program()
        inputs = random_inputs(program, lanes=8)
        expected = program.execute(inputs, lanes=8)
        failing_seed = None
        for seed in range(40):
            if program.execute(inputs, lanes=8,
                               fault_rng=random.Random(seed)) != expected:
                failing_seed = seed
                break
        assert failing_seed is not None
        policy = CheckpointReplay(interval=16, retries=5)
        outputs = policy.execute(program, inputs, lanes=8,
                                 fault_rng=random.Random(failing_seed))
        assert policy.stats.rollbacks >= 1
        assert policy.stats.replayed_instructions > 0
        assert policy.stats.overhead_latency_cycles > 0
        assert outputs == expected


class TestExecuteWithRecovery:
    def test_fault_free_outcome_matches_reference(self):
        program = faulty_program()
        inputs = random_inputs(program, lanes=8)
        outcome = execute_with_recovery(program, inputs, lanes=8)
        assert not outcome.failed
        assert outcome.policy == "none"
        assert outcome.outputs == outcome.expected

    def test_policy_accepts_registry_names(self):
        program = faulty_program()
        inputs = random_inputs(program, lanes=8)
        outcome = execute_with_recovery(program, inputs, lanes=8,
                                        fault_rng=random.Random(5),
                                        policy="reread-vote")
        assert outcome.policy == "reread-vote"
        assert outcome.stats.votes > 0

    def test_overhead_lands_in_metrics(self):
        program = faulty_program()
        inputs = random_inputs(program, lanes=8)
        outcome = execute_with_recovery(program, inputs, lanes=8,
                                        fault_rng=random.Random(5),
                                        policy=RereadVote())
        base = program.metrics
        assert outcome.metrics.recovery_latency_cycles == \
            outcome.stats.overhead_latency_cycles
        assert outcome.metrics.total_latency_cycles == \
            base.latency_cycles + outcome.stats.overhead_latency_cycles
        assert outcome.metrics.total_energy_pj == pytest.approx(
            base.energy_pj + outcome.stats.overhead_energy_pj)
        assert outcome.metrics.latency_ns > base.latency_ns

    def test_fresh_policy_instances_do_not_share_stats(self):
        first = get_policy("reread-vote")
        second = get_policy("reread-vote")
        first.stats.votes = 99
        assert second.stats.votes == 0


class TestRecoveryStats:
    def test_merge_sums_every_field(self):
        a = RecoveryStats(extra_senses=1, votes=2, rollbacks=3,
                          overhead_latency_cycles=10, overhead_energy_pj=1.5)
        b = RecoveryStats(extra_senses=4, votes=1, retries_exhausted=2,
                          overhead_latency_cycles=5, overhead_energy_pj=0.5)
        a.merge(b)
        assert a.extra_senses == 5
        assert a.votes == 3
        assert a.rollbacks == 3
        assert a.retries_exhausted == 2
        assert a.overhead_latency_cycles == 15
        assert a.overhead_energy_pj == pytest.approx(2.0)

    def test_charge_accumulates(self):
        stats = RecoveryStats()
        stats.charge(7, 1.25)
        stats.charge(3, 0.75)
        assert stats.overhead_latency_cycles == 10
        assert stats.overhead_energy_pj == pytest.approx(2.0)


class TestNoRecovery:
    def test_matches_program_execute(self):
        program = faulty_program()
        inputs = random_inputs(program, lanes=8)
        policy = NoRecovery()
        out_policy = policy.execute(program, inputs, lanes=8,
                                    fault_rng=random.Random(11))
        out_direct = program.execute(inputs, lanes=8,
                                     fault_rng=random.Random(11))
        assert out_policy == out_direct
        assert policy.machine is not None
        assert policy.stats == RecoveryStats()
