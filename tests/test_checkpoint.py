"""Tests for checkpoint/resume journals of campaign and lifetime runs."""

import dataclasses
import json

import pytest

from repro.arch import TargetSpec
from repro.core import CompilerConfig
from repro.core.compiler import compile_dag
from repro.devices import RERAM, STT_MRAM
from repro.errors import CheckpointError
from repro.reliability import (
    CHECKPOINT_SCHEMA,
    CheckpointJournal,
    program_digest,
    remaining_ranges,
    run_campaign,
    run_lifetime,
)
from repro.workloads.synthetic import synthetic_dag

IDENTITY = {"who": "test", "seed": 1}


@pytest.fixture(scope="module")
def program():
    tech = STT_MRAM.with_variability(0.12, 0.12)
    target = TargetSpec.square(64, tech, num_arrays=4, max_activated_rows=4)
    dag = synthetic_dag(num_ops=24, num_inputs=8, seed=3, name="ckpt")
    return compile_dag(dag, target,
                       CompilerConfig(mapper="sherlock", mra=4), cache=False)


def truncate_journal(path, keep):
    """Simulate an interrupted run: keep only the first ``keep`` records."""
    document = json.loads(path.read_text())
    assert len(document["records"]) > keep
    document["records"] = document["records"][:keep]
    path.write_text(json.dumps(document))


class TestCheckpointJournal:
    def test_create_append_resume(self, tmp_path):
        path = tmp_path / "run.ckpt"
        journal = CheckpointJournal(path, "campaign", IDENTITY)
        assert not journal.resumed
        journal.append({"first": 0, "count": 5})
        journal.append({"first": 5, "count": 5})
        resumed = CheckpointJournal(path, "campaign", IDENTITY)
        assert resumed.resumed
        assert resumed.records == [{"first": 0, "count": 5},
                                   {"first": 5, "count": 5}]
        document = json.loads(path.read_text())
        assert document["schema"] == CHECKPOINT_SCHEMA
        resumed.remove()
        assert not path.exists()
        resumed.remove()  # idempotent

    def test_rejects_corrupt_and_mismatched_journals(self, tmp_path):
        path = tmp_path / "run.ckpt"
        CheckpointJournal(path, "campaign", IDENTITY)
        with pytest.raises(CheckpointError):  # different identity
            CheckpointJournal(path, "campaign", {"who": "someone-else"})
        with pytest.raises(CheckpointError):  # different kind
            CheckpointJournal(path, "lifetime", IDENTITY)
        document = json.loads(path.read_text())
        document["schema"] = "sherlock-checkpoint/v999"
        path.write_text(json.dumps(document))
        with pytest.raises(CheckpointError):  # wrong schema
            CheckpointJournal(path, "campaign", IDENTITY)
        path.write_text("{truncated garba")
        with pytest.raises(CheckpointError):  # corrupt JSON
            CheckpointJournal(path, "campaign", IDENTITY)
        path.write_text(json.dumps(["not", "an", "object"]))
        with pytest.raises(CheckpointError):
            CheckpointJournal(path, "campaign", IDENTITY)

    def test_journal_file_is_always_a_complete_document(self, tmp_path):
        path = tmp_path / "run.ckpt"
        journal = CheckpointJournal(path, "campaign", IDENTITY)
        for index in range(10):
            journal.append({"first": index, "count": 1})
            json.loads(path.read_text())  # parseable after every append


class TestRemainingRanges:
    def test_gap_computation(self):
        assert remaining_ranges(10, []) == [(0, 10)]
        assert remaining_ranges(10, [(0, 10)]) == []
        assert remaining_ranges(10, [(0, 3), (7, 3)]) == [(3, 4)]
        assert remaining_ranges(10, [(3, 4)]) == [(0, 3), (7, 3)]

    def test_rejects_overlap_and_overflow(self):
        with pytest.raises(CheckpointError):
            remaining_ranges(10, [(0, 5), (4, 3)])
        with pytest.raises(CheckpointError):
            remaining_ranges(10, [(8, 5)])


class TestProgramDigest:
    def test_digest_tracks_program_identity(self, program):
        assert program_digest(program) == program_digest(program)
        other_dag = synthetic_dag(num_ops=24, num_inputs=8, seed=4,
                                  name="ckpt2")
        other = compile_dag(other_dag, program.target,
                            CompilerConfig(mapper="sherlock", mra=4),
                            cache=False)
        assert program_digest(other) != program_digest(program)


class TestCampaignResume:
    def test_checkpointed_equals_plain_serial(self, program, tmp_path):
        plain = run_campaign(program, trials=20, seed=9, lanes=8)
        ckpt = run_campaign(program, trials=20, seed=9, lanes=8,
                            checkpoint=tmp_path / "c.ckpt")
        assert ckpt == plain

    def test_interrupted_resume_is_bit_identical(self, program, tmp_path):
        path = tmp_path / "c.ckpt"
        # workers=2 journals two canonical blocks even when run serially
        uninterrupted = run_campaign(program, trials=20, seed=9, lanes=8,
                                     workers=2, checkpoint=path)
        truncate_journal(path, 1)  # "crash" after the first block
        resumed = run_campaign(program, trials=20, seed=9, lanes=8,
                               workers=2, checkpoint=path)
        assert resumed == uninterrupted
        # the finished journal makes a re-run a pure no-op merge
        replayed = run_campaign(program, trials=20, seed=9, lanes=8,
                                workers=2, checkpoint=path)
        assert replayed == uninterrupted

    def test_resume_with_different_workers_matches_counters(self, program,
                                                            tmp_path):
        path = tmp_path / "c.ckpt"
        uninterrupted = run_campaign(program, trials=20, seed=9, lanes=8,
                                     workers=2, checkpoint=path)
        truncate_journal(path, 1)
        resumed = run_campaign(program, trials=20, seed=9, lanes=8,
                               workers=1, checkpoint=path)
        # integer failure counters are exact across any block partition
        assert resumed.decision_failures == uninterrupted.decision_failures
        assert resumed.output_failures == uninterrupted.output_failures
        assert resumed.injected_faults == uninterrupted.injected_faults

    def test_mismatched_run_raises(self, program, tmp_path):
        path = tmp_path / "c.ckpt"
        run_campaign(program, trials=10, seed=9, lanes=8, checkpoint=path)
        with pytest.raises(CheckpointError):
            run_campaign(program, trials=10, seed=10, lanes=8,
                         checkpoint=path)
        with pytest.raises(CheckpointError):
            run_campaign(program, trials=12, seed=9, lanes=8,
                         checkpoint=path)


class TestLifetimeResume:
    def small_target(self):
        return TargetSpec(RERAM, rows=16, cols=16, data_width=32,
                          num_arrays=2)

    def run(self, checkpoint=None):
        return run_lifetime(
            synthetic_dag(num_ops=24, num_inputs=8, seed=4),
            self.small_target(), CompilerConfig(),
            trials=3, seed=7, endurance=40.0, endurance_spread=0.15,
            validate=True, lanes=8, checkpoint=checkpoint)

    def test_interrupted_resume_is_bit_identical(self, tmp_path):
        path = tmp_path / "l.ckpt"
        plain = self.run()
        uninterrupted = self.run(checkpoint=path)
        assert dataclasses.asdict(uninterrupted) == dataclasses.asdict(plain)
        truncate_journal(path, 1)  # "crash" after the first trial
        resumed = self.run(checkpoint=path)
        assert dataclasses.asdict(resumed) == dataclasses.asdict(plain)

    def test_mismatched_run_raises(self, tmp_path):
        path = tmp_path / "l.ckpt"
        self.run(checkpoint=path)
        with pytest.raises(CheckpointError):
            run_lifetime(
                synthetic_dag(num_ops=24, num_inputs=8, seed=4),
                self.small_target(), CompilerConfig(),
                trials=3, seed=8, endurance=40.0, endurance_spread=0.15,
                validate=True, lanes=8, checkpoint=path)
