"""Unit tests for the code generator's internals."""

import pytest

from repro.arch import Layout, ReadInst, ShiftInst, TargetSpec, WriteInst
from repro.devices import RERAM
from repro.dfg import DFGBuilder, OpType
from repro.errors import MappingError
from repro.mapping.base import MappingStats
from repro.mapping.codegen import CodeGenerator


def make_target(rows=16, cols=8, num_arrays=2, **kwargs):
    kwargs.setdefault("max_activated_rows", 4)
    return TargetSpec(RERAM, rows=rows, cols=cols, data_width=32,
                      num_arrays=num_arrays, **kwargs)


def make_gen(dag, target=None, pad_budget=None):
    target = target or make_target()
    layout = Layout(target)
    stats = MappingStats("test")
    return CodeGenerator(dag, target, layout, stats, pad_budget=pad_budget), layout


def two_op_dag():
    b = DFGBuilder()
    x, y, z = b.inputs("x", "y", "z")
    b.output("o", (x & y) ^ z)
    return b.build()


class TestPerOpGeneration:
    def test_same_column_needs_no_moves(self):
        dag = two_op_dag()
        gen, layout = make_gen(dag)
        gen.run_per_op(lambda op_id: 0)
        assert gen.stats.gather_moves == 0
        # 2 ops -> 2 CIM reads + 2 result writes
        reads = [i for i in gen.instructions if isinstance(i, ReadInst)]
        writes = [i for i in gen.instructions if isinstance(i, WriteInst)]
        assert len(reads) == 2 and len(writes) == 2

    def test_cross_column_emits_move_sequence(self):
        dag = two_op_dag()
        gen, layout = make_gen(dag)
        order = iter([0, 1])  # AND in column 0, XOR in column 1
        homes = {}

        def home_for(op_id):
            if op_id not in homes:
                homes[op_id] = next(order)
            return homes[op_id]

        gen.run_per_op(home_for)
        assert gen.stats.gather_moves >= 1
        assert any(isinstance(i, ShiftInst) for i in gen.instructions)

    def test_arity_above_mra_rejected(self):
        b = DFGBuilder()
        ws = b.inputs(*"abcdef")
        b.output("o", b.and_(*ws))
        gen, _ = make_gen(b.build())
        with pytest.raises(MappingError, match="activates at most"):
            gen.run_per_op(lambda op_id: 0)

    def test_duplicate_operand_rejected(self):
        from repro.dfg import DataFlowGraph

        dag = DataFlowGraph()
        a = dag.add_input("a")
        b_ = dag.add_input("b")
        t = dag.add_op(OpType.XOR, [a, b_])
        dag.mark_output(t, "o")
        # force a duplicate via the low-level mutator
        op_id = dag.operand(t).producer
        dag.replace_op(op_id, operands=[a, a])
        gen, _ = make_gen(dag)
        with pytest.raises(MappingError, match="repeats an operand"):
            gen.run_per_op(lambda op_id: 0)


class TestMergedGeneration:
    def test_non_selective_target_rejected(self):
        dag = two_op_dag()
        gen, _ = make_gen(dag, make_target(selective_columns=False))
        with pytest.raises(MappingError, match="selective-column"):
            gen.run_merged({op.node_id: 0 for op in dag.op_nodes()})

    def test_parallel_ops_merge_into_one_read(self):
        b = DFGBuilder()
        ws = b.inputs("a", "b", "c", "d")
        b.output("o1", ws[0] & ws[1])
        b.output("o2", ws[2] ^ ws[3])
        dag = b.build()
        gen, _ = make_gen(dag, pad_budget={0: 16, 1: 16})
        column_of = {}
        for i, node in enumerate(sorted(dag.op_nodes(), key=lambda n: n.node_id)):
            column_of[node.node_id] = i
        gen.run_merged(column_of)
        cim = [i for i in gen.instructions
               if isinstance(i, ReadInst) and i.ops]
        assert len(cim) == 1
        assert set(cim[0].ops) == {OpType.AND, OpType.XOR}
        writes = [i for i in gen.instructions if isinstance(i, WriteInst)]
        assert len(writes) == 1 and len(writes[0].cols) == 2

    def test_same_column_ops_serialize(self):
        b = DFGBuilder()
        ws = b.inputs("a", "b", "c", "d")
        b.output("o1", ws[0] & ws[1])
        b.output("o2", ws[2] & ws[3])
        dag = b.build()
        gen, _ = make_gen(dag)
        gen.run_merged({op.node_id: 0 for op in dag.op_nodes()})
        cim = [i for i in gen.instructions
               if isinstance(i, ReadInst) and i.ops]
        assert len(cim) == 2  # column conflict forbids merging

    def test_pad_budget_zero_still_correct(self):
        dag = two_op_dag()
        gen, layout = make_gen(dag, pad_budget={})
        gen.run_merged({op.node_id: 0 for op in dag.op_nodes()})
        assert gen.instructions

    def test_aligned_place_pads_within_budget(self):
        dag = two_op_dag()
        gen, layout = make_gen(dag, pad_budget={0: 8, 1: 8})
        layout.place(990, 0)  # column 0 one ahead
        placed = gen._aligned_place([(101, 0), (102, 1)])
        assert placed[(101, 0)].row == placed[(102, 1)].row == 1
        assert gen._pad_used.get(1, 0) == 1

    def test_aligned_place_falls_back_without_budget(self):
        dag = two_op_dag()
        gen, layout = make_gen(dag, pad_budget={})
        layout.place(990, 0)
        placed = gen._aligned_place([(101, 0), (102, 1)])
        assert placed[(101, 0)].row == 1
        assert placed[(102, 1)].row == 0  # no padding allowed


class TestLayoutRegions:
    def test_top_and_bottom_meet(self):
        target = make_target(rows=4)
        layout = Layout(target)
        layout.place(1, 0)
        layout.place_top(2, 0)
        layout.place_top(3, 0)
        layout.place(4, 0)
        with pytest.raises(MappingError):
            layout.place(5, 0)
        with pytest.raises(MappingError):
            layout.place_top(6, 0)
        assert layout.cells_used == 4

    def test_top_rows_descend(self):
        layout = Layout(make_target(rows=8))
        a = layout.place_top(1, 0)
        b = layout.place_top(2, 0)
        assert (a.row, b.row) == (7, 6)

    def test_place_at_respects_top_region(self):
        layout = Layout(make_target(rows=8))
        layout.place_top(1, 0)
        with pytest.raises(MappingError):
            layout.place_at(2, 0, 7)
        assert layout.place_at(2, 0, 6).row == 6
