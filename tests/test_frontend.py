"""Unit tests for the C-subset front-end: lexer, parser, lowering."""

import pytest

from repro.dfg import evaluate
from repro.errors import FrontendError
from repro.frontend import c_to_dfg, parse, tokenize
from repro.frontend import ast_nodes as ast


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("word_t f(int x) { return x & 3; }")
        kinds = [t.kind for t in tokens]
        assert kinds[0] == "keyword"
        assert kinds[-1] == "eof"
        texts = [t.text for t in tokens]
        assert "&" in texts and "3" in texts

    def test_multi_char_operators(self):
        tokens = tokenize("a &= b; c ^= d; e |= f; i++; j <= 4;")
        texts = [t.text for t in tokens if t.kind == "op"]
        assert "&=" in texts and "^=" in texts and "|=" in texts
        assert "++" in texts and "<=" in texts

    def test_hex_numbers(self):
        tokens = tokenize("0xFF 0x1b")
        assert [t.text for t in tokens[:-1]] == ["0xFF", "0x1b"]

    def test_comments_skipped(self):
        tokens = tokenize("a // line comment\n /* block\ncomment */ b")
        assert [t.text for t in tokens if t.kind == "ident"] == ["a", "b"]

    def test_unterminated_comment(self):
        with pytest.raises(FrontendError):
            tokenize("/* never closed")

    def test_bad_character(self):
        with pytest.raises(FrontendError):
            tokenize("a @ b")

    def test_positions_tracked(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].col) == (1, 1)
        assert (tokens[1].line, tokens[1].col) == (2, 3)


class TestParser:
    def test_function_signature(self):
        program = parse("void f(word_t a, word_t b[4]) { a = b[0]; }")
        fn = program.function()
        assert fn.name == "f"
        assert [p.name for p in fn.params] == ["a", "b"]
        assert fn.params[1].array_size is not None

    def test_multiple_functions(self):
        program = parse("""
            void f(word_t a) { a = a & a; }
            void g(word_t b) { b = b | b; }
        """)
        assert program.function("g").name == "g"
        with pytest.raises(FrontendError):
            program.function()  # ambiguous
        with pytest.raises(FrontendError):
            program.function("h")

    def test_operator_precedence(self):
        program = parse("void f(word_t a, word_t b, word_t c) { a = a | b ^ c & a; }")
        assign = program.function().body[0]
        # top node must be OR (lowest precedence)
        assert isinstance(assign.value, ast.BinOp)
        assert assign.value.op == "|"
        assert assign.value.right.op == "^"

    def test_for_loop_forms(self):
        for update in ("i++", "i += 2", "i = i + 1"):
            program = parse(
                f"void f(word_t a) {{ for (int i = 0; i < 4; {update}) "
                "{ a = a & a; } }")
            loop = program.function().body[0]
            assert isinstance(loop, ast.For)

    def test_for_downward(self):
        program = parse(
            "void f(word_t a) { for (int i = 3; i >= 0; i--) { a = a & a; } }")
        loop = program.function().body[0]
        assert loop.step == -1

    def test_compound_assignment(self):
        program = parse("void f(word_t a, word_t b) { a &= b; }")
        assign = program.function().body[0]
        assert assign.op == "&="

    def test_syntax_errors_carry_position(self):
        with pytest.raises(FrontendError, match="line"):
            parse("void f(word_t a) { a = ; }")
        with pytest.raises(FrontendError):
            parse("void f(word_t a) { a = b }")  # missing semicolon
        with pytest.raises(FrontendError):
            parse("void f(word_t a) {")  # unterminated block

    def test_loop_condition_must_test_loop_var(self):
        with pytest.raises(FrontendError):
            parse("void f(word_t a) { for (int i = 0; j < 4; i++) { a = a; } }")


class TestLowering:
    def test_simple_kernel(self):
        dag = c_to_dfg("word_t f(word_t a, word_t b) { return a & ~b; }")
        out = evaluate(dag, {"a": 0b1100, "b": 0b1010}, lanes=4)
        assert out["return"] == 0b0100

    def test_loop_unrolling(self):
        dag = c_to_dfg("""
            word_t f(word_t x[4]) {
                word_t acc = 0;
                for (int i = 0; i < 4; i++) { acc = acc | x[i]; }
                return acc;
            }
        """)
        inputs = {f"x[{i}]": 1 << i for i in range(4)}
        assert evaluate(dag, inputs, lanes=4)["return"] == 0b1111

    def test_nested_loops_with_index_arithmetic(self):
        dag = c_to_dfg("""
            word_t f(word_t x[6]) {
                word_t acc = 0;
                for (int i = 0; i < 2; i++) {
                    for (int j = 0; j < 3; j++) {
                        acc = acc ^ x[i * 3 + j];
                    }
                }
                return acc;
            }
        """)
        inputs = {f"x[{i}]": (i + 1) for i in range(6)}
        expected = 0
        for v in range(1, 7):
            expected ^= v
        assert evaluate(dag, inputs, lanes=4)["return"] == expected & 0xF

    def test_parameter_writes_become_outputs(self):
        dag = c_to_dfg("""
            void f(word_t a, word_t out[2]) {
                out[0] = a & a;
                out[1] = ~a;
            }
        """)
        assert set(dag.outputs) == {"out[0]", "out[1]"}

    def test_const_broadcast(self):
        dag = c_to_dfg("word_t f(word_t a) { word_t m = ~0; return a ^ m; }")
        out = evaluate(dag, {"a": 0b0101}, lanes=4)
        assert out["return"] == 0b1010

    def test_arbitrary_literal_rejected(self):
        with pytest.raises(FrontendError, match="broadcast"):
            c_to_dfg("word_t f(word_t a) { return a & 5; }")

    def test_arith_on_vectors_rejected(self):
        with pytest.raises(FrontendError):
            c_to_dfg("word_t f(word_t a, word_t b) { return a + b; }")

    def test_read_before_assign_rejected(self):
        with pytest.raises(FrontendError, match="before assignment"):
            c_to_dfg("word_t f(word_t a) { word_t t; return t & a; }")

    def test_out_of_bounds_index_rejected(self):
        with pytest.raises(FrontendError, match="out of bounds"):
            c_to_dfg("word_t f(word_t x[2]) { return x[5]; }")

    def test_loop_var_as_vector_rejected(self):
        with pytest.raises(FrontendError):
            c_to_dfg("""
                word_t f(word_t a) {
                    word_t acc = 0;
                    for (int i = 0; i < 2; i++) { acc = acc | i; }
                    return acc;
                }
            """)

    def test_unbounded_unroll_rejected(self):
        with pytest.raises(FrontendError, match="unrolls beyond"):
            c_to_dfg("""
                word_t f(word_t a) {
                    word_t acc = a;
                    for (int i = 0; i < 99999999; i++) { acc = acc & a; }
                    return acc;
                }
            """)

    def test_no_output_rejected(self):
        with pytest.raises(FrontendError, match="no outputs"):
            c_to_dfg("void f(word_t a) { word_t t = a & a; }")

    def test_statement_after_return_rejected(self):
        with pytest.raises(FrontendError, match="after return"):
            c_to_dfg("word_t f(word_t a) { return a & a; a = a; }")

    def test_compound_assignment_lowering(self):
        dag = c_to_dfg("word_t f(word_t a, word_t b) { a ^= b; return a; }")
        out = evaluate(dag, {"a": 0b1100, "b": 0b1010}, lanes=4)
        assert out["return"] == 0b0110

    def test_redeclaration_rejected(self):
        with pytest.raises(FrontendError, match="redeclaration"):
            c_to_dfg("word_t f(word_t a) { word_t t = a; word_t t = a; return t; }")

    def test_local_array(self):
        dag = c_to_dfg("""
            word_t f(word_t a, word_t b) {
                word_t t[2];
                t[0] = a & b;
                t[1] = a | b;
                return t[0] ^ t[1];
            }
        """)
        out = evaluate(dag, {"a": 0b1100, "b": 0b1010}, lanes=4)
        assert out["return"] == (0b1000 ^ 0b1110)

    def test_between_kernel_matches_reference(self):
        from repro.workloads import bitweaving

        dag = bitweaving.between_dag(bits=4)
        import random

        rng = random.Random(5)
        column = [rng.randrange(16) for _ in range(20)]
        inputs = bitweaving.scan_inputs(3, 12, column, bits=4)
        out = evaluate(dag, inputs, lanes=20)
        assert out["return"] == bitweaving.between_reference(3, 12, column)
