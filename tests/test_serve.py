"""Tests for the resilient compile-and-serve subsystem (repro.serve)."""

import json
import os
import random
import socket
import threading

import pytest

from repro.arch.target import TargetSpec
from repro.cli import main
from repro.core.compiler import SherlockCompiler, clear_compile_cache
from repro.core.config import CompilerConfig
from repro.devices import RERAM, CellFault, FaultMap
from repro.dfg.evaluate import evaluate
from repro.errors import (
    ServeError,
    ServiceOverloadError,
    SherlockError,
    WorkerCrashError,
)
from repro.serve import (
    ARTIFACT_SCHEMA,
    ArtifactCache,
    BreakerState,
    CircuitBreaker,
    CompileService,
    ServeRequest,
    handle_request_file,
    parse_request,
    serve_tcp,
)
from repro.sim.cpu import dag_events, run_model
from repro.workloads.synthetic import synthetic_dag


def small_target(**kwargs):
    kwargs.setdefault("num_arrays", 2)
    return TargetSpec.square(64, RERAM, **kwargs)


def small_dag(seed=1, ops=16):
    return synthetic_dag(num_ops=ops, num_inputs=6, seed=seed,
                         name=f"serve{seed}")


def inputs_for(dag, lanes=8, seed=0):
    rng = random.Random(seed)
    return {o.name: rng.getrandbits(lanes) for o in dag.inputs()}


def request_for(dag, lanes=8, seed=0, **kwargs):
    return ServeRequest(dag=dag, inputs=inputs_for(dag, lanes, seed),
                        lanes=lanes, **kwargs)


class FakeClock:
    """A manually advanced monotonic clock for breaker/deadline tests."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ----------------------------------------------------------------------
# artifact cache
# ----------------------------------------------------------------------
class TestArtifactCache:
    def test_round_trip_hit_and_counters(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        target, config = small_target(), CompilerConfig()
        dag = small_dag()
        program = SherlockCompiler(target, config, cache=False).compile(dag)
        key = ArtifactCache.key_for(dag, target, config)
        assert cache.get(key) is None  # cold miss
        cache.put(key, program)
        reloaded = cache.get(key)
        assert reloaded is not None
        assert reloaded.instructions == program.instructions
        inputs = inputs_for(dag)
        assert reloaded.execute(inputs, 8) == program.execute(inputs, 8)
        assert cache.stats() == {"hits": 1, "misses": 1, "quarantined": 0,
                                 "writes": 1, "evictions": 0, "entries": 1}

    def test_fault_map_content_changes_the_key(self):
        target, config, dag = small_target(), CompilerConfig(), small_dag()
        fm = FaultMap()
        fm.mark_dead(0, 0, 0)
        blank = ArtifactCache.key_for(dag, target, config)
        faulty = ArtifactCache.key_for(dag, target, config, fm)
        same = ArtifactCache.key_for(dag, target, config, fm.copy())
        assert blank != faulty
        assert faulty == same
        fm.mark_dead(0, 1, 1)
        assert ArtifactCache.key_for(dag, target, config, fm) != faulty

    @pytest.mark.parametrize("corruption", [
        "truncated", "garbage", "wrong-schema", "version-mismatch"])
    def test_corrupt_entries_quarantine_and_recompile(self, tmp_path,
                                                      corruption):
        cache = ArtifactCache(tmp_path)
        target, config, dag = small_target(), CompilerConfig(), small_dag()
        program = SherlockCompiler(target, config, cache=False).compile(dag)
        key = ArtifactCache.key_for(dag, target, config)
        cache.put(key, program)
        path = cache.path_for(key)
        if corruption == "truncated":
            path.write_text(path.read_text()[:40])
        elif corruption == "garbage":
            path.write_bytes(b"\x00\xffnot json at all")
        elif corruption == "wrong-schema":
            document = json.loads(path.read_text())
            document["schema"] = "someone-elses-cache/v9"
            path.write_text(json.dumps(document))
        else:  # version-mismatch inside the program document
            document = json.loads(path.read_text())
            document["program"]["format_version"] = 99
            path.write_text(json.dumps(document))
        assert cache.get(key) is None  # tolerated, reported as a miss
        assert cache.quarantined == 1
        assert not path.exists()
        assert len(list(cache.quarantine_dir.iterdir())) == 1
        # the service would now recompile and overwrite; prove that works
        cache.put(key, program)
        assert cache.get(key) is not None

    def test_quarantine_can_discard_instead_of_keep(self, tmp_path):
        cache = ArtifactCache(tmp_path, keep_quarantined=False)
        key = "0" * 64
        cache.path_for(key).write_text("{broken")
        assert cache.get(key) is None
        assert cache.quarantined == 1
        assert not cache.quarantine_dir.exists()

    def test_concurrent_readers_never_see_partial_entries(self, tmp_path):
        """Hammer one key from writer and reader threads concurrently."""
        cache = ArtifactCache(tmp_path)
        target, config, dag = small_target(), CompilerConfig(), small_dag()
        program = SherlockCompiler(target, config, cache=False).compile(dag)
        key = ArtifactCache.key_for(dag, target, config)
        cache.put(key, program)
        stop = threading.Event()
        failures = []

        def writer():
            while not stop.is_set():
                cache.put(key, program)

        def reader():
            while not stop.is_set():
                got = cache.get(key)
                if got is None:
                    failures.append("reader saw a missing/partial entry")
                    return

        threads = ([threading.Thread(target=writer) for _ in range(2)]
                   + [threading.Thread(target=reader) for _ in range(3)])
        for t in threads:
            t.start()
        for t in threads[2:]:
            t.join(timeout=1.5)
        stop.set()
        for t in threads:
            t.join(timeout=5)
        assert not failures
        assert cache.quarantined == 0


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_trips_after_consecutive_failures_only(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, recovery_time_s=10,
                                 clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # resets the consecutive count
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 1
        assert not breaker.allow()

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_time_s=5,
                                 clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(5.1)
        assert breaker.allow()  # the probe
        assert breaker.state is BreakerState.HALF_OPEN
        assert not breaker.allow()  # only one probe at a time
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_half_open_probe_failure_retrips(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_time_s=5,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(5.1)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 2
        assert not breaker.allow()
        clock.advance(5.1)
        assert breaker.allow()

    def test_validation_and_force_open(self):
        with pytest.raises(ServeError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ServeError):
            CircuitBreaker(recovery_time_s=-1)
        breaker = CircuitBreaker()
        breaker.force_open()
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 1
        breaker.force_open()  # idempotent while open
        assert breaker.trips == 1


# ----------------------------------------------------------------------
# the service
# ----------------------------------------------------------------------
class TestCompileService:
    def test_serves_correct_outputs_and_caches(self, tmp_path):
        dag = small_dag()
        cache = ArtifactCache(tmp_path)
        with CompileService(small_target(), CompilerConfig(),
                            cache=cache, workers=2) as service:
            first = service.submit(request_for(dag, request_id="a")).wait(30)
            second = service.submit(request_for(dag, request_id="b")).wait(30)
        expected = evaluate(dag, inputs_for(dag), 8)
        assert first.outputs == expected and second.outputs == expected
        assert first.engine == "cim" and second.engine == "cim"
        assert not first.cached and second.cached
        assert first.cim_latency_us is not None
        assert first.cpu_latency_us == pytest.approx(
            run_model(dag_events(dag, 8)).latency_us)

    def test_killed_worker_is_retried_and_request_still_served(self):
        dag = small_dag()
        crashes = {"left": 2}

        def chaos(stage, request):
            if stage == "compile" and crashes["left"] > 0:
                crashes["left"] -= 1
                raise WorkerCrashError("worker killed mid-job (chaos)")

        with CompileService(small_target(), CompilerConfig(), workers=1,
                            chaos=chaos, sleep=lambda _s: None) as service:
            result = service.submit(request_for(dag)).wait(30)
        assert result.error is None
        assert result.engine == "cim"
        assert result.outputs == evaluate(dag, inputs_for(dag), 8)
        assert service.stats()["retries"] == 2

    def test_persistent_crash_falls_back_to_cpu_with_correct_outputs(self):
        dag = small_dag()

        def chaos(stage, request):
            raise WorkerCrashError("worker keeps dying")

        with CompileService(small_target(), CompilerConfig(), workers=1,
                            chaos=chaos, sleep=lambda _s: None) as service:
            result = service.submit(request_for(dag)).wait(30)
        assert result.engine == "cpu"
        assert "RetryExhaustedError" in result.offload_reason
        assert result.outputs == evaluate(dag, inputs_for(dag), 8)
        assert service.stats()["cim_failures"] == 1

    def test_overload_sheds_with_structured_error(self):
        dag = small_dag()
        gate = threading.Event()

        def chaos(stage, request):
            gate.wait(10)  # stall the single worker

        service = CompileService(small_target(), CompilerConfig(),
                                 workers=1, queue_limit=1, chaos=chaos)
        try:
            admitted = [service.submit(request_for(dag, request_id="run"))]
            with pytest.raises(ServiceOverloadError) as excinfo:
                for index in range(4):  # worker holds 1, queue holds 1
                    admitted.append(service.submit(
                        request_for(dag, request_id=f"q{index}")))
            error = excinfo.value
            assert error.queue_limit == 1
            assert error.queue_depth >= 1
            assert error.retry_after_s > 0
            assert any("queue depth" in line for line in error.details())
            gate.set()
            for job in admitted:
                assert job.wait(30).outputs is not None
            assert service.stats()["shed"] >= 1
        finally:
            gate.set()
            service.close()

    def test_deadline_miss_counts_and_offloads(self):
        dag = small_dag()
        with CompileService(small_target(), CompilerConfig(), workers=1,
                            deadline_s=0.0) as service:
            result = service.submit(request_for(dag)).wait(30)
        assert result.engine == "cpu"
        assert "DeadlineExceededError" in result.offload_reason
        assert result.outputs == evaluate(dag, inputs_for(dag), 8)
        stats = service.stats()
        assert stats["deadline_misses"] == 1
        assert stats["cim_failures"] == 1

    def test_breaker_trips_to_cpu_and_recovers_half_open(self):
        clock = FakeClock()
        target = TargetSpec.square(8, RERAM, num_arrays=1)
        big = synthetic_dag(num_ops=120, num_inputs=8, seed=2, name="big")
        ok = synthetic_dag(num_ops=4, num_inputs=3, seed=3, name="ok")
        config = CompilerConfig(fallback="strict")
        with CompileService(target, config, workers=1,
                            breaker=CircuitBreaker(failure_threshold=1,
                                                   recovery_time_s=30,
                                                   clock=clock),
                            clock=clock, sleep=lambda _s: None) as service:
            failed = service.submit(request_for(big, request_id="f")).wait(30)
            assert failed.engine == "cpu"  # compile failed, CPU answered
            assert "Error" in failed.offload_reason
            assert failed.outputs == evaluate(big, inputs_for(big), 8)
            assert service.breaker.state is BreakerState.OPEN
            shunted = service.submit(
                request_for(ok, request_id="s")).wait(30)
            assert shunted.engine == "cpu"
            assert shunted.offload_reason == "breaker-open"
            assert shunted.outputs == evaluate(ok, inputs_for(ok), 8)
            clock.advance(31)  # recovery window elapsed: half-open probe
            probe = service.submit(request_for(ok, request_id="p")).wait(30)
            assert probe.engine == "cim"
            assert probe.outputs == evaluate(ok, inputs_for(ok), 8)
            assert service.breaker.state is BreakerState.CLOSED
        assert service.stats()["breaker"]["trips"] == 1

    def test_degraded_capacity_offloads(self):
        dag = small_dag()
        target = small_target()
        mostly_dead = FaultMap.random_map(target, 0.6, seed=1)
        with CompileService(target, CompilerConfig(), workers=1,
                            fault_maps={0: mostly_dead}) as service:
            result = service.submit(request_for(dag)).wait(30)
        assert result.engine == "cpu"
        assert result.offload_reason.startswith("degraded-capacity")
        assert result.outputs == evaluate(dag, inputs_for(dag), 8)
        assert service.breaker.state is BreakerState.OPEN

    def test_remap_rung_runs_inside_the_service_loop(self, tmp_path):
        """A runtime hard fault remaps, republishes, and still answers."""
        clear_compile_cache()
        target, config, dag = small_target(), CompilerConfig(), small_dag()
        reference = SherlockCompiler(target, config,
                                     cache=False).compile(dag)
        # ground truth: a cell holding a *programmed* output value is
        # stuck, at the opposite polarity of the value the schedule
        # writes there, so verify-after-write fails its read-back
        # deterministically (input preloads bounce off faulty cells
        # silently by design, so an input cell would not do)
        inputs = inputs_for(dag)
        expected = evaluate(dag, inputs, 8)
        name, value = next((n, v) for n, v in expected.items()
                           if v not in (0, 0xFF))
        victim = reference.layout.placements()[dag.outputs[name]][0]
        ground = FaultMap()
        ground.set_fault(victim.array, victim.row, victim.col,
                         CellFault.STUCK0 if value else CellFault.STUCK1)
        cache = ArtifactCache(tmp_path)
        with CompileService(target, config, cache=cache, workers=1,
                            machine_faults={0: ground},
                            spare_cells=False) as service:
            request = ServeRequest(dag=dag, inputs=inputs, lanes=8,
                                   request_id="remap-me")
            result = service.submit(request).wait(30)
            assert result.error is None
            assert result.engine == "cim"
            assert result.remapped
            assert result.degradation == "remap"
            assert result.outputs == evaluate(dag, inputs, 8)
            # the fleet's known map learned the discovered fault
            learned = service.fault_map_of(0)
            assert learned is not None
            assert not learned.is_healthy(victim.array, victim.row,
                                          victim.col)
            # the remapped artifact was published for the whole fleet:
            # the next identical request is a cache hit, no second remap
            again = service.submit(ServeRequest(
                dag=dag, inputs=inputs, lanes=8,
                request_id="cached")).wait(30)
            assert again.error is None
            assert again.cached and not again.remapped
            assert again.outputs == evaluate(dag, inputs, 8)
        assert service.stats()["remaps"] == 1

    def test_chaos_acceptance(self, tmp_path):
        """Corrupt the cache mid-run AND kill a worker mid-job.

        Every request must still come back bit-identical to the reference
        evaluator, and the stats surface must show the quarantine and the
        retry.
        """
        dags = [small_dag(seed=s, ops=12 + s) for s in (1, 2, 3)]
        cache = ArtifactCache(tmp_path)
        target, config = small_target(), CompilerConfig()
        kills = {"left": 1}

        def chaos(stage, request):
            if stage == "execute" and kills["left"] > 0:
                kills["left"] -= 1
                raise WorkerCrashError("chaos kill mid-job")

        def check(results, dags):
            for result, dag in zip(results, dags):
                assert result.error is None
                assert result.outputs == evaluate(dag, inputs_for(dag), 8)

        with CompileService(target, config, cache=cache, workers=2,
                            chaos=chaos, sleep=lambda _s: None) as service:
            check(service.process([request_for(d) for d in dags]), dags)
            # corrupt one published entry mid-run
            key = ArtifactCache.key_for(dags[0], target, config)
            path = cache.path_for(key)
            path.write_text(path.read_text()[:25])
            check(service.process([request_for(d) for d in dags]), dags)
            check(service.process([request_for(d) for d in dags]), dags)
        stats = service.stats()
        assert stats["cache"]["quarantined"] == 1
        assert stats["retries"] == 1
        assert stats["cache"]["hits"] >= 3  # cached serving did happen
        assert stats["errors"] == 0
        assert stats["completed"] == 9


# ----------------------------------------------------------------------
# request parsing, batch mode, TCP mode, CLI
# ----------------------------------------------------------------------
class TestServer:
    def test_parse_kernel_request(self):
        request = parse_request({
            "id": "k1",
            "kernel": "int f(int a, int b) { return a & (b | a); }",
            "inputs": {"a": 5, "b": 3}, "lanes": 8, "array_id": 2})
        assert request.request_id == "k1"
        assert request.array_id == 2
        assert request.inputs == {"a": 5, "b": 3}
        assert evaluate(request.dag, request.inputs, 8)

    def test_parse_fills_missing_inputs_reproducibly(self):
        obj = {"synthetic": 10, "seed": 5}
        first = parse_request(obj)
        second = parse_request(obj)
        assert first.inputs == second.inputs
        assert len(first.inputs) == len(list(first.dag.inputs()))

    @pytest.mark.parametrize("bad", [
        {},  # no kernel source at all
        {"kernel": "int f(int a){return a;}", "workload": "bitweaving"},
        {"synthetic": 0},
        {"synthetic": 4, "lanes": 0},
        {"synthetic": 4, "inputs": {"i0": "not-a-bitmask"}},
        "not an object",
    ])
    def test_parse_rejects_malformed_requests(self, bad):
        with pytest.raises(ServeError):
            parse_request(bad)

    def test_request_file_batch_mode(self, tmp_path):
        requests_path = tmp_path / "requests.jsonl"
        requests_path.write_text(
            "# two requests, one per line\n"
            '{"id": "r1", "synthetic": 10, "seed": 4, "lanes": 8}\n'
            '{"id": "r2", "kernel": "int f(int a, int b)'
            ' { return a ^ b; }", "inputs": {"a": 9, "b": 12},'
            ' "lanes": 8}\n')
        with CompileService(small_target(), CompilerConfig(),
                            workers=2) as service:
            results = handle_request_file(service, requests_path)
        assert [r.request_id for r in results] == ["r1", "r2"]
        assert results[1].outputs == {"return": 9 ^ 12}
        assert all(r.error is None for r in results)

    def test_tcp_server_round_trip(self):
        with CompileService(small_target(), CompilerConfig(),
                            workers=1) as service:
            server = serve_tcp(service, port=0)
            thread = threading.Thread(target=server.serve_forever,
                                      daemon=True)
            thread.start()
            try:
                host, port = server.server_address[:2]
                with socket.create_connection((host, port), timeout=10) as s:
                    handle = s.makefile("rw", encoding="utf-8")
                    handle.write(json.dumps(
                        {"id": "t1", "kernel":
                         "int f(int a, int b) { return a | b; }",
                         "inputs": {"a": 1, "b": 6}, "lanes": 8}) + "\n")
                    handle.flush()
                    answer = json.loads(handle.readline())
                    assert answer["outputs"] == {"return": 7}
                    assert answer["error"] is None
                    handle.write(json.dumps({"cmd": "stats"}) + "\n")
                    handle.flush()
                    stats = json.loads(handle.readline())
                    assert stats["completed"] == 1
                    handle.write("nonsense\n")
                    handle.flush()
                    broken = json.loads(handle.readline())
                    assert "error" in broken
            finally:
                server.shutdown()
                server.server_close()
                thread.join(timeout=10)

    def test_cli_serve_batch_with_stats(self, tmp_path, capsys):
        requests_path = tmp_path / "requests.jsonl"
        requests_path.write_text(
            '{"id": "c1", "synthetic": 10, "seed": 2, "lanes": 8}\n'
            '{"id": "c2", "synthetic": 10, "seed": 2, "lanes": 8}\n')
        # one worker: the identical requests resolve in queue order, so
        # c1 deterministically compiles and c2 deterministically hits
        code = main(["serve", "--requests", str(requests_path),
                     "--cache-dir", str(tmp_path / "cache"),
                     "--size", "64", "--arrays", "2", "--workers", "1",
                     "--stats"])
        assert code == 0
        captured = capsys.readouterr()
        lines = [json.loads(line) for line in
                 captured.out.strip().splitlines()]
        assert [r["request_id"] for r in lines] == ["c1", "c2"]
        assert lines[0]["outputs"] == lines[1]["outputs"]
        assert not lines[0]["cached"] and lines[1]["cached"]
        assert "breaker: state=closed" in captured.err
        assert "artifact cache:" in captured.err

    def test_cli_serve_needs_exactly_one_mode(self, capsys):
        assert main(["serve"]) == 1
        assert "exactly one of" in capsys.readouterr().err

    def test_artifact_schema_tag_is_stable(self):
        assert ARTIFACT_SCHEMA == "sherlock-artifact/v1"


# ----------------------------------------------------------------------
# artifact-cache eviction (LRU size bounds)
# ----------------------------------------------------------------------
class TestCacheEviction:
    @staticmethod
    def fill(cache, seeds):
        """Publish one entry per seed; returns {seed: (key, path)}."""
        target, config = small_target(), CompilerConfig()
        entries = {}
        for age, seed in enumerate(seeds):
            dag = small_dag(seed=seed)
            program = SherlockCompiler(target, config,
                                       cache=False).compile(dag)
            key = ArtifactCache.key_for(dag, target, config)
            path = cache.put(key, program)
            # explicit mtimes make the LRU order filesystem-independent
            os.utime(path, (1_000_000 + age, 1_000_000 + age))
            entries[seed] = (key, path)
        return entries

    def test_rejects_non_positive_bounds(self, tmp_path):
        with pytest.raises(SherlockError):
            ArtifactCache(tmp_path, max_entries=0)
        with pytest.raises(SherlockError):
            ArtifactCache(tmp_path, max_bytes=0)

    def test_max_entries_evicts_the_oldest(self, tmp_path):
        cache = ArtifactCache(tmp_path, max_entries=2)
        entries = self.fill(cache, [1, 2])
        os.utime(entries[2][1], (2_000_000, 2_000_000))
        self.fill(cache, [3])
        assert not entries[1][1].exists()  # oldest mtime lost
        assert cache.get(entries[2][0]) is not None
        assert cache.evictions == 1
        assert cache.stats()["entries"] == 2
        assert cache.stats()["evictions"] == 1

    def test_hit_refreshes_recency(self, tmp_path):
        cache = ArtifactCache(tmp_path, max_entries=2)
        entries = self.fill(cache, [1, 2])  # 1 older than 2
        assert cache.get(entries[1][0]) is not None  # touch 1: now newest
        self.fill(cache, [3])
        assert entries[1][1].exists()
        assert not entries[2][1].exists()  # 2 became the LRU victim

    def test_max_bytes_bound(self, tmp_path):
        probe = ArtifactCache(tmp_path / "probe")
        size = self.fill(probe, [1])[1][1].stat().st_size
        cache = ArtifactCache(tmp_path / "real",
                              max_bytes=int(size * 1.5))
        entries = self.fill(cache, [1, 2])
        assert not entries[1][1].exists()
        assert entries[2][1].exists()
        assert cache.evictions == 1

    def test_never_evicts_the_fresh_entry(self, tmp_path):
        cache = ArtifactCache(tmp_path, max_bytes=1)  # below any entry
        entries = self.fill(cache, [1])
        assert entries[1][1].exists()  # protected despite the bound
        assert cache.get(entries[1][0]) is not None
        assert cache.evictions == 0


# ----------------------------------------------------------------------
# circuit-breaker edges
# ----------------------------------------------------------------------
class TestCircuitBreakerEdges:
    def test_half_open_failure_resets_the_full_backoff(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_time_s=5,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(5.1)
        assert breaker.allow()  # the probe
        breaker.record_failure()  # probe fails: re-trip
        assert breaker.state is BreakerState.OPEN
        clock.advance(4.9)
        assert not breaker.allow()  # backoff restarted, not resumed
        clock.advance(0.2)
        assert breaker.allow()

    def test_force_open_while_half_open(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_time_s=5,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(5.1)
        assert breaker.allow()
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.force_open()
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 2
        assert not breaker.allow()

    def test_exactly_one_concurrent_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_time_s=5,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(5.1)
        admitted = []
        barrier = threading.Barrier(8)

        def prober():
            barrier.wait()
            if breaker.allow():
                admitted.append(threading.get_ident())

        threads = [threading.Thread(target=prober) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert len(admitted) == 1
        assert breaker.state is BreakerState.HALF_OPEN


# ----------------------------------------------------------------------
# TCP front-end hardening
# ----------------------------------------------------------------------
class TestServerHardening:
    def serve(self, service, **kwargs):
        server = serve_tcp(service, port=0, **kwargs)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        return server, thread

    def test_oversized_request_answers_error_and_connection_survives(self):
        with CompileService(small_target(), CompilerConfig(),
                            workers=1) as service:
            server, thread = self.serve(service, max_request_bytes=512)
            try:
                host, port = server.server_address[:2]
                with socket.create_connection((host, port), timeout=10) as s:
                    handle = s.makefile("rw", encoding="utf-8")
                    handle.write("x" * 2048 + "\n")
                    handle.flush()
                    answer = json.loads(handle.readline())
                    assert answer["oversized"] is True
                    assert "512 bytes" in answer["error"]
                    # the same connection still serves real requests
                    handle.write(json.dumps(
                        {"id": "ok", "kernel":
                         "int f(int a, int b) { return a & b; }",
                         "inputs": {"a": 6, "b": 3}, "lanes": 8}) + "\n")
                    handle.flush()
                    result = json.loads(handle.readline())
                    assert result["outputs"] == {"return": 2}
            finally:
                server.shutdown()
                server.server_close()
                thread.join(timeout=10)

    def test_malformed_json_is_a_structured_error(self):
        with CompileService(small_target(), CompilerConfig(),
                            workers=1) as service:
            server, thread = self.serve(service)
            try:
                host, port = server.server_address[:2]
                with socket.create_connection((host, port), timeout=10) as s:
                    handle = s.makefile("rw", encoding="utf-8")
                    for bad in ('{"unterminated": ', "[1, 2, 3]",
                                '"just-a-string"'):
                        handle.write(bad + "\n")
                        handle.flush()
                        answer = json.loads(handle.readline())
                        assert "error" in answer
                    handle.write(json.dumps({"cmd": "stats"}) + "\n")
                    handle.flush()
                    stats = json.loads(handle.readline())
                    assert "completed" in stats
            finally:
                server.shutdown()
                server.server_close()
                thread.join(timeout=10)

    def test_rejects_non_positive_size_bound(self):
        with CompileService(small_target(), CompilerConfig(),
                            workers=1) as service:
            with pytest.raises(ServeError):
                serve_tcp(service, port=0, max_request_bytes=0)


# ----------------------------------------------------------------------
# serve CLI flag validation
# ----------------------------------------------------------------------
class TestServeCliValidation:
    @pytest.mark.parametrize("flag,value,needle", [
        ("--workers", "0", "positive integer"),
        ("--workers", "-3", "positive integer"),
        ("--queue-limit", "0", "positive integer"),
        ("--deadline", "0", "positive number of seconds"),
        ("--deadline", "-1.5", "positive number of seconds"),
        ("--deadline", "soon", "expected a number"),
    ])
    def test_non_positive_serve_flags_exit_2(self, capsys, flag, value,
                                             needle):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--port", "0", flag, value])
        assert excinfo.value.code == 2
        assert needle in capsys.readouterr().err


# ----------------------------------------------------------------------
# active integrity: shed policies, placement, voting, scrubbing
# ----------------------------------------------------------------------
class TestShedPolicies:
    def _stalled(self, shed_policy, queue_limit=1):
        gate = threading.Event()

        def chaos(stage, request):
            gate.wait(10)

        service = CompileService(small_target(), CompilerConfig(),
                                 workers=1, queue_limit=queue_limit,
                                 shed_policy=shed_policy, chaos=chaos)
        return service, gate

    @staticmethod
    def _settle(service):
        """Wait for the stalled worker to hold its job off the queue."""
        import time as _time
        deadline = _time.monotonic() + 5.0
        while service.stats()["queue_depth"] > 0:
            if _time.monotonic() > deadline:
                raise AssertionError("worker never picked up the job")
            _time.sleep(0.005)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ServeError):
            CompileService(small_target(), shed_policy="coin-flip")

    def test_reject_error_carries_the_policy(self):
        dag = small_dag()
        service, gate = self._stalled("reject")
        try:
            service.submit(request_for(dag, request_id="run"))
            self._settle(service)
            queued = service.submit(request_for(dag, request_id="q"))
            with pytest.raises(ServiceOverloadError) as excinfo:
                service.submit(request_for(dag, request_id="shed-me"))
            assert excinfo.value.shed_policy == "reject"
            assert any("shed policy: reject" in line
                       for line in excinfo.value.details())
            gate.set()
            assert queued.wait(30).outputs is not None
        finally:
            gate.set()
            service.close()

    def test_oldest_policy_evicts_the_queue_head(self):
        dag = small_dag()
        service, gate = self._stalled("oldest")
        try:
            running = service.submit(request_for(dag, request_id="run"))
            self._settle(service)
            old = service.submit(request_for(dag, request_id="old"))
            new = service.submit(request_for(dag, request_id="new"))
            evicted = old.wait(5)  # completed immediately with a shed result
            assert evicted.shed and evicted.outputs is None
            assert "shed by admission control" in evicted.error
            assert "policy oldest" in evicted.error
            gate.set()
            assert running.wait(30).outputs is not None
            assert new.wait(30).outputs is not None
            assert service.stats()["shed"] == 1
        finally:
            gate.set()
            service.close()

    def test_deadline_policy_evicts_the_least_slack_job(self):
        dag = small_dag()
        service, gate = self._stalled("deadline", queue_limit=2)
        try:
            running = service.submit(request_for(dag, request_id="run"))
            self._settle(service)
            tight = service.submit(request_for(dag, request_id="tight",
                                               deadline_s=0.5))
            loose = service.submit(request_for(dag, request_id="loose",
                                               deadline_s=60.0))
            new = service.submit(request_for(dag, request_id="new"))
            evicted = tight.wait(5)
            assert evicted.shed and "policy deadline" in evicted.error
            gate.set()
            for job in (running, loose, new):
                assert job.wait(30).outputs is not None
        finally:
            gate.set()
            service.close()

    def test_deadline_policy_rejects_when_nothing_has_a_deadline(self):
        dag = small_dag()
        service, gate = self._stalled("deadline")
        try:
            service.submit(request_for(dag, request_id="run"))
            self._settle(service)
            queued = service.submit(request_for(dag, request_id="q"))
            with pytest.raises(ServiceOverloadError) as excinfo:
                service.submit(request_for(dag, request_id="shed-me"))
            assert excinfo.value.shed_policy == "deadline"
            gate.set()
            assert queued.wait(30).outputs is not None
        finally:
            gate.set()
            service.close()

    def test_stats_surface_names_the_policy(self):
        with CompileService(small_target(),
                            shed_policy="oldest") as service:
            assert service.stats()["shed_policy"] == "oldest"
            assert "shed_policy: oldest" in service.stats_text()


class TestHealthAwarePlacement:
    def test_rejects_unknown_placement(self):
        with pytest.raises(ServeError):
            CompileService(small_target(), placement="astrology")

    def test_sticky_placement_never_moves(self):
        from repro.serve import ArrayHealth

        dag = small_dag()
        fleet = {0: FaultMap(), 1: FaultMap()}
        with CompileService(small_target(), workers=1,
                            machine_faults=fleet) as service:
            service.health.force_state(0, ArrayHealth.DEGRADED)
            result = service.process([request_for(dag, array_id=0)])[0]
            assert result.placed_array == 0
            assert service.stats()["placement_shifts"] == 0

    def test_degraded_array_sheds_traffic_to_a_healthy_peer(self):
        from repro.serve import ArrayHealth

        dag = small_dag()
        fleet = {0: FaultMap(), 1: FaultMap()}
        with CompileService(small_target(), workers=1,
                            machine_faults=fleet,
                            placement="health") as service:
            service.health.force_state(0, ArrayHealth.DEGRADED)
            moved = service.process([request_for(dag, array_id=0)])[0]
            assert moved.error is None and moved.engine == "cim"
            assert moved.array_id == 0 and moved.placed_array == 1
            assert moved.outputs == evaluate(dag, inputs_for(dag), 8)
            stats = service.stats()
            assert stats["placement_shifts"] == 1
            assert stats["placements"] == {1: 1}
            assert "placement: health" in service.stats_text()
            # after recovery the requested array wins ties again
            service.health.force_state(0, ArrayHealth.HEALTHY)
            back = service.process([request_for(dag, array_id=0)])[0]
            assert back.placed_array == 0

    def test_quarantined_requested_array_stays_for_probation(self):
        from repro.serve import ArrayHealth

        from repro.serve import HealthPolicy

        clock = FakeClock()
        policy = HealthPolicy(min_samples=1, probation_period_s=5.0,
                              probation_successes=1)
        dag = small_dag()
        fleet = {0: FaultMap(), 1: FaultMap()}
        with CompileService(small_target(), workers=1, clock=clock,
                            machine_faults=fleet, placement="health",
                            health_policy=policy) as service:
            service.health.force_state(0, ArrayHealth.QUARANTINED)
            # during the cool-down the offload gate answers from the CPU
            parked = service.process([request_for(dag, array_id=0)])[0]
            assert parked.engine == "cpu"
            assert "quarantined" in parked.offload_reason
            # after it, the probe must hit array 0 itself — placement
            # does not steal the probe traffic probation needs
            clock.advance(5.1)
            probe = service.process([request_for(dag, array_id=0)])[0]
            assert probe.engine == "cim" and probe.placed_array == 0
            from repro.serve import ArrayHealth as AH
            assert service.health.state_of(0) is AH.HEALTHY


class TestVotedExecution:
    def test_rejects_non_positive_redundancy(self):
        dag = small_dag()
        with CompileService(small_target(), workers=1) as service:
            with pytest.raises(ServeError):
                service.submit(request_for(dag, redundancy=0))

    def test_unanimous_vote_is_bit_identical(self):
        dag = small_dag()
        fleet = {0: FaultMap(), 1: FaultMap()}
        with CompileService(small_target(), workers=1,
                            machine_faults=fleet) as service:
            result = service.process([request_for(dag, redundancy=3)])[0]
        assert result.error is None and result.voted
        assert result.outputs == evaluate(dag, inputs_for(dag), 8)
        assert list(result.voters) == [0, 1, "cpu"]  # referee fills to 3
        assert result.disagreeing == ()

    def test_outvoted_minority_is_reported_and_penalized(self):
        from repro.util import latent_victims

        dag = small_dag()
        target, config = small_target(), CompilerConfig()
        program = SherlockCompiler(target, config, cache=False).compile(dag)
        inputs = inputs_for(dag)
        victims = latent_victims(program, dag, inputs, 8, count=1)
        poisoned = FaultMap()
        poisoned.set_fault(*victims[0], CellFault.STUCK0)
        fleet = {0: FaultMap(), 1: poisoned}
        with CompileService(target, config, workers=1,
                            machine_faults=fleet) as service:
            result = service.process([request_for(dag, redundancy=3)])[0]
            health = service.stats()["health"]["arrays"]
        assert result.error is None and result.voted
        # the corrupted voter is outvoted; the answer stays bit-identical
        assert result.outputs == evaluate(dag, inputs, 8)
        assert result.disagreeing == (1,)
        assert health[1]["vote_disagreements"] == 1
        stats = service.stats()
        assert stats["votes"] == 1 and stats["vote_disagreements"] == 1

    @pytest.mark.parametrize("engine", ["vectorized", "interpreted"])
    def test_batch_votes_per_input_set_on_both_engines(self, engine):
        from repro.dfg.evaluate import evaluate_many

        dag = small_dag()
        sets = [inputs_for(dag, seed=s) for s in range(4)]
        fleet = {0: FaultMap(), 1: FaultMap()}
        with CompileService(small_target(), workers=1,
                            machine_faults=fleet) as service:
            result = service.process([ServeRequest(
                dag=dag, inputs=sets[0], input_sets=sets, lanes=8,
                engine=engine, redundancy=3, request_id="batch")])[0]
        assert result.error is None and result.voted
        assert result.outputs is None
        assert result.batch_outputs == evaluate_many(dag, sets, 8)
        assert result.disagreeing == ()

    def test_batch_outvotes_a_poisoned_voter_differentially(self):
        from repro.dfg.evaluate import evaluate_many
        from repro.util import latent_victims

        dag = small_dag()
        target, config = small_target(), CompilerConfig()
        program = SherlockCompiler(target, config, cache=False).compile(dag)
        sets = [inputs_for(dag, seed=s) for s in range(3)]
        live = next(s for s in sets if any(s.values()))
        victims = latent_victims(program, dag, live, 8, count=1)
        poisoned = FaultMap()
        poisoned.set_fault(*victims[0], CellFault.STUCK0)
        fleet = {0: FaultMap(), 1: poisoned}
        expected = evaluate_many(dag, sets, 8)
        results = {}
        for engine in ("vectorized", "interpreted"):
            with CompileService(target, config, workers=1,
                                machine_faults=fleet) as service:
                result = service.process([ServeRequest(
                    dag=dag, inputs=sets[0], input_sets=sets, lanes=8,
                    engine=engine, redundancy=3, request_id=engine)])[0]
            assert result.error is None
            assert result.batch_outputs == expected
            results[engine] = result.batch_outputs
        assert results["vectorized"] == results["interpreted"]

    def test_parse_request_carries_redundancy(self):
        request = parse_request({"synthetic": 8, "redundancy": 2})
        assert request.redundancy == 2
        with pytest.raises(ServeError):
            parse_request({"synthetic": 8, "redundancy": 0})


class TestServiceScrub:
    def test_scrub_discovers_merges_and_feeds_health(self):
        from repro.serve import ScrubPolicy

        target = small_target()
        ground = FaultMap()
        ground.set_fault(0, 5, 7, CellFault.STUCK0)
        fleet = {0: ground, 1: FaultMap()}
        space = target.num_arrays * target.rows * target.cols
        with CompileService(target, machine_faults=fleet,
                            scrub=ScrubPolicy(budget=2 * space)) as service:
            report = service.scrub()
            assert report.latent_faults_found == 1
            # the discovery is merged into the known map: a second pass
            # has nothing latent left to find
            assert service.scrub().latent_faults_found == 0
            stats = service.stats()
        assert stats["scrub"]["passes"] == 2
        assert stats["scrub"]["latent_faults_found"] == 1
        assert stats["health"]["arrays"][0]["scrub_faults"] == 1
        assert "scrub: passes=2" in service.stats_text()

    def test_autoscrub_runs_on_the_request_cadence(self):
        from repro.serve import ScrubPolicy

        dag = small_dag()
        fleet = {0: FaultMap()}
        with CompileService(small_target(), workers=1,
                            machine_faults=fleet,
                            scrub=ScrubPolicy(budget=32,
                                              every_requests=2)) as service:
            for index in range(4):
                service.process([request_for(dag, request_id=str(index))])
            stats = service.stats()
        assert stats["scrub"]["passes"] == 2
        assert stats["scrub"]["cells_probed"] == 64
