"""Command-line interface: ``sherlock compile|run|sweep|campaign|bench|workloads``.

Examples::

    sherlock compile kernel.c --tech reram --size 512 --mapper sherlock
    sherlock run --workload bitweaving --tech stt-mram --size 1024
    sherlock sweep --workload bitweaving --tech reram --size 512
    sherlock campaign --synthetic 40 --trials 500 --variability 0.35
    sherlock campaign --workload bitweaving --trials 1000 --workers 4
    sherlock bench --output BENCH_sherlock.json
    sherlock bench --compare BENCH_previous.json --threshold 0.25
    sherlock workloads
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.arch.target import TargetSpec
from repro.core.compiler import SherlockCompiler
from repro.core.config import CompilerConfig
from repro.core.passes import get_pass
from repro.core.report import (
    CompileReport,
    PassReport,
    ProgramReport,
    RecoveryReport,
    format_table,
    render_reports,
)
from repro.devices import get_technology
from repro.errors import CapacityError, SherlockError
from repro.frontend import c_to_dfg
from repro.reliability import POLICIES, mra_sweep, run_campaign
from repro.workloads import WORKLOADS, get_workload


def _positive_int(text: str) -> int:
    """Argparse type for integer options that must be >= 1."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer (>= 1), got {value}")
    return value


def _add_target_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--tech", default="reram",
                        help="technology: reram | stt-mram | pcm")
    parser.add_argument("--size", type=int, default=512,
                        help="square array dimension (rows = cols)")
    parser.add_argument("--arrays", type=int, default=16,
                        help="number of arrays in the target")
    parser.add_argument("--mra", type=int, default=2,
                        help="rows in multi-row activation (2 = binary DAG)")
    parser.add_argument("--mapper", default="sherlock",
                        choices=("sherlock", "naive"))
    parser.add_argument("--fallback", default="ladder",
                        choices=("ladder", "strict"),
                        help="on capacity failure: walk the graceful-"
                             "degradation ladder (recycle, partition) or "
                             "fail fast (strict)")
    parser.add_argument("--recycle", default="auto",
                        choices=("auto", "always", "never"),
                        help="liveness-based cell recycling: auto (only "
                             "under pressure), always, or never")


def _add_pipeline_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--pipeline", default=None,
                        help="comma-separated pass list overriding the "
                             "default pipeline (must end in a map-* pass)")
    parser.add_argument("--print-passes", action="store_true",
                        help="print the resolved pass pipeline before "
                             "compiling")
    parser.add_argument("--timings", action="store_true",
                        help="print the per-pass timing/IR-delta table")
    parser.add_argument("--dump-ir", metavar="DIR", default=None,
                        help="write one DOT+JSON IR snapshot per pass "
                             "into DIR")


def _target_of(args: argparse.Namespace) -> TargetSpec:
    return TargetSpec.square(
        args.size, get_technology(args.tech), num_arrays=args.arrays,
        max_activated_rows=max(2, args.mra))


def _config_of(args: argparse.Namespace) -> CompilerConfig:
    return CompilerConfig(mapper=args.mapper, mra=max(2, args.mra),
                          pipeline=getattr(args, "pipeline", None),
                          fallback=getattr(args, "fallback", "ladder"),
                          recycle=getattr(args, "recycle", "auto"))


def _compiler_of(args: argparse.Namespace) -> SherlockCompiler:
    config = _config_of(args)
    compiler = SherlockCompiler(_target_of(args), config,
                                dump_ir_dir=getattr(args, "dump_ir", None))
    if getattr(args, "print_passes", False):
        rows = [[i, name, "terminal" if get_pass(name).terminal else "",
                 get_pass(name).description]
                for i, name in enumerate(config.effective_pipeline(), 1)]
        print(format_table(["#", "pass", "kind", "description"], rows),
              file=sys.stderr)
    return compiler


def _report_passes(args: argparse.Namespace, program) -> None:
    if getattr(args, "timings", False):
        print(PassReport.from_program(program).render(), file=sys.stderr)
    if program.degradation != "none":
        print(f"warning: capacity exhausted; compiled via degradation "
              f"rung {program.degradation!r}", file=sys.stderr)
        print(CompileReport.from_program(program).render(), file=sys.stderr)


def _cmd_compile(args: argparse.Namespace) -> int:
    with open(args.source) as handle:
        dag = c_to_dfg(handle.read(), args.function)
    program = _compiler_of(args).compile(dag)
    _report_passes(args, program)
    if args.emit:
        print(program.text())
    if args.output:
        from repro.core.serialize import save_program

        save_program(program, args.output)
        print(f"saved compiled program to {args.output}", file=sys.stderr)
    report = ProgramReport.from_program(program)
    print(render_reports([report]), file=sys.stderr)
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    """Reload a saved program, report it, optionally re-verify it."""
    from repro.core.serialize import load_program
    import random as _random

    program = load_program(args.program)
    print(render_reports([ProgramReport.from_program(program)]))
    if args.verify:
        rng = _random.Random(args.seed)
        inputs = {o.name: rng.getrandbits(args.lanes)
                  for o in program.source_dag.inputs()}
        program.verify(inputs, args.lanes)
        print(f"functional re-verification passed on {args.lanes} lanes")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload)
    program = _compiler_of(args).compile(workload.build_dag())
    _report_passes(args, program)
    rng = random.Random(args.seed)
    lanes = args.lanes
    inputs = workload.make_inputs(rng, lanes)
    outputs = program.execute(inputs, lanes)
    workload.check(inputs, outputs, lanes)
    print(f"functional check passed on {lanes} lanes")
    print(render_reports([ProgramReport.from_program(program, workload.name)]))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload)
    target = _target_of(args).with_(max_activated_rows=max(4, args.mra))
    points = mra_sweep(workload.build_dag(), target, args.mapper)
    rows = [[p.allowed_fraction, f"{p.achieved_fraction:.1%}", p.latency_us,
             p.energy_uj, p.p_app, p.instructions] for p in points]
    print(format_table(
        ["allowed", "achieved", "latency_us", "energy_uJ", "P_app", "insts"],
        rows))
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    policies = args.policy or sorted(POLICIES)
    for name in policies:  # validate before spending compile/campaign time
        if name not in POLICIES:
            raise SherlockError(
                f"unknown recovery policy {name!r}; valid policies: "
                f"{', '.join(sorted(POLICIES))}")
    target = _target_of(args)
    if args.variability is not None:
        tech = target.technology.with_variability(args.variability,
                                                  args.variability)
        target = target.with_(technology=tech)
    if args.synthetic is not None:
        from repro.workloads.synthetic import synthetic_dag

        dag = synthetic_dag(num_ops=args.synthetic, num_inputs=8,
                            seed=args.seed, name=f"synthetic{args.synthetic}")
    else:
        dag = get_workload(args.workload).build_dag()
    config = _config_of(args)
    program = SherlockCompiler(target, config).compile(dag)
    results = [run_campaign(program, trials=args.trials, seed=args.seed,
                            policy=name, lanes=args.lanes,
                            workers=args.workers)
               for name in policies]
    print(RecoveryReport.from_results(results).render())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        BENCHMARKS,
        collect_report,
        compare_reports,
        load_report,
    )

    if args.list:
        rows = [[p.name, p.group, p.unit, p.better, p.description]
                for _, p in sorted(BENCHMARKS.items())]
        print(format_table(["probe", "group", "unit", "better",
                            "description"], rows))
        return 0
    baseline = load_report(args.compare) if args.compare else None

    def _progress(name: str) -> None:
        print(f"bench: {name} ...", file=sys.stderr)

    report = collect_report(args.probe, repeats=args.repeats,
                            progress=_progress)
    report.write(args.output)
    print(report.render())
    print(f"wrote {args.output}", file=sys.stderr)
    if baseline is None:
        return 0
    comparison = compare_reports(baseline, report,
                                 threshold=args.threshold)
    print(comparison.render())
    return 0 if comparison.ok else 1


def _cmd_workloads(_args: argparse.Namespace) -> int:
    rows = [[w.name, w.description] for w in WORKLOADS.values()]
    print(format_table(["name", "description"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="sherlock",
        description="Sherlock: bulk-bitwise CIM mapping and scheduling")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile a C kernel to CIM code")
    p.add_argument("source", help="C-subset source file")
    p.add_argument("--function", default=None, help="kernel function name")
    p.add_argument("--emit", action="store_true",
                   help="print the generated instructions")
    p.add_argument("--output", "-o", default=None,
                   help="save the compiled program as JSON")
    _add_target_args(p)
    _add_pipeline_args(p)
    p.set_defaults(func=_cmd_compile)

    p = sub.add_parser("inspect",
                       help="report (and re-verify) a saved program")
    p.add_argument("program", help="JSON file from 'compile -o'")
    p.add_argument("--verify", action="store_true",
                   help="re-execute against the reference semantics")
    p.add_argument("--lanes", type=int, default=16)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_inspect)

    p = sub.add_parser("run", help="compile, execute and verify a workload")
    p.add_argument("--workload", required=True, choices=sorted(WORKLOADS))
    p.add_argument("--lanes", type=int, default=16)
    p.add_argument("--seed", type=int, default=0)
    _add_target_args(p)
    _add_pipeline_args(p)
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("sweep", help="latency/reliability MRA sweep (Fig. 6)")
    p.add_argument("--workload", required=True, choices=sorted(WORKLOADS))
    _add_target_args(p)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "campaign",
        help="Monte-Carlo fault-injection campaign with recovery policies")
    group = p.add_mutually_exclusive_group(required=True)
    group.add_argument("--workload", choices=sorted(WORKLOADS),
                       help="campaign over a registered workload DAG")
    group.add_argument("--synthetic", type=int, metavar="OPS",
                       help="campaign over a random synthetic DAG of OPS ops")
    p.add_argument("--trials", type=_positive_int, default=200,
                   help="Monte-Carlo trials per policy (>= 1)")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed (same seed -> same fault sequences)")
    p.add_argument("--lanes", type=int, default=16,
                   help="simulated lanes per trial")
    p.add_argument("--policy", action="append", metavar="NAME",
                   help="recovery policy to campaign (repeatable; "
                        "default: all registered policies)")
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="shard trials across N worker processes "
                        "(bit-identical to --workers 1 on the same seed)")
    p.add_argument("--variability", type=float, default=None,
                   help="override the technology's relative resistance "
                        "spread (e.g. 0.35) to stress the fault model")
    _add_target_args(p)
    p.set_defaults(func=_cmd_campaign)

    p = sub.add_parser(
        "bench",
        help="run the timed benchmark probes and write BENCH_sherlock.json")
    p.add_argument("--output", "-o", default="BENCH_sherlock.json",
                   help="report file to write (schema-versioned JSON)")
    p.add_argument("--repeats", type=_positive_int, default=5,
                   help="timing repeats per probe (the report keeps the "
                        "median)")
    p.add_argument("--probe", action="append", metavar="NAME",
                   help="probe or group to run (repeatable; default: all)")
    p.add_argument("--list", action="store_true",
                   help="list the registered probes and exit")
    p.add_argument("--compare", metavar="BASELINE", default=None,
                   help="compare against a previous report; exit 1 on "
                        "regression")
    p.add_argument("--threshold", type=float, default=0.25,
                   help="relative regression threshold for --compare "
                        "(default 0.25 = 25%%)")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("workloads", help="list available workloads")
    p.set_defaults(func=_cmd_workloads)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except CapacityError as error:
        print(f"error: {error}", file=sys.stderr)
        for line in error.details():
            print(f"  {line}", file=sys.stderr)
        return 1
    except SherlockError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
