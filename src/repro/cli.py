"""Command-line interface: ``sherlock compile|run|sweep|campaign|serve|bench|workloads``.

Examples::

    sherlock serve --requests requests.jsonl --cache-dir .sherlock-cache --stats
    sherlock serve --port 7453 --workers 4 --queue-limit 32

    sherlock compile kernel.c --tech reram --size 512 --mapper sherlock
    sherlock compile kernel.c --schedule multi --arrays 4 --report
    sherlock run --workload bitweaving --tech stt-mram --size 1024
    sherlock sweep --workload bitweaving --tech reram --size 512
    sherlock campaign --synthetic 40 --trials 500 --variability 0.35
    sherlock campaign --workload bitweaving --trials 1000 --workers 4
    sherlock run --workload bitweaving --fault-map faults.json
    sherlock wear --workload bitweaving --tech pcm
    sherlock lifetime --synthetic 30 --trials 20 --endurance 100
    sherlock bench --output BENCH_sherlock.json
    sherlock bench --compare BENCH_previous.json --threshold 0.25
    sherlock workloads
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys
import time

from repro.arch.target import TargetSpec
from repro.core.compiler import SherlockCompiler
from repro.core.config import CompilerConfig
from repro.core.passes import get_pass
from repro.core.report import (
    CompileReport,
    MultiArrayReport,
    PassReport,
    ProgramReport,
    RecoveryReport,
    format_table,
    render_reports,
)
from repro.devices import FaultMap, get_technology
from repro.errors import CapacityError, SherlockError
from repro.frontend import c_to_dfg
from repro.reliability import POLICIES, mra_sweep, run_campaign
from repro.sim.vectorized import validate_engine
from repro.workloads import WORKLOADS, get_workload


def _positive_int(text: str) -> int:
    """Argparse type for integer options that must be >= 1."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer (>= 1), got {value}")
    return value


def _positive_float(text: str) -> float:
    """Argparse type for float options that must be > 0."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number, got {text!r}") from None
    if not value > 0:
        raise argparse.ArgumentTypeError(
            f"expected a positive number of seconds (> 0), got {value}")
    return value


def _engine_arg(text: str) -> str:
    """Argparse type for ``--engine``: reject unknown names with exit 2."""
    try:
        return validate_engine(text)
    except SherlockError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _add_target_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--tech", default="reram",
                        help="technology: reram | stt-mram | pcm")
    parser.add_argument("--size", type=int, default=512,
                        help="square array dimension (rows = cols)")
    parser.add_argument("--arrays", type=int, default=16,
                        help="number of arrays in the target")
    parser.add_argument("--mra", type=int, default=2,
                        help="rows in multi-row activation (2 = binary DAG)")
    parser.add_argument("--mapper", default="sherlock",
                        choices=("sherlock", "naive"))
    parser.add_argument("--schedule", default="single",
                        choices=("single", "multi"),
                        help="execution model: single (one logical array, "
                             "spill for capacity) or multi (co-schedule "
                             "the DAG across --arrays concurrent arrays)")
    parser.add_argument("--fallback", default="ladder",
                        choices=("ladder", "strict"),
                        help="on capacity failure: walk the graceful-"
                             "degradation ladder (recycle, partition) or "
                             "fail fast (strict)")
    parser.add_argument("--recycle", default="auto",
                        choices=("auto", "always", "never"),
                        help="liveness-based cell recycling: auto (only "
                             "under pressure), always, or never")


def _add_pipeline_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--pipeline", default=None,
                        help="comma-separated pass list overriding the "
                             "default pipeline (must end in a map-* pass)")
    parser.add_argument("--print-passes", action="store_true",
                        help="print the resolved pass pipeline before "
                             "compiling")
    parser.add_argument("--timings", action="store_true",
                        help="print the per-pass timing/IR-delta table")
    parser.add_argument("--dump-ir", metavar="DIR", default=None,
                        help="write one DOT+JSON IR snapshot per pass "
                             "into DIR")


def _add_fault_map_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--fault-map", metavar="FILE", default=None,
                        help="JSON hard-fault map (sherlock exits 1 on a "
                             "malformed map); the program is compiled "
                             "around its faults and executed on a machine "
                             "that honors them")


def _fault_map_of(args: argparse.Namespace) -> FaultMap | None:
    """Load and validate ``--fault-map`` (DeviceError on a malformed file)."""
    path = getattr(args, "fault_map", None)
    if path is None:
        return None
    fault_map = FaultMap.load(path)
    print(f"loaded fault map: {fault_map!r}", file=sys.stderr)
    return fault_map


def _target_of(args: argparse.Namespace) -> TargetSpec:
    return TargetSpec.square(
        args.size, get_technology(args.tech), num_arrays=args.arrays,
        max_activated_rows=max(2, args.mra))


def _config_of(args: argparse.Namespace) -> CompilerConfig:
    return CompilerConfig(mapper=args.mapper, mra=max(2, args.mra),
                          pipeline=getattr(args, "pipeline", None),
                          schedule=getattr(args, "schedule", "single"),
                          fallback=getattr(args, "fallback", "ladder"),
                          recycle=getattr(args, "recycle", "auto"))


def _compiler_of(args: argparse.Namespace) -> SherlockCompiler:
    config = _config_of(args)
    compiler = SherlockCompiler(_target_of(args), config,
                                dump_ir_dir=getattr(args, "dump_ir", None),
                                fault_map=_fault_map_of(args))
    if getattr(args, "print_passes", False):
        rows = [[i, name, "terminal" if get_pass(name).terminal else "",
                 get_pass(name).description]
                for i, name in enumerate(config.effective_pipeline(), 1)]
        print(format_table(["#", "pass", "kind", "description"], rows),
              file=sys.stderr)
    return compiler


def _report_passes(args: argparse.Namespace, program) -> None:
    if getattr(args, "timings", False):
        print(PassReport.from_program(program).render(), file=sys.stderr)
    if program.degradation != "none":
        print(f"warning: capacity exhausted; compiled via degradation "
              f"rung {program.degradation!r}", file=sys.stderr)
        print(CompileReport.from_program(program).render(), file=sys.stderr)


def _cmd_compile(args: argparse.Namespace) -> int:
    with open(args.source) as handle:
        dag = c_to_dfg(handle.read(), args.function)
    program = _compiler_of(args).compile(dag)
    _report_passes(args, program)
    if args.report:
        print(MultiArrayReport.from_program(program).render())
    if args.emit:
        print(program.text())
    if args.output:
        from repro.core.serialize import save_program

        save_program(program, args.output)
        print(f"saved compiled program to {args.output}", file=sys.stderr)
    report = ProgramReport.from_program(program)
    print(render_reports([report]), file=sys.stderr)
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    """Reload a saved program, report it, optionally re-verify it."""
    from repro.core.serialize import load_program
    import random as _random

    program = load_program(args.program)
    print(render_reports([ProgramReport.from_program(program)]))
    if args.verify:
        rng = _random.Random(args.seed)
        inputs = {o.name: rng.getrandbits(args.lanes)
                  for o in program.source_dag.inputs()}
        program.verify(inputs, args.lanes)
        print(f"functional re-verification passed on {args.lanes} lanes")
    return 0


def _batch_input_sets(path: str, workload, lanes: int,
                      rng: random.Random) -> list[dict[str, int]]:
    """Load ``--batch FILE``: a JSON list of input objects.

    Each entry overrides a fresh ``workload.make_inputs`` draw, so ``{}``
    is a valid set (fully random but structurally well-formed for the
    workload) and explicit keys pin individual operands.
    """
    try:
        raw = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise SherlockError(f"cannot read batch file {path!r}: {error}"
                            ) from None
    if not isinstance(raw, list) or not raw:
        raise SherlockError(
            f"batch file {path!r} must hold a non-empty JSON list of "
            "input objects")
    sets = []
    for index, entry in enumerate(raw):
        if not isinstance(entry, dict):
            raise SherlockError(
                f"batch entry {index} must be a JSON object, "
                f"got {type(entry).__name__}")
        for name, value in entry.items():
            if not isinstance(value, int) or isinstance(value, bool):
                raise SherlockError(
                    f"batch entry {index} input {name!r} must be an "
                    f"integer lane bitmask, got {value!r}")
        inputs = workload.make_inputs(rng, lanes)
        inputs.update(entry)
        sets.append(inputs)
    return sets


def _cmd_run(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload)
    program = _compiler_of(args).compile(workload.build_dag())
    _report_passes(args, program)
    rng = random.Random(args.seed)
    lanes = args.lanes
    if args.batch is not None:
        from repro.dfg.evaluate import evaluate

        sets = _batch_input_sets(args.batch, workload, lanes, rng)
        t0 = time.perf_counter()
        outputs = program.execute_many(sets, lanes, engine=args.engine)
        elapsed = time.perf_counter() - t0
        for index, (inputs, out) in enumerate(zip(sets, outputs)):
            if out != evaluate(program.source_dag, inputs, lanes):
                raise SherlockError(
                    f"batch entry {index} mismatches the reference "
                    "evaluation")
        rate = len(sets) / elapsed if elapsed > 0 else float("inf")
        print(f"functional check passed on {len(sets)} input sets "
              f"x {lanes} lanes ({rate:.0f} sets/s, engine={args.engine})")
        print(render_reports(
            [ProgramReport.from_program(program, workload.name)]))
        return 0
    inputs = workload.make_inputs(rng, lanes)
    outputs = program.execute(inputs, lanes, engine=args.engine)
    workload.check(inputs, outputs, lanes)
    print(f"functional check passed on {lanes} lanes")
    print(render_reports([ProgramReport.from_program(program, workload.name)]))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload)
    target = _target_of(args).with_(max_activated_rows=max(4, args.mra))
    points = mra_sweep(workload.build_dag(), target, args.mapper)
    rows = [[p.allowed_fraction, f"{p.achieved_fraction:.1%}", p.latency_us,
             p.energy_uj, p.p_app, p.instructions] for p in points]
    print(format_table(
        ["allowed", "achieved", "latency_us", "energy_uJ", "P_app", "insts"],
        rows))
    return 0


def _dag_of(args: argparse.Namespace):
    """The campaign DAG: a registered workload or a seeded synthetic graph."""
    if getattr(args, "synthetic", None) is not None:
        from repro.workloads.synthetic import synthetic_dag

        return synthetic_dag(num_ops=args.synthetic, num_inputs=8,
                             seed=args.seed,
                             name=f"synthetic{args.synthetic}")
    return get_workload(args.workload).build_dag()


def _cmd_campaign(args: argparse.Namespace) -> int:
    policies = args.policy or sorted(POLICIES)
    for name in policies:  # validate before spending compile/campaign time
        if name not in POLICIES:
            raise SherlockError(
                f"unknown recovery policy {name!r}; valid policies: "
                f"{', '.join(sorted(POLICIES))}")
    if args.checkpoint is not None and len(policies) != 1:
        raise SherlockError(
            "--checkpoint journals one run; pick exactly one --policy "
            f"(got {len(policies)}: {', '.join(policies)})")
    target = _target_of(args)
    if args.variability is not None:
        tech = target.technology.with_variability(args.variability,
                                                  args.variability)
        target = target.with_(technology=tech)
    dag = _dag_of(args)
    config = _config_of(args)
    program = SherlockCompiler(target, config,
                               fault_map=_fault_map_of(args)).compile(dag)
    results = [run_campaign(program, trials=args.trials, seed=args.seed,
                            policy=name, lanes=args.lanes,
                            workers=args.workers, engine=args.engine,
                            checkpoint=args.checkpoint)
               for name in policies]
    print(RecoveryReport.from_results(results).render())
    return 0


def _cmd_wear(args: argparse.Namespace) -> int:
    """Static write-traffic report plus lifetime bounds per technology."""
    from repro.devices import TECHNOLOGIES
    from repro.sim import static_write_counts, wear_by_array, wear_from_counts

    program = _compiler_of(args).compile(_dag_of(args))
    _report_passes(args, program)
    counts = static_write_counts(program.instructions)
    report = wear_from_counts(counts)
    print(f"program: {program.dag.name} "
          f"({len(program.instructions)} instructions)")
    print(format_table(
        ["total writes", "cells written", "max/cell", "mean/cell",
         "hottest cell"],
        [[report.total_cell_writes, report.cells_written,
          report.max_writes_per_cell,
          f"{report.mean_writes_per_cell:.2f}",
          str(report.hottest_cell)]]))
    per_array = wear_by_array(counts)
    if len(per_array) > 1:
        print(format_table(
            ["array", "writes", "cells", "max/cell", "hottest cell"],
            [[array, r.total_cell_writes, r.cells_written,
              r.max_writes_per_cell, str(r.hottest_cell)]
             for array, r in per_array.items()]))
    rows = []
    for name, tech in sorted(TECHNOLOGIES.items()):
        life = report.lifetime_executions(tech)
        rows.append([name, f"{tech.endurance_cycles:.0e}",
                     "inf" if life == float("inf") else f"{life:.3e}"])
    print(format_table(
        ["technology", "endurance (cycles)", "executions to wear-out"],
        rows))
    return 0


def _cmd_lifetime(args: argparse.Namespace) -> int:
    """Seeded wear-out campaign: baseline vs wear-leveling + remap."""
    from repro.reliability import run_lifetime

    result = run_lifetime(
        _dag_of(args), _target_of(args), _config_of(args),
        trials=args.trials, seed=args.seed, endurance=args.endurance,
        endurance_spread=args.spread,
        wear_leveling=not args.no_wear_leveling,
        rotation_stride=args.stride, horizon=args.horizon,
        fault_map=_fault_map_of(args), validate=args.validate,
        lanes=args.lanes, engine=args.engine,
        checkpoint=args.checkpoint)
    summary = result.summary()
    print(f"lifetime campaign: {result.program_name} on "
          f"{result.technology.lower()} "
          f"(endurance {result.endurance:g} +/- {result.endurance_spread:.0%}"
          f", {result.trials} trials, seed {result.seed})")
    rows = [
        ["baseline (no mitigation)",
         f"{summary['baseline_mean_death']:.1f}",
         f"{summary['baseline_dead_frac']:.0%}",
         f"[{summary['baseline_dead_ci95_lo']:.2f}, "
         f"{summary['baseline_dead_ci95_hi']:.2f}]"],
        ["wear-leveling + remap" if result.wear_leveling else "remap only",
         f"{summary['mitigated_mean_death']:.1f}",
         f"{summary['mitigated_dead_frac']:.0%}",
         f"[{summary['mitigated_dead_ci95_lo']:.2f}, "
         f"{summary['mitigated_dead_ci95_hi']:.2f}]"],
    ]
    print(format_table(
        ["configuration", "mean executions to death", "dead",
         "dead 95% CI"], rows))
    first = result.mean_first_remap
    print(f"mean executions to first remap: "
          f"{'-' if first is None else f'{first:.1f}'}")
    print(f"mean recompiles per trial: {summary['mean_recompiles']:.1f}")
    print(f"lifetime extension factor: {summary['extension_factor']:.2f}x")
    if args.validate:
        print(f"functional validations after recompile: "
              f"{result.validation_failures} failure(s)")
        if result.validation_failures:
            return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        BENCHMARKS,
        collect_report,
        compare_reports,
        load_report,
    )

    if args.list:
        rows = [[p.name, p.group, p.unit, p.better, p.description]
                for _, p in sorted(BENCHMARKS.items())]
        print(format_table(["probe", "group", "unit", "better",
                            "description"], rows))
        return 0
    baseline = load_report(args.compare) if args.compare else None

    def _progress(name: str) -> None:
        print(f"bench: {name} ...", file=sys.stderr)

    report = collect_report(args.probe, repeats=args.repeats,
                            progress=_progress)
    report.write(args.output)
    print(report.render())
    print(f"wrote {args.output}", file=sys.stderr)
    if baseline is None:
        return 0
    comparison = compare_reports(baseline, report,
                                 threshold=args.threshold)
    print(comparison.render())
    return 0 if comparison.ok else 1


def _cmd_workloads(_args: argparse.Namespace) -> int:
    rows = [[w.name, w.description] for w in WORKLOADS.values()]
    print(format_table(["name", "description"], rows))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the compile-and-serve runtime in batch or socket mode."""
    from repro.serve import (
        ArtifactCache,
        CompileService,
        ScrubPolicy,
        handle_request_file,
        result_to_dict,
        serve_tcp,
    )

    if (args.requests is None) == (args.port is None):
        raise SherlockError(
            "serve needs exactly one of --requests FILE (batch mode) or "
            "--port N (socket mode)")
    cache = (ArtifactCache(args.cache_dir)
             if args.cache_dir is not None else None)
    fault_map = _fault_map_of(args)
    fault_maps = {0: fault_map} if fault_map is not None else None
    # the loaded map doubles as the machine's ground truth so patrol
    # scrubbing has real cells to march (known == ground: no latents
    # until the hardware drifts, but the cadence counters stay live)
    machine_faults = ({0: fault_map.copy()} if fault_map is not None
                      else None)
    scrub = (ScrubPolicy(budget=args.scrub_budget,
                         every_requests=args.scrub_every)
             if args.scrub_every else None)
    service = CompileService(
        _target_of(args), _config_of(args), cache=cache,
        workers=args.workers, queue_limit=args.queue_limit,
        deadline_s=args.deadline, fault_maps=fault_maps,
        machine_faults=machine_faults,
        shed_policy=args.shed_policy, placement=args.placement,
        scrub=scrub)
    failures = 0
    with service:
        if args.requests is not None:
            results = handle_request_file(service, args.requests,
                                          default_lanes=args.lanes)
            for result in results:
                print(json.dumps(result_to_dict(result)))
                if result.error is not None:
                    failures += 1
        else:
            server = serve_tcp(service, args.host, args.port)
            host, port = server.server_address[:2]
            print(f"serving on {host}:{port}", file=sys.stderr)
            try:
                server.serve_forever()
            except KeyboardInterrupt:
                pass
            finally:
                server.shutdown()
                server.server_close()
        if args.stats:
            print(service.stats_text(), file=sys.stderr)
    return 1 if failures else 0


def _cmd_health(args: argparse.Namespace) -> int:
    """Static health assessment of a target's sub-arrays from a fault map."""
    from repro.serve import assess_fault_map, subarray_exclusions

    target = _target_of(args)
    fault_map = _fault_map_of(args) or FaultMap()
    assessment = assess_fault_map(fault_map, target)
    if args.json:
        document = {
            "target": {"num_arrays": target.num_arrays,
                       "rows": target.rows, "cols": target.cols,
                       "technology": target.technology.name.lower()},
            "baseline_write_failure_probability":
                target.technology.write_failure_probability,
            "arrays": {str(array): {"faults": entry["faults"],
                                    "density": entry["density"],
                                    "state": entry["state"].value}
                       for array, entry in sorted(assessment.items())},
            "exclusions": list(subarray_exclusions(fault_map, target)),
        }
        print(json.dumps(document, indent=2))
        return 0
    print(f"target: {target.num_arrays} x {target.rows}x{target.cols} "
          f"{target.technology.name.lower()}")
    print(f"baseline soft write-failure probability: "
          f"{target.technology.write_failure_probability:.2e}")
    rows = [[array, entry["faults"], f"{entry['density']:.2%}",
             entry["state"].value]
            for array, entry in sorted(assessment.items())]
    print(format_table(["array", "hard faults", "density", "state"], rows))
    excluded = subarray_exclusions(fault_map, target)
    if excluded:
        print(f"suggested multi-array exclusions: "
              f"{', '.join(str(a) for a in excluded)}")
    else:
        print("suggested multi-array exclusions: none")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="sherlock",
        description="Sherlock: bulk-bitwise CIM mapping and scheduling")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile a C kernel to CIM code")
    p.add_argument("source", help="C-subset source file")
    p.add_argument("--function", default=None, help="kernel function name")
    p.add_argument("--emit", action="store_true",
                   help="print the generated instructions")
    p.add_argument("--report", action="store_true",
                   help="print the per-array occupancy / transfer report "
                        "(overlap model)")
    p.add_argument("--output", "-o", default=None,
                   help="save the compiled program as JSON")
    _add_target_args(p)
    _add_pipeline_args(p)
    p.set_defaults(func=_cmd_compile)

    p = sub.add_parser("inspect",
                       help="report (and re-verify) a saved program")
    p.add_argument("program", help="JSON file from 'compile -o'")
    p.add_argument("--verify", action="store_true",
                   help="re-execute against the reference semantics")
    p.add_argument("--lanes", type=int, default=16)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_inspect)

    p = sub.add_parser("run", help="compile, execute and verify a workload")
    p.add_argument("--workload", required=True, choices=sorted(WORKLOADS))
    p.add_argument("--lanes", type=int, default=16)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--engine", type=_engine_arg, default="auto",
                   help="execution backend: auto | interpreted | vectorized")
    p.add_argument("--batch", metavar="FILE", default=None,
                   help="execute every input set in FILE (a JSON list of "
                        "input objects; missing operands filled from "
                        "--seed) through one compile")
    _add_target_args(p)
    _add_pipeline_args(p)
    _add_fault_map_arg(p)
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("sweep", help="latency/reliability MRA sweep (Fig. 6)")
    p.add_argument("--workload", required=True, choices=sorted(WORKLOADS))
    _add_target_args(p)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "campaign",
        help="Monte-Carlo fault-injection campaign with recovery policies")
    group = p.add_mutually_exclusive_group(required=True)
    group.add_argument("--workload", choices=sorted(WORKLOADS),
                       help="campaign over a registered workload DAG")
    group.add_argument("--synthetic", type=int, metavar="OPS",
                       help="campaign over a random synthetic DAG of OPS ops")
    p.add_argument("--trials", type=_positive_int, default=200,
                   help="Monte-Carlo trials per policy (>= 1)")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed (same seed -> same fault sequences)")
    p.add_argument("--lanes", type=int, default=16,
                   help="simulated lanes per trial")
    p.add_argument("--policy", action="append", metavar="NAME",
                   help="recovery policy to campaign (repeatable; "
                        "default: all registered policies)")
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="shard trials across N worker processes "
                        "(bit-identical to --workers 1 on the same seed)")
    p.add_argument("--variability", type=float, default=None,
                   help="override the technology's relative resistance "
                        "spread (e.g. 0.35) to stress the fault model")
    p.add_argument("--engine", type=_engine_arg, default="interpreted",
                   help="trial execution backend: auto | interpreted | "
                        "vectorized (vectorized batches 'none'-policy "
                        "trials through the bit-packed op-table)")
    p.add_argument("--checkpoint", metavar="FILE", default=None,
                   help="journal completed trial blocks to FILE; rerunning "
                        "with the same seed resumes where the last run "
                        "stopped, bit-identical to an uninterrupted run "
                        "(requires exactly one --policy)")
    _add_target_args(p)
    _add_fault_map_arg(p)
    p.set_defaults(func=_cmd_campaign)

    p = sub.add_parser(
        "wear",
        help="static write-traffic report and per-technology lifetime bound")
    group = p.add_mutually_exclusive_group(required=True)
    group.add_argument("--workload", choices=sorted(WORKLOADS))
    group.add_argument("--synthetic", type=int, metavar="OPS",
                       help="report on a random synthetic DAG of OPS ops")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for --synthetic DAG generation")
    _add_target_args(p)
    _add_pipeline_args(p)
    _add_fault_map_arg(p)
    p.set_defaults(func=_cmd_wear)

    p = sub.add_parser(
        "lifetime",
        help="wear-out campaign: baseline vs wear-leveling + remap/recompile")
    group = p.add_mutually_exclusive_group(required=True)
    group.add_argument("--workload", choices=sorted(WORKLOADS))
    group.add_argument("--synthetic", type=int, metavar="OPS",
                       help="age a random synthetic DAG of OPS ops")
    p.add_argument("--trials", type=_positive_int, default=20,
                   help="paired aging trials (>= 1)")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed (same seed -> same endurance draws)")
    p.add_argument("--endurance", type=float, default=150.0,
                   help="simulation-scale nominal endurance in writes per "
                        "cell (real devices: 1e8+; keep this small so the "
                        "campaign finishes)")
    p.add_argument("--spread", type=float, default=0.15,
                   help="relative Gaussian spread of per-cell endurance")
    p.add_argument("--no-wear-leveling", action="store_true",
                   help="disable the per-epoch row rotation (remap only)")
    p.add_argument("--stride", type=_positive_int, default=1,
                   help="row-rotation stride per execution epoch")
    p.add_argument("--horizon", type=_positive_int, default=1_000_000,
                   help="censor trials after this many executions")
    p.add_argument("--validate", action="store_true",
                   help="functionally validate every recompiled program "
                        "(exit 1 on any mismatch)")
    p.add_argument("--lanes", type=int, default=16,
                   help="lanes for --validate executions")
    p.add_argument("--engine", type=_engine_arg, default="auto",
                   help="backend for --validate executions: auto | "
                        "interpreted | vectorized")
    p.add_argument("--checkpoint", metavar="FILE", default=None,
                   help="journal completed aging trials to FILE; rerunning "
                        "with the same seed resumes the campaign "
                        "bit-identically")
    _add_target_args(p)
    _add_fault_map_arg(p)
    p.set_defaults(func=_cmd_lifetime)

    p = sub.add_parser(
        "bench",
        help="run the timed benchmark probes and write BENCH_sherlock.json")
    p.add_argument("--output", "-o", default="BENCH_sherlock.json",
                   help="report file to write (schema-versioned JSON)")
    p.add_argument("--repeats", type=_positive_int, default=5,
                   help="timing repeats per probe (the report keeps the "
                        "median)")
    p.add_argument("--probe", action="append", metavar="NAME",
                   help="probe or group to run (repeatable; default: all)")
    p.add_argument("--list", action="store_true",
                   help="list the registered probes and exit")
    p.add_argument("--compare", metavar="BASELINE", default=None,
                   help="compare against a previous report; exit 1 on "
                        "regression")
    p.add_argument("--threshold", type=float, default=0.25,
                   help="relative regression threshold for --compare "
                        "(default 0.25 = 25%%)")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "serve",
        help="compile-and-serve runtime: artifact cache, worker pool, "
             "CPU-offload circuit breaker")
    p.add_argument("--requests", metavar="FILE", default=None,
                   help="batch mode: serve the JSON(-lines) requests in "
                        "FILE, one JSON result line per request on stdout")
    p.add_argument("--port", type=int, default=None,
                   help="socket mode: serve line-delimited JSON requests "
                        "on this TCP port (0 = ephemeral)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address for --port mode")
    p.add_argument("--cache-dir", metavar="DIR", default=None,
                   help="persistent artifact-cache directory (omit to "
                        "disable persistence)")
    p.add_argument("--workers", type=_positive_int, default=2,
                   help="compile worker threads")
    p.add_argument("--queue-limit", type=_positive_int, default=16,
                   help="job-queue bound; beyond it requests are shed "
                        "with a structured overload error")
    p.add_argument("--shed-policy", default="reject",
                   choices=("reject", "oldest", "deadline"),
                   help="who loses when the queue is full: the newcomer "
                        "(reject), the oldest queued job (oldest), or the "
                        "queued job with the least deadline slack "
                        "(deadline)")
    p.add_argument("--placement", default="sticky",
                   choices=("sticky", "health"),
                   help="array placement: honor the requested array "
                        "(sticky) or steer around DEGRADED/QUARANTINED "
                        "arrays (health)")
    p.add_argument("--scrub-every", type=int, default=0, metavar="N",
                   help="patrol-scrub the fleet after every N completed "
                        "requests (0 = scrubbing off)")
    p.add_argument("--scrub-budget", type=_positive_int, default=256,
                   help="cells march-tested per scrub pass")
    p.add_argument("--deadline", type=_positive_float, default=None,
                   help="default per-request deadline in seconds (> 0)")
    p.add_argument("--lanes", type=int, default=16,
                   help="default lanes for requests that do not set one")
    p.add_argument("--stats", action="store_true",
                   help="print the service health/stats surface (cache "
                        "hits/misses/quarantines, queue depth, breaker "
                        "state, latency percentiles) to stderr at exit")
    _add_target_args(p)
    _add_fault_map_arg(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "health",
        help="assess per-sub-array health of a target from a fault map")
    p.add_argument("--json", action="store_true",
                   help="emit the assessment as a JSON document instead "
                        "of the table")
    _add_target_args(p)
    _add_fault_map_arg(p)
    p.set_defaults(func=_cmd_health)

    p = sub.add_parser("workloads", help="list available workloads")
    p.set_defaults(func=_cmd_workloads)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except CapacityError as error:
        print(f"error: {error}", file=sys.stderr)
        for line in error.details():
            print(f"  {line}", file=sys.stderr)
        return 1
    except SherlockError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
