"""Decision-failure model for scouting-logic sensing (Sec. 2.2, Fig. 2b).

Scouting logic activates ``k`` rows of one column simultaneously and senses
the parallel combination of the ``k`` cell resistances against a reference.
With ``j`` of the cells in HRS ('1') and ``k - j`` in LRS ('0'), the
composite conductance is Gaussian (sum of per-cell conductances, delta
method):

    μ_j = j·G_HRS + (k-j)·G_LRS
    σ_j² = j·σ_G_HRS² + (k-j)·σ_G_LRS² + σ_ref²

Each logic operation has to discriminate particular *adjacent* composite
states (adjacent states differ by one cell flip, i.e. by |G_LRS − G_HRS|):

* ``AND/NAND(k)``  — all-ones vs one-zero (j = k vs k−1).  These states are
  HRS-dominated, where the absolute conductance noise is smallest, so this
  is the most robust boundary: the reason the paper lowers XOR/OR to NAND
  on STT-MRAM.
* ``OR/NOR(k)``    — all-zeros vs one-one (j = 0 vs 1), LRS-dominated and
  noisy.
* ``XOR/XNOR(k)``  — parity: every adjacent pair must be separated, so the
  failure probability is the union bound over all k−1 boundaries.
* single-row reads (plain read, NOT, copy) — j = 0 vs 1 with k = 1.

Per boundary we place the threshold at the equal-z-score point between the
two Gaussians, giving an error of ``Q(Δμ / (σ_left + σ_right))``.  Increasing
``k`` shrinks no boundary gap but inflates every σ, reproducing Fig. 2b's
overlap growth with the number of activated rows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy.stats import norm

from repro.devices.technology import Technology
from repro.dfg.ops import OpType
from repro.errors import DeviceError


@dataclass(frozen=True)
class CompositeState:
    """Gaussian model of the sensed conductance for j HRS cells out of k."""

    mu: float
    sigma: float


def composite_state(tech: Technology, k: int, j: int) -> CompositeState:
    """Conductance distribution of ``j`` HRS cells among ``k`` activated."""
    if k < 1:
        raise DeviceError(f"activated row count must be >= 1, got {k}")
    if not 0 <= j <= k:
        raise DeviceError(f"HRS count {j} out of range for k={k}")
    mu = j * tech.g_hrs + (k - j) * tech.g_lrs
    var = (j * tech.sigma_g_hrs ** 2
           + (k - j) * tech.sigma_g_lrs ** 2
           + tech.sigma_ref_siemens ** 2)
    return CompositeState(mu, math.sqrt(var))


def boundary_error(left: CompositeState, right: CompositeState) -> float:
    """Misclassification probability between two adjacent composite states."""
    gap = abs(left.mu - right.mu)
    spread = left.sigma + right.sigma
    if spread == 0.0:
        return 0.0
    return float(norm.sf(gap / spread))


def _boundaries_for(op: OpType, k: int) -> list[tuple[int, int]]:
    """The (j_left, j_right) composite-state pairs the op must separate."""
    base = op.base
    if base is OpType.AND:
        return [(k - 1, k)]
    if base is OpType.OR:
        return [(0, 1)]
    if base is OpType.XOR:
        return [(j, j + 1) for j in range(k)]
    if base is OpType.NOT:
        return [(0, 1)]
    raise DeviceError(f"no sensing model for op {op.value}")


def decision_failure_probability(tech: Technology, op: OpType, k: int) -> float:
    """``P_DF`` of one scouting-logic operation on ``k`` activated rows.

    For NOT / plain single-row reads pass ``k = 1``; the boundary is then
    the plain LRS-vs-HRS read margin (large, but not zero).
    """
    if op is OpType.NOT or k == 1:
        states = (composite_state(tech, 1, 0), composite_state(tech, 1, 1))
        return boundary_error(*states)
    if k < 2:
        raise DeviceError(f"logic op {op.value} needs k >= 2 activated rows")
    if k > tech.max_activated_rows:
        raise DeviceError(
            f"{tech.name} supports at most {tech.max_activated_rows} "
            f"activated rows, got {k}")
    total = 0.0
    for j_left, j_right in _boundaries_for(op, k):
        total += boundary_error(composite_state(tech, k, j_left),
                                composite_state(tech, k, j_right))
    return min(total, 1.0)


def application_failure_probability(op_failures: list[float]) -> float:
    """``P_app = 1 − Π (1 − P_DF_i)`` over all operations (Sec. 4.2).

    Computed in log space so that thousands of tiny probabilities do not
    round to zero.
    """
    log_ok = 0.0
    for p in op_failures:
        if not 0.0 <= p <= 1.0:
            raise DeviceError(f"probability out of range: {p}")
        if p >= 1.0:
            return 1.0
        log_ok += math.log1p(-p)
    return -math.expm1(log_ok)


def overlap_curve(tech: Technology, k: int, points: int = 512) -> dict[str, list[float]]:
    """Composite-conductance densities for all j = 0..k (Fig. 2b data).

    Returns ``{"conductance": xs, "state_0": pdf, ..., "state_k": pdf}`` —
    the raw series from which the paper's overlap plot is drawn.
    """
    states = [composite_state(tech, k, j) for j in range(k + 1)]
    lo = min(s.mu - 4 * s.sigma for s in states)
    hi = max(s.mu + 4 * s.sigma for s in states)
    xs = [lo + (hi - lo) * i / (points - 1) for i in range(points)]
    curves: dict[str, list[float]] = {"conductance": xs}
    for j, s in enumerate(states):
        curves[f"state_{j}"] = [float(norm.pdf(x, s.mu, s.sigma)) for x in xs]
    return curves
