"""Persistent hard-fault maps: per-cell stuck-at/dead state of an array set.

The transient reliability stack (decision failures, recovery policies)
redraws its faults on every sense; real NVM arrays also fail *permanently*:
endurance wear-out kills cells after a bounded number of program cycles,
and fabrication or drift leaves cells stuck in the low- or high-resistance
state.  A :class:`FaultMap` records that per-cell state — ``stuck0``
(always senses 0), ``stuck1`` (always senses all-ones) or ``dead``
(unprogrammable; senses as garbage, modeled as 0) — and travels with a
compiled program through every layer:

* the mappers place operands only on healthy cells (fault-aware placement),
* the :class:`repro.sim.executor.ArrayMachine` forces stuck values on every
  sense and write, and verify-after-write escalates to spare cells when a
  write lands on a cell the map did not yet know about,
* the lifetime campaign (:mod:`repro.reliability.lifetime`) grows the map
  from wear (:meth:`FaultMap.from_wear`) as ``write_counts`` cross the
  technology's endurance.

Maps are JSON artifacts (:meth:`FaultMap.save` / :meth:`FaultMap.load`), so
a map measured once — e.g. by a manufacturing test or a prior campaign —
can be reused across compilations, mirroring how real controllers ship
per-die bad-block tables.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import random
from enum import Enum

from repro.errors import DeviceError

__all__ = [
    "FAULTMAP_FORMAT_VERSION",
    "CellFault",
    "FaultMap",
]

FAULTMAP_FORMAT_VERSION = 1

#: cell coordinate triple: (array, row, col)
_Cell = tuple[int, int, int]


class CellFault(Enum):
    """Permanent failure mode of one cell."""

    #: cell stuck in the state that senses as logic 0 on every lane
    STUCK0 = "stuck0"
    #: cell stuck in the state that senses as logic 1 on every lane
    STUCK1 = "stuck1"
    #: cell no longer programmable at all (worn out); senses as garbage
    DEAD = "dead"

    def forced_value(self, mask: int) -> int:
        """The lane bitmask this fault forces a sense of the cell to.

        A dead cell physically drifts to an indeterminate resistance; we
        model it as the all-zero pattern so executions stay deterministic
        (the *failure* is deterministic — the point of a hard fault).
        """
        return mask if self is CellFault.STUCK1 else 0


class FaultMap:
    """Per-cell permanent-fault state, loadable/savable/derivable from wear."""

    def __init__(self, faults: dict[_Cell, CellFault] | None = None) -> None:
        self._faults: dict[_Cell, CellFault] = dict(faults or {})

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._faults)

    def __bool__(self) -> bool:
        return bool(self._faults)

    def fault_at(self, array: int, row: int, col: int) -> CellFault | None:
        """The cell's fault, or ``None`` when it is healthy."""
        return self._faults.get((array, row, col))

    def is_healthy(self, array: int, row: int, col: int) -> bool:
        """Whether the cell can store and sense data correctly."""
        return (array, row, col) not in self._faults

    def cells(self) -> list[tuple[_Cell, CellFault]]:
        """All faulty cells with their fault kinds, deterministically sorted."""
        return sorted(self._faults.items())

    def digest(self) -> str:
        """A stable hex digest of the map's exact per-cell fault content.

        Two maps with identical faults digest equal regardless of
        insertion order, so the digest is a sound *content* cache key:
        the process compile cache and the persistent artifact cache key
        fault-aware compiles on it, giving a fleet of arrays with
        byte-identical maps shared cache hits.  Mutating the map (new
        wear, a remap diagnosis) changes the digest and thereby misses.
        """
        hasher = hashlib.sha256()
        for (array, row, col), fault in self.cells():
            hasher.update(f"{array},{row},{col},{fault.value}\n".encode())
        return hasher.hexdigest()

    def counts(self) -> dict[str, int]:
        """Number of faulty cells per fault kind (``{"dead": 3, ...}``)."""
        out: dict[str, int] = {}
        for fault in self._faults.values():
            out[fault.value] = out.get(fault.value, 0) + 1
        return out

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def set_fault(self, array: int, row: int, col: int,
                  fault: CellFault) -> None:
        """Record (or overwrite) one cell's permanent fault."""
        if not isinstance(fault, CellFault):
            raise DeviceError(f"not a CellFault: {fault!r}")
        self._faults[(array, row, col)] = fault

    def mark_dead(self, array: int, row: int, col: int) -> None:
        """Record a cell as worn out / unprogrammable."""
        self._faults[(array, row, col)] = CellFault.DEAD

    def clear(self, array: int, row: int, col: int) -> bool:
        """Forget one cell's fault; ``True`` if the cell was recorded.

        The inverse of :meth:`set_fault`, for faults that turn out to be
        transient — e.g. a chaos-injected write-failure burst healing
        after its scheduled duration.  Genuine wear-out diagnoses should
        never be cleared: a controller only un-marks a cell after
        re-qualifying it.
        """
        return self._faults.pop((array, row, col), None) is not None

    def merge(self, other: "FaultMap") -> int:
        """Fold another map's faults into this one; returns cells added.

        A cell faulty in both keeps *this* map's kind — the first diagnosis
        wins, matching how a controller only appends to its bad-cell table.
        """
        added = 0
        for cell, fault in other._faults.items():
            if cell not in self._faults:
                self._faults[cell] = fault
                added += 1
        return added

    def copy(self) -> "FaultMap":
        """An independent copy (campaign trials mutate their own map)."""
        return FaultMap(self._faults)

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------
    @classmethod
    def from_wear(cls, write_counts: dict[_Cell, int], technology,
                  endurance: float | None = None) -> "FaultMap":
        """Cells whose cumulative writes crossed the endurance are dead.

        ``write_counts`` is the per-cell accumulator of
        :class:`repro.sim.executor.ArrayMachine` (or a sum of several runs'
        :func:`repro.sim.endurance.static_write_counts`); ``endurance``
        overrides ``technology.endurance_cycles`` so campaigns can age
        arrays in simulation-scale write budgets.
        """
        limit = technology.endurance_cycles if endurance is None else endurance
        if limit <= 0:
            raise DeviceError(f"endurance must be positive, got {limit}")
        dead = {cell: CellFault.DEAD
                for cell, count in write_counts.items() if count >= limit}
        return cls(dead)

    @classmethod
    def random_map(cls, target, fraction: float, seed: int = 0,
                   kinds: tuple[CellFault, ...] = (CellFault.DEAD,),
                   ) -> "FaultMap":
        """A reproducible map with ``fraction`` of the target's cells faulty.

        Used by robustness gates and tests; ``kinds`` cycles over the fault
        kinds to assign (default: all dead cells).
        """
        if not 0.0 <= fraction <= 1.0:
            raise DeviceError(
                f"fault fraction must be in [0, 1], got {fraction}")
        rng = random.Random(seed)
        all_cells = [(a, r, c)
                     for a in range(target.num_arrays)
                     for r in range(target.rows)
                     for c in range(target.cols)]
        count = round(fraction * len(all_cells))
        chosen = rng.sample(all_cells, count)
        return cls({cell: kinds[i % len(kinds)]
                    for i, cell in enumerate(sorted(chosen))})

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible document (see :meth:`save`)."""
        return {
            "format_version": FAULTMAP_FORMAT_VERSION,
            "faults": [[a, r, c, fault.value]
                       for (a, r, c), fault in self.cells()],
        }

    @classmethod
    def from_dict(cls, document: dict) -> "FaultMap":
        """Rebuild a map from :meth:`to_dict`; raises on malformed input."""
        if not isinstance(document, dict):
            raise DeviceError("fault map document must be a JSON object")
        version = document.get("format_version")
        if version != FAULTMAP_FORMAT_VERSION:
            raise DeviceError(
                f"unsupported fault-map format {version!r} "
                f"(expected {FAULTMAP_FORMAT_VERSION})")
        entries = document.get("faults")
        if not isinstance(entries, list):
            raise DeviceError("fault map document lacks a 'faults' list")
        faults: dict[_Cell, CellFault] = {}
        for entry in entries:
            if (not isinstance(entry, (list, tuple)) or len(entry) != 4
                    or not all(isinstance(v, int) and not isinstance(v, bool)
                               for v in entry[:3])):
                raise DeviceError(
                    f"malformed fault entry {entry!r}; expected "
                    "[array, row, col, kind]")
            array, row, col, kind = entry
            if min(array, row, col) < 0:
                raise DeviceError(
                    f"fault entry {entry!r} has a negative coordinate")
            try:
                fault = CellFault(kind)
            except ValueError:
                raise DeviceError(
                    f"unknown fault kind {kind!r}; valid kinds: "
                    f"{sorted(f.value for f in CellFault)}") from None
            cell = (array, row, col)
            if cell in faults:
                raise DeviceError(f"duplicate fault entry for cell {cell}")
            faults[cell] = fault
        return cls(faults)

    def save(self, path: str | pathlib.Path) -> None:
        """Write the map to ``path`` as a JSON artifact."""
        pathlib.Path(path).write_text(json.dumps(self.to_dict(), indent=1))

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "FaultMap":
        """Reload a map saved by :meth:`save`; raises on malformed files."""
        try:
            document = json.loads(pathlib.Path(path).read_text())
        except OSError as error:
            raise DeviceError(f"cannot read fault map {path}: {error}") from None
        except json.JSONDecodeError as error:
            raise DeviceError(
                f"fault map {path} is not valid JSON: {error}") from None
        return cls.from_dict(document)

    def __repr__(self) -> str:
        counts = ", ".join(f"{k}={v}" for k, v in sorted(self.counts().items()))
        return f"FaultMap({len(self)} faulty cells{': ' + counts if counts else ''})"
