"""Parametric array-level latency/energy model (the NVSim substitute).

NVSim feeds the paper exactly one thing per configuration: scalar latency
and energy figures for each array operation class, as a function of the
array geometry and the cell technology.  We reproduce that role with a
first-order RC model:

* wordline/bitline delay grows linearly with the array dimension (driver +
  distributed RC, linearized around the 128–1024 range NVSim reports);
* the sense amplifier adds a technology-dependent sensing time;
* writes add the technology's programming pulse on top of the array access;
* the row-buffer shifter and inverters are CMOS-speed (sub-nanosecond).

Energy is accounted per instruction as a static decode/driver part plus a
per-bit dynamic part (cells touched × lanes), again with technology-specific
read/write energies.  All constants are module-level and documented so a
user can recalibrate against a real NVSim run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.technology import Technology
from repro.errors import DeviceError

#: linearized bitline/wordline RC delay per row of array height (ns)
RC_NS_PER_ROW = 0.002
#: address decode + driver setup per array access (ns)
DECODE_NS = 0.5
#: latency of a row-buffer barrel shift, independent of distance (ns)
SHIFT_NS = 1.0
#: latency of a row-buffer CMOS operation (NOT on selected columns) (ns)
ROWBUF_OP_NS = 0.5
#: extra sensing time per additional simultaneously activated row (ns);
#: multi-row activation slightly slows the bitline settle
MRA_EXTRA_NS_PER_ROW = 0.1

#: static energy per issued instruction: decoder, drivers, control (pJ)
DECODE_PJ = 2.0
#: wordline activation energy per activated row per lane slice (pJ)
WORDLINE_PJ_PER_ROW = 0.05
#: row-buffer shift energy per bit moved (pJ)
SHIFT_PJ_PER_BIT = 0.01
#: row-buffer NOT energy per bit (pJ)
ROWBUF_PJ_PER_BIT = 0.005
#: inter-array bus transfer latency (ns) and energy per bit (pJ)
XFER_NS = 4.0
XFER_PJ_PER_BIT = 0.2


@dataclass(frozen=True)
class ArrayCostModel:
    """Latency/energy oracle for one array geometry and technology."""

    technology: Technology
    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise DeviceError("array dimensions must be positive")

    # ------------------------------------------------------------------
    # latency (ns per instruction; lanes run in lockstep and add nothing)
    # ------------------------------------------------------------------
    def _access_ns(self) -> float:
        return DECODE_NS + RC_NS_PER_ROW * self.rows

    def read_latency_ns(self, activated_rows: int = 1) -> float:
        """Plain or CIM (scouting) read with ``activated_rows`` rows."""
        if activated_rows < 1:
            raise DeviceError("activated_rows must be >= 1")
        extra = MRA_EXTRA_NS_PER_ROW * (activated_rows - 1)
        return self._access_ns() + self.technology.read_latency_ns + extra

    def write_latency_ns(self) -> float:
        """Array access plus the technology's programming pulse."""
        return self._access_ns() + self.technology.write_latency_ns

    def shift_latency_ns(self) -> float:
        """Row-buffer barrel shift (distance-independent)."""
        return SHIFT_NS

    def rowbuf_op_latency_ns(self) -> float:
        """Row-buffer CMOS op (NOT on selected columns)."""
        return ROWBUF_OP_NS

    def transfer_latency_ns(self) -> float:
        """Inter-array bus transfer of row-buffer bits."""
        return XFER_NS

    # ------------------------------------------------------------------
    # energy (pJ per instruction, scaled by the lockstep lane count)
    # ------------------------------------------------------------------
    def read_energy_pj(self, num_cols: int, activated_rows: int, lanes: int) -> float:
        """Energy of one (CIM) read instruction."""
        dynamic = (num_cols * self.technology.read_energy_pj_per_bit
                   + activated_rows * WORDLINE_PJ_PER_ROW)
        return DECODE_PJ + lanes * dynamic

    def write_energy_pj(self, num_cols: int, lanes: int) -> float:
        """Energy of one write instruction."""
        dynamic = (num_cols * self.technology.write_energy_pj_per_bit
                   + WORDLINE_PJ_PER_ROW)
        return DECODE_PJ + lanes * dynamic

    def shift_energy_pj(self, lanes: int) -> float:
        """Energy of one row-buffer shift."""
        return DECODE_PJ + lanes * self.cols * SHIFT_PJ_PER_BIT

    def rowbuf_op_energy_pj(self, num_cols: int, lanes: int) -> float:
        """Energy of one row-buffer NOT."""
        return DECODE_PJ + lanes * num_cols * ROWBUF_PJ_PER_BIT

    def transfer_energy_pj(self, num_cols: int, lanes: int) -> float:
        """Energy of one inter-array transfer."""
        return DECODE_PJ + lanes * num_cols * XFER_PJ_PER_BIT
