"""NVM technology models (Table 1 of the paper).

A :class:`Technology` captures everything Sherlock needs from the device
level: the LRS/HRS resistance distributions that drive the decision-failure
model, and the per-bit read/write latency and energy that drive the
NVSim-like array model.

The STT-MRAM parameters derive from the SPITT compact-model setup in the
paper: a circular MgO junction of radius 20 nm and RA = 7.5 Ω·µm² gives
``R_P = RA / (π r²) ≈ 5.97 kΩ``, and the nominal TMR of 150 % puts the
anti-parallel state at ``R_AP = R_P (1 + TMR) ≈ 14.9 kΩ``.  The ReRAM
parameters are calibrated to the JART VCM v1b read-variability model: the
oxygen-vacancy concentrations of 3 vs 0.009 ×10²⁶ m⁻³ translate into roughly
two orders of magnitude between LRS and HRS, with a markedly less stable HRS
(HRS instability, Wiefels et al., TED'20).

The relative resistance spreads are the free calibration parameters of the
reproduction (the paper obtains them from Cadence SPICE runs we cannot
re-execute); they are chosen so the per-operation decision-failure
probabilities land in the bands the paper reports: NAND on STT-MRAM around
1e-5, XOR/OR on STT-MRAM around 1e-3 (hence the NAND-based lowering), and
everything on ReRAM below ~1e-7 for two-row activations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import DeviceError


@dataclass(frozen=True)
class Technology:
    """Device-level model of one NVM technology."""

    name: str
    r_lrs_ohm: float
    r_hrs_ohm: float
    #: relative standard deviation of the LRS/HRS resistance (process variation)
    sigma_rel_lrs: float
    sigma_rel_hrs: float
    #: absolute conductance noise of reference + comparator (siemens)
    sigma_ref_siemens: float
    #: write pulse width and energy
    write_latency_ns: float
    write_energy_pj_per_bit: float
    #: cell read (sensing) latency contribution and energy
    read_latency_ns: float
    read_energy_pj_per_bit: float
    #: maximum rows the sense scheme can activate simultaneously
    max_activated_rows: int = 8
    #: program/erase cycles a cell endures before wearing out
    #: (``inf`` = effectively wear-free, e.g. STT-MRAM)
    endurance_cycles: float = 1e9
    #: probability one write pulse fails to flip the cell (transient write
    #: error; verify-after-write detects and retries it)
    write_failure_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.r_lrs_ohm <= 0 or self.r_hrs_ohm <= 0:
            raise DeviceError("resistances must be positive")
        if self.r_hrs_ohm <= self.r_lrs_ohm:
            raise DeviceError("HRS resistance must exceed LRS resistance")
        for field_name in ("sigma_rel_lrs", "sigma_rel_hrs"):
            value = getattr(self, field_name)
            if not 0 <= value < 1:
                raise DeviceError(f"{field_name} must be in [0, 1), got {value}")
        if self.sigma_ref_siemens < 0:
            raise DeviceError("sigma_ref_siemens must be non-negative")
        for field_name in ("write_latency_ns", "write_energy_pj_per_bit",
                           "read_latency_ns", "read_energy_pj_per_bit"):
            if getattr(self, field_name) <= 0:
                raise DeviceError(f"{field_name} must be positive")
        if self.max_activated_rows < 2:
            raise DeviceError("max_activated_rows must be at least 2")
        if self.endurance_cycles <= 0:
            raise DeviceError("endurance_cycles must be positive")
        if not 0.0 <= self.write_failure_probability < 1.0:
            raise DeviceError(
                "write_failure_probability must be in [0, 1), got "
                f"{self.write_failure_probability}")

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def hrs_lrs_ratio(self) -> float:
        """The device memory window; the paper's key reliability driver."""
        return self.r_hrs_ohm / self.r_lrs_ohm

    @property
    def g_lrs(self) -> float:
        """LRS conductance (state '0' in the paper's convention)."""
        return 1.0 / self.r_lrs_ohm

    @property
    def g_hrs(self) -> float:
        """HRS conductance (state '1')."""
        return 1.0 / self.r_hrs_ohm

    @property
    def sigma_g_lrs(self) -> float:
        """Conductance spread of an LRS cell (delta method: σ_R/R²)."""
        return self.sigma_rel_lrs / self.r_lrs_ohm

    @property
    def sigma_g_hrs(self) -> float:
        """Absolute HRS conductance spread (relative spread / resistance)."""
        return self.sigma_rel_hrs / self.r_hrs_ohm

    def with_variability(self, sigma_rel_lrs: float, sigma_rel_hrs: float) -> "Technology":
        """A copy with different process-variation spreads."""
        return replace(self, sigma_rel_lrs=sigma_rel_lrs, sigma_rel_hrs=sigma_rel_hrs)


def _stt_mram_resistance(radius_nm: float = 20.0, ra_ohm_um2: float = 7.5,
                         tmr: float = 1.5) -> tuple[float, float]:
    """(R_P, R_AP) of a circular MTJ from the SPITT parameters of Table 1."""
    area_um2 = math.pi * (radius_nm * 1e-3) ** 2
    r_p = ra_ohm_um2 / area_um2
    return r_p, r_p * (1.0 + tmr)


_STT_R_P, _STT_R_AP = _stt_mram_resistance()

STT_MRAM = Technology(
    name="stt-mram",
    r_lrs_ohm=_STT_R_P,
    r_hrs_ohm=_STT_R_AP,
    sigma_rel_lrs=0.085,
    sigma_rel_hrs=0.085,
    sigma_ref_siemens=2e-7,
    write_latency_ns=10.0,
    write_energy_pj_per_bit=0.8,
    read_latency_ns=2.0,
    read_energy_pj_per_bit=0.1,
    max_activated_rows=8,
    endurance_cycles=math.inf,  # STT-MRAM is effectively wear-free
    write_failure_probability=1e-6,  # thermally-assisted switching misses
)

RERAM = Technology(
    name="reram",
    r_lrs_ohm=5_000.0,
    r_hrs_ohm=500_000.0,
    sigma_rel_lrs=0.045,
    sigma_rel_hrs=0.15,
    sigma_ref_siemens=2e-7,
    write_latency_ns=30.0,
    write_energy_pj_per_bit=1.5,
    read_latency_ns=2.0,
    read_energy_pj_per_bit=0.1,
    max_activated_rows=8,
    endurance_cycles=1e9,
    write_failure_probability=1e-4,  # SET/RESET pulse misses (forming drift)
)

PCM = Technology(
    name="pcm",
    r_lrs_ohm=10_000.0,
    r_hrs_ohm=1_000_000.0,
    sigma_rel_lrs=0.06,
    sigma_rel_hrs=0.2,
    sigma_ref_siemens=2e-7,
    write_latency_ns=120.0,
    write_energy_pj_per_bit=8.0,
    read_latency_ns=3.0,
    read_energy_pj_per_bit=0.2,
    max_activated_rows=8,
    endurance_cycles=1e8,
    write_failure_probability=5e-4,  # incomplete crystallization pulses
)

TECHNOLOGIES: dict[str, Technology] = {
    t.name: t for t in (STT_MRAM, RERAM, PCM)
}


def get_technology(name: str) -> Technology:
    """Look up a built-in technology by name."""
    try:
        return TECHNOLOGIES[name.lower()]
    except KeyError:
        raise DeviceError(
            f"unknown technology {name!r}; known: {sorted(TECHNOLOGIES)}") from None
