"""Device substrate: NVM technologies, sensing reliability, array costs."""

from repro.devices.arraymodel import ArrayCostModel
from repro.devices.faultmap import FAULTMAP_FORMAT_VERSION, CellFault, FaultMap
from repro.devices.failure import (
    CompositeState,
    application_failure_probability,
    boundary_error,
    composite_state,
    decision_failure_probability,
    overlap_curve,
)
from repro.devices.technology import (
    PCM,
    RERAM,
    STT_MRAM,
    TECHNOLOGIES,
    Technology,
    get_technology,
)

__all__ = [
    "ArrayCostModel",
    "CellFault",
    "CompositeState",
    "FAULTMAP_FORMAT_VERSION",
    "FaultMap",
    "PCM",
    "RERAM",
    "STT_MRAM",
    "TECHNOLOGIES",
    "Technology",
    "application_failure_probability",
    "boundary_error",
    "composite_state",
    "decision_failure_probability",
    "get_technology",
    "overlap_curve",
]
