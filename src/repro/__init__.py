"""Sherlock: scheduling efficient and reliable bulk bitwise operations in NVMs.

Python reproduction of Farzaneh et al., DAC 2024.  The public API lives in
:mod:`repro.core`; the substrates (DFG IR, device models, CIM architecture,
mappers, simulator, workloads) are importable subpackages.
"""

__version__ = "1.0.0"
