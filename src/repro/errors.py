"""Exception hierarchy for the Sherlock reproduction.

Every error raised by this package derives from :class:`SherlockError`, so
callers can catch one type at the API boundary while the subclasses keep
diagnostics precise.
"""

from __future__ import annotations


class SherlockError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(SherlockError):
    """Malformed data-flow graph (cycles, bad arity, unknown nodes...)."""


class FrontendError(SherlockError):
    """Error while lexing/parsing/lowering the C-subset input."""


class MappingError(SherlockError):
    """The mapper could not place the DAG on the target (capacity, ...)."""


class CapacityError(MappingError):
    """The DAG does not fit the target's cell/column capacity.

    Structured capacity diagnostics: ``required_cells`` is the mapper's
    estimate of the cells the failing request needed, ``available_cells``
    the capacity it had, and ``suggested_num_arrays`` a computed target
    size that would (conservatively) fit.  Any field may be ``None`` when
    the failing site cannot estimate it.  ``suggestion_validated`` records
    whether the compiler *proved* the suggestion by retrying the
    multi-array schedule at that array count (``True``), disproved the
    naive estimate and corrected it (also ``True`` — the field describes
    the final suggestion), probed without finding a fitting count
    (``False``), or never checked (``None``).
    """

    def __init__(self, message: str, *,
                 required_cells: int | None = None,
                 available_cells: int | None = None,
                 num_arrays: int | None = None,
                 suggested_num_arrays: int | None = None,
                 suggestion_validated: bool | None = None) -> None:
        super().__init__(message)
        self.required_cells = required_cells
        self.available_cells = available_cells
        self.num_arrays = num_arrays
        if (suggested_num_arrays is None and required_cells is not None
                and available_cells and num_arrays):
            # scale the array count by the overshoot, never shrinking and
            # always proposing at least one extra array
            import math

            scaled = math.ceil(num_arrays * required_cells / available_cells)
            suggested_num_arrays = max(num_arrays + 1, scaled)
        self.suggested_num_arrays = suggested_num_arrays
        self.suggestion_validated = suggestion_validated

    def details(self) -> list[str]:
        """Human-readable diagnostic lines for the CLI error path."""
        lines = []
        if self.required_cells is not None:
            lines.append(f"required cells:  {self.required_cells}")
        if self.available_cells is not None:
            lines.append(f"available cells: {self.available_cells}")
        if self.suggested_num_arrays is not None:
            note = ""
            if self.suggestion_validated:
                note = " — validated: the multi-array schedule fits there"
            lines.append(
                f"suggestion: retry with num_arrays >= "
                f"{self.suggested_num_arrays} (--arrays "
                f"{self.suggested_num_arrays}){note}")
        return lines


class SimulationError(SherlockError):
    """Illegal instruction or machine state during trace execution."""


class HardFaultError(SimulationError):
    """A write could not be committed to any cell (hard fault at runtime).

    Raised by verify-after-write when a cell keeps failing read-back after
    ``write_retries`` attempts and no healthy spare cell is left to remap
    it to.  ``cell`` names the (array, row, col) the program addressed,
    ``physical_cell`` the cell actually attempted last (after remapping),
    ``attempts`` the total write attempts spent, and ``spares_tried`` how
    many spare cells were exhausted along the way.  Catching this error and
    recompiling with the machine's ``discovered_faults`` merged into the
    fault map is the ``remap`` rung of the degradation ladder.
    """

    def __init__(self, message: str, *,
                 cell: tuple[int, int, int] | None = None,
                 physical_cell: tuple[int, int, int] | None = None,
                 attempts: int = 0,
                 spares_tried: int = 0) -> None:
        super().__init__(message)
        self.cell = cell
        self.physical_cell = physical_cell
        self.attempts = attempts
        self.spares_tried = spares_tried


class TargetError(SherlockError):
    """Invalid target specification or unsupported target feature."""


class DeviceError(SherlockError):
    """Invalid device/technology parameters."""


class BenchError(SherlockError):
    """Invalid benchmark probe, report schema, or comparison request."""


class RetryExhaustedError(SherlockError):
    """A retried operation kept failing until its attempt budget ran out.

    Raised by :func:`repro.util.retry.retry_call` after ``max_attempts``
    retryable failures.  ``attempts`` counts every attempt made and
    ``last_error`` keeps the final failure (also chained as ``__cause__``),
    so callers can distinguish "gave up" from "fatal on first try" — a
    fatal (non-retryable) error propagates unchanged instead.
    """

    def __init__(self, message: str, *, attempts: int = 0,
                 last_error: BaseException | None = None) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class CheckpointError(SherlockError):
    """A checkpoint journal is unusable for the requested resume.

    Raised by :mod:`repro.reliability.checkpoint` when a journal file is
    corrupt, carries an unknown schema, or was written by a run with a
    different identity (program, trials, seed, policy...) than the one
    trying to resume from it — silently mixing those would break the
    bit-identical-resume guarantee.
    """


class ServeError(SherlockError):
    """Base class for compile-and-serve runtime failures (:mod:`repro.serve`)."""


class ServiceOverloadError(ServeError):
    """Admission control shed a request: the service job queue is full.

    Carries the structured load-shedding diagnostics a client needs to
    back off sensibly: ``queue_depth`` jobs were already waiting against a
    ``queue_limit`` bound, and ``retry_after_s`` is the service's hint for
    when capacity is likely to free up (derived from recent per-job
    latency; best-effort, never authoritative).
    """

    def __init__(self, message: str, *, queue_depth: int = 0,
                 queue_limit: int = 0,
                 retry_after_s: float | None = None,
                 shed_policy: str = "reject") -> None:
        super().__init__(message)
        self.queue_depth = queue_depth
        self.queue_limit = queue_limit
        self.retry_after_s = retry_after_s
        self.shed_policy = shed_policy

    def details(self) -> list[str]:
        """Human-readable diagnostic lines for CLI/server error paths."""
        lines = [f"queue depth: {self.queue_depth} (limit {self.queue_limit})",
                 f"shed policy: {self.shed_policy}"]
        if self.retry_after_s is not None:
            lines.append(f"retry after: {self.retry_after_s:.3f} s")
        return lines


class WorkerCrashError(ServeError):
    """A compile worker died mid-job (or chaos injection simulated it).

    This is the canonical *retryable* service failure: the job itself is
    assumed healthy, so the worker pool re-runs it under the retry policy
    instead of failing the request.
    """


class DeadlineExceededError(ServeError):
    """A job missed its per-request deadline in the service loop."""
