"""Exception hierarchy for the Sherlock reproduction.

Every error raised by this package derives from :class:`SherlockError`, so
callers can catch one type at the API boundary while the subclasses keep
diagnostics precise.
"""

from __future__ import annotations


class SherlockError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(SherlockError):
    """Malformed data-flow graph (cycles, bad arity, unknown nodes...)."""


class FrontendError(SherlockError):
    """Error while lexing/parsing/lowering the C-subset input."""


class MappingError(SherlockError):
    """The mapper could not place the DAG on the target (capacity, ...)."""


class CapacityError(MappingError):
    """The DAG does not fit the target's cell/column capacity.

    Structured capacity diagnostics: ``required_cells`` is the mapper's
    estimate of the cells the failing request needed, ``available_cells``
    the capacity it had, and ``suggested_num_arrays`` a computed target
    size that would (conservatively) fit.  Any field may be ``None`` when
    the failing site cannot estimate it.  ``suggestion_validated`` records
    whether the compiler *proved* the suggestion by retrying the
    multi-array schedule at that array count (``True``), disproved the
    naive estimate and corrected it (also ``True`` — the field describes
    the final suggestion), probed without finding a fitting count
    (``False``), or never checked (``None``).
    """

    def __init__(self, message: str, *,
                 required_cells: int | None = None,
                 available_cells: int | None = None,
                 num_arrays: int | None = None,
                 suggested_num_arrays: int | None = None,
                 suggestion_validated: bool | None = None) -> None:
        super().__init__(message)
        self.required_cells = required_cells
        self.available_cells = available_cells
        self.num_arrays = num_arrays
        if (suggested_num_arrays is None and required_cells is not None
                and available_cells and num_arrays):
            # scale the array count by the overshoot, never shrinking and
            # always proposing at least one extra array
            import math

            scaled = math.ceil(num_arrays * required_cells / available_cells)
            suggested_num_arrays = max(num_arrays + 1, scaled)
        self.suggested_num_arrays = suggested_num_arrays
        self.suggestion_validated = suggestion_validated

    def details(self) -> list[str]:
        """Human-readable diagnostic lines for the CLI error path."""
        lines = []
        if self.required_cells is not None:
            lines.append(f"required cells:  {self.required_cells}")
        if self.available_cells is not None:
            lines.append(f"available cells: {self.available_cells}")
        if self.suggested_num_arrays is not None:
            note = ""
            if self.suggestion_validated:
                note = " — validated: the multi-array schedule fits there"
            lines.append(
                f"suggestion: retry with num_arrays >= "
                f"{self.suggested_num_arrays} (--arrays "
                f"{self.suggested_num_arrays}){note}")
        return lines


class SimulationError(SherlockError):
    """Illegal instruction or machine state during trace execution."""


class HardFaultError(SimulationError):
    """A write could not be committed to any cell (hard fault at runtime).

    Raised by verify-after-write when a cell keeps failing read-back after
    ``write_retries`` attempts and no healthy spare cell is left to remap
    it to.  ``cell`` names the (array, row, col) the program addressed,
    ``physical_cell`` the cell actually attempted last (after remapping),
    ``attempts`` the total write attempts spent, and ``spares_tried`` how
    many spare cells were exhausted along the way.  Catching this error and
    recompiling with the machine's ``discovered_faults`` merged into the
    fault map is the ``remap`` rung of the degradation ladder.
    """

    def __init__(self, message: str, *,
                 cell: tuple[int, int, int] | None = None,
                 physical_cell: tuple[int, int, int] | None = None,
                 attempts: int = 0,
                 spares_tried: int = 0) -> None:
        super().__init__(message)
        self.cell = cell
        self.physical_cell = physical_cell
        self.attempts = attempts
        self.spares_tried = spares_tried


class TargetError(SherlockError):
    """Invalid target specification or unsupported target feature."""


class DeviceError(SherlockError):
    """Invalid device/technology parameters."""


class BenchError(SherlockError):
    """Invalid benchmark probe, report schema, or comparison request."""
