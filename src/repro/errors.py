"""Exception hierarchy for the Sherlock reproduction.

Every error raised by this package derives from :class:`SherlockError`, so
callers can catch one type at the API boundary while the subclasses keep
diagnostics precise.
"""

from __future__ import annotations


class SherlockError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(SherlockError):
    """Malformed data-flow graph (cycles, bad arity, unknown nodes...)."""


class FrontendError(SherlockError):
    """Error while lexing/parsing/lowering the C-subset input."""


class MappingError(SherlockError):
    """The mapper could not place the DAG on the target (capacity, ...)."""


class SimulationError(SherlockError):
    """Illegal instruction or machine state during trace execution."""


class TargetError(SherlockError):
    """Invalid target specification or unsupported target feature."""


class DeviceError(SherlockError):
    """Invalid device/technology parameters."""


class BenchError(SherlockError):
    """Invalid benchmark probe, report schema, or comparison request."""
