"""Recursive-descent parser for the bulk-bitwise C subset.

Supported surface syntax (everything the paper's kernels need)::

    word_t kernel(word_t C1[8], word_t C2[8], word_t x[8], word_t out[2]) {
        word_t lt = 0;
        word_t eq = ~0;
        for (int i = 0; i < 8; i += 1) {
            lt = lt | (eq & ~x[i] & C1[i]);
            eq = eq & ~(x[i] ^ C1[i]);
        }
        out[0] = lt;
        return lt & eq;
    }

Bit-vector expressions use ``& | ^ ~`` only.  Integer arithmetic
(``+ - * / % << >>``) and comparisons are allowed in constant contexts:
array sizes, loop bounds, and indices.  The lowering pass rejects misuse;
the parser itself is permissive about where each operator appears.
"""

from __future__ import annotations

from repro.errors import FrontendError
from repro.frontend import ast_nodes as ast
from repro.frontend.lexer import Token, tokenize

_TYPE_KEYWORDS = {
    "int", "unsigned", "char", "short", "long",
    "uint8_t", "uint16_t", "uint32_t", "uint64_t", "word_t", "bitvec_t", "void",
}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------
    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def _fail(self, message: str) -> FrontendError:
        tok = self.cur
        return FrontendError(
            f"{message} at line {tok.line}, col {tok.col} "
            f"(found {tok.text!r})")

    def advance(self) -> Token:
        tok = self.cur
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        tok = self.cur
        if tok.kind == kind and (text is None or tok.text == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        tok = self.accept(kind, text)
        if tok is None:
            want = text if text is not None else kind
            raise self._fail(f"expected {want!r}")
        return tok

    def _skip_type(self) -> None:
        """Consume one or more type keywords (``unsigned long`` etc.)."""
        if self.cur.kind != "keyword" or self.cur.text not in _TYPE_KEYWORDS:
            raise self._fail("expected a type")
        while self.cur.kind == "keyword" and self.cur.text in _TYPE_KEYWORDS:
            self.advance()

    def _at_type(self) -> bool:
        return self.cur.kind == "keyword" and self.cur.text in _TYPE_KEYWORDS

    # ------------------------------------------------------------------
    # grammar
    # ------------------------------------------------------------------
    def parse_program(self) -> ast.Program:
        functions = []
        while self.cur.kind != "eof":
            functions.append(self.parse_function())
        return ast.Program(line=1, functions=tuple(functions))

    def parse_function(self) -> ast.Function:
        line = self.cur.line
        self._skip_type()
        name = self.expect("ident").text
        self.expect("op", "(")
        params = []
        if not self.accept("op", ")"):
            while True:
                params.append(self.parse_param())
                if self.accept("op", ")"):
                    break
                self.expect("op", ",")
        body = self.parse_block()
        return ast.Function(line=line, name=name, params=tuple(params),
                            body=body)

    def parse_param(self) -> ast.Param:
        line = self.cur.line
        self._skip_type()
        self.accept("op", "*")  # pointers are treated like arrays
        name = self.expect("ident").text
        size = None
        if self.accept("op", "["):
            size = self.parse_expr()
            self.expect("op", "]")
        return ast.Param(line=line, name=name, array_size=size)

    def parse_block(self) -> tuple[ast.Stmt, ...]:
        self.expect("op", "{")
        stmts: list[ast.Stmt] = []
        while not self.accept("op", "}"):
            if self.cur.kind == "eof":
                raise self._fail("unterminated block")
            stmts.append(self.parse_statement())
        return tuple(stmts)

    def parse_statement(self) -> ast.Stmt:
        if self._at_type():
            return self.parse_decl()
        if self.cur.kind == "keyword" and self.cur.text == "for":
            return self.parse_for()
        if self.cur.kind == "keyword" and self.cur.text == "return":
            line = self.advance().line
            value = self.parse_expr()
            self.expect("op", ";")
            return ast.Return(line=line, value=value)
        return self.parse_assign()

    def parse_decl(self) -> ast.Decl:
        line = self.cur.line
        self._skip_type()
        name = self.expect("ident").text
        size = None
        init = None
        if self.accept("op", "["):
            size = self.parse_expr()
            self.expect("op", "]")
        elif self.accept("op", "="):
            init = self.parse_expr()
        self.expect("op", ";")
        return ast.Decl(line=line, name=name, array_size=size, init=init)

    def parse_assign(self) -> ast.Assign:
        line = self.cur.line
        name = self.expect("ident").text
        lhs: ast.Var | ast.Index
        if self.accept("op", "["):
            index = self.parse_expr()
            self.expect("op", "]")
            lhs = ast.Index(line=line, base=name, index=index)
        else:
            lhs = ast.Var(line=line, name=name)
        op_tok = self.cur
        if op_tok.kind != "op" or op_tok.text not in ("=", "&=", "|=", "^="):
            raise self._fail("expected an assignment operator")
        self.advance()
        value = self.parse_expr()
        self.expect("op", ";")
        return ast.Assign(line=line, lhs=lhs, op=op_tok.text, value=value)

    def parse_for(self) -> ast.For:
        line = self.expect("keyword", "for").line
        self.expect("op", "(")
        if self._at_type():
            self._skip_type()
        var = self.expect("ident").text
        self.expect("op", "=")
        init = self.parse_expr()
        self.expect("op", ";")
        cond_var = self.expect("ident").text
        if cond_var != var:
            raise self._fail(f"loop condition must test {var!r}")
        cond_tok = self.cur
        if cond_tok.kind != "op" or cond_tok.text not in ("<", "<=", ">", ">=", "!="):
            raise self._fail("expected a loop comparison")
        self.advance()
        bound = self.parse_expr()
        self.expect("op", ";")
        step = self._parse_update(var)
        self.expect("op", ")")
        body = self.parse_block()
        return ast.For(line=line, var=var, init=init, cond_op=cond_tok.text,
                       bound=bound, step=step, body=body)

    def _parse_update(self, var: str) -> int:
        name = self.expect("ident").text
        if name != var:
            raise self._fail(f"loop update must modify {var!r}")
        if self.accept("op", "++"):
            return 1
        if self.accept("op", "--"):
            return -1
        tok = self.cur
        if tok.kind == "op" and tok.text in ("+=", "-="):
            self.advance()
            step_tok = self.expect("number")
            step = int(step_tok.text, 0)
            return step if tok.text == "+=" else -step
        if self.accept("op", "="):
            # i = i + 1 / i = i - 1
            self.expect("ident", None)
            sign_tok = self.cur
            if sign_tok.kind != "op" or sign_tok.text not in ("+", "-"):
                raise self._fail("expected 'var = var +/- const'")
            self.advance()
            step = int(self.expect("number").text, 0)
            return step if sign_tok.text == "+" else -step
        raise self._fail("unsupported loop update")

    # ------------------------------------------------------------------
    # expressions: | > ^ > & > shift > add > mul > unary > primary
    # ------------------------------------------------------------------
    def parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _binary_level(self, ops: tuple[str, ...], next_level) -> ast.Expr:
        left = next_level()
        while self.cur.kind == "op" and self.cur.text in ops:
            op = self.advance()
            right = next_level()
            left = ast.BinOp(line=op.line, op=op.text, left=left, right=right)
        return left

    def _parse_or(self) -> ast.Expr:
        return self._binary_level(("|",), self._parse_xor)

    def _parse_xor(self) -> ast.Expr:
        return self._binary_level(("^",), self._parse_and)

    def _parse_and(self) -> ast.Expr:
        return self._binary_level(("&",), self._parse_shift)

    def _parse_shift(self) -> ast.Expr:
        return self._binary_level(("<<", ">>"), self._parse_add)

    def _parse_add(self) -> ast.Expr:
        return self._binary_level(("+", "-"), self._parse_mul)

    def _parse_mul(self) -> ast.Expr:
        return self._binary_level(("*", "/", "%"), self._parse_unary)

    def _parse_unary(self) -> ast.Expr:
        tok = self.cur
        if tok.kind == "op" and tok.text in ("~", "-"):
            self.advance()
            return ast.UnOp(line=tok.line, op=tok.text,
                            operand=self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        tok = self.cur
        if tok.kind == "number":
            self.advance()
            return ast.IntLit(line=tok.line, value=int(tok.text, 0))
        if tok.kind == "ident":
            self.advance()
            if self.accept("op", "["):
                index = self.parse_expr()
                self.expect("op", "]")
                return ast.Index(line=tok.line, base=tok.text, index=index)
            return ast.Var(line=tok.line, name=tok.text)
        if tok.kind == "op" and tok.text == "(":
            self.advance()
            inner = self.parse_expr()
            self.expect("op", ")")
            return inner
        raise self._fail("expected an expression")


def parse(source: str) -> ast.Program:
    """Parse C-subset source into a :class:`repro.frontend.ast_nodes.Program`."""
    return _Parser(tokenize(source)).parse_program()
