"""Tokenizer for the bulk-bitwise C subset.

The paper feeds C through pycparser; we implement the needed subset from
scratch.  Tokens cover identifiers, integer literals, the bitwise and
integer-arithmetic operators, comparisons (loop conditions), assignment
(including the compound ``&=``, ``|=``, ``^=`` forms), and punctuation.
Line/column positions are retained for error messages.  ``//`` and
``/* */`` comments are skipped.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FrontendError

KEYWORDS = {
    "for", "return", "void", "int", "unsigned", "char", "short", "long",
    "uint8_t", "uint16_t", "uint32_t", "uint64_t", "word_t", "bitvec_t",
}

#: multi-character operators, longest first so maximal munch works
_MULTI_OPS = ["<<=", ">>=", "&=", "|=", "^=", "+=", "-=", "*=",
              "==", "!=", "<=", ">=", "<<", ">>", "++", "--"]
_SINGLE_OPS = set("+-*/%&|^~!<>=(){}[];,")


@dataclass(frozen=True)
class Token:
    """One lexeme with its source position (for error messages)."""

    kind: str  # 'ident' | 'number' | 'keyword' | 'op' | 'eof'
    text: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.col})"


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; raise :class:`FrontendError` on bad characters."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(text: str) -> None:
        nonlocal i, line, col
        for ch in text:
            i += 1
            if ch == "\n":
                line += 1
                col = 1
            else:
                col += 1

    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            advance(ch)
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            advance(source[i:end if end != -1 else n])
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise FrontendError(f"unterminated comment at line {line}")
            advance(source[i:end + 2])
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, col))
            advance(text)
            continue
        if ch.isdigit():
            j = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
            else:
                while j < n and source[j].isdigit():
                    j += 1
            text = source[i:j]
            tokens.append(Token("number", text, line, col))
            advance(text)
            continue
        matched = False
        for op in _MULTI_OPS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line, col))
                advance(op)
                matched = True
                break
        if matched:
            continue
        if ch in _SINGLE_OPS:
            tokens.append(Token("op", ch, line, col))
            advance(ch)
            continue
        raise FrontendError(f"unexpected character {ch!r} at line {line}, col {col}")
    tokens.append(Token("eof", "", line, col))
    return tokens
