"""Lowering: C-subset AST -> data-flow graph (the Fig. 1 front-end).

Every scalar of the kernel is a *bulk bit-vector* (one lane per data
element), so the only legal vector operators are ``& | ^ ~``.  Integer
arithmetic lives exclusively in constant contexts — array sizes, loop
bounds and steps, and array indices — and is folded at lowering time while
``for`` loops are statically unrolled, exactly like the per-iteration DFG
of Fig. 3b.

Input/output convention:

* reading a parameter (or parameter array element) that was never written
  creates a DFG input named ``p`` / ``p[i]``;
* a parameter (or element) the kernel assigns becomes a DFG output with the
  same name, holding its final value;
* ``return expr;`` adds an output named ``return``.
"""

from __future__ import annotations

from repro.dfg.graph import DataFlowGraph
from repro.dfg.ops import OpType
from repro.errors import FrontendError
from repro.frontend import ast_nodes as ast

#: refuse to unroll loops beyond this many total iterations
MAX_UNROLL = 1 << 20

_VECTOR_OPS = {"&": OpType.AND, "|": OpType.OR, "^": OpType.XOR}
_COND = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "!=": lambda a, b: a != b,
}


class _Scope:
    """Name environment: vectors, arrays of vectors, and loop constants."""

    def __init__(self) -> None:
        self.vectors: dict[str, int | None] = {}  # name -> operand id
        self.arrays: dict[str, dict[int, int]] = {}  # name -> index -> id
        self.array_sizes: dict[str, int | None] = {}
        self.consts: dict[str, int] = {}  # loop variables
        self.params: set[str] = set()
        self.written_params: dict[str, int] = {}  # qualified name -> id


class Lowerer:
    """Lower one function to a :class:`DataFlowGraph`."""

    def __init__(self, function: ast.Function) -> None:
        self.function = function
        self.dag = DataFlowGraph(function.name)
        self.scope = _Scope()
        self.return_value: int | None = None

    # ------------------------------------------------------------------
    def lower(self) -> DataFlowGraph:
        """Run the lowering; returns the validated DFG."""
        for param in self.function.params:
            self._declare_param(param)
        self._lower_block(self.function.body)
        for qualified, oid in sorted(self.scope.written_params.items()):
            self.dag.mark_output(oid, qualified)
        if self.return_value is not None:
            self.dag.mark_output(self.return_value, "return")
        if not self.dag.outputs:
            raise FrontendError(
                f"kernel {self.function.name!r} produces no outputs: "
                "assign to a parameter or add a return")
        self.dag.validate()
        return self.dag

    def _declare_param(self, param: ast.Param) -> None:
        if param.array_size is not None:
            size = self._const_expr(param.array_size)
            if size < 1:
                raise FrontendError(
                    f"parameter {param.name!r} has non-positive size {size}")
            self.scope.arrays[param.name] = {}
            self.scope.array_sizes[param.name] = size
        else:
            self.scope.vectors[param.name] = None  # input made lazily on read
        self.scope.params.add(param.name)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _lower_block(self, stmts: tuple[ast.Stmt, ...]) -> None:
        for stmt in stmts:
            if self.return_value is not None:
                raise FrontendError(
                    f"statement after return at line {stmt.line}")
            self._lower_stmt(stmt)

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Decl):
            self._lower_decl(stmt)
        elif isinstance(stmt, ast.Assign):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.Return):
            self.return_value = self._vector_expr(stmt.value)
        else:  # pragma: no cover - parser only produces the above
            raise FrontendError(f"unsupported statement at line {stmt.line}")

    def _lower_decl(self, stmt: ast.Decl) -> None:
        if stmt.name in self.scope.vectors or stmt.name in self.scope.arrays:
            raise FrontendError(
                f"redeclaration of {stmt.name!r} at line {stmt.line}")
        if stmt.array_size is not None:
            size = self._const_expr(stmt.array_size)
            if size < 1:
                raise FrontendError(
                    f"array {stmt.name!r} has non-positive size {size}")
            self.scope.arrays[stmt.name] = {}
            self.scope.array_sizes[stmt.name] = size
        else:
            init = None if stmt.init is None else self._vector_expr(stmt.init)
            self.scope.vectors[stmt.name] = init

    def _lower_assign(self, stmt: ast.Assign) -> None:
        value = self._vector_expr(stmt.value)
        if stmt.op != "=":
            current = self._read_lvalue(stmt.lhs)
            value = self.dag.add_op(_VECTOR_OPS[stmt.op[0]], [current, value])
        self._write_lvalue(stmt.lhs, value)

    def _lower_for(self, stmt: ast.For) -> None:
        if stmt.var in self.scope.consts:
            raise FrontendError(
                f"loop variable {stmt.var!r} shadows an outer loop "
                f"at line {stmt.line}")
        start = self._const_expr(stmt.init)
        bound = self._const_expr(stmt.bound)
        if stmt.step == 0:
            raise FrontendError(f"zero loop step at line {stmt.line}")
        cond = _COND[stmt.cond_op]
        value = start
        iterations = 0
        while cond(value, bound):
            iterations += 1
            if iterations > MAX_UNROLL:
                raise FrontendError(
                    f"loop at line {stmt.line} unrolls beyond {MAX_UNROLL} "
                    "iterations")
            self.scope.consts[stmt.var] = value
            self._lower_block(stmt.body)
            value += stmt.step
        self.scope.consts.pop(stmt.var, None)

    # ------------------------------------------------------------------
    # l-values
    # ------------------------------------------------------------------
    def _read_lvalue(self, lhs: ast.Var | ast.Index) -> int:
        if isinstance(lhs, ast.Var):
            return self._read_scalar(lhs.name, lhs.line)
        return self._read_element(lhs.base, self._const_expr(lhs.index), lhs.line)

    def _write_lvalue(self, lhs: ast.Var | ast.Index, value: int) -> None:
        if isinstance(lhs, ast.Var):
            if lhs.name in self.scope.consts:
                raise FrontendError(
                    f"cannot assign to loop variable {lhs.name!r} "
                    f"at line {lhs.line}")
            if lhs.name not in self.scope.vectors:
                raise FrontendError(
                    f"assignment to undeclared {lhs.name!r} at line {lhs.line}")
            self.scope.vectors[lhs.name] = value
            if lhs.name in self.scope.params:
                self.scope.written_params[lhs.name] = value
            return
        index = self._const_expr(lhs.index)
        self._check_bounds(lhs.base, index, lhs.line)
        self.scope.arrays[lhs.base][index] = value
        if lhs.base in self.scope.params:
            self.scope.written_params[f"{lhs.base}[{index}]"] = value

    def _check_bounds(self, base: str, index: int, line: int) -> None:
        if base not in self.scope.arrays:
            raise FrontendError(f"{base!r} is not an array at line {line}")
        size = self.scope.array_sizes[base]
        if size is not None and not 0 <= index < size:
            raise FrontendError(
                f"index {index} out of bounds for {base!r}[{size}] "
                f"at line {line}")

    def _read_scalar(self, name: str, line: int) -> int:
        if name in self.scope.consts:
            raise FrontendError(
                f"loop variable {name!r} used as a vector at line {line}")
        if name not in self.scope.vectors:
            raise FrontendError(f"unknown variable {name!r} at line {line}")
        value = self.scope.vectors[name]
        if value is None:
            if name in self.scope.params:
                value = self.dag.add_input(name)
                self.scope.vectors[name] = value
            else:
                raise FrontendError(
                    f"{name!r} read before assignment at line {line}")
        return value

    def _read_element(self, base: str, index: int, line: int) -> int:
        self._check_bounds(base, index, line)
        elements = self.scope.arrays[base]
        if index not in elements:
            if base in self.scope.params:
                elements[index] = self.dag.add_input(f"{base}[{index}]")
            else:
                raise FrontendError(
                    f"{base}[{index}] read before assignment at line {line}")
        return elements[index]

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _vector_expr(self, expr: ast.Expr) -> int:
        """Lower an expression in bit-vector context to an operand id."""
        folded = self._try_const(expr)
        if folded is not None:
            return self._broadcast(folded, expr.line)
        if isinstance(expr, ast.Var):
            return self._read_scalar(expr.name, expr.line)
        if isinstance(expr, ast.Index):
            return self._read_element(expr.base, self._const_expr(expr.index),
                                      expr.line)
        if isinstance(expr, ast.UnOp):
            if expr.op != "~":
                raise FrontendError(
                    f"operator {expr.op!r} is not a bulk-bitwise op "
                    f"at line {expr.line}")
            return self.dag.add_op(OpType.NOT, [self._vector_expr(expr.operand)])
        if isinstance(expr, ast.BinOp):
            if expr.op not in _VECTOR_OPS:
                raise FrontendError(
                    f"operator {expr.op!r} only works on integer constants "
                    f"at line {expr.line}")
            left = self._vector_expr(expr.left)
            right = self._vector_expr(expr.right)
            return self.dag.add_op(_VECTOR_OPS[expr.op], [left, right])
        raise FrontendError(f"unsupported expression at line {expr.line}")

    def _broadcast(self, value: int, line: int) -> int:
        """Integer literal in vector context: 0 and ~0/-1 broadcast."""
        if value == 0:
            return self.dag.add_const(0)
        if value == -1:
            return self.dag.add_const(1)
        raise FrontendError(
            f"only 0 and ~0 broadcast to bit vectors; got {value} "
            f"at line {line}")

    def _try_const(self, expr: ast.Expr) -> int | None:
        """Fold ``expr`` to an integer if it is fully constant."""
        try:
            return self._const_expr(expr)
        except FrontendError:
            return None

    def _const_expr(self, expr: ast.Expr) -> int:
        """Evaluate an integer constant expression (indices, bounds)."""
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.Var):
            if expr.name in self.scope.consts:
                return self.scope.consts[expr.name]
            raise FrontendError(
                f"{expr.name!r} is not an integer constant at line {expr.line}")
        if isinstance(expr, ast.UnOp):
            value = self._const_expr(expr.operand)
            return -value if expr.op == "-" else ~value
        if isinstance(expr, ast.BinOp):
            left = self._const_expr(expr.left)
            right = self._const_expr(expr.right)
            ops = {
                "+": lambda: left + right,
                "-": lambda: left - right,
                "*": lambda: left * right,
                "/": lambda: left // right,
                "%": lambda: left % right,
                "<<": lambda: left << right,
                ">>": lambda: left >> right,
                "&": lambda: left & right,
                "|": lambda: left | right,
                "^": lambda: left ^ right,
            }
            if expr.op not in ops:
                raise FrontendError(
                    f"operator {expr.op!r} not allowed in constants "
                    f"at line {expr.line}")
            return ops[expr.op]()
        raise FrontendError(f"not a constant expression at line {expr.line}")


def lower_program(program: ast.Program, function: str | None = None) -> DataFlowGraph:
    """Lower a parsed program's kernel function to a DFG."""
    return Lowerer(program.function(function)).lower()
