"""Front-end: C-subset source -> AST -> data-flow graph (Fig. 1)."""

from repro.frontend.lexer import Token, tokenize
from repro.frontend.lower import Lowerer, lower_program
from repro.frontend.parser import parse

__all__ = [
    "Lowerer",
    "Token",
    "c_to_dfg",
    "lower_program",
    "parse",
    "tokenize",
]


def c_to_dfg(source: str, function: str | None = None):
    """Parse C-subset source and lower one kernel to a DataFlowGraph."""
    return lower_program(parse(source), function)
