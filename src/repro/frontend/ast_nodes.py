"""Abstract syntax tree for the bulk-bitwise C subset."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Node:
    """Base AST node; ``line`` points back into the source for errors."""

    line: int


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IntLit(Node):
    """Integer literal."""

    value: int


@dataclass(frozen=True)
class Var(Node):
    """Reference to a scalar variable by name."""

    name: str


@dataclass(frozen=True)
class Index(Node):
    """Array element access ``base[index]``."""

    base: str
    index: "Expr"


@dataclass(frozen=True)
class UnOp(Node):
    """Unary operator application."""

    op: str  # '~' or '-' (the latter only in integer constant context)
    operand: "Expr"


@dataclass(frozen=True)
class BinOp(Node):
    """Binary operator application."""

    op: str  # '&' '|' '^' for vectors; '+ - * / % << >>' and comparisons
    left: "Expr"
    right: "Expr"


Expr = IntLit | Var | Index | UnOp | BinOp


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Decl(Node):
    """``word_t name;`` / ``word_t name = expr;`` / ``word_t name[N];``"""

    name: str
    array_size: Expr | None = None
    init: Expr | None = None


@dataclass(frozen=True)
class Assign(Node):
    """``lhs op= expr`` where lhs is a variable or array element."""

    lhs: Var | Index
    op: str  # '=', '&=', '|=', '^='
    value: Expr


@dataclass(frozen=True)
class For(Node):
    """``for (int i = lo; i < hi; i += step) body`` — statically unrolled."""

    var: str
    init: Expr
    cond_op: str  # '<' '<=' '>' '>=' '!='
    bound: Expr
    step: int
    body: tuple["Stmt", ...]


@dataclass(frozen=True)
class Return(Node):
    """``return expr;`` — the function's single vector result."""

    value: Expr


Stmt = Decl | Assign | For | Return


# ----------------------------------------------------------------------
# top level
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Param(Node):
    """Function parameter: a scalar ``word_t`` or an array of them."""

    name: str
    array_size: Expr | None = None


@dataclass(frozen=True)
class Function(Node):
    """One kernel function: parameters plus statement body."""

    name: str
    params: tuple[Param, ...]
    body: tuple[Stmt, ...]


@dataclass(frozen=True)
class Program(Node):
    """A parsed translation unit (one or more kernel functions)."""

    functions: tuple[Function, ...] = field(default_factory=tuple)

    def function(self, name: str | None = None) -> Function:
        """Look up a function (the only one if ``name`` is None)."""
        from repro.errors import FrontendError

        if name is None:
            if len(self.functions) != 1:
                raise FrontendError(
                    f"program has {len(self.functions)} functions; "
                    "name the kernel explicitly")
            return self.functions[0]
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise FrontendError(f"no function named {name!r}")
