"""Bounded retries with exponential backoff and decorrelated jitter.

Transient failures — a compile worker killed mid-job, a shard that timed
out, a pool that briefly could not spawn — deserve a bounded number of
re-attempts with growing, jittered pauses; *fatal* failures (a malformed
kernel, a capacity overflow that would fail identically every time) must
propagate immediately.  :func:`retry_call` packages that policy once so
every subsystem retries the same way:

* **bounded attempts** — at most :attr:`RetryPolicy.max_attempts` calls,
  after which :class:`repro.errors.RetryExhaustedError` wraps the final
  failure (chained as ``__cause__``),
* **decorrelated jitter** — each pause is drawn uniformly from
  ``[base_delay_s, 3 * previous_delay]`` and clamped to ``max_delay_s``
  (the AWS architecture-blog "decorrelated jitter" schedule), so a
  thundering herd of retries spreads out instead of synchronizing,
* **retryable-vs-fatal classification** — ``policy.retryable`` is the
  exception allowlist; anything else re-raises unchanged.  A ``classify``
  callable can refine the decision per error instance (e.g. "an OSError
  is retryable unless it is ENOSPC").

Both the RNG and the sleep function are injectable, so tests (and the
deterministic campaign shard path, which must stay bit-identical) can run
the full policy without wall-clock pauses or nondeterminism.
"""

from __future__ import annotations

import random
import time
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import RetryExhaustedError, SherlockError

__all__ = [
    "RetryPolicy",
    "compute_backoff",
    "retry_call",
]


def compute_backoff(attempt: int, previous_delay: float, *,
                    base_delay_s: float, max_delay_s: float,
                    rng: random.Random) -> float:
    """The pause before retry ``attempt`` (1-based), decorrelated jitter.

    Draws uniformly from ``[base_delay_s, 3 * previous_delay]`` (using
    ``base_delay_s`` as the floor for the first retry, when there is no
    previous delay) and clamps to ``max_delay_s``.  Exposed separately so
    tests can pin the schedule's bounds without sleeping.
    """
    if attempt < 1:
        raise SherlockError(f"retry attempt must be >= 1, got {attempt}")
    if base_delay_s < 0 or max_delay_s < base_delay_s:
        raise SherlockError(
            f"backoff window [{base_delay_s}, {max_delay_s}] is invalid")
    ceiling = max(base_delay_s, 3.0 * previous_delay)
    return min(max_delay_s, rng.uniform(base_delay_s, ceiling))


@dataclass(frozen=True)
class RetryPolicy:
    """How a transient operation is retried.

    ``max_attempts`` counts *total* calls (1 = never retry).  ``retryable``
    is the exception-type allowlist; an optional ``classify`` callable gets
    the caught (allowlisted) exception and may veto the retry by returning
    ``False``.  ``base_delay_s``/``max_delay_s`` bound the decorrelated-
    jitter schedule of :func:`compute_backoff`.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    retryable: tuple[type[BaseException], ...] = (Exception,)
    classify: Callable[[BaseException], bool] | None = None
    #: RNG seed for the jitter stream (None = nondeterministic)
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise SherlockError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_s < 0:
            raise SherlockError(
                f"base_delay_s must be >= 0, got {self.base_delay_s}")
        if self.max_delay_s < self.base_delay_s:
            raise SherlockError(
                f"max_delay_s {self.max_delay_s} is below base_delay_s "
                f"{self.base_delay_s}")

    def is_retryable(self, error: BaseException) -> bool:
        """Whether ``error`` is transient under this policy."""
        if not isinstance(error, self.retryable):
            return False
        if self.classify is not None and not self.classify(error):
            return False
        return True


@dataclass
class _Attempts:
    """Mutable bookkeeping :func:`retry_call` shares with ``on_retry``."""

    count: int = 0
    delays: list[float] = field(default_factory=list)


def retry_call(fn: Callable[[], object], *,
               policy: RetryPolicy | None = None,
               sleep: Callable[[float], None] | None = None,
               rng: random.Random | None = None,
               on_retry: Callable[[int, BaseException, float], None] | None
               = None,
               label: str = "operation") -> object:
    """Call ``fn`` under ``policy``, retrying transient failures.

    Returns ``fn()``'s result on the first success.  Non-retryable errors
    propagate unchanged; retryable ones are re-attempted up to
    ``policy.max_attempts`` total calls with decorrelated-jitter pauses,
    then wrapped in :class:`repro.errors.RetryExhaustedError`.

    ``sleep`` defaults to :func:`time.sleep` (inject a no-op for
    deterministic in-process retries), ``rng`` seeds the jitter stream
    (``policy.seed`` is used when neither is given), and ``on_retry`` is
    called as ``on_retry(attempt, error, delay_s)`` before each pause —
    the hook services use to count retries in their stats.
    """
    policy = policy or RetryPolicy()
    do_sleep = time.sleep if sleep is None else sleep
    jitter = rng if rng is not None else random.Random(policy.seed)
    state = _Attempts()
    previous_delay = 0.0
    last_error: BaseException | None = None
    for attempt in range(1, policy.max_attempts + 1):
        state.count = attempt
        try:
            return fn()
        except BaseException as error:
            if not policy.is_retryable(error):
                raise
            last_error = error
            if attempt == policy.max_attempts:
                break
            delay = compute_backoff(
                attempt, previous_delay,
                base_delay_s=policy.base_delay_s,
                max_delay_s=policy.max_delay_s, rng=jitter)
            previous_delay = delay
            state.delays.append(delay)
            if on_retry is not None:
                on_retry(attempt, error, delay)
            if delay > 0:
                do_sleep(delay)
    raise RetryExhaustedError(
        f"{label} failed after {state.count} attempts: {last_error}",
        attempts=state.count, last_error=last_error) from last_error
