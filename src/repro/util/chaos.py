"""Deterministic chaos injection for the compile-and-serve runtime.

Robustness claims need *reproducible* failure traffic, not flaky sleeps:
this module drives worker crashes, artifact-cache corruption, injected
write-failure bursts, and wear acceleration from a seeded, fully explicit
schedule, so a chaos acceptance test (or the ``run_all.sh`` chaos gate)
replays the exact same disaster every run.

The unit of chaos time is the **hook ordinal**: the service invokes its
chaos hook once per pipeline stage per attempt (``"compile"`` before the
artifact lookup, ``"execute"`` before the machine run), and the
:class:`ChaosInjector` counts those invocations per stage.  A
:class:`ChaosEvent` fires when its stage's counter reaches ``at`` —
deterministic under ``workers=1`` regardless of wall-clock timing, and a
retried attempt consumes its own ordinals (so a worker kill at ordinal
*n* makes the retry run at ordinal *n + 1*).

Event kinds:

``worker-kill``
    Raise :class:`~repro.errors.WorkerCrashError` from the hook — the
    canonical retryable failure the service's retry policy absorbs.
``cache-corrupt``
    Truncate one published artifact entry in place; the next lookup must
    quarantine it and transparently recompile.
``fault-burst``
    Install stuck-at faults on ``cells`` of the ground-truth fault map of
    fleet member ``array_id`` (mutated *in place*, so machines built from
    it start failing verify-after-write immediately).  With ``duration``
    set, the burst is transient: the injector heals the same cells
    ``duration`` ordinals later via :meth:`repro.devices.FaultMap.clear`.
``wear``
    A permanent ``fault-burst`` (no heal): accelerated wear-out.
``latent-fault``
    A permanent burst aimed at cells live traffic cannot observe failing:
    input preloads bounce off faulty cells *silently* (no verify-after-
    write read-back), so a stuck-at planted on an operand cell corrupts
    results without generating any failure traffic.  Only the patrol
    scrubber (:mod:`repro.serve.scrub`) can find it before a user does —
    which is exactly what the scrub acceptance gate proves.  Use
    :func:`latent_victims` to pick cells whose corruption is observable
    in outputs yet invisible to the write-verify ladder.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field

from repro.devices.faultmap import CellFault
from repro.errors import ServeError, WorkerCrashError

__all__ = ["ChaosEvent", "ChaosInjector", "ChaosSchedule", "latent_victims",
           "write_victims"]

VALID_KINDS = ("worker-kill", "cache-corrupt", "fault-burst", "wear",
               "latent-fault")
VALID_STAGES = ("compile", "execute")


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled failure; fires when its stage counter reaches ``at``."""

    #: hook ordinal (per stage) at which the event fires
    at: int
    #: one of VALID_KINDS
    kind: str
    #: pipeline stage whose ordinal clock this event runs on
    stage: str = "execute"
    #: fleet member whose ground-truth fault map a burst mutates
    array_id: int = 0
    #: (sub_array, row, col) cells a fault-burst / wear event hits
    cells: tuple = ()
    #: stuck-at kind the burst installs ("stuck0", "stuck1", or "dead")
    fault: str = "stuck0"
    #: ordinals after which a fault-burst heals (None / wear = permanent)
    duration: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in VALID_KINDS:
            raise ServeError(f"unknown chaos kind {self.kind!r}; "
                             f"choose from {VALID_KINDS}")
        if self.stage not in VALID_STAGES:
            raise ServeError(f"unknown chaos stage {self.stage!r}; "
                             f"choose from {VALID_STAGES}")
        if self.at < 0:
            raise ServeError(f"at must be >= 0, got {self.at}")
        if self.duration is not None and self.duration < 1:
            raise ServeError(f"duration must be >= 1, got {self.duration}")
        CellFault(self.fault)  # validates the fault kind
        object.__setattr__(self, "cells",
                           tuple(tuple(cell) for cell in self.cells))


@dataclass(frozen=True)
class ChaosSchedule:
    """An ordered, immutable set of chaos events."""

    events: tuple = ()

    def __post_init__(self) -> None:
        events = tuple(self.events)
        for event in events:
            if not isinstance(event, ChaosEvent):
                raise ServeError(f"not a ChaosEvent: {event!r}")
        object.__setattr__(
            self, "events",
            tuple(sorted(events, key=lambda e: (e.stage, e.at, e.kind))))

    @classmethod
    def generate(cls, seed: int, *, horizon: int = 16, kills: int = 2,
                 corruptions: int = 1) -> "ChaosSchedule":
        """A reproducible kill/corruption schedule within ``horizon``.

        Same seed, same schedule — the CI chaos gate's entry point.
        Fault bursts need layout-specific victim cells (see
        :func:`write_victims`), so they are composed explicitly by the
        caller rather than generated here.
        """
        if horizon < 1:
            raise ServeError(f"horizon must be >= 1, got {horizon}")
        if kills < 0 or corruptions < 0:
            raise ServeError("kills and corruptions must be >= 0")
        rng = random.Random(seed)
        events = [ChaosEvent(at=rng.randrange(horizon), kind="worker-kill",
                             stage="execute") for _ in range(kills)]
        events += [ChaosEvent(at=rng.randrange(horizon),
                              kind="cache-corrupt", stage="compile")
                   for _ in range(corruptions)]
        return cls(tuple(events))


@dataclass
class _Pending:
    """Events not yet fired, plus scheduled heals, on one stage clock."""

    events: list = field(default_factory=list)
    #: ordinal -> list of (array_id, cells) to heal at that ordinal
    heals: dict = field(default_factory=dict)
    ordinal: int = 0


class ChaosInjector:
    """The service-side chaos hook driving a :class:`ChaosSchedule`.

    Instances are callables matching the service's ``chaos`` parameter:
    ``injector(stage, request)``.  Each call advances the stage's ordinal
    clock, applies every event scheduled at that ordinal exactly once
    (mutating ``cache`` / ``machine_faults`` as the event demands), then
    raises :class:`WorkerCrashError` if one of them was a worker kill.
    ``fired`` records ``(stage, ordinal, kind)`` tuples for assertions.
    """

    def __init__(self, schedule: ChaosSchedule, *, cache=None,
                 machine_faults=None) -> None:
        self.schedule = schedule
        self.cache = cache
        self.machine_faults = machine_faults or {}
        self.fired: list[tuple[str, int, str]] = []
        self._lock = threading.Lock()
        self._stages = {stage: _Pending() for stage in VALID_STAGES}
        for event in schedule.events:
            self._stages[event.stage].events.append(event)

    def __call__(self, stage: str, request) -> None:
        """Advance ``stage``'s clock by one hook invocation."""
        if stage not in self._stages:
            raise ServeError(f"unknown chaos stage {stage!r}")
        with self._lock:
            pending = self._stages[stage]
            ordinal = pending.ordinal
            pending.ordinal += 1
            for array_id, cells in pending.heals.pop(ordinal, ()):
                self._heal(array_id, cells)
            due = [e for e in pending.events if e.at == ordinal]
            pending.events = [e for e in pending.events if e.at != ordinal]
            kill = False
            for event in due:
                self.fired.append((stage, ordinal, event.kind))
                if event.kind == "worker-kill":
                    kill = True
                elif event.kind == "cache-corrupt":
                    self._corrupt_cache()
                else:  # fault-burst / wear
                    self._burst(event)
                    if event.kind == "fault-burst" and event.duration:
                        pending.heals.setdefault(
                            ordinal + event.duration, []).append(
                                (event.array_id, event.cells))
        if kill:
            raise WorkerCrashError(
                f"chaos: worker killed at {stage} ordinal {ordinal}")

    # ------------------------------------------------------------------
    # effects
    # ------------------------------------------------------------------
    def _corrupt_cache(self) -> None:
        """Truncate the first published artifact entry (sorted = stable)."""
        if self.cache is None:
            return
        entries = sorted(self.cache.root.glob("*.json"))
        if not entries:
            return
        victim = entries[0]
        try:
            victim.write_text(victim.read_text()[:25])
        except OSError:
            pass  # a concurrent eviction removed it; nothing to corrupt

    def _burst(self, event: ChaosEvent) -> None:
        """Install the burst's stuck-at faults on the ground-truth map."""
        ground = self.machine_faults.get(event.array_id)
        if ground is None:
            return
        fault = CellFault(event.fault)
        for cell in event.cells:
            ground.set_fault(*cell, fault)

    def _heal(self, array_id: int, cells: tuple) -> None:
        ground = self.machine_faults.get(array_id)
        if ground is None:
            return
        for cell in cells:
            ground.clear(*cell)


def write_victims(program, dag, inputs, lanes: int, count: int = 1,
                  exclude_values: tuple[int, ...] = (0,)) -> tuple:
    """Output cells whose written value a STUCK0 fault visibly corrupts.

    Chooses up to ``count`` outputs of ``dag`` whose reference value
    (under ``inputs``/``lanes``) is nonzero — a STUCK0 cell under such a
    write fails verify-after-write read-back deterministically, which is
    what a fault burst needs to generate observable failure traffic
    (input preloads bounce off faulty cells silently by design).  Returns
    ``((array, row, col), ...)`` of the outputs' first placements in the
    program's layout, for a :class:`ChaosEvent` ``cells`` field.
    """
    from repro.dfg.evaluate import evaluate

    if count < 1:
        raise ServeError(f"count must be >= 1, got {count}")
    expected = evaluate(dag, inputs, lanes)
    placements = program.layout.placements()
    victims = []
    for name in sorted(expected):
        if expected[name] in exclude_values:
            continue
        copies = placements.get(dag.outputs[name])
        if not copies:
            continue
        addr = copies[0]
        victims.append((addr.array, addr.row, addr.col))
        if len(victims) >= count:
            break
    if not victims:
        raise ServeError(
            "no output writes a non-excluded value under these inputs; "
            "pick different inputs for the fault burst")
    return tuple(victims)


def latent_victims(program, dag, inputs, lanes: int,
                   count: int = 1) -> tuple:
    """Input cells a STUCK0 fault corrupts *silently* — latent faults.

    The write-verify ladder only guards committed CIM results: input
    preloads poke cells and bounce off faulty ones without any read-back,
    so a STUCK0 on an input cell holding a nonzero lane mask flips result
    bits while the service sees zero failure traffic.  Returns up to
    ``count`` such ``((array, row, col), ...)`` placements (first copy of
    each nonzero input), for a ``latent-fault`` :class:`ChaosEvent` —
    the planted fault only a patrol scrub can discover before a user does.
    """
    if count < 1:
        raise ServeError(f"count must be >= 1, got {count}")
    placements = program.layout.placements()
    victims = []
    for operand in sorted(dag.inputs(), key=lambda o: o.node_id):
        if not inputs.get(operand.name):
            continue  # an all-zero input is invisible to STUCK0
        copies = placements.get(operand.node_id)
        if not copies:
            continue
        addr = copies[0]
        victims.append((addr.array, addr.row, addr.col))
        if len(victims) >= count:
            break
    if not victims:
        raise ServeError(
            "no placed input carries a nonzero lane mask under these "
            "inputs; pick different inputs for the latent fault")
    return tuple(victims)
