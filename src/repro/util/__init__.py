"""Cross-cutting utilities shared by the runtime subsystems.

:mod:`repro.util.retry` is the bounded-retry / exponential-backoff helper
used by the serve worker pool (:mod:`repro.serve.service`) and the
parallel campaign shard recovery (:mod:`repro.reliability.campaign`);
:mod:`repro.util.chaos` is the deterministic chaos-injection harness the
robustness acceptance tests and the ``run_all.sh`` chaos gate drive the
service with.
"""

from repro.util.chaos import (
    ChaosEvent,
    ChaosInjector,
    ChaosSchedule,
    latent_victims,
    write_victims,
)
from repro.util.retry import RetryPolicy, compute_backoff, retry_call

__all__ = [
    "ChaosEvent",
    "ChaosInjector",
    "ChaosSchedule",
    "RetryPolicy",
    "compute_backoff",
    "latent_victims",
    "retry_call",
    "write_victims",
]
