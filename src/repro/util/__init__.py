"""Cross-cutting utilities shared by the runtime subsystems.

Currently one module: :mod:`repro.util.retry`, the bounded-retry /
exponential-backoff helper used by the serve worker pool
(:mod:`repro.serve.service`) and the parallel campaign shard recovery
(:mod:`repro.reliability.campaign`).
"""

from repro.util.retry import RetryPolicy, compute_backoff, retry_call

__all__ = [
    "RetryPolicy",
    "compute_backoff",
    "retry_call",
]
