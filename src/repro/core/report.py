"""Reporting helpers: experiment tables in the style of the paper."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.compiler import CompiledProgram, LadderAttempt
from repro.core.passes import PassEvent
from repro.reliability.campaign import CampaignResult
from repro.sim.metrics import MultiArrayMetrics


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Monospace table with right-aligned numeric columns."""
    def fmt(value: object) -> str:
        if isinstance(value, float):
            if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e6):
                return f"{value:.2e}"
            return f"{value:,.3f}"
        return str(value)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
              for i, h in enumerate(headers)]
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass(frozen=True)
class ProgramReport:
    """Flat summary of one compiled program (one Table 2 cell group)."""

    workload: str
    technology: str
    array_size: int
    mapper: str
    mra: int
    latency_us: float
    energy_uj: float
    p_app: float
    instructions: int
    cim_reads: int
    writes: int
    gather_moves: int
    clusters: int | None
    edp: float

    @classmethod
    def from_program(cls, program: CompiledProgram,
                     workload: str = "") -> "ProgramReport":
        """Summarize a compiled program (metrics + mapping stats)."""
        metrics = program.metrics
        stats = program.mapping.stats
        return cls(
            workload=workload or program.source_dag.name,
            technology=program.target.technology.name,
            array_size=program.target.rows,
            mapper=program.config.mapper,
            mra=program.config.mra,
            latency_us=metrics.latency_us,
            energy_uj=metrics.energy_uj,
            p_app=metrics.p_app,
            instructions=metrics.instruction_count,
            cim_reads=metrics.cim_reads,
            writes=metrics.writes,
            gather_moves=stats.gather_moves,
            clusters=stats.clusters,
            edp=metrics.edp,
        )

    def row(self) -> list[object]:
        """The report as a table row (see PROGRAM_REPORT_HEADERS)."""
        return [self.workload, self.technology, self.array_size, self.mapper,
                self.mra, self.latency_us, self.energy_uj, self.p_app,
                self.instructions]


PROGRAM_REPORT_HEADERS = [
    "workload", "tech", "N", "mapper", "MRA", "latency_us", "energy_uJ",
    "P_app", "instructions",
]


def render_reports(reports: Sequence[ProgramReport]) -> str:
    """Render program reports as one monospace table."""
    return format_table(PROGRAM_REPORT_HEADERS, [r.row() for r in reports])


PASS_REPORT_HEADERS = ["pass", "ms", "ops", "d_ops", "d_nodes", "notes"]


@dataclass(frozen=True)
class PassReport:
    """Per-pass pipeline instrumentation of one compilation (``--timings``)."""

    events: tuple[PassEvent, ...]

    @classmethod
    def from_program(cls, program: CompiledProgram) -> "PassReport":
        """Wrap the pass events the pipeline recorded on a program."""
        return cls(events=tuple(program.pass_events))

    @property
    def total_ms(self) -> float:
        """Wall time of the whole pipeline in milliseconds."""
        return sum(e.wall_s for e in self.events) * 1e3

    @staticmethod
    def _format_notes(event: PassEvent) -> str:
        """One compact cell summarizing the pass's own notes."""
        if event.skipped:
            return f"skipped ({event.notes['skipped']})"
        return " ".join(f"{k}={v}" for k, v in event.notes.items())

    def rows(self) -> list[list[object]]:
        """Table rows matching :data:`PASS_REPORT_HEADERS`."""
        out: list[list[object]] = []
        for event in self.events:
            out.append([
                event.name,
                event.wall_s * 1e3,
                f"{event.before.ops}->{event.after.ops}",
                event.op_delta,
                event.node_delta,
                self._format_notes(event),
            ])
        return out

    def render(self) -> str:
        """The per-pass table plus a total-time footer line."""
        table = format_table(PASS_REPORT_HEADERS, self.rows())
        return f"{table}\ntotal {self.total_ms:,.3f} ms over " \
               f"{len(self.events)} passes"


COMPILE_REPORT_HEADERS = ["rung", "outcome", "stages", "detail"]


@dataclass(frozen=True)
class CompileReport:
    """The graceful-degradation ladder walked by one compilation.

    One row per rung attempted (the base mapper first), with the failure
    reason for rungs that ran out of capacity and the stage count for the
    rung that finally fit.  Empty when the base mapper succeeded outright.
    """

    degradation: str
    attempts: tuple[LadderAttempt, ...]

    @classmethod
    def from_program(cls, program: CompiledProgram) -> "CompileReport":
        """Wrap the ladder attempts recorded on a compiled program."""
        return cls(degradation=program.degradation,
                   attempts=tuple(program.ladder))

    def rows(self) -> list[list[object]]:
        """Table rows matching :data:`COMPILE_REPORT_HEADERS`."""
        out: list[list[object]] = []
        for attempt in self.attempts:
            detail = "" if attempt.succeeded else str(attempt.error or "")
            if len(detail) > 60:
                detail = detail[:57] + "..."
            out.append([attempt.rung,
                        "ok" if attempt.succeeded else "failed",
                        attempt.stages if attempt.succeeded else "-",
                        detail or "-"])
        return out

    def render(self) -> str:
        """The ladder table plus the resulting degradation level."""
        table = format_table(COMPILE_REPORT_HEADERS, self.rows())
        return f"{table}\ndegradation level: {self.degradation}"


MULTIARRAY_REPORT_HEADERS = [
    "array", "busy_cycles", "util_%", "cells", "cols",
]


@dataclass(frozen=True)
class MultiArrayReport:
    """Per-array occupancy of one program under the overlap model.

    One row per array the program touches: modeled busy cycles, the
    utilization of that array against the critical-path makespan, and the
    cells/columns the layout occupies there.  The footer carries the
    schedule-level numbers — makespan vs the serial instruction chain,
    global-bus occupancy, cross-array transfer and recompute counts
    (``sherlock compile --report``).
    """

    schedule: str
    overlap: MultiArrayMetrics
    cells_by_array: dict[int, int]
    cols_by_array: dict[int, int]
    transfers: int
    recomputed_ops: int

    @classmethod
    def from_program(cls, program: CompiledProgram) -> "MultiArrayReport":
        """Summarize a program's per-array occupancy and transfers."""
        stats = program.mapping.stats
        return cls(
            schedule=program.config.schedule,
            overlap=program.overlap,
            cells_by_array=program.layout.cells_used_by_array(),
            cols_by_array=program.layout.columns_used_by_array(),
            transfers=stats.cross_array_transfers,
            recomputed_ops=stats.recomputed_ops)

    def rows(self) -> list[list[object]]:
        """Table rows matching :data:`MULTIARRAY_REPORT_HEADERS`."""
        arrays = sorted(set(self.overlap.busy_cycles)
                        | set(self.cells_by_array))
        out: list[list[object]] = []
        for array in arrays:
            out.append([
                array,
                self.overlap.busy_cycles.get(array, 0),
                f"{self.overlap.utilization(array):.1%}",
                self.cells_by_array.get(array, 0),
                self.cols_by_array.get(array, 0),
            ])
        return out

    def render(self) -> str:
        """The per-array table plus schedule-level footer lines."""
        table = format_table(MULTIARRAY_REPORT_HEADERS, self.rows())
        overlap = self.overlap
        return (f"{table}\n"
                f"schedule {self.schedule}: makespan "
                f"{overlap.makespan_cycles} cycles, serial chain "
                f"{overlap.serial_cycles} cycles, speedup "
                f"{overlap.speedup:.2f}x\n"
                f"bus: {overlap.bus_busy_cycles} busy cycles "
                f"({overlap.bus_occupancy:.1%} occupancy), "
                f"{self.transfers} cross-array transfer(s), "
                f"{self.recomputed_ops} recomputed op(s)")


RECOVERY_REPORT_HEADERS = [
    "policy", "trials", "decision_rate", "output_rate", "ci95_lo", "ci95_hi",
    "analytic_P_app", "lat_ovh_%", "en_ovh_%", "actions",
]


@dataclass(frozen=True)
class RecoveryReport:
    """Campaign outcomes across recovery policies (the detect→recover table).

    One row per campaign: empirical decision- and output-failure rates with
    the Wilson 95% interval on the output rate, the analytic prediction,
    the priced recovery overhead relative to the base schedule, and a
    compact summary of the recovery actions the policy actually took.
    """

    results: tuple[CampaignResult, ...]

    @classmethod
    def from_results(cls, results: Sequence[CampaignResult]) -> "RecoveryReport":
        """Wrap campaign results (typically one per policy, same seeds)."""
        return cls(results=tuple(results))

    @staticmethod
    def _actions(result: CampaignResult) -> str:
        """One compact cell summarizing what the policy did."""
        stats = result.stats
        parts = []
        if stats.votes:
            parts.append(f"votes={stats.votes}")
        if stats.disagreements:
            parts.append(f"disagree={stats.disagreements}")
        if stats.degraded_ops:
            parts.append(f"degraded={stats.degraded_ops}")
        if stats.rollbacks:
            parts.append(f"rollbacks={stats.rollbacks}")
        if stats.retries_exhausted:
            parts.append(f"exhausted={stats.retries_exhausted}")
        return " ".join(parts) or "-"

    def rows(self) -> list[list[object]]:
        """Table rows matching :data:`RECOVERY_REPORT_HEADERS`."""
        out: list[list[object]] = []
        for result in self.results:
            lo, hi = result.output_wilson
            out.append([
                result.policy,
                result.trials,
                result.decision_failure_rate,
                result.output_failure_rate,
                lo,
                hi,
                result.analytic_p_app,
                result.latency_overhead_frac * 100.0,
                result.energy_overhead_frac * 100.0,
                self._actions(result),
            ])
        return out

    def render(self) -> str:
        """The campaign table plus a program/seed identification footer."""
        table = format_table(RECOVERY_REPORT_HEADERS, self.rows())
        if not self.results:
            return table
        first = self.results[0]
        return (f"{table}\nprogram {first.program_name}: "
                f"{first.trials} trials x {first.lanes} lanes, "
                f"seed {first.seed}")
