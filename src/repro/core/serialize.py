"""Saving and loading compiled programs as JSON artifacts.

A :class:`repro.core.compiler.CompiledProgram` is fully determined by its
DAGs, target, configuration, layout and instruction stream; this module
round-trips all of it through a single JSON document so compiled kernels can
be archived, diffed, shipped to a device controller, and re-executed without
recompiling.  Instructions serialize in the Fig. 4 text format.

Format version 2 extends the single-layout version 1 document with the
degraded-compile state a resilient artifact cache must hold: staged
(spill-and-partition) programs serialize one sub-document per stage (its
sub-DAG, per-stage layout, instruction body, bridge copies, and boundary
import/export tables), and the degradation ``ladder``, ``degradation``
rung name, and hard-fault map travel along.  Version 1 documents still
load (they simply carry none of that state).

The dict-level entry points (:func:`program_to_dict` /
:func:`program_from_dict`) exist so the persistent artifact cache
(:mod:`repro.serve.cache`) and the file round-trip share one codec.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

from repro.arch.layout import CellAddr, Layout
from repro.arch.parse import parse_program
from repro.arch.target import TargetSpec
from repro.core.compiler import CompiledProgram, LadderAttempt
from repro.core.config import CompilerConfig
from repro.arch.isa import program_text
from repro.devices.faultmap import FaultMap
from repro.devices.technology import TECHNOLOGIES, Technology
from repro.dfg.graph import DataFlowGraph, OperandKind
from repro.errors import SherlockError
from repro.mapping.base import MappingResult, MappingStats
from repro.mapping.partition import Stage, combined_mapping

FORMAT_VERSION = 2
#: document versions :func:`program_from_dict` accepts
SUPPORTED_VERSIONS = (1, 2)


# ----------------------------------------------------------------------
# DAG <-> dict
# ----------------------------------------------------------------------
def dag_to_dict(dag: DataFlowGraph) -> dict:
    """Serialize a DAG to plain JSON-compatible dictionaries."""
    operands = []
    for operand in sorted(dag.operand_nodes(), key=lambda o: o.node_id):
        operands.append({
            "id": operand.node_id,
            "kind": operand.kind.value,
            "name": operand.name,
            "const": operand.const_value,
        })
    ops = []
    for node in sorted(dag.op_nodes(), key=lambda n: n.node_id):
        ops.append({
            "id": node.node_id,
            "op": node.op.value,
            "operands": list(node.operands),
            "result": node.result,
        })
    return {"name": dag.name, "operands": operands, "ops": ops,
            "outputs": dag.outputs}


def dag_from_dict(data: dict) -> tuple[DataFlowGraph, dict[int, int]]:
    """Rebuild a DAG; also return old-id -> new-id for operand nodes."""
    from repro.dfg.ops import OpType

    dag = DataFlowGraph(data["name"])
    id_map: dict[int, int] = {}
    produced = {op["result"]: op for op in data["ops"]}
    for operand in data["operands"]:
        if operand["id"] in produced:
            continue  # results are recreated by add_op
        kind = OperandKind(operand["kind"])
        if kind is OperandKind.INPUT:
            id_map[operand["id"]] = dag.add_input(operand["name"])
        elif kind is OperandKind.CONST:
            id_map[operand["id"]] = dag.add_const(operand["const"],
                                                  operand["name"])
        else:
            raise SherlockError(
                f"intermediate operand {operand['id']} has no producing op")
    # ops serialized in creation (id) order are already topological for
    # graphs built through the public API; fall back to a worklist otherwise
    pending = list(data["ops"])
    progress = True
    while pending and progress:
        progress = False
        remaining = []
        for op in pending:
            if all(oid in id_map for oid in op["operands"]):
                result = dag.add_op(OpType(op["op"]),
                                    [id_map[oid] for oid in op["operands"]])
                id_map[op["result"]] = result
                progress = True
            else:
                remaining.append(op)
        pending = remaining
    if pending:
        raise SherlockError("serialized DAG has unresolvable dependencies")
    for name, oid in data["outputs"].items():
        dag.mark_output(id_map[oid], name)
    dag.validate()
    return dag, id_map


# ----------------------------------------------------------------------
# target / config
# ----------------------------------------------------------------------
def target_to_dict(target: TargetSpec) -> dict:
    """Serialize a target spec, keeping full technology parameters."""
    data = dataclasses.asdict(target)
    tech = data.pop("technology")
    data["technology"] = tech  # keep full parameters for custom technologies
    data["technology_name"] = target.technology.name
    return data


def target_from_dict(data: dict) -> TargetSpec:
    """Rebuild a target spec, reusing built-in technologies when equal."""
    data = dict(data)
    name = data.pop("technology_name")
    tech_params = data.pop("technology")
    builtin = TECHNOLOGIES.get(name)
    technology = (builtin if builtin is not None
                  and dataclasses.asdict(builtin) == tech_params
                  else Technology(**tech_params))
    return TargetSpec(technology=technology, **data)


# ----------------------------------------------------------------------
# layout / stage <-> dict
# ----------------------------------------------------------------------
def _placements_to_dict(layout: Layout) -> dict:
    """A layout's operand placements as JSON-compatible address lists."""
    return {str(oid): [[a.array, a.row, a.col] for a in addrs]
            for oid, addrs in layout.placements().items()}


def _placements_from_dict(target: TargetSpec, data: dict,
                          id_map: dict[int, int]) -> Layout:
    """Rebuild a layout from serialized placements via the DAG id map."""
    layout = Layout(target)
    # placements refer to the serialized ids; translate through id_map and
    # restore the addresses verbatim (fill lines follow from the maxima)
    restored: dict[int, list[CellAddr]] = {}
    for old_id, addrs in data.items():
        new_id = id_map.get(int(old_id))
        if new_id is None:
            raise SherlockError(f"placement for unknown operand {old_id}")
        restored[new_id] = [CellAddr(a, r, c) for a, r, c in addrs]
    _restore_layout(layout, restored)
    return layout


def _stage_to_dict(stage: Stage) -> dict:
    """Serialize one spill-and-partition stage with all its glue."""
    return {
        "dag": dag_to_dict(stage.dag),
        "placements": _placements_to_dict(stage.mapping.layout),
        "instructions": program_text(stage.mapping.instructions),
        "stats": stage.mapping.stats.as_dict(),
        "imports": dict(stage.imports),
        "exports": dict(stage.exports),
        "bridge": program_text(stage.bridge),
        "bridged": sorted(stage.bridged),
    }


def _stage_from_dict(data: dict, target: TargetSpec,
                     full_id_map: dict[int, int]) -> Stage:
    """Rebuild one stage; boundary ids translate via the full DAG's map."""
    stage_dag, stage_ids = dag_from_dict(data["dag"])
    layout = _placements_from_dict(target, data["placements"], stage_ids)
    mapping = MappingResult(
        dag=stage_dag, target=target, layout=layout,
        instructions=parse_program(data["instructions"]),
        stats=MappingStats(**data["stats"]))

    def full_id(old: object) -> int:
        new = full_id_map.get(int(old))  # type: ignore[arg-type]
        if new is None:
            raise SherlockError(
                f"stage boundary refers to unknown operand {old}")
        return new

    return Stage(
        dag=stage_dag, mapping=mapping,
        imports={name: full_id(oid)
                 for name, oid in data["imports"].items()},
        exports={name: full_id(oid)
                 for name, oid in data["exports"].items()},
        bridge=parse_program(data["bridge"]),
        bridged=set(data["bridged"]))


# ----------------------------------------------------------------------
# program <-> dict
# ----------------------------------------------------------------------
def program_to_dict(program: CompiledProgram) -> dict:
    """Serialize a compiled program — staged or not — to one JSON document.

    Single-layout programs keep the version 1 shape (placements +
    instruction text); staged programs store one sub-document per stage
    instead, because no single layout describes a staged run.  The
    degradation ladder and any hard-fault map the program was placed
    around travel along, so a persistent artifact cache reproduces the
    *degraded* compile exactly.
    """
    document = {
        "format_version": FORMAT_VERSION,
        "source_dag": dag_to_dict(program.source_dag),
        "dag": dag_to_dict(program.dag),
        "target": target_to_dict(program.target),
        "config": dataclasses.asdict(program.config),
        "stats": program.mapping.stats.as_dict(),
        "ladder": [dataclasses.asdict(attempt)
                   for attempt in program.ladder],
        "degradation": program.degradation,
        "fault_map": (program.fault_map.to_dict()
                      if program.fault_map is not None else None),
    }
    if program.stages is None:
        document["instructions"] = program_text(program.instructions)
        document["placements"] = _placements_to_dict(program.layout)
    else:
        document["stages"] = [_stage_to_dict(stage)
                              for stage in program.stages]
    return document


def program_from_dict(document: dict) -> CompiledProgram:
    """Rebuild a program from :func:`program_to_dict`'s document.

    Accepts every version in :data:`SUPPORTED_VERSIONS`; raises
    :class:`~repro.errors.SherlockError` on anything else (including
    documents that are not dictionaries at all — the artifact cache
    feeds this arbitrary on-disk bytes).
    """
    if not isinstance(document, dict):
        raise SherlockError("program document must be a JSON object")
    if document.get("format_version") not in SUPPORTED_VERSIONS:
        raise SherlockError(
            f"unsupported program format {document.get('format_version')!r}")
    try:
        source_dag, _ = dag_from_dict(document["source_dag"])
        dag, id_map = dag_from_dict(document["dag"])
        target = target_from_dict(document["target"])
        config = CompilerConfig(**document["config"])
        stats = MappingStats(**document["stats"])
    except (KeyError, TypeError, ValueError) as error:
        raise SherlockError(
            f"malformed program document: {error!r}") from error
    fault_doc = document.get("fault_map")
    fault_map = FaultMap.from_dict(fault_doc) if fault_doc else None
    ladder = [LadderAttempt(**attempt)
              for attempt in document.get("ladder", [])]
    degradation = document.get("degradation", "none")
    stage_docs = document.get("stages")
    if stage_docs is None:
        try:
            layout = _placements_from_dict(target, document["placements"],
                                           id_map)
            instructions = parse_program(document["instructions"])
        except (KeyError, TypeError, ValueError) as error:
            raise SherlockError(
                f"malformed program document: {error!r}") from error
        mapping = MappingResult(dag=dag, target=target, layout=layout,
                                instructions=instructions, stats=stats)
        stages = None
    else:
        stages = [_stage_from_dict(stage_doc, target, id_map)
                  for stage_doc in stage_docs]
        if not stages:
            raise SherlockError("staged program document has no stages")
        mapping = combined_mapping(dag, target, stages, stats.mapper)
        mapping.stats = stats  # keep the exact as-compiled statistics
    return CompiledProgram(source_dag=source_dag, dag=dag, target=target,
                           config=config, mapping=mapping, stages=stages,
                           ladder=ladder, degradation=degradation,
                           fault_map=fault_map)


# ----------------------------------------------------------------------
# program <-> file
# ----------------------------------------------------------------------
def save_program(program: CompiledProgram, path: str | pathlib.Path) -> None:
    """Write a compiled program to ``path`` as JSON.

    Staged (spill-and-partition) and multi-array programs round-trip too
    (format version 2); see :func:`program_to_dict`.
    """
    pathlib.Path(path).write_text(
        json.dumps(program_to_dict(program), indent=1))


def load_program(path: str | pathlib.Path) -> CompiledProgram:
    """Reload a program saved by :func:`save_program`."""
    try:
        document = json.loads(pathlib.Path(path).read_text())
    except json.JSONDecodeError as error:
        raise SherlockError(
            f"program file {path} is not valid JSON: {error}") from None
    return program_from_dict(document)


def _restore_layout(layout: Layout, placements: dict[int, list[CellAddr]]) -> None:
    """Rebuild the layout's internal maps from explicit addresses."""
    fill: dict[int, int] = {}
    for addrs in placements.values():
        for addr in addrs:
            gcol = layout.global_col(addr.array, addr.col)
            fill[gcol] = max(fill.get(gcol, 0), addr.row + 1)
    layout._fill = fill
    layout._copies = {oid: list(addrs) for oid, addrs in placements.items()}
    layout._duplicates = sum(len(a) - 1 for a in placements.values())
