"""Saving and loading compiled programs as JSON artifacts.

A :class:`repro.core.compiler.CompiledProgram` is fully determined by its
DAGs, target, configuration, layout and instruction stream; this module
round-trips all of it through a single JSON document so compiled kernels can
be archived, diffed, shipped to a device controller, and re-executed without
recompiling.  Instructions serialize in the Fig. 4 text format.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

from repro.arch.layout import CellAddr, Layout
from repro.arch.parse import parse_program
from repro.arch.target import TargetSpec
from repro.core.compiler import CompiledProgram
from repro.core.config import CompilerConfig
from repro.arch.isa import program_text
from repro.devices.technology import TECHNOLOGIES, Technology
from repro.dfg.graph import DataFlowGraph, OperandKind
from repro.errors import SherlockError
from repro.mapping.base import MappingResult, MappingStats

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# DAG <-> dict
# ----------------------------------------------------------------------
def dag_to_dict(dag: DataFlowGraph) -> dict:
    """Serialize a DAG to plain JSON-compatible dictionaries."""
    operands = []
    for operand in sorted(dag.operand_nodes(), key=lambda o: o.node_id):
        operands.append({
            "id": operand.node_id,
            "kind": operand.kind.value,
            "name": operand.name,
            "const": operand.const_value,
        })
    ops = []
    for node in sorted(dag.op_nodes(), key=lambda n: n.node_id):
        ops.append({
            "id": node.node_id,
            "op": node.op.value,
            "operands": list(node.operands),
            "result": node.result,
        })
    return {"name": dag.name, "operands": operands, "ops": ops,
            "outputs": dag.outputs}


def dag_from_dict(data: dict) -> tuple[DataFlowGraph, dict[int, int]]:
    """Rebuild a DAG; also return old-id -> new-id for operand nodes."""
    from repro.dfg.ops import OpType

    dag = DataFlowGraph(data["name"])
    id_map: dict[int, int] = {}
    produced = {op["result"]: op for op in data["ops"]}
    for operand in data["operands"]:
        if operand["id"] in produced:
            continue  # results are recreated by add_op
        kind = OperandKind(operand["kind"])
        if kind is OperandKind.INPUT:
            id_map[operand["id"]] = dag.add_input(operand["name"])
        elif kind is OperandKind.CONST:
            id_map[operand["id"]] = dag.add_const(operand["const"],
                                                  operand["name"])
        else:
            raise SherlockError(
                f"intermediate operand {operand['id']} has no producing op")
    # ops serialized in creation (id) order are already topological for
    # graphs built through the public API; fall back to a worklist otherwise
    pending = list(data["ops"])
    progress = True
    while pending and progress:
        progress = False
        remaining = []
        for op in pending:
            if all(oid in id_map for oid in op["operands"]):
                result = dag.add_op(OpType(op["op"]),
                                    [id_map[oid] for oid in op["operands"]])
                id_map[op["result"]] = result
                progress = True
            else:
                remaining.append(op)
        pending = remaining
    if pending:
        raise SherlockError("serialized DAG has unresolvable dependencies")
    for name, oid in data["outputs"].items():
        dag.mark_output(id_map[oid], name)
    dag.validate()
    return dag, id_map


# ----------------------------------------------------------------------
# target / config
# ----------------------------------------------------------------------
def target_to_dict(target: TargetSpec) -> dict:
    """Serialize a target spec, keeping full technology parameters."""
    data = dataclasses.asdict(target)
    tech = data.pop("technology")
    data["technology"] = tech  # keep full parameters for custom technologies
    data["technology_name"] = target.technology.name
    return data


def target_from_dict(data: dict) -> TargetSpec:
    """Rebuild a target spec, reusing built-in technologies when equal."""
    data = dict(data)
    name = data.pop("technology_name")
    tech_params = data.pop("technology")
    builtin = TECHNOLOGIES.get(name)
    technology = (builtin if builtin is not None
                  and dataclasses.asdict(builtin) == tech_params
                  else Technology(**tech_params))
    return TargetSpec(technology=technology, **data)


# ----------------------------------------------------------------------
# program <-> file
# ----------------------------------------------------------------------
def save_program(program: CompiledProgram, path: str | pathlib.Path) -> None:
    """Write a compiled program to ``path`` as JSON.

    Staged (spill-and-partition) programs are not serializable: their
    semantics live in per-stage layouts and host-staged boundary values,
    which this single-layout format cannot express.
    """
    if program.stages is not None:
        raise SherlockError(
            "cannot serialize a staged (spill-and-partition) program; "
            "recompile on a larger target (see program.ladder) to save it")
    placements = {
        str(oid): [[a.array, a.row, a.col] for a in addrs]
        for oid, addrs in program.layout.placements().items()
    }
    document = {
        "format_version": FORMAT_VERSION,
        "source_dag": dag_to_dict(program.source_dag),
        "dag": dag_to_dict(program.dag),
        "target": target_to_dict(program.target),
        "config": dataclasses.asdict(program.config),
        "instructions": program_text(program.instructions),
        "placements": placements,
        "stats": program.mapping.stats.as_dict(),
    }
    pathlib.Path(path).write_text(json.dumps(document, indent=1))


def load_program(path: str | pathlib.Path) -> CompiledProgram:
    """Reload a program saved by :func:`save_program`."""
    document = json.loads(pathlib.Path(path).read_text())
    if document.get("format_version") != FORMAT_VERSION:
        raise SherlockError(
            f"unsupported program format {document.get('format_version')!r}")
    source_dag, _ = dag_from_dict(document["source_dag"])
    dag, id_map = dag_from_dict(document["dag"])
    target = target_from_dict(document["target"])
    layout = Layout(target)
    # placements refer to the serialized ids; translate through id_map and
    # restore the addresses verbatim (fill lines follow from the maxima)
    restored: dict[int, list[CellAddr]] = {}
    for old_id, addrs in document["placements"].items():
        new_id = id_map.get(int(old_id))
        if new_id is None:
            raise SherlockError(f"placement for unknown operand {old_id}")
        restored[new_id] = [CellAddr(a, r, c) for a, r, c in addrs]
    _restore_layout(layout, restored)
    stats_data = document["stats"]
    stats = MappingStats(**stats_data)
    instructions = parse_program(document["instructions"])
    mapping = MappingResult(dag=dag, target=target, layout=layout,
                            instructions=instructions, stats=stats)
    config = CompilerConfig(**document["config"])
    return CompiledProgram(source_dag=source_dag, dag=dag, target=target,
                           config=config, mapping=mapping)


def _restore_layout(layout: Layout, placements: dict[int, list[CellAddr]]) -> None:
    """Rebuild the layout's internal maps from explicit addresses."""
    fill: dict[int, int] = {}
    for addrs in placements.values():
        for addr in addrs:
            gcol = layout.global_col(addr.array, addr.col)
            fill[gcol] = max(fill.get(gcol, 0), addr.row + 1)
    layout._fill = fill
    layout._copies = {oid: list(addrs) for oid, addrs in placements.items()}
    layout._duplicates = sum(len(a) - 1 for a in placements.values())
