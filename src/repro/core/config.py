"""Compiler configuration: every knob the paper's evaluation sweeps."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import SherlockError

VALID_MAPPERS = ("sherlock", "naive")
VALID_RECYCLE = ("auto", "always", "never")
VALID_FALLBACK = ("ladder", "strict")
VALID_SCHEDULES = ("single", "multi")


@dataclass(frozen=True)
class CompilerConfig:
    """End-to-end pipeline options.

    ``mra`` is the paper's "# rows in MRA" column: 2 keeps the original
    binary DAG, larger values apply the node-substitution transform of
    Sec. 3.3.3 up to that arity (clamped by the target's own limit).
    ``mra_fraction`` budgets the share of multi-operand ops — the x-axis of
    Fig. 6.  ``nand_lowering=None`` lets the compiler decide from the
    technology window (STT-MRAM's unreliable XOR/OR get lowered, Sec. 4.2).

    ``pipeline`` overrides the default pass list with a comma-separated
    spec such as ``"cse,mra-substitute,nand-lower,arity-clamp,validate,
    map-sherlock"`` (see :mod:`repro.core.passes`).  The spec must end in
    exactly one terminal mapping pass; when given, ``mapper`` is derived
    from that terminal pass so reports stay consistent.

    ``schedule`` selects the execution model the terminal mapping pass
    targets: ``"single"`` (the default) keeps the historical behavior —
    one logical array whose columns spill into further arrays for
    capacity only — and ``"multi"`` partitions the DAG across
    ``TargetSpec.num_arrays`` with the multi-array co-scheduler
    (:mod:`repro.mapping.multiarray`), so independent regions execute
    concurrently and ``--arrays`` changes schedules, not just capacity.

    ``recycle`` controls liveness-based cell recycling during code
    generation: ``"auto"`` keeps the first compile byte-identical to the
    non-recycling compiler and lets only the degradation ladder engage it,
    ``"always"`` recycles on every compile (may change codegen), and
    ``"never"`` forbids it even for the ladder.  ``fallback`` selects what
    happens when the mapper runs out of capacity: ``"ladder"`` walks the
    graceful-degradation rungs (recycle, then partitioning, then the
    naive mapper partitioned), ``"strict"`` preserves fail-fast behavior.
    """

    mapper: str = "sherlock"
    mra: int = 2
    mra_fraction: float = 1.0
    nand_lowering: bool | None = None
    cse: bool = False
    #: Eq. 1 clustering weights (sherlock mapper only)
    alpha: float = 1.0
    beta: float = 0.05
    #: merge compatible instructions across clusters (sherlock mapper only)
    merge_instructions: bool = True
    #: pass-list spec overriding the default pipeline (None = default)
    pipeline: str | None = None
    #: execution model: "single" (spill for capacity) or "multi"
    #: (co-schedule across arrays; see repro.mapping.multiarray)
    schedule: str = "single"
    #: liveness-based cell recycling: "auto", "always", or "never"
    recycle: str = "auto"
    #: capacity-failure handling: "ladder" (degrade) or "strict" (raise)
    fallback: str = "ladder"
    #: verify-after-write re-attempts before a cell is declared dead and
    #: remapped to a spare (runtime-only; never changes codegen)
    write_retries: int = 2
    #: sub-arrays the multi-array co-scheduler must not place onto —
    #: the health registry's quarantine decision expressed as a compile
    #: constraint (ignored by schedule="single", which spills in array
    #: order for capacity only)
    exclude_arrays: tuple[int, ...] = ()
    #: ``(array, cost)`` pairs the multi-array co-scheduler subtracts
    #: from a sub-array's assignment score — the health registry's
    #: DEGRADED verdict expressed as a soft compile preference (where
    #: ``exclude_arrays`` is the hard one)
    array_penalties: tuple[tuple[int, float], ...] = ()

    def __post_init__(self) -> None:
        # normalize so serialized configs (JSON lists) and unsorted
        # caller input hash/compare identically
        object.__setattr__(
            self, "exclude_arrays",
            tuple(sorted({int(a) for a in self.exclude_arrays})))
        if self.exclude_arrays and self.exclude_arrays[0] < 0:
            raise SherlockError(
                f"exclude_arrays must be non-negative array indices, "
                f"got {self.exclude_arrays}")
        penalties = {int(a): float(p) for a, p in self.array_penalties}
        object.__setattr__(
            self, "array_penalties", tuple(sorted(penalties.items())))
        for array, penalty in self.array_penalties:
            if array < 0 or penalty < 0.0:
                raise SherlockError(
                    f"array_penalties entries must pair a non-negative "
                    f"array index with a non-negative cost, "
                    f"got ({array}, {penalty})")
        if self.pipeline is not None:
            from repro.core.passes import get_pass, parse_pipeline

            names = parse_pipeline(self.pipeline)
            terminal = next(n for n in names if get_pass(n).terminal)
            # the terminal pass is authoritative for the mapper field
            derived = terminal.removeprefix("map-")
            if derived in VALID_MAPPERS:
                object.__setattr__(self, "mapper", derived)
            elif derived == "multiarray":
                object.__setattr__(self, "schedule", "multi")
        if self.schedule not in VALID_SCHEDULES:
            raise SherlockError(
                f"unknown schedule {self.schedule!r}; "
                f"choose from {VALID_SCHEDULES}")
        if self.mapper not in VALID_MAPPERS:
            raise SherlockError(
                f"unknown mapper {self.mapper!r}; choose from {VALID_MAPPERS}")
        if self.mra < 2:
            raise SherlockError(f"mra must be >= 2, got {self.mra}")
        if not 0.0 <= self.mra_fraction <= 1.0:
            raise SherlockError(
                f"mra_fraction must be in [0, 1], got {self.mra_fraction}")
        if self.recycle not in VALID_RECYCLE:
            raise SherlockError(
                f"unknown recycle mode {self.recycle!r}; "
                f"choose from {VALID_RECYCLE}")
        if self.fallback not in VALID_FALLBACK:
            raise SherlockError(
                f"unknown fallback mode {self.fallback!r}; "
                f"choose from {VALID_FALLBACK}")
        if self.write_retries < 0:
            raise SherlockError(
                f"write_retries must be non-negative, got {self.write_retries}")

    def effective_pipeline(self) -> tuple[str, ...]:
        """The resolved pass-name list this configuration compiles with."""
        from repro.core.passes import default_pipeline, parse_pipeline

        return parse_pipeline(self.pipeline
                              or default_pipeline(self.mapper, self.schedule))

    def with_(self, **kwargs) -> "CompilerConfig":
        """A modified copy (convenience for sweeps)."""
        return replace(self, **kwargs)


#: the four per-benchmark configurations of Table 2
TABLE2_CONFIGS: dict[str, CompilerConfig] = {
    "naive/mra2": CompilerConfig(mapper="naive", mra=2),
    "naive/mra>2": CompilerConfig(mapper="naive", mra=4),
    "opt/mra2": CompilerConfig(mapper="sherlock", mra=2),
    "opt/mra>2": CompilerConfig(mapper="sherlock", mra=4),
}
