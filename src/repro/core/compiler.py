"""The Sherlock compiler driver: DAG in, scheduled CIM program out (Fig. 1).

Pipeline (run by the :mod:`repro.core.passes` pass manager)::

    DAG -> fold-duplicates -> cse -> mra-substitute -> nand-lower
        -> arity-clamp -> validate -> map-(naive | sherlock)
        -> CompiledProgram (layout + instructions + metrics + execution)

The pass list is configurable (``CompilerConfig.pipeline``); every pass is
timed and its IR statistics recorded on the resulting program
(``CompiledProgram.pass_events``).  A process-level compile cache keyed by
(DAG structural hash, target, config) lets repeated sweeps skip redundant
recompiles.

A :class:`CompiledProgram` can be functionally executed against arbitrary
inputs (and verified against the source DAG), priced into the Table 2
latency/energy metrics, and inspected as Fig. 4-style text.
"""

from __future__ import annotations

import pathlib
import random
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from functools import cached_property

from repro.arch.isa import Instruction, program_text
from repro.arch.target import TargetSpec
from repro.core.config import CompilerConfig
from repro.core.passes import (
    NAND_LOWERING_WINDOW,
    CompilationContext,
    PassEvent,
    PassManager,
    get_pass,
    place_passthrough_outputs,
    wants_nand_lowering,
)
from repro.dfg.evaluate import evaluate
from repro.dfg.graph import DataFlowGraph
from repro.dfg.stats import graph_stats, structural_hash
from repro.errors import CapacityError, MappingError, SherlockError
from repro.mapping.base import MappingResult
from repro.mapping.partition import Stage, combined_mapping, execute_staged, map_partitioned
from repro.sim.executor import ArrayMachine, extract_outputs, preload_sources
from repro.sim.vectorized import resolve_engine
from repro.sim.metrics import (
    MultiArrayMetrics,
    OverlapTimeline,
    TraceMetrics,
    analyze_overlap,
    analyze_trace,
)

__all__ = [
    "NAND_LOWERING_WINDOW",
    "CompiledProgram",
    "LadderAttempt",
    "SherlockCompiler",
    "clear_compile_cache",
    "compile_cache_info",
    "compile_dag",
]


@dataclass(frozen=True)
class LadderAttempt:
    """One rung of the graceful-degradation ladder: tried, and how it went."""

    rung: str  # e.g. "sherlock", "sherlock+recycle", "naive+partitioned"
    succeeded: bool
    error: str | None = None
    #: number of partitions the rung compiled into (1 = unpartitioned)
    stages: int = 1


@dataclass
class CompiledProgram:
    """The compiler's output: a mapped, scheduled, executable CIM program."""

    source_dag: DataFlowGraph
    dag: DataFlowGraph
    target: TargetSpec
    config: CompilerConfig
    mapping: MappingResult
    #: structured per-pass log of the pipeline that produced this program
    pass_events: list[PassEvent] = field(default_factory=list)
    #: partitions of a spill-and-partition compile (None = single program)
    stages: list[Stage] | None = None
    #: every degradation rung the compiler tried, in order
    ladder: list[LadderAttempt] = field(default_factory=list)
    #: name of the rung that produced this program ("none" = no fallback)
    degradation: str = "none"
    #: the hard-fault map the program was placed around (None = fault-blind)
    fault_map: object | None = None

    @property
    def instructions(self) -> list[Instruction]:
        """The scheduled instruction trace (shared with the mapping)."""
        return self.mapping.instructions

    @property
    def layout(self):
        """The cell placement the mapper chose for every operand."""
        return self.mapping.layout

    @cached_property
    def metrics(self) -> TraceMetrics:
        """Latency/energy/P_app of one run of the program (Table 2 row)."""
        return analyze_trace(self.instructions, self.target)

    @cached_property
    def overlap(self) -> MultiArrayMetrics:
        """Overlap-model timing: per-array busy time, bus occupancy, makespan.

        Replays the trace through :class:`repro.sim.metrics.OverlapTimeline`,
        which lets independent arrays advance concurrently while ``xfer``
        bridge copies serialize on the shared global bus.  Staged
        (spill-and-partition) programs insert a host-synchronization
        barrier between stages — a stage cannot start before every array
        of the previous one drained.
        """
        if self.stages is None:
            return analyze_overlap(self.instructions, self.target)
        timeline = OverlapTimeline(self.target)
        for index, stage in enumerate(self.stages):
            if index:
                timeline.barrier()
                for inst in stage.bridge:
                    timeline.step(inst)
            for inst in stage.mapping.instructions:
                timeline.step(inst)
        return timeline.metrics

    def text(self) -> str:
        """The program in the Fig. 4 instruction format."""
        return program_text(self.instructions)

    def machine(self, lanes: int = 64,
                fault_rng: random.Random | int | None = None,
                observer=None, verify_writes: bool = False) -> ArrayMachine:
        """An :class:`ArrayMachine` configured for this program.

        The machine carries the program's fault map, and with
        ``verify_writes`` also verify-after-write (``config.write_retries``
        re-attempts) plus a spare-cell pool drawn from the layout's free
        rows for remap escalation.  Staged programs get no spare pool — a
        cell free in one stage may be occupied by the next, so their
        verify path escalates straight to :class:`HardFaultError` and the
        remap-recompile rung.
        """
        spare_pool = None
        if verify_writes and self.stages is None:
            spare_pool = self.layout.spare_cells()
        return ArrayMachine(
            self.target, lanes, fault_rng, strict_shift=True,
            observer=observer, fault_map=self.fault_map,
            verify_writes=verify_writes,
            write_retries=self.config.write_retries,
            spare_pool=spare_pool)

    def execute(self, inputs: dict[str, int], lanes: int = 64,
                fault_rng: random.Random | int | None = None,
                observer=None, verify_writes: bool = False,
                engine: str = "auto") -> dict[str, int]:
        """Functionally execute the program on lane-bitmask inputs.

        Compiled programs run with ``strict_shift`` on: a schedule that
        shifts live row-buffer data off the array edge is a codegen bug and
        raises instead of silently corrupting an output.  ``observer`` is an
        optional :class:`repro.sim.executor.SenseObserver` (recovery hook).
        ``verify_writes`` turns on verify-after-write (see :meth:`machine`).

        Staged (spill-and-partition) programs run their stages back to
        back on one shared machine, carrying boundary values across.

        ``engine`` selects the execution backend: ``"interpreted"`` (the
        :class:`ArrayMachine` reference), ``"vectorized"`` (the bit-packed
        numpy op-table of :mod:`repro.sim.vectorized` — bit-identical on
        deterministic runs, an order of magnitude faster), or ``"auto"``
        (vectorized whenever nothing requires the interpreter: no
        observer, no fault RNG, no verify-after-write).
        """
        engine = resolve_engine(engine, observer=observer,
                                fault_rng=fault_rng,
                                verify_writes=verify_writes)
        if engine == "vectorized":
            if observer is not None:
                raise SherlockError(
                    "the vectorized engine does not support sense "
                    "observers; use engine='interpreted'")
            from repro.sim.vectorized import execute as vector_execute

            return vector_execute(self, inputs, lanes=lanes,
                                  fault_rng=fault_rng,
                                  verify_writes=verify_writes)
        machine = self.machine(lanes, fault_rng, observer=observer,
                               verify_writes=verify_writes)
        if self.stages is not None:
            return execute_staged(self.stages, self.dag, self.target,
                                  inputs, lanes, machine=machine)
        preload_sources(machine, self.layout, self.dag, inputs)
        machine.run(self.instructions)
        return extract_outputs(machine, self.layout, self.dag)

    def execute_many(self, input_sets, lanes: int = 64,
                     engine: str = "auto",
                     chunk: int = 256) -> list[dict[str, int]]:
        """Execute many independent input sets through one compiled program.

        The batch API of the compile-once/execute-many serving story: the
        program is lowered once (cached on the instance) and the input
        sets stream through the vectorized op-table in memory-bounded
        chunks.  ``engine="interpreted"`` runs the reference executor per
        set instead (slow — for cross-checking).  Returns one output
        dictionary per input set, in order.
        """
        engine = resolve_engine(engine)
        if engine == "interpreted":
            return [self.execute(inputs, lanes, engine="interpreted")
                    for inputs in input_sets]
        from repro.sim.vectorized import execute_many as vector_many

        return vector_many(self, input_sets, lanes=lanes, chunk=chunk)

    def verify(self, inputs: dict[str, int], lanes: int = 64) -> bool:
        """Execute and compare against the source DAG's reference semantics.

        Raises :class:`SherlockError` on a mismatch; returns ``True``.
        """
        expected = evaluate(self.source_dag, inputs, lanes)
        actual = self.execute(inputs, lanes)
        if expected != actual:
            diffs = {name: (expected[name], actual.get(name))
                     for name in expected if expected[name] != actual.get(name)}
            raise SherlockError(f"compiled program diverges on outputs: {diffs}")
        return True


# ----------------------------------------------------------------------
# process-level compile cache
# ----------------------------------------------------------------------
class CompileCache:
    """LRU memo of compiled programs keyed by (DAG hash, target, config).

    Sweeps and benchmarks recompile structurally identical DAGs with
    repeated configurations; the cache turns those recompiles into a
    dictionary lookup.  Oversized programs (above ``max_instructions``)
    are never retained — a full AES program holds hundreds of thousands
    of instruction objects and caching dozens of them would exhaust
    memory (see ``benchmarks/conftest.py``).
    """

    def __init__(self, maxsize: int = 32,
                 max_instructions: int = 20_000) -> None:
        self.maxsize = maxsize
        self.max_instructions = max_instructions
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[tuple, CompiledProgram] = OrderedDict()

    def key(self, dag: DataFlowGraph, target: TargetSpec,
            config: CompilerConfig, fault_map=None) -> tuple:
        """The cache key of one compilation request.

        Fault-aware compiles key on the map's *content digest*
        (:meth:`repro.devices.FaultMap.digest`), so a fleet of degraded
        arrays with byte-identical maps shares cache entries while any
        mutation (new wear, a remap diagnosis) changes the key and
        recompiles.
        """
        digest = fault_map.digest() if fault_map is not None else None
        return (structural_hash(dag), target, config, digest)

    def get(self, key: tuple) -> CompiledProgram | None:
        """Look up a prior compilation; counts a hit or miss."""
        program = self._entries.get(key)
        if program is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return program

    def put(self, key: tuple, program: CompiledProgram) -> None:
        """Retain a compilation result, evicting the least recently used.

        The entry gets a private copy of the instruction list (instruction
        objects are frozen), so callers editing the program they were
        handed cannot poison later cache hits.
        """
        if len(program.mapping.instructions) > self.max_instructions:
            return
        self._entries[key] = _reissue(program, program.source_dag,
                                      program.config)
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def info(self) -> dict[str, int]:
        """Current size and hit/miss counters."""
        return {"entries": len(self._entries), "hits": self.hits,
                "misses": self.misses, "maxsize": self.maxsize}


#: the process-wide cache consulted by every caching :class:`SherlockCompiler`
_COMPILE_CACHE = CompileCache()


def compile_cache_info() -> dict[str, int]:
    """Size and hit/miss counters of the process-level compile cache."""
    return _COMPILE_CACHE.info()


def clear_compile_cache() -> None:
    """Empty the process-level compile cache (tests, memory pressure)."""
    _COMPILE_CACHE.clear()


def _reissue(cached: CompiledProgram, source_dag: DataFlowGraph,
             config: CompilerConfig) -> CompiledProgram:
    """A fresh program view over a cached compilation.

    The immutable pieces (transformed DAG, layout, stats, instruction
    objects) are shared; the instruction *list* is copied so a caller
    editing its program cannot corrupt the cache.
    """
    mapping = cached.mapping
    fault_map = (cached.fault_map.copy()
                 if cached.fault_map is not None else None)
    return CompiledProgram(
        source_dag=source_dag, dag=cached.dag, target=cached.target,
        config=config,
        mapping=MappingResult(dag=mapping.dag, target=mapping.target,
                              layout=mapping.layout,
                              instructions=list(mapping.instructions),
                              stats=mapping.stats),
        pass_events=list(cached.pass_events),
        stages=cached.stages,
        ladder=list(cached.ladder),
        degradation=cached.degradation,
        fault_map=fault_map)


# ----------------------------------------------------------------------
# the driver
# ----------------------------------------------------------------------
class SherlockCompiler:
    """End-to-end compiler for one target and configuration.

    Instrumentation knobs (keyword-only) control the pass manager:
    ``validate_passes`` re-checks the DAG invariants after every pass,
    ``dump_ir_dir`` writes a DOT+JSON IR snapshot per pass, and ``cache``
    consults/feeds the process-level compile cache.

    ``fault_map`` (a :class:`repro.devices.FaultMap`) makes the whole
    compile fault-aware: the mappers place operands only on healthy cells.
    Fault-aware compiles participate in the process-level cache through
    the map's content digest (:meth:`~repro.devices.FaultMap.digest`):
    identical maps hit, any mutation changes the digest and misses, and
    cached entries hold frozen copies of the map so later mutation of a
    live map can never poison a hit.
    """

    def __init__(self, target: TargetSpec,
                 config: CompilerConfig | None = None, *,
                 validate_passes: bool = False,
                 dump_ir_dir: str | pathlib.Path | None = None,
                 cache: bool = True,
                 fault_map=None) -> None:
        self.target = target
        self.config = config or CompilerConfig()
        self.validate_passes = validate_passes
        self.dump_ir_dir = dump_ir_dir
        self.fault_map = fault_map
        self.cache = cache

    # ------------------------------------------------------------------
    def _wants_nand_lowering(self) -> bool:
        return wants_nand_lowering(self.target, self.config)

    def pass_manager(self, terminal: bool = True) -> PassManager:
        """The pass manager for this configuration.

        ``terminal=False`` drops the final mapping pass, leaving the pure
        DAG-rewrite prefix (what :meth:`transform` runs).
        """
        names = list(self.config.effective_pipeline())
        if not terminal:
            names = [n for n in names if not get_pass(n).terminal]
        return PassManager(names, validate_each=self.validate_passes,
                           dump_ir_dir=self.dump_ir_dir)

    def _context(self, dag: DataFlowGraph) -> CompilationContext:
        work = dag.copy(name=f"{dag.name}.{self.config.mapper}")
        return CompilationContext(source_dag=dag, dag=work,
                                  target=self.target, config=self.config,
                                  fault_map=self.fault_map)

    def transform(self, dag: DataFlowGraph) -> DataFlowGraph:
        """Apply the configured DAG rewrites; the input is left untouched."""
        ctx = self.pass_manager(terminal=False).run(self._context(dag))
        return ctx.dag

    def compile(self, dag: DataFlowGraph) -> CompiledProgram:
        """Transform, map, and schedule a DAG for the target.

        When the mapper runs out of capacity and ``config.fallback`` is
        ``"ladder"``, the graceful-degradation ladder retries the compile
        with cell recycling, then spill-and-partition, then the naive
        mapper partitioned; every attempt is recorded on the program's
        ``ladder`` (and as ``ladder:*`` pass events).  ``"strict"``
        preserves the fail-fast behavior.
        """
        key = None
        if self.cache:
            key = _COMPILE_CACHE.key(dag, self.target, self.config,
                                     self.fault_map)
            cached = _COMPILE_CACHE.get(key)
            if cached is not None:
                return _reissue(cached, dag, self.config)
        try:
            ctx = self.pass_manager().run(self._context(dag))
        except MappingError as exc:
            if self.config.fallback != "ladder":
                raise
            program = self._compile_ladder(dag, exc)
        else:
            if ctx.mapping is None:
                raise SherlockError(
                    f"pipeline {self.config.effective_pipeline()} produced "
                    "no mapping; it must end with a terminal map-* pass")
            program = CompiledProgram(
                source_dag=dag, dag=ctx.dag, target=self.target,
                config=self.config, mapping=ctx.mapping,
                pass_events=ctx.events, fault_map=self.fault_map)
        if key is not None:
            _COMPILE_CACHE.put(key, program)
        return program

    # ------------------------------------------------------------------
    # the graceful-degradation ladder
    # ------------------------------------------------------------------
    def _mapper_fn(self, mapper_name: str, recycle: bool):
        """A one-argument DAG -> MappingResult closure for a rung."""
        from repro.mapping.naive import map_naive
        from repro.mapping.optimized import SherlockOptions, map_sherlock

        if mapper_name == "naive":
            return lambda d: map_naive(d, self.target, recycle=recycle,
                                       fault_map=self.fault_map)
        if mapper_name == "multiarray":
            from repro.mapping.multiarray import (
                MultiArrayOptions,
                map_multiarray,
            )

            multi = MultiArrayOptions(
                alpha=self.config.alpha,
                beta=self.config.beta,
                merge_instructions=self.config.merge_instructions,
                recycle=recycle,
                exclude_arrays=self.config.exclude_arrays,
                array_penalties=self.config.array_penalties)
            return lambda d: map_multiarray(d, self.target, multi,
                                            fault_map=self.fault_map)
        options = SherlockOptions(
            alpha=self.config.alpha, beta=self.config.beta,
            merge_instructions=self.config.merge_instructions,
            recycle=recycle)
        return lambda d: map_sherlock(d, self.target, options,
                                      fault_map=self.fault_map)

    def _map_whole(self, ctx: CompilationContext, mapper_name: str,
                   recycle: bool) -> tuple[MappingResult, None]:
        mapping = self._mapper_fn(mapper_name, recycle)(ctx.dag)
        # the multi-array mapper schedules a private copy (recompute clones
        # mutate it); adopt that copy so the program's DAG matches the trace
        ctx.dag = mapping.dag
        place_passthrough_outputs(ctx.dag, mapping)
        return mapping, None

    def _map_parts(self, ctx: CompilationContext, mapper_name: str,
                   recycle: bool) -> tuple[MappingResult, list[Stage]]:
        stages = map_partitioned(ctx.dag, self.target,
                                 self._mapper_fn(mapper_name, recycle))
        mapping = combined_mapping(ctx.dag, self.target, stages,
                                   f"{mapper_name}+partitioned")
        return mapping, stages

    def _compile_ladder(self, dag: DataFlowGraph,
                        first_error: MappingError) -> CompiledProgram:
        """Walk the degradation rungs after the configured mapper failed."""
        ctx = self.pass_manager(terminal=False).run(self._context(dag))
        base = ("multiarray" if self.config.schedule == "multi"
                else self.config.mapper)
        attempts = [LadderAttempt(rung=base, succeeded=False,
                                  error=str(first_error))]

        recycle = self.config.recycle != "never"
        rungs: list[tuple[str, object]] = []
        if recycle and self.config.recycle != "always":
            # rung 0 already ran with recycling when recycle == "always"
            rungs.append((f"{base}+recycle",
                          lambda: self._map_whole(ctx, base, recycle=True)))
        # the serial spill-and-partition chain always uses the configured
        # mapper, so a failed multi-array co-schedule still degrades to the
        # proven staged path
        rungs.append((f"{self.config.mapper}+partitioned",
                      lambda: self._map_parts(ctx, self.config.mapper,
                                              recycle)))
        if self.config.mapper != "naive":
            rungs.append(("naive+partitioned",
                          lambda: self._map_parts(ctx, "naive", recycle)))

        stats = graph_stats(ctx.dag)
        for rung, attempt in rungs:
            start = time.perf_counter()
            try:
                mapping, stages = attempt()
            except MappingError as exc:
                attempts.append(LadderAttempt(rung=rung, succeeded=False,
                                              error=str(exc)))
                ctx.events.append(PassEvent(
                    name=f"ladder:{rung}",
                    wall_s=time.perf_counter() - start,
                    before=stats, after=stats,
                    notes={"failed": str(exc)}))
                continue
            attempts.append(LadderAttempt(
                rung=rung, succeeded=True,
                stages=len(stages) if stages else 1))
            ctx.events.append(PassEvent(
                name=f"ladder:{rung}",
                wall_s=time.perf_counter() - start,
                before=stats, after=stats,
                notes={"instructions": len(mapping.instructions),
                       "stages": len(stages) if stages else 1}))
            return CompiledProgram(
                source_dag=dag, dag=ctx.dag, target=self.target,
                config=self.config, mapping=mapping,
                pass_events=ctx.events, stages=stages,
                ladder=attempts, degradation=rung,
                fault_map=self.fault_map)

        summary = "\n  ".join(f"{a.rung}: {a.error}" for a in attempts)
        fields = (first_error if isinstance(first_error, CapacityError)
                  else None)
        suggested = fields.suggested_num_arrays if fields else None
        validated = None
        if fields is not None:
            suggested, validated = self._validate_suggestion(
                ctx.dag, suggested or self.target.num_arrays + 1)
        raise CapacityError(
            f"every degradation rung failed:\n  {summary}",
            required_cells=fields.required_cells if fields else None,
            available_cells=fields.available_cells if fields else None,
            num_arrays=self.target.num_arrays,
            suggested_num_arrays=suggested,
            suggestion_validated=validated) from first_error

    def _validate_suggestion(self, dag: DataFlowGraph,
                             suggested: int) -> tuple[int, bool]:
        """Prove a ``suggested_num_arrays`` by retrying the schedule there.

        The naive suggestion scales the array count by the cell overshoot,
        which ignores padding, duplicate copies, and fault clustering.
        Instead of reporting that guess unchecked, retry the multi-array
        co-schedule at the suggested count (doubling on failure, a few
        times); the first count that actually maps becomes the validated
        suggestion.  Returns ``(count, True)`` on proof, or the original
        guess with ``False`` when no probed count fit.  ``suggested`` may
        exceed the naive estimate when the estimate was absent (the caller
        substitutes ``num_arrays + 1``).
        """
        from repro.mapping.multiarray import MultiArrayOptions, map_multiarray

        options = MultiArrayOptions(
            alpha=self.config.alpha,
            beta=self.config.beta,
            merge_instructions=self.config.merge_instructions,
            recycle=self.config.recycle != "never",
            exclude_arrays=self.config.exclude_arrays,
            array_penalties=self.config.array_penalties)
        candidate = max(suggested, self.target.num_arrays + 1)
        for _ in range(4):
            try:
                map_multiarray(dag, self.target.with_(num_arrays=candidate),
                               options, fault_map=self.fault_map)
            except MappingError:
                candidate *= 2
            else:
                return candidate, True
        return suggested, False

    # ------------------------------------------------------------------
    # the runtime (remap) rung
    # ------------------------------------------------------------------
    def remap(self, program: CompiledProgram, discovered) -> CompiledProgram:
        """Recompile a program around hard faults discovered at runtime.

        ``discovered`` is a :class:`repro.devices.FaultMap` — typically an
        :class:`ArrayMachine`'s ``discovered_faults`` after verify-after-
        write exhausted its retries and spares (:class:`HardFaultError`).
        The faults are merged into this compiler's map (first diagnosis
        wins) and the program's *source* DAG is recompiled fault-aware;
        the resulting program records the ``remap`` degradation rung.
        Raises :class:`CapacityError` when the surviving healthy cells no
        longer fit the program — the end of the array's serviceable life.
        """
        from repro.devices.faultmap import FaultMap

        merged = (self.fault_map.copy() if self.fault_map is not None
                  else FaultMap())
        added = merged.merge(discovered)
        rebuilt = SherlockCompiler(
            self.target, self.config, validate_passes=self.validate_passes,
            dump_ir_dir=self.dump_ir_dir, fault_map=merged)
        new_program = rebuilt.compile(program.source_dag)
        new_program.ladder = (list(program.ladder)
                              + [LadderAttempt(rung="remap", succeeded=True,
                                               stages=(len(new_program.stages)
                                                       if new_program.stages
                                                       else 1))])
        new_program.degradation = "remap"
        new_program.pass_events.append(PassEvent(
            name="ladder:remap", wall_s=0.0,
            before=graph_stats(new_program.dag),
            after=graph_stats(new_program.dag),
            notes={"discovered_faults": len(discovered),
                   "new_faults": added, "total_faults": len(merged)}))
        return new_program


def compile_dag(dag: DataFlowGraph, target: TargetSpec,
                config: CompilerConfig | None = None, *,
                cache: bool = True) -> CompiledProgram:
    """One-call convenience wrapper around :class:`SherlockCompiler`."""
    return SherlockCompiler(target, config, cache=cache).compile(dag)
