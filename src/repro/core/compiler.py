"""The Sherlock compiler driver: DAG in, scheduled CIM program out (Fig. 1).

Pipeline::

    DAG -> normalize -> [CSE] -> MRA node substitution / binary split
        -> [NAND lowering] -> arity clamp -> map (naive | sherlock)
        -> CompiledProgram (layout + instructions + metrics + execution)

A :class:`CompiledProgram` can be functionally executed against arbitrary
inputs (and verified against the source DAG), priced into the Table 2
latency/energy metrics, and inspected as Fig. 4-style text.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import cached_property

from repro.arch.isa import Instruction, program_text
from repro.arch.target import TargetSpec
from repro.dfg.graph import DataFlowGraph
from repro.dfg.transforms import (
    common_subexpression_elimination,
    fold_duplicate_operands,
    nand_lower,
    split_multi_operand,
    substitute_nodes,
)
from repro.core.config import CompilerConfig
from repro.dfg.evaluate import evaluate
from repro.errors import MappingError, SherlockError
from repro.mapping.base import MappingResult
from repro.mapping.naive import map_naive
from repro.mapping.optimized import SherlockOptions, map_sherlock
from repro.sim.executor import ArrayMachine, extract_outputs, preload_sources
from repro.sim.metrics import TraceMetrics, analyze_trace

#: technologies whose HRS/LRS window is too small for direct XOR/OR sensing
NAND_LOWERING_WINDOW = 5.0


@dataclass
class CompiledProgram:
    """The compiler's output: a mapped, scheduled, executable CIM program."""

    source_dag: DataFlowGraph
    dag: DataFlowGraph
    target: TargetSpec
    config: CompilerConfig
    mapping: MappingResult

    @property
    def instructions(self) -> list[Instruction]:
        return self.mapping.instructions

    @property
    def layout(self):
        return self.mapping.layout

    @cached_property
    def metrics(self) -> TraceMetrics:
        """Latency/energy/P_app of one run of the program (Table 2 row)."""
        return analyze_trace(self.instructions, self.target)

    def text(self) -> str:
        """The program in the Fig. 4 instruction format."""
        return program_text(self.instructions)

    def execute(self, inputs: dict[str, int], lanes: int = 64,
                fault_rng: random.Random | None = None) -> dict[str, int]:
        """Functionally execute the program on lane-bitmask inputs."""
        machine = ArrayMachine(self.target, lanes, fault_rng)
        preload_sources(machine, self.layout, self.dag, inputs)
        machine.run(self.instructions)
        return extract_outputs(machine, self.layout, self.dag)

    def verify(self, inputs: dict[str, int], lanes: int = 64) -> bool:
        """Execute and compare against the source DAG's reference semantics.

        Raises :class:`SherlockError` on a mismatch; returns ``True``.
        """
        expected = evaluate(self.source_dag, inputs, lanes)
        actual = self.execute(inputs, lanes)
        if expected != actual:
            diffs = {name: (expected[name], actual.get(name))
                     for name in expected if expected[name] != actual.get(name)}
            raise SherlockError(f"compiled program diverges on outputs: {diffs}")
        return True


class SherlockCompiler:
    """End-to-end compiler for one target and configuration."""

    def __init__(self, target: TargetSpec,
                 config: CompilerConfig | None = None) -> None:
        self.target = target
        self.config = config or CompilerConfig()

    # ------------------------------------------------------------------
    def _wants_nand_lowering(self) -> bool:
        if self.config.nand_lowering is not None:
            return self.config.nand_lowering
        return self.target.technology.hrs_lrs_ratio < NAND_LOWERING_WINDOW

    def transform(self, dag: DataFlowGraph) -> DataFlowGraph:
        """Apply the configured DAG rewrites; the input is left untouched."""
        work = dag.copy(name=f"{dag.name}.{self.config.mapper}")
        fold_duplicate_operands(work)
        if self.config.cse:
            common_subexpression_elimination(work)
            # merging equal subexpressions can leave XOR(t, t) etc. behind
            fold_duplicate_operands(work)
        effective_mra = min(self.config.mra, self.target.max_activated_rows)
        if effective_mra > 2:
            substitute_nodes(work, effective_mra, self.config.mra_fraction)
            # fusing XOR(t, x) into t = XOR(x, y) re-mentions x: fold again
            fold_duplicate_operands(work)
        if self._wants_nand_lowering():
            nand_lower(work)
            fold_duplicate_operands(work)
        split_multi_operand(work, self.target.max_activated_rows)
        work.validate()
        return work

    def compile(self, dag: DataFlowGraph) -> CompiledProgram:
        """Transform, map, and schedule a DAG for the target."""
        work = self.transform(dag)
        if self.config.mapper == "naive":
            mapping = map_naive(work, self.target)
        else:
            options = SherlockOptions(
                alpha=self.config.alpha, beta=self.config.beta,
                merge_instructions=self.config.merge_instructions)
            mapping = map_sherlock(work, self.target, options)
        self._place_passthrough_outputs(work, mapping)
        return CompiledProgram(source_dag=dag, dag=work, target=self.target,
                               config=self.config, mapping=mapping)

    def _place_passthrough_outputs(self, dag: DataFlowGraph,
                                   mapping: MappingResult) -> None:
        """Outputs that alias an input/const still need a home cell."""
        layout = mapping.layout
        for oid in dag.outputs.values():
            if layout.is_placed(oid):
                continue
            for gcol in range(layout.num_global_cols):
                if layout.column_free(gcol) > 0:
                    layout.place(oid, gcol)
                    break
            else:
                raise MappingError("no free cell left for a program output")


def compile_dag(dag: DataFlowGraph, target: TargetSpec,
                config: CompilerConfig | None = None) -> CompiledProgram:
    """One-call convenience wrapper around :class:`SherlockCompiler`."""
    return SherlockCompiler(target, config).compile(dag)
