"""Public API of the Sherlock reproduction.

Typical use::

    from repro.core import CompilerConfig, SherlockCompiler, TargetSpec
    from repro.devices import RERAM

    target = TargetSpec.square(512, RERAM)
    program = SherlockCompiler(target, CompilerConfig(mapper="sherlock")).compile(dag)
    program.verify({"a": 0b1010, ...})
    print(program.metrics.latency_us, program.metrics.energy_uj)
"""

from repro.arch.target import TargetSpec
from repro.core.compiler import CompiledProgram, SherlockCompiler, compile_dag
from repro.core.config import TABLE2_CONFIGS, CompilerConfig
from repro.core.serialize import load_program, save_program
from repro.core.report import (
    PROGRAM_REPORT_HEADERS,
    ProgramReport,
    format_table,
    render_reports,
)

__all__ = [
    "CompiledProgram",
    "CompilerConfig",
    "PROGRAM_REPORT_HEADERS",
    "ProgramReport",
    "SherlockCompiler",
    "TABLE2_CONFIGS",
    "TargetSpec",
    "compile_dag",
    "load_program",
    "save_program",
    "format_table",
    "render_reports",
]
