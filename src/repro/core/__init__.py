"""Public API of the Sherlock reproduction.

Typical use::

    from repro.core import CompilerConfig, SherlockCompiler, TargetSpec
    from repro.devices import RERAM

    target = TargetSpec.square(512, RERAM)
    program = SherlockCompiler(target, CompilerConfig(mapper="sherlock")).compile(dag)
    program.verify({"a": 0b1010, ...})
    print(program.metrics.latency_us, program.metrics.energy_uj)
"""

from repro.arch.target import TargetSpec
from repro.core.compiler import (
    CompiledProgram,
    LadderAttempt,
    SherlockCompiler,
    clear_compile_cache,
    compile_cache_info,
    compile_dag,
)
from repro.core.config import TABLE2_CONFIGS, CompilerConfig
from repro.core.passes import (
    PASS_REGISTRY,
    CompilationContext,
    FunctionPass,
    Pass,
    PassEvent,
    PassManager,
    default_pipeline,
    parse_pipeline,
    register_pass,
)
from repro.core.serialize import load_program, save_program
from repro.core.report import (
    COMPILE_REPORT_HEADERS,
    PASS_REPORT_HEADERS,
    PROGRAM_REPORT_HEADERS,
    RECOVERY_REPORT_HEADERS,
    CompileReport,
    PassReport,
    ProgramReport,
    RecoveryReport,
    format_table,
    render_reports,
)

__all__ = [
    "COMPILE_REPORT_HEADERS",
    "CompilationContext",
    "CompileReport",
    "CompiledProgram",
    "CompilerConfig",
    "FunctionPass",
    "LadderAttempt",
    "PASS_REGISTRY",
    "PASS_REPORT_HEADERS",
    "PROGRAM_REPORT_HEADERS",
    "Pass",
    "PassEvent",
    "PassManager",
    "PassReport",
    "ProgramReport",
    "RECOVERY_REPORT_HEADERS",
    "RecoveryReport",
    "SherlockCompiler",
    "TABLE2_CONFIGS",
    "TargetSpec",
    "clear_compile_cache",
    "compile_cache_info",
    "compile_dag",
    "default_pipeline",
    "load_program",
    "parse_pipeline",
    "register_pass",
    "save_program",
    "format_table",
    "render_reports",
]
