"""The compiler's pass-manager pipeline.

The compilation flow — DAG rewrites followed by a terminal mapping stage —
is expressed as a list of named, registered *passes* executed by a
:class:`PassManager` over a shared :class:`CompilationContext`.  This turns
the pipeline into a first-class artifact: passes can be reordered, skipped
or repeated via a spec string (``CompilerConfig.pipeline``), every pass is
timed and its IR statistics delta recorded as a :class:`PassEvent`, and the
manager can optionally validate the graph between passes and dump per-pass
IR snapshots (DOT + JSON) for debugging.

The default pipeline reproduces the historical hardcoded sequence exactly::

    fold-duplicates, cse, mra-substitute, nand-lower, arity-clamp,
    validate, map-<mapper>

Conditional stages (``cse``, ``mra-substitute``, ``nand-lower``) gate
themselves on the configuration/target and record *why* they were skipped,
so one canonical pass list serves every configuration.  Terminal passes
(``map-naive``, ``map-sherlock``) produce the :class:`MappingResult` and
must come last; a pipeline has exactly one.
"""

from __future__ import annotations

import dataclasses
import pathlib
import time
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.arch.target import TargetSpec
from repro.dfg.graph import DataFlowGraph
from repro.dfg.stats import GraphStats, graph_stats
from repro.dfg.transforms import (
    common_subexpression_elimination,
    fold_duplicate_operands,
    nand_lower,
    split_multi_operand,
    substitute_nodes,
)
from repro.errors import CapacityError, SherlockError
from repro.mapping.base import MappingResult

#: technologies whose HRS/LRS window is too small for direct XOR/OR sensing
NAND_LOWERING_WINDOW = 5.0


# ----------------------------------------------------------------------
# context and events
# ----------------------------------------------------------------------
@dataclass
class CompilationContext:
    """Everything a pass may read or rewrite, threaded through the pipeline.

    ``dag`` is the working graph (a private copy of the source DAG);
    transform passes mutate it in place.  The terminal mapping pass fills
    ``mapping``.  ``events`` accumulates one :class:`PassEvent` per
    executed pass — the structured log behind ``--timings`` and
    :class:`repro.core.report.PassReport`.  ``fault_map`` (a
    :class:`repro.devices.FaultMap` or ``None``) makes the terminal
    mapping pass place operands only on healthy cells.
    """

    source_dag: DataFlowGraph
    dag: DataFlowGraph
    target: TargetSpec
    config: "CompilerConfigLike"
    events: list["PassEvent"] = field(default_factory=list)
    mapping: MappingResult | None = None
    fault_map: object | None = None


@runtime_checkable
class CompilerConfigLike(Protocol):
    """The configuration fields the built-in passes consult."""

    mapper: str
    mra: int
    mra_fraction: float
    nand_lowering: bool | None
    cse: bool
    alpha: float
    beta: float
    merge_instructions: bool
    recycle: str
    fallback: str


@dataclass(frozen=True)
class PassEvent:
    """One pass execution: timing, IR deltas, and pass-specific notes."""

    name: str
    wall_s: float
    before: GraphStats
    after: GraphStats
    #: pass-specific facts, e.g. ``{"rewritten": 3}`` or ``{"skipped": ...}``
    notes: dict[str, object] = field(default_factory=dict)

    @property
    def skipped(self) -> bool:
        """Whether the pass gated itself off for this configuration."""
        return "skipped" in self.notes

    @property
    def node_delta(self) -> int:
        """Total bipartite node-count change (after minus before)."""
        return self.after.nodes - self.before.nodes

    @property
    def op_delta(self) -> int:
        """Op node-count change (after minus before)."""
        return self.after.ops - self.before.ops


# ----------------------------------------------------------------------
# pass protocol and registry
# ----------------------------------------------------------------------
@runtime_checkable
class Pass(Protocol):
    """What the manager requires of a pass.

    ``run`` mutates the context in place and returns an optional notes
    dictionary merged into the pass's :class:`PassEvent`.  ``invalidates``
    documents which cached analyses the pass clobbers (free-form notes for
    now; b-levels and layouts are recomputed from scratch downstream).
    """

    name: str
    description: str
    terminal: bool
    invalidates: tuple[str, ...]

    def run(self, ctx: CompilationContext) -> dict[str, object] | None:
        """Execute the pass against the context."""
        ...


@dataclass(frozen=True)
class FunctionPass:
    """A :class:`Pass` wrapping a plain function (the built-in pass shape)."""

    name: str
    description: str
    fn: Callable[[CompilationContext], dict[str, object] | None]
    terminal: bool = False
    invalidates: tuple[str, ...] = ()

    def run(self, ctx: CompilationContext) -> dict[str, object] | None:
        """Delegate to the wrapped function."""
        return self.fn(ctx)


PASS_REGISTRY: dict[str, Pass] = {}


def register_pass(pass_obj: Pass) -> Pass:
    """Add a pass to the global registry; its name must be unique."""
    if pass_obj.name in PASS_REGISTRY:
        raise SherlockError(f"pass {pass_obj.name!r} is already registered")
    PASS_REGISTRY[pass_obj.name] = pass_obj
    return pass_obj


def get_pass(name: str) -> Pass:
    """Look up a registered pass by name."""
    try:
        return PASS_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(PASS_REGISTRY))
        raise SherlockError(
            f"unknown pass {name!r}; registered passes: {known}") from None


def _builtin(name: str, description: str, terminal: bool = False,
             invalidates: tuple[str, ...] = ()):
    """Decorator registering a function as a built-in pass."""
    def wrap(fn: Callable[[CompilationContext], dict[str, object] | None]):
        register_pass(FunctionPass(name=name, description=description, fn=fn,
                                   terminal=terminal, invalidates=invalidates))
        return fn
    return wrap


# ----------------------------------------------------------------------
# pipeline specs
# ----------------------------------------------------------------------
DEFAULT_TRANSFORM_PASSES = (
    "fold-duplicates", "cse", "mra-substitute", "nand-lower", "arity-clamp",
    "validate",
)


def default_pipeline(mapper: str, schedule: str = "single") -> str:
    """The spec string of the historical hardcoded pipeline for a mapper.

    With ``schedule="multi"`` the terminal pass is the multi-array
    co-scheduler regardless of ``mapper`` (the mapper still names the
    single-array algorithm degradation rungs fall back to).
    """
    terminal = "map-multiarray" if schedule == "multi" else f"map-{mapper}"
    return ",".join(DEFAULT_TRANSFORM_PASSES + (terminal,))


def parse_pipeline(spec: str, require_terminal: bool = True) -> tuple[str, ...]:
    """Parse and validate a comma-separated pass-list spec.

    Raises :class:`SherlockError` on empty segments, unknown pass names,
    more than one terminal (mapping) pass, a terminal pass that is not
    last, or — with ``require_terminal`` — a pipeline with no terminal.
    Non-terminal passes may repeat (re-folding after a custom stage is
    legitimate).
    """
    names = tuple(part.strip() for part in spec.split(","))
    if any(not name for name in names):
        raise SherlockError(f"pipeline spec {spec!r} has an empty pass name")
    terminals = []
    for index, name in enumerate(names):
        pass_obj = get_pass(name)
        if pass_obj.terminal:
            terminals.append((index, name))
    if len(terminals) > 1:
        listed = ", ".join(name for _, name in terminals)
        raise SherlockError(
            f"pipeline spec {spec!r} has more than one terminal mapping "
            f"pass ({listed}); exactly one is allowed")
    if terminals and terminals[0][0] != len(names) - 1:
        raise SherlockError(
            f"terminal pass {terminals[0][1]!r} must be last in {spec!r}")
    if require_terminal and not terminals:
        known = ", ".join(sorted(n for n, p in PASS_REGISTRY.items()
                                 if p.terminal))
        raise SherlockError(
            f"pipeline spec {spec!r} has no terminal mapping pass; "
            f"end it with one of: {known}")
    return names


# ----------------------------------------------------------------------
# the manager
# ----------------------------------------------------------------------
class PassManager:
    """Executes a pass list over a context, instrumenting every pass.

    Per pass it records wall time and before/after :class:`GraphStats`
    (node/edge counts, op histogram) into ``ctx.events``; optionally it
    re-validates the working DAG between passes (``validate_each``) and
    writes per-pass IR snapshots (``dump_ir_dir``, one ``.dot`` and one
    ``.json`` file per pass, prefixed with the pass index).
    """

    def __init__(self, passes: Iterable[Pass | str], *,
                 validate_each: bool = False,
                 dump_ir_dir: str | pathlib.Path | None = None) -> None:
        self.passes: list[Pass] = [
            get_pass(p) if isinstance(p, str) else p for p in passes]
        self.validate_each = validate_each
        self.dump_ir_dir = (pathlib.Path(dump_ir_dir)
                            if dump_ir_dir is not None else None)

    def describe(self) -> list[tuple[str, str, bool]]:
        """(name, description, terminal) rows, for ``--print-passes``."""
        return [(p.name, p.description, p.terminal) for p in self.passes]

    def run(self, ctx: CompilationContext) -> CompilationContext:
        """Execute every pass in order, appending events to the context."""
        if self.dump_ir_dir is not None:
            self.dump_ir_dir.mkdir(parents=True, exist_ok=True)
            self._dump(ctx.dag, 0, "input")
        for index, pass_obj in enumerate(self.passes, start=1):
            before = graph_stats(ctx.dag)
            start = time.perf_counter()
            notes = pass_obj.run(ctx) or {}
            wall = time.perf_counter() - start
            after = graph_stats(ctx.dag)
            ctx.events.append(PassEvent(
                name=pass_obj.name, wall_s=wall, before=before, after=after,
                notes=dict(notes)))
            if self.validate_each:
                ctx.dag.validate()
            if self.dump_ir_dir is not None:
                self._dump(ctx.dag, index, pass_obj.name)
        return ctx

    def _dump(self, dag: DataFlowGraph, index: int, label: str) -> None:
        import json

        from repro.core.serialize import dag_to_dict
        from repro.dfg.dot import to_dot

        stem = self.dump_ir_dir / f"{index:02d}-{label}"
        stem.with_suffix(".dot").write_text(to_dot(dag))
        stem.with_suffix(".json").write_text(
            json.dumps(dag_to_dict(dag), indent=1))


# ----------------------------------------------------------------------
# built-in transform passes (the historical pipeline, stage by stage)
# ----------------------------------------------------------------------
@_builtin("fold-duplicates",
          "canonicalize ops that mention an operand more than once")
def _run_fold_duplicates(ctx: CompilationContext) -> dict[str, object]:
    return {"rewritten": fold_duplicate_operands(ctx.dag)}


@_builtin("cse", "merge identical subexpressions (gated on config.cse)",
          invalidates=("b-levels",))
def _run_cse(ctx: CompilationContext) -> dict[str, object]:
    if not ctx.config.cse:
        return {"skipped": "config.cse is off"}
    removed = common_subexpression_elimination(ctx.dag)
    # merging equal subexpressions can leave XOR(t, t) etc. behind
    folded = fold_duplicate_operands(ctx.dag)
    return {"removed": removed, "refolded": folded}


@_builtin("mra-substitute",
          "fuse associative chains into multi-operand ops (Sec. 3.3.3)",
          invalidates=("b-levels",))
def _run_mra_substitute(ctx: CompilationContext) -> dict[str, object]:
    effective_mra = min(ctx.config.mra, ctx.target.max_activated_rows)
    if effective_mra <= 2:
        return {"skipped": f"effective MRA is {effective_mra}"}
    report = substitute_nodes(ctx.dag, effective_mra, ctx.config.mra_fraction)
    # fusing XOR(t, x) into t = XOR(x, y) re-mentions x: fold again
    folded = fold_duplicate_operands(ctx.dag)
    return {"merges": report.merges_applied,
            "multi_operand_ops": report.multi_operand_ops,
            "refolded": folded}


def wants_nand_lowering(target: TargetSpec,
                        config: CompilerConfigLike) -> bool:
    """Whether the pipeline should lower XOR/OR to NAND networks.

    An explicit ``config.nand_lowering`` wins; otherwise the technology's
    HRS/LRS window decides (STT-MRAM's small ratio makes direct XOR/OR
    sensing unreliable, Sec. 4.2).
    """
    if config.nand_lowering is not None:
        return config.nand_lowering
    return target.technology.hrs_lrs_ratio < NAND_LOWERING_WINDOW


@_builtin("nand-lower",
          "rewrite XOR/OR into NAND networks on narrow-window technologies",
          invalidates=("b-levels",))
def _run_nand_lower(ctx: CompilationContext) -> dict[str, object]:
    if not wants_nand_lowering(ctx.target, ctx.config):
        return {"skipped": "technology window is wide enough"}
    rewritten = nand_lower(ctx.dag)
    folded = fold_duplicate_operands(ctx.dag)
    return {"rewritten": rewritten, "refolded": folded}


@_builtin("arity-clamp",
          "split ops above the target's MRA limit into balanced trees")
def _run_arity_clamp(ctx: CompilationContext) -> dict[str, object]:
    return {"split": split_multi_operand(ctx.dag,
                                         ctx.target.max_activated_rows)}


@_builtin("validate", "check the bipartite-DAG invariants")
def _run_validate(ctx: CompilationContext) -> None:
    ctx.dag.validate()


# ----------------------------------------------------------------------
# terminal mapping passes
# ----------------------------------------------------------------------
def place_passthrough_outputs(dag: DataFlowGraph,
                              mapping: MappingResult) -> None:
    """Give outputs that alias an input/const a home cell of their own."""
    layout = mapping.layout
    for name, oid in dag.outputs.items():
        if layout.is_placed(oid):
            continue
        for gcol in range(layout.num_global_cols):
            if layout.column_free(gcol) > 0:
                # the output aliases preloaded source data: poked at t=0,
                # so its cell must never be a recycled mid-program cell
                layout.place(oid, gcol, reuse=False)
                break
        else:
            capacity = layout.target.capacity
            raise CapacityError(
                f"no free cell left for program output {name!r} "
                f"(operand {oid}): layout occupies {layout.cells_used}"
                f"/{capacity} cells over {layout.columns_used}"
                f"/{layout.num_global_cols} columns; increase num_arrays",
                required_cells=layout.cells_used + 1,
                available_cells=capacity,
                num_arrays=layout.target.num_arrays)


def _wants_recycle(config: CompilerConfigLike) -> bool:
    return getattr(config, "recycle", "auto") == "always"


@_builtin("map-naive", "Algorithm 1: b-level column-major packing + codegen",
          terminal=True)
def _run_map_naive(ctx: CompilationContext) -> dict[str, object]:
    from repro.mapping.naive import map_naive

    ctx.mapping = map_naive(ctx.dag, ctx.target,
                            recycle=_wants_recycle(ctx.config),
                            fault_map=ctx.fault_map)
    place_passthrough_outputs(ctx.dag, ctx.mapping)
    return {"instructions": len(ctx.mapping.instructions)}


@_builtin("map-sherlock",
          "Algorithm 2: clustering mapper + merged scheduling",
          terminal=True)
def _run_map_sherlock(ctx: CompilationContext) -> dict[str, object]:
    from repro.mapping.optimized import SherlockOptions, map_sherlock

    options = SherlockOptions(
        alpha=ctx.config.alpha, beta=ctx.config.beta,
        merge_instructions=ctx.config.merge_instructions,
        recycle=_wants_recycle(ctx.config))
    ctx.mapping = map_sherlock(ctx.dag, ctx.target, options,
                               fault_map=ctx.fault_map)
    place_passthrough_outputs(ctx.dag, ctx.mapping)
    return {"instructions": len(ctx.mapping.instructions),
            "clusters": ctx.mapping.stats.clusters}


@_builtin("map-multiarray",
          "multi-array co-scheduler: partition the DAG across arrays",
          terminal=True)
def _run_map_multiarray(ctx: CompilationContext) -> dict[str, object]:
    from repro.mapping.multiarray import MultiArrayOptions, map_multiarray

    options = MultiArrayOptions(
        alpha=ctx.config.alpha,
        beta=ctx.config.beta,
        merge_instructions=ctx.config.merge_instructions,
        recycle=_wants_recycle(ctx.config),
        exclude_arrays=ctx.config.exclude_arrays,
        array_penalties=ctx.config.array_penalties)
    ctx.mapping = map_multiarray(ctx.dag, ctx.target, options,
                                 fault_map=ctx.fault_map)
    # recompute duplication mutates a private copy; adopt it as the
    # working graph so layout, liveness and execution stay consistent
    ctx.dag = ctx.mapping.dag
    place_passthrough_outputs(ctx.dag, ctx.mapping)
    return {"instructions": len(ctx.mapping.instructions),
            "arrays_used": ctx.mapping.stats.arrays_used,
            "transfers": ctx.mapping.stats.cross_array_transfers,
            "recomputed_ops": ctx.mapping.stats.recomputed_ops}


# ----------------------------------------------------------------------
# serialization helpers for events
# ----------------------------------------------------------------------
def events_as_dicts(events: Sequence[PassEvent]) -> list[dict[str, object]]:
    """Flatten pass events for JSON logging or report assembly."""
    return [dataclasses.asdict(event) for event in events]
