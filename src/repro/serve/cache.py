"""Persistent on-disk artifact cache for compiled CIM programs.

The process-level compile cache (:class:`repro.core.compiler.CompileCache`)
dies with the process; a serving fleet wants compiled programs to survive
restarts and be shared across arrays.  :class:`ArtifactCache` persists each
:class:`~repro.core.compiler.CompiledProgram` as one JSON file under a
content-derived key:

    sha256(DAG structural hash | target | config | fault-map digest)

so structurally identical requests — including fault-aware compiles for
arrays with byte-identical fault maps — resolve to the same entry, while
any fault-map mutation (new wear, a remap diagnosis) changes the key and
recompiles.

Durability properties the tests pin down:

* **atomic publication** — entries are written to a private temporary file
  in the cache directory and ``os.replace``d into place, so a concurrent
  reader sees either the previous complete entry or the new complete
  entry, never a partial write;
* **corruption tolerance** — a truncated, garbage, schema-mismatched or
  version-mismatched entry is *quarantined* (moved into ``quarantine/``
  for post-mortem, or deleted when ``keep_quarantined=False``), counted,
  and reported as a miss, so the service transparently recompiles instead
  of failing the request;
* **bounded growth** — optional ``max_entries``/``max_bytes`` caps with
  mtime-LRU eviction: hits touch their entry's mtime, each ``put`` evicts
  the stalest entries (never the one just published) until both caps
  hold, and evictions are counted in :meth:`ArtifactCache.stats`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import threading

from repro.core.serialize import (
    program_from_dict,
    program_to_dict,
    target_to_dict,
)
from repro.dfg.stats import structural_hash
from repro.errors import SherlockError

__all__ = ["ARTIFACT_SCHEMA", "ArtifactCache"]

#: schema tag every cache entry carries; entries with any other tag (or
#: none) are quarantined as corrupt
ARTIFACT_SCHEMA = "sherlock-artifact/v1"


class ArtifactCache:
    """A directory of serialized compiled programs, keyed by content.

    Thread-safe: counters are guarded by a lock and file publication is
    atomic, so one cache directory can back a whole worker pool (and,
    through the digest-keyed naming, a whole fleet of arrays).
    """

    def __init__(self, root: str | pathlib.Path, *,
                 keep_quarantined: bool = True,
                 max_entries: int | None = None,
                 max_bytes: int | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise SherlockError(
                f"max_entries must be >= 1, got {max_entries}")
        if max_bytes is not None and max_bytes < 1:
            raise SherlockError(f"max_bytes must be >= 1, got {max_bytes}")
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.quarantine_dir = self.root / "quarantine"
        self.keep_quarantined = keep_quarantined
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        self.writes = 0
        self.evictions = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # keys and paths
    # ------------------------------------------------------------------
    @staticmethod
    def key_for(dag, target, config, fault_map=None) -> str:
        """The content key of one compilation request.

        Mirrors :meth:`repro.core.compiler.CompileCache.key` but collapses
        everything into one stable hex digest suitable for a filename.
        """
        hasher = hashlib.sha256()
        hasher.update(structural_hash(dag).encode())
        hasher.update(json.dumps(target_to_dict(target),
                                 sort_keys=True).encode())
        hasher.update(json.dumps(dataclasses.asdict(config),
                                 sort_keys=True).encode())
        digest = fault_map.digest() if fault_map else None
        hasher.update(f"|faults:{digest}".encode())
        return hasher.hexdigest()

    def path_for(self, key: str) -> pathlib.Path:
        """The entry file a key resolves to."""
        return self.root / f"{key}.json"

    def entries(self) -> int:
        """Number of (well-formed or not) entries currently on disk."""
        return sum(1 for _ in self.root.glob("*.json"))

    # ------------------------------------------------------------------
    # get / put
    # ------------------------------------------------------------------
    def get(self, key: str):
        """The cached program for ``key``, or ``None`` (miss).

        Any failure to parse or decode an existing entry — truncated JSON,
        garbage bytes, a wrong or missing schema tag, a document the
        serializer rejects — quarantines the entry and reports a miss, so
        the caller recompiles and overwrites it with a good one.
        """
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
        except OSError:  # FileNotFoundError included: a plain miss
            with self._lock:
                self.misses += 1
            return None
        try:
            document = json.loads(raw.decode("utf-8"))
            if not isinstance(document, dict):
                raise SherlockError("artifact entry is not a JSON object")
            if document.get("schema") != ARTIFACT_SCHEMA:
                raise SherlockError(
                    f"artifact entry schema {document.get('schema')!r} "
                    f"!= {ARTIFACT_SCHEMA!r}")
            program = program_from_dict(document.get("program"))
        except (json.JSONDecodeError, UnicodeDecodeError, SherlockError):
            self._quarantine(path)
            with self._lock:
                self.misses += 1
            return None
        try:
            os.utime(path)  # refresh LRU recency for the eviction order
        except OSError:
            pass  # a concurrent eviction/replace got there first
        with self._lock:
            self.hits += 1
        return program

    def put(self, key: str, program) -> pathlib.Path:
        """Persist a compiled program under ``key``; atomic, last wins.

        When the cache is bounded, publication is followed by an LRU
        sweep that evicts the least-recently-used entries (the fresh one
        is protected) until both caps hold again.
        """
        document = {"schema": ARTIFACT_SCHEMA, "key": key,
                    "program": program_to_dict(program)}
        path = self.path_for(key)
        tmp = self.root / f".{key}.{os.getpid()}.{threading.get_ident()}.tmp"
        tmp.write_text(json.dumps(document, indent=1))
        os.replace(tmp, path)
        with self._lock:
            self.writes += 1
        if self.max_entries is not None or self.max_bytes is not None:
            self._evict(protect=path.name)
        return path

    # ------------------------------------------------------------------
    # quarantine and stats
    # ------------------------------------------------------------------
    def _quarantine(self, path: pathlib.Path) -> None:
        """Move a corrupt entry out of the lookup path (or delete it)."""
        with self._lock:
            self.quarantined += 1
            serial = self.quarantined
        try:
            if self.keep_quarantined:
                self.quarantine_dir.mkdir(exist_ok=True)
                os.replace(path, self.quarantine_dir
                           / f"{path.name}.{serial}")
            else:
                path.unlink()
        except OSError:
            pass  # a concurrent put already replaced (or removed) it

    def _evict(self, protect: str) -> None:
        """Remove LRU entries until the size caps hold.

        ``protect`` is the file name of the entry just published — the one
        write that must survive its own sweep even when the caps are
        smaller than a single entry.  Stat failures mean a concurrent
        evictor/replacer won the race; those entries are simply skipped.
        """
        entries = []
        for path in self.root.glob("*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, path.name, stat.st_size, path))
        entries.sort()  # oldest mtime first; name breaks ties stably
        count = len(entries)
        total = sum(size for _, _, size, _ in entries)
        evicted = 0
        for _, name, size, path in entries:
            over_count = (self.max_entries is not None
                          and count > self.max_entries)
            over_bytes = (self.max_bytes is not None
                          and total > self.max_bytes)
            if not (over_count or over_bytes):
                break
            if name == protect:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            count -= 1
            total -= size
            evicted += 1
        if evicted:
            with self._lock:
                self.evictions += evicted

    def stats(self) -> dict[str, int]:
        """Hit/miss/quarantine/write/eviction counters plus the entry count."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "quarantined": self.quarantined, "writes": self.writes,
                    "evictions": self.evictions, "entries": self.entries()}
