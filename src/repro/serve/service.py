"""The compile-and-serve job queue, worker pool, and offload policy.

:class:`CompileService` accepts :class:`ServeRequest`\\ s (a DAG, one set of
lane-bitmask inputs, and the array the request targets), pushes them through
a bounded job queue into a pool of compile workers, and answers with
:class:`ServeResult`\\ s.  Per request the pipeline is:

1. **admission control** — a full queue sheds the request with a structured
   :class:`~repro.errors.ServiceOverloadError` (queue depth, limit, and a
   retry-after hint derived from recent service latency);
2. **compile** — resolve the program through the persistent
   :class:`~repro.serve.cache.ArtifactCache` (corrupt entries quarantine
   and recompile transparently), keyed by the requesting array's current
   fault map, falling back to a fresh fault-aware compile;
3. **execute** — run on the fault-honoring array machine with
   verify-after-write; a :class:`~repro.errors.HardFaultError` triggers the
   remap rung *inside the service loop*: the discovered faults merge into
   the fleet's per-array map, the program recompiles around them, the new
   artifact is published for the whole fleet, and the request re-executes;
4. **offload** — a :class:`~repro.serve.breaker.CircuitBreaker` counts CIM
   failures (compile errors, exhausted retries, deadline misses); while it
   is open — or when an array's healthy capacity drops below threshold —
   requests are served from the CPU baseline
   (:func:`repro.dfg.evaluate.evaluate` for values,
   :func:`repro.sim.cpu.dag_events` + :func:`repro.sim.cpu.run_model` for
   pricing).  Healthy requests are priced CIM-vs-CPU per request.

Worker crashes (or the injectable ``chaos`` hook standing in for them) are
retried with :func:`repro.util.retry.retry_call` under a bounded
exponential-backoff policy; fatal compiler errors are not retried.  Every
stage is timed, and :meth:`CompileService.stats` exposes the counters and
per-stage latency percentiles behind ``sherlock serve --stats``.

On top of the per-request pipeline sits the **active-integrity layer**:

* ``placement="health"`` steers each request to the cheapest healthy
  fleet member instead of its sticky ``array_id`` (DEGRADED arrays carry
  a ``placement_penalty``, QUARANTINED arrays are skipped entirely until
  probation readmits them) — and ``schedule="multi"`` compiles
  additionally penalize DEGRADED *sub-arrays* through
  ``CompilerConfig.array_penalties``;
* ``ServeRequest(redundancy=K)`` executes on ``K`` arrays, majority-votes
  the outputs per lane (a CPU referee joins when the fleet is thin or the
  panel would be even, and breaks exact ties), answers with the voted
  result, and reports out-voted arrays to the health registry as
  top-weight failure samples;
* a :class:`~repro.serve.scrub.PatrolScrubber` march-tests idle cells in
  the background (:meth:`CompileService.scrub`, or automatically every
  ``ScrubPolicy.every_requests`` completed jobs) so latent faults — the
  ones input preloads hit *silently* — are discovered, merged into the
  known per-array maps, and placed around before a user's answer is
  corrupted;
* ``shed_policy`` picks who loses under overload: ``"reject"`` the
  newcomer (the historical behavior), ``"oldest"`` the head of the queue,
  or ``"deadline"`` the queued job with the least slack left.
"""

from __future__ import annotations

import math
import queue
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace

from repro.core.compiler import SherlockCompiler
from repro.core.config import CompilerConfig
from repro.devices.faultmap import FaultMap
from repro.dfg.evaluate import evaluate, evaluate_many
from repro.dfg.stats import structural_hash
from repro.errors import (
    DeadlineExceededError,
    HardFaultError,
    ServeError,
    ServiceOverloadError,
    SherlockError,
    WorkerCrashError,
)
from repro.serve.breaker import CircuitBreaker
from repro.serve.cache import ArtifactCache
from repro.serve.health import (
    ArrayHealth,
    HealthPolicy,
    HealthRegistry,
    subarray_exclusions,
    subarray_penalties,
)
from repro.serve.scrub import PatrolScrubber, ScrubPolicy, ScrubReport
from repro.sim.cpu import CpuSpec, dag_events, run_model
from repro.sim.executor import ArrayMachine, extract_outputs, preload_sources
from repro.sim.vectorized import validate_engine
from repro.util.retry import RetryPolicy, retry_call

__all__ = [
    "CompileService",
    "ServeRequest",
    "ServeResult",
    "ServiceStats",
    "VALID_PLACEMENTS",
    "VALID_SHED_POLICIES",
]

#: admission-control policies for a full queue (see ``shed_policy``)
VALID_SHED_POLICIES = ("reject", "oldest", "deadline")
#: compile-targeting policies (see ``placement``)
VALID_PLACEMENTS = ("sticky", "health")


@dataclass
class ServeRequest:
    """One unit of work: execute ``dag`` on ``inputs`` for one array."""

    dag: object
    inputs: dict[str, int]
    lanes: int = 16
    request_id: str = ""
    #: which array of the served fleet the request targets (its fault map
    #: keys the compile)
    array_id: int = 0
    #: wall-clock budget from submission; ``None`` = no deadline
    deadline_s: float | None = None
    #: batch mode: many independent input sets through one compile
    #: (``inputs`` is ignored when set; answers land in
    #: :attr:`ServeResult.batch_outputs`)
    input_sets: list[dict[str, int]] | None = None
    #: execution backend for the CIM path ("auto" | "interpreted" |
    #: "vectorized"); batch requests resolve "auto" to the vectorized
    #: op-table
    engine: str = "auto"
    #: voted redundant execution: run on this many arrays and answer with
    #: the per-lane majority (1 = plain single-array execution; a CPU
    #: referee joins thin fleets and breaks even-panel ties)
    redundancy: int = 1


@dataclass
class ServeResult:
    """The service's answer for one request."""

    request_id: str
    outputs: dict[str, int] | None
    #: which engine produced the outputs: "cim" or "cpu"
    engine: str = "cim"
    #: per-set outputs of a batch request (None for single-input requests)
    batch_outputs: list[dict[str, int]] | None = None
    #: whether the program came from the persistent artifact cache
    cached: bool = False
    #: whether the remap rung ran inside the service loop for this request
    remapped: bool = False
    #: the compile's degradation rung ("none" = clean compile)
    degradation: str = "none"
    #: why the request was served from the CPU baseline (None = CIM)
    offload_reason: str | None = None
    #: failure description when not even the CPU baseline could answer
    error: str | None = None
    compile_s: float = 0.0
    execute_s: float = 0.0
    total_s: float = 0.0
    #: modeled one-run CIM latency (None when the CIM path did not run)
    cim_latency_us: float | None = None
    #: modeled CPU-baseline latency for the same work (priced per request)
    cpu_latency_us: float | None = None
    array_id: int = 0
    #: the array health-aware placement actually compiled/executed on
    #: (== ``array_id`` under sticky placement; None for CPU-only answers)
    placed_array: int | None = None
    #: whether the outputs are a redundancy-K majority vote
    voted: bool = False
    #: the voting panel: fleet array ids plus "cpu" for the referee
    voters: tuple = ()
    #: arrays whose ballot the majority out-voted (reported to health)
    disagreeing: tuple = ()
    #: whether admission control evicted this request under overload
    shed: bool = False


def _majority_value(values: list[int], lanes: int,
                    tiebreak: int | None = None) -> int:
    """Per-lane majority of lane-bitmask ballots.

    A lane bit is set in the result when a strict majority of ``values``
    set it.  With an even panel, bits split exactly in half are resolved
    by ``tiebreak`` (the CPU referee's ballot) — the panel construction
    guarantees a referee is present whenever a tie is possible.
    """
    n = len(values)
    need = n // 2 + 1
    out = 0
    for bit in range(lanes):
        mask = 1 << bit
        ones = sum(1 for value in values if value & mask)
        if ones >= need:
            out |= mask
        elif tiebreak is not None and 2 * ones == n and tiebreak & mask:
            out |= mask
    return out


def _majority_outputs(ballots: list[dict[str, int]], lanes: int,
                      tiebreak: dict[str, int] | None = None
                      ) -> dict[str, int]:
    """Majority-vote every output of a ballot panel (see above)."""
    return {name: _majority_value(
        [ballot[name] for ballot in ballots], lanes,
        None if tiebreak is None else tiebreak[name])
        for name in ballots[0]}


def _percentile(values: list[float], q: float) -> float:
    """The ``q``-th percentile (nearest-rank) of a latency sample."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


#: latency samples kept per stage (a bounded window so a long-lived server
#: does not grow without bound)
_LATENCY_WINDOW = 2048

#: (array, dag) pairs remembered for proactive health recompiles
_SERVED_DAG_WINDOW = 32


class ServiceStats:
    """Thread-safe counters and latency windows of one service instance."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests = 0
        self.completed = 0
        self.cim_served = 0
        self.cpu_served = 0
        self.shed = 0
        self.retries = 0
        self.remaps = 0
        self.proactive_recompiles = 0
        self.deadline_misses = 0
        self.cim_failures = 0
        self.errors = 0
        self.queue_high_water = 0
        self.votes = 0
        self.vote_disagreements = 0
        self.placement_shifts = 0
        self.placements: dict[int, int] = {}
        self._compile_s: list[float] = []
        self._execute_s: list[float] = []
        self._total_s: list[float] = []

    def note_enqueue(self, depth: int) -> None:
        """Record an admitted request and the queue depth it saw."""
        with self._lock:
            self.requests += 1
            self.queue_high_water = max(self.queue_high_water, depth)

    def note_shed(self) -> None:
        """Record a request shed by admission control."""
        with self._lock:
            self.shed += 1

    def note_retry(self) -> None:
        """Record one worker-crash retry."""
        with self._lock:
            self.retries += 1

    def note_remap(self) -> None:
        """Record one in-service remap recompile."""
        with self._lock:
            self.remaps += 1

    def note_proactive_recompile(self) -> None:
        """Record one background health-triggered artifact recompile."""
        with self._lock:
            self.proactive_recompiles += 1

    def note_vote(self, disagreements: int) -> None:
        """Record one voted execution and its out-voted minority size."""
        with self._lock:
            self.votes += 1
            self.vote_disagreements += disagreements

    def note_placement(self, array_id: int, shifted: bool) -> None:
        """Record where one request was placed (and whether it moved)."""
        with self._lock:
            self.placements[array_id] = self.placements.get(array_id, 0) + 1
            if shifted:
                self.placement_shifts += 1

    def note_result(self, result: ServeResult) -> None:
        """Fold one finished request into the counters and windows."""
        with self._lock:
            self.completed += 1
            if result.error is not None:
                self.errors += 1
            elif result.engine == "cim":
                self.cim_served += 1
            else:
                self.cpu_served += 1
            for window, value in ((self._compile_s, result.compile_s),
                                  (self._execute_s, result.execute_s),
                                  (self._total_s, result.total_s)):
                window.append(value)
                if len(window) > _LATENCY_WINDOW:
                    del window[:len(window) - _LATENCY_WINDOW]

    def note_deadline_miss(self) -> None:
        """Record one per-job deadline miss."""
        with self._lock:
            self.deadline_misses += 1

    def note_cim_failure(self) -> None:
        """Record one CIM-path failure (what feeds the breaker)."""
        with self._lock:
            self.cim_failures += 1

    def typical_latency_s(self) -> float:
        """Median end-to-end service time of recent requests (0 if none)."""
        with self._lock:
            return _percentile(self._total_s, 50)

    def snapshot(self) -> dict:
        """All counters plus p50/p90/p99 of every stage window."""
        with self._lock:
            out = {
                "requests": self.requests,
                "completed": self.completed,
                "cim_served": self.cim_served,
                "cpu_served": self.cpu_served,
                "shed": self.shed,
                "retries": self.retries,
                "remaps": self.remaps,
                "proactive_recompiles": self.proactive_recompiles,
                "deadline_misses": self.deadline_misses,
                "cim_failures": self.cim_failures,
                "errors": self.errors,
                "queue_high_water": self.queue_high_water,
                "votes": self.votes,
                "vote_disagreements": self.vote_disagreements,
                "placement_shifts": self.placement_shifts,
                "placements": {a: self.placements[a]
                               for a in sorted(self.placements)},
            }
            for stage, window in (("compile", self._compile_s),
                                  ("execute", self._execute_s),
                                  ("total", self._total_s)):
                for q in (50, 90, 99):
                    out[f"{stage}_p{q}_ms"] = round(
                        _percentile(window, q) * 1e3, 3)
            return out


class _Job:
    """One queued request with its completion event and result slot."""

    __slots__ = ("request", "enqueued_at", "event", "result")

    def __init__(self, request: ServeRequest, enqueued_at: float) -> None:
        self.request = request
        self.enqueued_at = enqueued_at
        self.event = threading.Event()
        self.result: ServeResult | None = None

    def wait(self, timeout: float | None = None) -> ServeResult:
        """Block until the worker pool finished this job."""
        if not self.event.wait(timeout):
            raise ServeError(
                f"request {self.request.request_id!r} did not complete "
                f"within {timeout} s")
        assert self.result is not None
        return self.result


#: default retry policy: worker crashes and transient I/O are retryable,
#: everything the compiler raises is fatal for the attempt
_DEFAULT_RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.001,
                             max_delay_s=0.05,
                             retryable=(WorkerCrashError, OSError))


class CompileService:
    """Compile-and-serve runtime for one target/config over a fleet of arrays.

    ``cache`` is the persistent :class:`ArtifactCache` shared by the fleet
    (``None`` disables persistence).  ``fault_maps`` seeds the per-array
    *known* fault maps that key compiles; ``machine_faults`` optionally
    provides per-array ground-truth maps the simulated machines honor —
    faults present there but absent from the known map are what
    verify-after-write discovers and the in-loop remap rung repairs.

    ``chaos`` is a test hook called as ``chaos(stage, request)`` at the
    start of the compile and execute stages; raising
    :class:`~repro.errors.WorkerCrashError` from it simulates a worker
    killed mid-job (the retry policy re-runs the job).  ``clock`` and
    ``sleep`` are injectable for deterministic tests.

    Every successful machine run feeds its verify-after-write telemetry
    into the per-array :class:`~repro.serve.health.HealthRegistry`
    (``health`` to share one across services, ``health_policy`` to tune
    the default's thresholds).  The registry's decisions close the loop:
    quarantined arrays stop receiving CIM traffic (probation probes
    excepted), a fleet mostly quarantined trips the breaker into CPU
    offload, a degrading array's cached artifacts are proactively
    recompiled in the background against its current fault map, and
    ``schedule="multi"`` compiles exclude fault-saturated sub-arrays via
    ``CompilerConfig.exclude_arrays`` (and penalize DEGRADED-density ones
    via ``CompilerConfig.array_penalties``).

    The active-integrity knobs: ``shed_policy`` picks the overload victim
    (``"reject"`` the newcomer, ``"oldest"`` the queue head,
    ``"deadline"`` the queued job with the least slack — evicted jobs
    complete with a ``shed`` error result); ``placement="health"`` routes
    each request to the cheapest healthy fleet member
    (``placement_penalty`` is the DEGRADED surcharge) instead of its
    sticky ``array_id``; ``scrub`` configures the
    :class:`~repro.serve.scrub.PatrolScrubber` — :meth:`scrub` runs a
    budgeted march-test sweep on demand, and a nonzero
    ``ScrubPolicy.every_requests`` makes the worker pool run one
    automatically that often.
    """

    def __init__(self, target, config: CompilerConfig | None = None, *,
                 cache: ArtifactCache | None = None,
                 workers: int = 2,
                 queue_limit: int = 16,
                 deadline_s: float | None = None,
                 retry_policy: RetryPolicy | None = None,
                 breaker: CircuitBreaker | None = None,
                 cpu_spec: CpuSpec | None = None,
                 fault_maps: dict[int, FaultMap] | None = None,
                 machine_faults: dict[int, FaultMap] | None = None,
                 min_healthy_fraction: float = 0.5,
                 spare_cells: bool = True,
                 verify_writes: bool = True,
                 health: HealthRegistry | None = None,
                 health_policy: HealthPolicy | None = None,
                 shed_policy: str = "reject",
                 placement: str = "sticky",
                 placement_penalty: float = 4.0,
                 scrub: ScrubPolicy | None = None,
                 chaos=None,
                 clock=time.monotonic,
                 sleep=time.sleep) -> None:
        if workers < 1:
            raise ServeError(f"worker count must be >= 1, got {workers}")
        if queue_limit < 1:
            raise ServeError(f"queue limit must be >= 1, got {queue_limit}")
        if shed_policy not in VALID_SHED_POLICIES:
            raise ServeError(f"unknown shed policy {shed_policy!r}; "
                             f"choose from {VALID_SHED_POLICIES}")
        if placement not in VALID_PLACEMENTS:
            raise ServeError(f"unknown placement {placement!r}; "
                             f"choose from {VALID_PLACEMENTS}")
        if placement_penalty < 0.0:
            raise ServeError(
                f"placement_penalty must be >= 0, got {placement_penalty}")
        self.target = target
        self.config = config or CompilerConfig()
        self.cache = cache
        self.deadline_s = deadline_s
        self.retry_policy = retry_policy or _DEFAULT_RETRY
        self.breaker = breaker or CircuitBreaker(clock=clock)
        self.cpu_spec = cpu_spec or CpuSpec()
        self.min_healthy_fraction = min_healthy_fraction
        self.shed_policy = shed_policy
        self.placement = placement
        self.placement_penalty = placement_penalty
        self.stats_counters = ServiceStats()
        self.health = health or HealthRegistry(
            target.technology, health_policy, clock=clock,
            on_transition=self._on_health_transition)
        self.scrubber = PatrolScrubber(target, scrub)
        self._since_scrub = 0
        self._fault_maps = dict(fault_maps or {})
        self._machine_faults = dict(machine_faults or {})
        self._spare_cells = spare_cells
        self._verify_writes = verify_writes
        self._chaos = chaos
        self._clock = clock
        self._sleep = sleep
        self._queue_limit = queue_limit
        self._queue: queue.Queue = queue.Queue(maxsize=queue_limit)
        self._closed = False
        self._lock = threading.Lock()
        self._served_dags: OrderedDict = OrderedDict()
        self._recompile_threads: list[threading.Thread] = []
        self._breaker_trips_seen = 0
        self._workers = [
            threading.Thread(target=self._worker_loop,
                             name=f"sherlock-serve-{i}", daemon=True)
            for i in range(workers)]
        for thread in self._workers:
            thread.start()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain the queue and stop the worker pool (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._workers:
            self._queue.put(None)
        for thread in self._workers:
            thread.join()
        with self._lock:
            pending = list(self._recompile_threads)
        for thread in pending:
            thread.join()

    def __enter__(self) -> "CompileService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, request: ServeRequest) -> _Job:
        """Enqueue one request; sheds with ``ServiceOverloadError`` on a
        full queue.  The returned job's :meth:`_Job.wait` blocks for the
        result.
        """
        with self._lock:
            if self._closed:
                raise ServeError("service is closed")
        validate_engine(request.engine)
        if request.input_sets is not None and not request.input_sets:
            raise ServeError(
                f"batch request {request.request_id!r} has no input sets")
        if request.redundancy < 1:
            raise ServeError(
                f"redundancy must be >= 1, got {request.redundancy}")
        if request.deadline_s is None and self.deadline_s is not None:
            request.deadline_s = self.deadline_s
        job = _Job(request, self._clock())
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            if not self._shed_and_admit(job):
                self.stats_counters.note_shed()
                depth = self._queue.qsize()
                raise ServiceOverloadError(
                    f"service queue is full ({depth}/{self._queue_limit}); "
                    f"request {request.request_id!r} shed "
                    f"(policy {self.shed_policy})",
                    queue_depth=depth, queue_limit=self._queue_limit,
                    retry_after_s=self._retry_after_hint(),
                    shed_policy=self.shed_policy) from None
        self.stats_counters.note_enqueue(self._queue.qsize())
        return job

    def process(self, requests: list[ServeRequest],
                timeout_s: float | None = 60.0) -> list[ServeResult]:
        """Serve a batch, applying backpressure instead of failing.

        Requests shed by admission control are re-submitted after the
        overload error's retry-after hint (the worker pool is draining the
        queue, so a bounded number of waits always gets them in).  Results
        come back in request order.
        """
        jobs: list[_Job] = []
        for request in requests:
            while True:
                try:
                    jobs.append(self.submit(request))
                    break
                except ServiceOverloadError as error:
                    self._sleep(error.retry_after_s or 0.01)
        return [job.wait(timeout_s) for job in jobs]

    def _retry_after_hint(self) -> float:
        """When a shed client should try again (best-effort, never 0)."""
        typical = self.stats_counters.typical_latency_s()
        depth = self._queue.qsize()
        return max(0.005, typical * max(1, depth) / max(1, len(self._workers)))

    # ------------------------------------------------------------------
    # load shedding
    # ------------------------------------------------------------------
    def _shed_and_admit(self, job: _Job) -> bool:
        """Evict one queued victim per ``shed_policy`` and admit ``job``.

        Returns ``False`` (caller rejects the newcomer) under the
        ``"reject"`` policy, when no eligible victim is queued, or when a
        racing submitter refilled the freed slot.  An evicted victim's
        job completes immediately with a ``shed`` error result — its
        submitter already holds the job handle, so an exception can no
        longer reach it.
        """
        if self.shed_policy == "reject":
            return False
        with self._lock:
            evicted = self._pop_victims(job)
        for victim in evicted:
            victim.result = ServeResult(
                request_id=victim.request.request_id, outputs=None,
                engine="cpu", shed=True,
                error=(f"shed by admission control "
                       f"(policy {self.shed_policy}, queue "
                       f"{self._queue.qsize()}/{self._queue_limit})"),
                array_id=victim.request.array_id)
            self.stats_counters.note_shed()
            self.stats_counters.note_result(victim.result)
            victim.event.set()
        if not evicted:
            return False
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            return False
        return True

    def _pop_victims(self, newcomer: _Job) -> list[_Job]:
        """Pick and remove the queued job(s) the policy sacrifices.

        ``"oldest"`` pops the queue head.  ``"deadline"`` drains the
        queue, evicts the job with the least deadline slack (falling back
        to rejecting the newcomer when nothing queued carries a
        deadline), and requeues the survivors in order.  Runs under the
        service lock, but the plain ``submit`` fast path does not take
        it — a racing submitter can steal a freed slot mid-requeue, in
        which case the displaced survivor is shed too rather than lost.
        """
        if self.shed_policy == "oldest":
            try:
                victim = self._queue.get_nowait()
            except queue.Empty:
                return []
            self._queue.task_done()
            return [victim]
        # deadline: least slack loses
        drained: list[_Job] = []
        while True:
            try:
                drained.append(self._queue.get_nowait())
            except queue.Empty:
                break
        now = self._clock()
        best: tuple[float, _Job] | None = None
        for queued in drained:
            if queued.request.deadline_s is None:
                continue
            slack = queued.request.deadline_s - (now - queued.enqueued_at)
            if best is None or slack < best[0]:
                best = (slack, queued)
        chosen = best[1] if best is not None else None
        evicted = [] if chosen is None else [chosen]
        for queued in drained:
            self._queue.task_done()
            if queued is chosen:
                continue
            try:
                self._queue.put_nowait(queued)
            except queue.Full:
                evicted.append(queued)
        return evicted

    # ------------------------------------------------------------------
    # the worker pool
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                self._queue.task_done()
                return
            try:
                job.result = self._process(job)
            except Exception as error:  # never kill a worker thread
                job.result = ServeResult(
                    request_id=job.request.request_id, outputs=None,
                    engine="cpu", error=f"{type(error).__name__}: {error}",
                    array_id=job.request.array_id)
            finally:
                self.stats_counters.note_result(job.result)
                job.event.set()
                self._queue.task_done()
            self._maybe_autoscrub()

    def _check_deadline(self, job: _Job) -> None:
        deadline = job.request.deadline_s
        if deadline is None:
            return
        elapsed = self._clock() - job.enqueued_at
        if elapsed > deadline:
            raise DeadlineExceededError(
                f"request {job.request.request_id!r} exceeded its "
                f"{deadline:.3f} s deadline ({elapsed:.3f} s elapsed)")

    def _chaos_hook(self, stage: str, request: ServeRequest) -> None:
        if self._chaos is not None:
            self._chaos(stage, request)

    # ------------------------------------------------------------------
    # patrol scrubbing
    # ------------------------------------------------------------------
    def scrub(self, budget: int | None = None) -> ScrubReport:
        """Run one patrol pass: march-test, merge, report, recompile.

        March-tests the next ``budget`` idle cells (default: the scrub
        policy's) of every fleet member with a ground-truth map,
        round-robin.  Discovered latent faults merge into the array's
        *known* map (``FaultMap.merge`` — first diagnosis wins), shifting
        its compile cache key so the next request recompiles around them;
        every probed array feeds a weighted
        :meth:`~repro.serve.health.HealthRegistry.record_scrub` sample
        (clean slices actively recover DEGRADED arrays); discoveries also
        trigger the proactive background recompile of recently served
        dags.  Returns the pass's :class:`~repro.serve.scrub.ScrubReport`.
        """
        with self._lock:
            grounds = dict(self._machine_faults)
            knowns = {a: m.copy() for a, m in self._fault_maps.items()}
        report = self.scrubber.scrub(grounds, knowns, budget)
        for fleet_id in sorted(grounds):
            probed = report.probed_per_array.get(fleet_id, 0)
            found = report.discoveries.get(fleet_id)
            if probed == 0 and not found:
                continue
            added = 0
            if found:
                with self._lock:
                    known = self._fault_maps.setdefault(fleet_id, FaultMap())
                    added = known.merge(found)
            self.health.record_scrub(
                fleet_id, cells_probed=probed,
                latent_faults=len(found) if found else 0,
                weight=self.scrubber.policy.weight)
            if added:
                self._spawn_recompile(fleet_id)
        return report

    def _maybe_autoscrub(self) -> None:
        """Run the cadence scrub after every ``every_requests`` jobs."""
        every = self.scrubber.policy.every_requests
        if every <= 0:
            return
        with self._lock:
            self._since_scrub += 1
            due = self._since_scrub >= every
            if due:
                self._since_scrub = 0
        if due:
            try:
                self.scrub()
            except ServeError:
                pass  # patrol is best-effort; the request path has its own

    def _process(self, job: _Job) -> ServeResult:
        request = job.request
        started = self._clock()
        placed = self._place(request)
        self.stats_counters.note_placement(placed,
                                           placed != request.array_id)
        offload_reason = self._offload_reason(request, placed)
        result = ServeResult(request_id=request.request_id, outputs=None,
                             array_id=request.array_id, placed_array=placed)
        if offload_reason is None:
            try:
                (program, cached, outputs, remapped, vote,
                 result.compile_s, result.execute_s) = self._serve_cim(
                     job, placed)
            except SherlockError as error:
                self.stats_counters.note_cim_failure()
                if isinstance(error, DeadlineExceededError):
                    self.stats_counters.note_deadline_miss()
                self.breaker.record_failure()
                self._sync_breaker_trips()
                offload_reason = f"{type(error).__name__}: {error}"
            else:
                self.breaker.record_success()
                result.engine = "cim"
                if request.input_sets is not None:
                    result.batch_outputs = outputs
                else:
                    result.outputs = outputs
                result.cached = cached
                result.remapped = remapped
                result.degradation = program.degradation
                result.cim_latency_us = program.metrics.latency_us
                if vote is not None:
                    result.voted = True
                    result.voters, result.disagreeing = vote
        if offload_reason is not None:
            result.placed_array = None
            t0 = self._clock()
            result.engine = "cpu"
            result.offload_reason = offload_reason
            if request.input_sets is not None:
                result.batch_outputs = evaluate_many(
                    request.dag, request.input_sets, request.lanes)
            else:
                result.outputs = evaluate(request.dag, request.inputs,
                                          request.lanes)
            result.execute_s = self._clock() - t0
        result.cpu_latency_us = run_model(
            dag_events(request.dag, request.lanes), self.cpu_spec).latency_us
        result.total_s = self._clock() - started
        return result

    def _offload_reason(self, request: ServeRequest,
                        array_id: int) -> str | None:
        """Why this request must go to the CPU baseline (None = CIM ok).

        ``array_id`` is the placement decision (== the request's array
        under sticky placement).  Checked in escalation order: the
        array's static healthy capacity, its dynamic quarantine state
        (probation probes pass through — they are how a quarantined array
        earns its way back), the fleet-wide census (mostly-quarantined
        fleet => trip the breaker, serve from CPU), and finally the
        breaker itself.
        """
        healthy = self._healthy_fraction(array_id)
        if healthy < self.min_healthy_fraction:
            self.breaker.force_open()
            self._sync_breaker_trips()
            return (f"degraded-capacity: array {array_id} has only "
                    f"{healthy:.1%} healthy cells")
        if not self.health.allow(array_id):
            return (f"quarantined: array {array_id} is quarantined "
                    f"(probation pending)")
        quarantined, tracked = self.health.census()
        if (tracked and (tracked - quarantined) / tracked
                < self.min_healthy_fraction
                and self.health.state_of(array_id)
                is not ArrayHealth.QUARANTINED):
            self.breaker.force_open()
            self._sync_breaker_trips()
            return (f"degraded-fleet: only {tracked - quarantined}/{tracked} "
                    f"tracked arrays healthy")
        if not self.breaker.allow():
            return "breaker-open"
        return None

    # ------------------------------------------------------------------
    # health-aware placement
    # ------------------------------------------------------------------
    def _fleet_arrays(self) -> list[int]:
        """Every fleet member the service knows about, sorted."""
        with self._lock:
            known = set(self._fault_maps) | set(self._machine_faults)
        return sorted(known | set(self.health.tracked()))

    def _placement_cost(self, array_id: int) -> float:
        """The placement score of one candidate (lower is better).

        Known-fault density is the base cost, a DEGRADED verdict adds the
        configured ``placement_penalty``, and QUARANTINED is infinitely
        expensive (probation re-admission goes through the offload gate,
        not through placement).
        """
        state = self.health.state_of(array_id)
        if state is ArrayHealth.QUARANTINED:
            return math.inf
        with self._lock:
            faults = len(self._fault_maps.get(array_id) or ())
        total = max(1, self.target.num_arrays * self.target.rows
                    * self.target.cols)
        cost = faults / total
        if state is ArrayHealth.DEGRADED:
            cost += self.placement_penalty
        return cost

    def _place(self, request: ServeRequest) -> int:
        """Choose the fleet member this request compiles/executes on.

        Sticky placement honors the request's ``array_id``.  Health-aware
        placement picks the cheapest candidate, preferring the requested
        array on ties — and always returns the requested array when it is
        QUARANTINED, so probation probes keep hitting the array that must
        earn its way back.
        """
        requested = request.array_id
        if self.placement != "health":
            return requested
        if self.health.state_of(requested) is ArrayHealth.QUARANTINED:
            return requested
        candidates = sorted(set(self._fleet_arrays()) | {requested})
        best = min(candidates,
                   key=lambda a: (self._placement_cost(a),
                                  a != requested, a))
        if math.isinf(self._placement_cost(best)):
            return requested
        return best

    def _sync_breaker_trips(self) -> None:
        """Mirror new breaker trips into the health registry's counters."""
        trips = self.breaker.snapshot()["trips"]
        with self._lock:
            new = trips - self._breaker_trips_seen
            self._breaker_trips_seen = trips
        for _ in range(new):
            self.health.note_breaker_trip()

    def _healthy_fraction(self, array_id: int) -> float:
        known = self._fault_maps.get(array_id)
        if not known:
            return 1.0
        total = self.target.num_arrays * self.target.rows * self.target.cols
        return 1.0 - len(known) / total

    # ------------------------------------------------------------------
    # the CIM path
    # ------------------------------------------------------------------
    def _serve_cim(self, job: _Job, array_id: int):
        request = job.request

        def attempt():
            self._check_deadline(job)
            self._chaos_hook("compile", request)
            t0 = self._clock()
            program, cached = self._compiled(request, array_id)
            compile_s = self._clock() - t0
            self._check_deadline(job)
            self._chaos_hook("execute", request)
            t1 = self._clock()
            outputs, program_used, vote = self._execute(program, request,
                                                        array_id)
            execute_s = self._clock() - t1
            return (program_used, cached, outputs,
                    program_used is not program, vote, compile_s, execute_s)

        return retry_call(
            attempt, policy=self.retry_policy, sleep=self._sleep,
            on_retry=lambda *_: self.stats_counters.note_retry(),
            label=f"serve:{request.request_id or 'request'}")

    def _known_map(self, array_id: int) -> FaultMap | None:
        with self._lock:
            known = self._fault_maps.get(array_id)
            return known.copy() if known else None

    def _config_for(self, fault_map: FaultMap | None) -> CompilerConfig:
        """The compile config for one array's current fault map.

        Multi-array schedules additionally exclude fault-saturated
        sub-arrays (the quarantine decision expressed as a compile
        constraint) and penalize DEGRADED-density ones
        (``array_penalties`` — the soft steer); since the config
        participates in both cache keys, either set shifting recompiles
        naturally.
        """
        if self.config.schedule != "multi" or not fault_map:
            return self.config
        exclude = subarray_exclusions(fault_map, self.target)
        penalties = subarray_penalties(fault_map, self.target,
                                       penalty=self.placement_penalty)
        if (exclude == self.config.exclude_arrays
                and penalties == self.config.array_penalties):
            return self.config
        return self.config.with_(exclude_arrays=exclude,
                                 array_penalties=penalties)

    def _note_served(self, request: ServeRequest, array_id: int) -> None:
        """Remember the dag for proactive recompiles (bounded window)."""
        entry = (array_id, structural_hash(request.dag))
        with self._lock:
            self._served_dags[entry] = request.dag
            self._served_dags.move_to_end(entry)
            while len(self._served_dags) > _SERVED_DAG_WINDOW:
                self._served_dags.popitem(last=False)

    def _compiled(self, request: ServeRequest, array_id: int):
        """Resolve the request's program: artifact cache, then compile."""
        fault_map = self._known_map(array_id)
        config = self._config_for(fault_map)
        self._note_served(request, array_id)
        key = None
        if self.cache is not None:
            key = ArtifactCache.key_for(request.dag, self.target,
                                        config, fault_map)
            program = self.cache.get(key)
            if program is not None:
                return program, True
        compiler = SherlockCompiler(self.target, config,
                                    fault_map=fault_map)
        program = compiler.compile(request.dag)
        if self.cache is not None:
            self.cache.put(key, program)
        return program, False

    def _machine_for(self, program, request: ServeRequest,
                     array_id: int) -> ArrayMachine:
        ground = self._machine_faults.get(array_id)
        fault_map = ground if ground is not None else program.fault_map
        spare_pool = None
        if self._verify_writes:
            spare_pool = []
            if self._spare_cells and program.stages is None:
                spare_pool = program.layout.spare_cells()
        return ArrayMachine(
            program.target, request.lanes, strict_shift=True,
            fault_map=fault_map, verify_writes=self._verify_writes,
            write_retries=self.config.write_retries, spare_pool=spare_pool)

    def _run_on(self, machine: ArrayMachine, program,
                request: ServeRequest) -> dict[str, int]:
        if program.stages is not None:
            from repro.mapping.partition import execute_staged

            return execute_staged(program.stages, program.dag,
                                  program.target, request.inputs,
                                  request.lanes, machine=machine)
        preload_sources(machine, program.layout, program.dag, request.inputs)
        machine.run(program.instructions)
        return extract_outputs(machine, program.layout, program.dag)

    def _execute(self, program, request: ServeRequest, array_id: int):
        """Run the program; a hard fault triggers the in-loop remap rung.

        Returns ``(outputs, program_used, vote)`` — ``program_used`` is
        the remapped program when the rung ran, the original otherwise,
        and ``vote`` is ``(voters, disagreeing)`` for redundancy > 1
        requests (``None`` for plain ones).  Batch requests
        (``input_sets``) take the compile-once/execute-many fast path
        instead: the lowered op-table streams every set through in bulk
        (no per-write verification — the throughput trade-off is
        documented in ``docs/PERFORMANCE.md``).
        """
        if request.redundancy > 1:
            outputs, vote = self._execute_voted(program, request, array_id)
            return outputs, program, vote
        if request.input_sets is not None:
            return program.execute_many(
                request.input_sets, lanes=request.lanes,
                engine=request.engine), program, None
        machine = self._machine_for(program, request, array_id)
        try:
            outputs = self._run_on(machine, program, request)
        except HardFaultError:
            self._note_machine(machine, array_id, hard_fault=True)
            remapped = self._remap(program, request, array_id,
                                   machine.discovered_faults)
            retry_machine = self._machine_for(remapped, request, array_id)
            outputs = self._run_on(retry_machine, remapped, request)
            self._note_machine(retry_machine, array_id)
            return outputs, remapped, None
        self._note_machine(machine, array_id)
        return outputs, program, None

    # ------------------------------------------------------------------
    # voted redundant execution
    # ------------------------------------------------------------------
    def _voter_arrays(self, placed: int, k: int) -> list[int]:
        """Up to ``k`` voting arrays: the placement first, then the
        cheapest non-quarantined fleet members."""
        voters = [placed]
        ranked = sorted((a for a in self._fleet_arrays() if a != placed),
                        key=lambda a: (self._placement_cost(a), a))
        for array_id in ranked:
            if len(voters) >= k:
                break
            if math.isinf(self._placement_cost(array_id)):
                continue
            voters.append(array_id)
        return voters

    def _voter_program(self, program, array_id: int):
        """A clone of ``program`` carrying the voter's ground-truth map.

        The batch path executes through the program's own ``fault_map``
        (both engines; the vectorized lowering bakes it in), so per-array
        voting needs a per-voter program.  Clones are cached on the
        program instance keyed by the ground map's content digest — a
        chaos event mutating the map in place gets a fresh clone (and a
        fresh lowering) on the next vote.
        """
        ground = self._machine_faults.get(array_id)
        if ground is None:
            return program
        digest = ground.digest()
        cache = program.__dict__.setdefault("_voter_programs", {})
        clone = cache.get((array_id, digest))
        if clone is None:
            if len(cache) >= 8:  # bound per-program clone growth
                cache.clear()
            clone = replace(program, fault_map=ground.copy())
            cache[(array_id, digest)] = clone
        return clone

    def _execute_voted(self, program, request: ServeRequest, placed: int):
        """Execute on ``redundancy`` arrays and majority-vote per lane.

        Ballots come from the placement plus the cheapest healthy fleet
        members; a voter that hard-faults drops out (recorded as a
        rate-1.0 health sample).  The CPU reference evaluator joins the
        panel as referee whenever fewer than ``redundancy`` CIM ballots
        survive *or* the panel would be even, and breaks exact ties — so
        a strict per-lane majority always exists.  Every out-voted array
        is reported via
        :meth:`~repro.serve.health.HealthRegistry.record_vote_disagreement`.
        Returns ``(outputs, (voters, disagreeing))``.
        """
        batch = request.input_sets is not None
        ballots: list[tuple[int, object]] = []
        for array_id in self._voter_arrays(placed, request.redundancy):
            try:
                if batch:
                    clone = self._voter_program(program, array_id)
                    outputs = clone.execute_many(
                        request.input_sets, lanes=request.lanes,
                        engine=request.engine)
                else:
                    machine = self._machine_for(program, request, array_id)
                    outputs = self._run_on(machine, program, request)
                    self._note_machine(machine, array_id)
            except HardFaultError:
                self.health.record_execution(array_id, hard_fault=True)
                continue
            ballots.append((array_id, outputs))
        referee = None
        if len(ballots) < request.redundancy or len(ballots) % 2 == 0:
            if batch:
                referee = evaluate_many(request.dag, request.input_sets,
                                        request.lanes)
            else:
                referee = evaluate(request.dag, request.inputs,
                                   request.lanes)
            ballots.append((-1, referee))
        if batch:
            voted = [
                _majority_outputs(
                    [outputs[index] for _, outputs in ballots],
                    request.lanes,
                    None if referee is None else referee[index])
                for index in range(len(request.input_sets))]
        else:
            voted = _majority_outputs([outputs for _, outputs in ballots],
                                      request.lanes,
                                      referee)
        voters = tuple("cpu" if a < 0 else a for a, _ in ballots)
        disagreeing = tuple(a for a, outputs in ballots
                            if a >= 0 and outputs != voted)
        for array_id in disagreeing:
            self.health.record_vote_disagreement(array_id)
        self.stats_counters.note_vote(len(disagreeing))
        return voted, (voters, disagreeing)

    def _note_machine(self, machine: ArrayMachine, array_id: int,
                      *, hard_fault: bool = False) -> None:
        """Feed one machine run's telemetry into the health registry."""
        self.health.record_execution(
            array_id,
            writes_verified=machine.writes_verified,
            write_retries_used=machine.write_retries_used,
            write_failures_injected=machine.write_failures_injected,
            discovered_faults=len(machine.discovered_faults),
            remaps=len(machine.remaps),
            hard_fault=hard_fault)

    def _remap(self, program, request: ServeRequest, array_id: int,
               discovered: FaultMap):
        """The remap rung inside the service loop.

        Merges the machine-discovered faults into the fleet's known map
        for the array, recompiles the request around them, and publishes
        the new artifact under the merged map's key so every array with
        the same map shares it.
        """
        known = self._known_map(array_id)
        config = self._config_for(known)
        compiler = SherlockCompiler(self.target, config, fault_map=known)
        remapped = compiler.remap(program, discovered)
        with self._lock:
            self._fault_maps[array_id] = remapped.fault_map.copy()
        if self.cache is not None:
            key = ArtifactCache.key_for(request.dag, self.target,
                                        config, remapped.fault_map)
            self.cache.put(key, remapped)
        self.stats_counters.note_remap()
        self._spawn_recompile(array_id)
        return remapped

    # ------------------------------------------------------------------
    # adaptive responses to health transitions
    # ------------------------------------------------------------------
    def _on_health_transition(self, array_id: int, old: ArrayHealth,
                              new: ArrayHealth, reason: str) -> None:
        """Registry callback: react to an array changing state."""
        if new in (ArrayHealth.DEGRADED, ArrayHealth.QUARANTINED):
            self._spawn_recompile(array_id)

    def _spawn_recompile(self, array_id: int) -> None:
        """Refresh the array's cached artifacts in the background.

        A degrading (or freshly remapped) array's fault map just moved,
        so its cached programs are keyed off a stale map; recompiling the
        dags it recently served against the *current* map makes the next
        request a warm hit instead of an inline compile.  Best-effort:
        compile failures are swallowed (the request path handles them
        with full diagnostics).
        """
        if self.cache is None:
            return
        with self._lock:
            if self._closed:
                return
            dags = [dag for (aid, _h), dag in self._served_dags.items()
                    if aid == array_id]
            if not dags:
                return
            thread = threading.Thread(
                target=self._recompile_dags, args=(array_id, dags),
                name=f"sherlock-health-recompile-{array_id}", daemon=True)
            self._recompile_threads = [
                t for t in self._recompile_threads if t.is_alive()]
            self._recompile_threads.append(thread)
        thread.start()

    def _recompile_dags(self, array_id: int, dags: list) -> None:
        fault_map = self._known_map(array_id)
        config = self._config_for(fault_map)
        for dag in dags:
            key = ArtifactCache.key_for(dag, self.target, config, fault_map)
            if self.cache.path_for(key).exists():
                continue  # already published under the current map
            try:
                program = SherlockCompiler(
                    self.target, config, fault_map=fault_map).compile(dag)
            except SherlockError:
                continue
            self.cache.put(key, program)
            self.stats_counters.note_proactive_recompile()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def fault_map_of(self, array_id: int) -> FaultMap | None:
        """A copy of the fleet's current known map for one array."""
        return self._known_map(array_id)

    def stats(self) -> dict:
        """Counters, latency percentiles, cache/breaker/health snapshots."""
        out = self.stats_counters.snapshot()
        out["queue_depth"] = self._queue.qsize()
        out["queue_limit"] = self._queue_limit
        out["workers"] = len(self._workers)
        out["shed_policy"] = self.shed_policy
        out["placement"] = self.placement
        out["breaker"] = self.breaker.snapshot()
        out["cache"] = (self.cache.stats() if self.cache is not None
                        else None)
        out["health"] = self.health.snapshot()
        out["scrub"] = self.scrubber.stats()
        return out

    def stats_text(self) -> str:
        """The ``sherlock serve --stats`` rendering of :meth:`stats`."""
        stats = self.stats()
        breaker = stats.pop("breaker")
        cache = stats.pop("cache")
        health = stats.pop("health")
        scrub = stats.pop("scrub")
        lines = ["service:"]
        lines += [f"  {key}: {stats[key]}" for key in sorted(stats)]
        lines.append(f"breaker: state={breaker['state']} "
                     f"trips={breaker['trips']} "
                     f"consecutive_failures={breaker['consecutive_failures']}")
        if cache is None:
            lines.append("artifact cache: disabled")
        else:
            lines.append("artifact cache: "
                         + " ".join(f"{k}={cache[k]}" for k in sorted(cache)))
        lines.append(f"scrub: passes={scrub['passes']} "
                     f"cells_probed={scrub['cells_probed']} "
                     f"latent_faults_found={scrub['latent_faults_found']} "
                     f"sweeps={scrub['sweeps']}")
        lines.append(
            f"health: baseline={health['baseline']:.1e} "
            f"arrays={len(health['arrays'])} "
            f"degraded={health['degraded']} "
            f"quarantined={health['quarantined']} "
            f"recovered={health['recovered']} "
            f"breaker_trips={health['breaker_trips']} "
            f"vote_disagreements={health['vote_disagreements']}")
        for array_id in sorted(health["arrays"]):
            entry = health["arrays"][array_id]
            lines.append(
                f"  array {array_id}: state={entry['state']} "
                f"rate={entry['failure_rate']:.2e} "
                f"samples={entry['samples']} probes={entry['probes']} "
                f"retries={entry['retries']} "
                f"hard_faults={entry['hard_faults']} "
                f"scrubbed={entry['scrub_probes']} "
                f"latent={entry['scrub_faults']} "
                f"outvoted={entry['vote_disagreements']}")
        for transition in health["transitions"]:
            lines.append(
                f"  transition: array {transition['array']} "
                f"{transition['from']} -> {transition['to']} "
                f"({transition['reason']})")
        return "\n".join(lines)
