"""Circuit breaker gating CIM execution in the compile-and-serve loop.

TDO-CIM-style offload needs a cheap, local decision: is the CIM path
currently trustworthy enough to send a request to, or should the service
fall back to the CPU baseline?  :class:`CircuitBreaker` is the standard
three-state machine:

* **CLOSED** — healthy; every request may use the CIM path.  Each failure
  increments a consecutive-failure counter, each success resets it; when
  the counter reaches ``failure_threshold`` the breaker *trips* to OPEN.
* **OPEN** — tripped; :meth:`allow` answers ``False`` (the service serves
  from the CPU baseline) until ``recovery_time_s`` has elapsed.
* **HALF_OPEN** — the recovery window elapsed; exactly one probe request
  is allowed through.  A probe success closes the breaker, a probe
  failure re-trips it for another full recovery window.

The clock is injectable so tests drive the state machine deterministically
without sleeping.
"""

from __future__ import annotations

import threading
import time
from enum import Enum

from repro.errors import ServeError

__all__ = ["BreakerState", "CircuitBreaker"]


class BreakerState(Enum):
    """The three classic circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker with half-open probing; thread-safe."""

    def __init__(self, *, failure_threshold: int = 3,
                 recovery_time_s: float = 1.0,
                 clock=time.monotonic) -> None:
        if failure_threshold < 1:
            raise ServeError(
                f"failure threshold must be >= 1, got {failure_threshold}")
        if recovery_time_s < 0:
            raise ServeError(
                f"recovery time must be >= 0, got {recovery_time_s}")
        self.failure_threshold = failure_threshold
        self.recovery_time_s = recovery_time_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        self.trips = 0

    @property
    def state(self) -> BreakerState:
        """The current state (OPEN may lazily become HALF_OPEN on allow)."""
        with self._lock:
            return self._state

    @property
    def consecutive_failures(self) -> int:
        """Failures recorded since the last success (CLOSED state only)."""
        with self._lock:
            return self._consecutive_failures

    def allow(self) -> bool:
        """Whether the next request may take the CIM path.

        In OPEN, the first call after the recovery window transitions to
        HALF_OPEN and admits exactly one probe; further calls answer
        ``False`` until that probe's outcome is recorded.
        """
        with self._lock:
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.OPEN:
                if self._clock() - self._opened_at < self.recovery_time_s:
                    return False
                self._state = BreakerState.HALF_OPEN
                self._probe_inflight = True
                return True
            # HALF_OPEN: one probe at a time
            if self._probe_inflight:
                return False
            self._probe_inflight = True
            return True

    def record_success(self) -> None:
        """A CIM request succeeded: reset (and close a half-open breaker)."""
        with self._lock:
            self._consecutive_failures = 0
            self._probe_inflight = False
            self._state = BreakerState.CLOSED

    def record_failure(self) -> None:
        """A CIM request failed: count, and trip when the budget is spent."""
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                self._trip()
                return
            self._consecutive_failures += 1
            if (self._state is BreakerState.CLOSED
                    and self._consecutive_failures >= self.failure_threshold):
                self._trip()

    def _trip(self) -> None:
        self._state = BreakerState.OPEN
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self._probe_inflight = False
        self.trips += 1

    def force_open(self) -> None:
        """Trip the breaker immediately (capacity-based offload)."""
        with self._lock:
            if self._state is not BreakerState.OPEN:
                self._trip()

    def snapshot(self) -> dict:
        """State, trip count and failure counter for the stats surface."""
        with self._lock:
            return {"state": self._state.value, "trips": self.trips,
                    "consecutive_failures": self._consecutive_failures}
