"""Request parsing, the batch request-file runner, and the TCP server.

``sherlock serve`` speaks one request shape in two transports:

* **batch** — ``--requests FILE`` where the file is either a JSON list of
  request objects or line-delimited JSON (one object per line; blank
  lines and ``#`` comments ignored), answered as line-delimited JSON
  results on stdout;
* **socket** — ``--port N`` starts a threading TCP server; each
  connection sends line-delimited JSON requests and receives one JSON
  result line per request.  The literal request ``{"cmd": "stats"}``
  answers with the service's stats snapshot instead.

A request object names its kernel one of three ways::

    {"id": "r1", "kernel": "int f(int a, int b){return a & b;}",
     "inputs": {"a": 5, "b": 3}, "lanes": 16, "array_id": 0}
    {"id": "r2", "workload": "bitweaving", "seed": 7}
    {"id": "r3", "synthetic": 24, "seed": 3}

``inputs`` may be omitted — missing input operands are filled with
reproducible lane bitmasks drawn from ``seed``.  ``deadline_s`` bounds
the request inside the service loop.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import random
import socketserver

from repro.errors import ServeError, ServiceOverloadError, SherlockError
from repro.serve.service import CompileService, ServeRequest, ServeResult

__all__ = [
    "handle_request_file",
    "parse_request",
    "parse_request_lines",
    "result_to_dict",
    "serve_tcp",
]


def _request_dag(obj: dict):
    """Build the request's DAG from ``kernel``/``workload``/``synthetic``."""
    sources = [key for key in ("kernel", "workload", "synthetic")
               if obj.get(key) is not None]
    if len(sources) != 1:
        raise ServeError(
            "request must name exactly one of 'kernel', 'workload', "
            f"'synthetic'; got {sources or 'none'}")
    if "kernel" in sources:
        from repro.frontend import c_to_dfg

        return c_to_dfg(obj["kernel"], obj.get("function"))
    if "workload" in sources:
        from repro.workloads import get_workload

        return get_workload(obj["workload"]).build_dag()
    from repro.workloads.synthetic import synthetic_dag

    ops = obj["synthetic"]
    if not isinstance(ops, int) or ops < 1:
        raise ServeError(f"'synthetic' must be a positive op count, "
                         f"got {ops!r}")
    return synthetic_dag(num_ops=ops, num_inputs=8,
                         seed=int(obj.get("seed", 0)),
                         name=f"synthetic{ops}")


def _checked_inputs(obj_inputs, dag, lanes: int,
                    rng: random.Random) -> dict[str, int]:
    """One validated input mapping, missing operands filled from ``rng``."""
    inputs = dict(obj_inputs or {})
    for name, value in inputs.items():
        if not isinstance(value, int) or isinstance(value, bool):
            raise ServeError(
                f"input {name!r} must be an integer lane bitmask, "
                f"got {value!r}")
    for operand in dag.inputs():
        if operand.name not in inputs:
            inputs[operand.name] = rng.getrandbits(lanes)
    return inputs


def parse_request(obj: dict, default_lanes: int = 16) -> ServeRequest:
    """Turn one JSON request object into a :class:`ServeRequest`.

    ``"input_sets": [{...}, ...]`` makes a batch request (one compile,
    many executions; see :attr:`ServeRequest.input_sets`); ``"engine"``
    picks the execution backend for the CIM path; ``"redundancy": K``
    requests voted redundant execution on ``K`` arrays (per input set for
    batch requests).
    """
    if not isinstance(obj, dict):
        raise ServeError(f"request must be a JSON object, got {type(obj).__name__}")
    dag = _request_dag(obj)
    lanes = int(obj.get("lanes", default_lanes))
    if lanes < 1:
        raise ServeError(f"lanes must be >= 1, got {lanes}")
    rng = random.Random(int(obj.get("seed", 0)))
    inputs = _checked_inputs(obj.get("inputs"), dag, lanes, rng)
    input_sets = None
    if obj.get("input_sets") is not None:
        raw_sets = obj["input_sets"]
        if not isinstance(raw_sets, list) or not raw_sets:
            raise ServeError(
                f"'input_sets' must be a non-empty list, got {raw_sets!r}")
        input_sets = [_checked_inputs(entry, dag, lanes, rng)
                      for entry in raw_sets]
    deadline = obj.get("deadline_s")
    redundancy = int(obj.get("redundancy", 1))
    if redundancy < 1:
        raise ServeError(f"redundancy must be >= 1, got {redundancy}")
    return ServeRequest(
        dag=dag, inputs=inputs, lanes=lanes,
        request_id=str(obj.get("id", "")),
        array_id=int(obj.get("array_id", 0)),
        deadline_s=float(deadline) if deadline is not None else None,
        input_sets=input_sets,
        engine=str(obj.get("engine", "auto")),
        redundancy=redundancy)


def parse_request_lines(text: str, default_lanes: int = 16,
                        ) -> list[ServeRequest]:
    """Parse a request file: a JSON list, or line-delimited JSON objects."""
    stripped = text.lstrip()
    try:
        if stripped.startswith("["):
            objects = json.loads(text)
        else:
            objects = [json.loads(line)
                       for line in text.splitlines()
                       if line.strip() and not line.lstrip().startswith("#")]
    except json.JSONDecodeError as error:
        raise ServeError(f"request file is not valid JSON: {error}") from None
    return [parse_request(obj, default_lanes) for obj in objects]


def result_to_dict(result: ServeResult) -> dict:
    """A :class:`ServeResult` as a JSON-compatible dictionary."""
    return dataclasses.asdict(result)


def handle_request_file(service: CompileService,
                        path: str | pathlib.Path,
                        default_lanes: int = 16) -> list[ServeResult]:
    """Batch mode: serve every request in ``path`` through the service."""
    requests = parse_request_lines(pathlib.Path(path).read_text(),
                                   default_lanes)
    return service.process(requests)


#: default per-line request size bound of the TCP front-end — far above
#: any legitimate request, far below what could balloon handler memory
MAX_REQUEST_BYTES = 1 << 20


class _ServeHandler(socketserver.StreamRequestHandler):
    """One connection: line-delimited JSON requests in, results out.

    Hardened: a malformed JSON line, an oversized request line, or any
    unexpected processing error answers a structured ``{"error": ...}``
    line and the connection *stays usable* for the next request; only a
    dead socket ends the loop.
    """

    def handle(self) -> None:  # noqa: D102 - socketserver interface
        service: CompileService = self.server.service  # type: ignore[attr-defined]
        limit = self.server.max_request_bytes  # type: ignore[attr-defined]
        while True:
            try:
                raw = self.rfile.readline(limit + 1)
            except OSError:
                return
            if not raw:
                return
            if len(raw) > limit and not raw.endswith(b"\n"):
                dropped = self._drain_line(limit)
                if not self._answer({
                        "error": f"request line exceeds {limit} bytes "
                                 f"(dropped {dropped} bytes)",
                        "oversized": True, "limit_bytes": limit}):
                    return
                continue
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
                if isinstance(obj, dict) and obj.get("cmd") == "stats":
                    answer = service.stats()
                else:
                    request = parse_request(obj)
                    job = service.submit(request)
                    answer = result_to_dict(job.wait())
            except ServiceOverloadError as error:
                answer = {"error": str(error), "overloaded": True,
                          "queue_depth": error.queue_depth,
                          "queue_limit": error.queue_limit,
                          "retry_after_s": error.retry_after_s}
            except (SherlockError, json.JSONDecodeError) as error:
                answer = {"error": str(error)}
            except Exception as error:  # never crash the connection
                answer = {"error": f"{type(error).__name__}: {error}"}
            if not self._answer(answer):
                return

    def _drain_line(self, limit: int) -> int:
        """Discard the rest of an oversized line; bytes dropped so far."""
        dropped = 0
        while True:
            try:
                chunk = self.rfile.readline(limit + 1)
            except OSError:
                return dropped
            dropped += len(chunk)
            if not chunk or chunk.endswith(b"\n"):
                return dropped

    def _answer(self, answer: dict) -> bool:
        """Write one result line; ``False`` when the client went away."""
        try:
            self.wfile.write((json.dumps(answer) + "\n").encode())
            self.wfile.flush()
        except (OSError, ValueError):
            return False
        return True


class _ServeServer(socketserver.ThreadingTCPServer):
    """Threading TCP server carrying the service on the server object."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, service: CompileService,
                 max_request_bytes: int = MAX_REQUEST_BYTES) -> None:
        super().__init__(address, _ServeHandler)
        self.service = service
        self.max_request_bytes = max_request_bytes


def serve_tcp(service: CompileService, host: str = "127.0.0.1",
              port: int = 0,
              max_request_bytes: int = MAX_REQUEST_BYTES) -> _ServeServer:
    """Bind the TCP front-end (port 0 = ephemeral); caller runs/stops it.

    Returns the bound server; ``server.server_address`` carries the actual
    port.  Call ``serve_forever()`` to serve (blocking) and ``shutdown()``
    + ``server_close()`` to stop — the ``sherlock serve --port`` CLI does
    exactly that around a KeyboardInterrupt.  ``max_request_bytes``
    bounds one request line; longer lines are drained and answered with
    a structured error instead of buffering without limit.
    """
    if max_request_bytes < 1:
        raise ServeError(
            f"max_request_bytes must be >= 1, got {max_request_bytes}")
    return _ServeServer((host, port), service, max_request_bytes)
