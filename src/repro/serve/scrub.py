"""Patrol scrubbing: find latent faults before a user's request does.

The serve loop's existing defenses are all *reactive*: verify-after-write
catches a stuck cell only when live traffic writes to it, and input
preloads bounce off faulty cells silently (no read-back at all), so a
stuck-at on an operand cell corrupts answers without producing a single
failure sample.  A :class:`PatrolScrubber` closes that blind spot the way
DRAM/NVM controllers do — a budgeted background sweep that march-tests
idle cells against the ground-truth ``machine_faults`` model and reports
what live traffic cannot see.

Determinism is a design requirement, not a nicety: each fleet member's
probe order is a seeded shuffle of its full cell space, fixed at first
sweep, and every scrub consumes the next ``budget`` cells round-robin
across the fleet.  Same seed + same budget sequence ⇒ the identical probe
sequence and the identical discoveries, which is what lets the CI scrub
gate replay "planted latent fault found before any request fails" exactly.

The scrubber is passive like the health registry: it diagnoses and
reports via a :class:`ScrubReport`; the *service* merges discoveries into
its known per-array fault maps (``FaultMap.merge`` — first diagnosis
wins), feeds :meth:`~repro.serve.health.HealthRegistry.record_scrub`, and
triggers the proactive-recompile path so new compiles place around the
freshly known cells.

A model caveat worth knowing when reading reports: a DEAD cell in the
fault model forces 0 at sense time, exactly like STUCK0, so the march
element (w0r0, w1r1) classifies it as STUCK0.  That is the *observed*
behavior — and the only consumer of the discovered kind is placement
avoidance, which treats every fault kind identically.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field

from repro.devices.faultmap import CellFault, FaultMap
from repro.errors import ServeError

__all__ = ["PatrolScrubber", "ScrubPolicy", "ScrubReport", "march_test"]

#: cell address tuple used throughout: (sub_array, row, col)
_Cell = tuple[int, int, int]


@dataclass(frozen=True)
class ScrubPolicy:
    """Budget and cadence of the patrol scrubber."""

    #: cells march-tested per sweep slice (split round-robin over fleet)
    budget: int = 256
    #: seeds the per-array probe-order shuffle (determinism anchor)
    seed: int = 0
    #: weight of a scrub discovery as a health sample (see
    #: :meth:`~repro.serve.health.HealthRegistry.record_scrub`)
    weight: float = 16.0
    #: auto-scrub after every N completed service requests (0 = manual)
    every_requests: int = 0

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise ServeError(f"scrub budget must be >= 1, got {self.budget}")
        if self.weight < 0.0:
            raise ServeError(f"scrub weight must be >= 0, got {self.weight}")
        if self.every_requests < 0:
            raise ServeError(
                f"every_requests must be >= 0, got {self.every_requests}")


@dataclass
class ScrubReport:
    """What one scrub pass probed and what it found."""

    #: probe sequence in execution order: (fleet_array, (sub, row, col))
    probed: list[tuple[int, _Cell]] = field(default_factory=list)
    #: fleet array -> newly diagnosed faults (absent from the known map)
    discoveries: dict[int, FaultMap] = field(default_factory=dict)
    #: fleet array -> cells probed this pass
    probed_per_array: dict[int, int] = field(default_factory=dict)

    @property
    def cells_probed(self) -> int:
        """Total cells march-tested this pass."""
        return len(self.probed)

    @property
    def latent_faults_found(self) -> int:
        """Total newly diagnosed faults this pass."""
        return sum(len(found) for found in self.discoveries.values())


def march_test(ground: FaultMap | None, cell: _Cell,
               mask: int) -> CellFault | None:
    """One march element (w0r0, w1r1) on ``cell`` against the fault model.

    Writes the all-zeros then the all-ones lane pattern and checks each
    read-back: a cell that fails the ones pattern reads back 0s where 1s
    were written (STUCK0), one that fails the zeros pattern forces 1s
    (STUCK1), and one that fails both is DEAD.  ``mask`` is the all-ones
    lane pattern (``(1 << lanes) - 1``).  Returns the *observed* fault
    kind, or ``None`` for a cell that reads back both patterns faithfully.
    """
    if mask <= 0:
        raise ServeError(f"march mask must be positive, got {mask}")
    if ground is None:
        return None
    fault = ground.fault_at(*cell)
    if fault is None:
        return None  # healthy cells echo both patterns
    forced = fault.forced_value(mask)
    fails_zeros = forced != 0
    fails_ones = forced != mask
    if fails_zeros and fails_ones:
        return CellFault.DEAD
    return CellFault.STUCK1 if fails_zeros else CellFault.STUCK0


class PatrolScrubber:
    """Deterministic budgeted march-test sweeps over a served fleet.

    One instance patrols one service's fleet: ``target`` fixes each
    member's cell space (``num_arrays`` sub-arrays x ``rows`` x ``cols``
    — full rows, spare rows included, because spares matter most when a
    remap is about to land on one).  The probe order per fleet member is
    a ``random.Random(seed * P + array_id)``-shuffled permutation of that
    space, computed once and then consumed cursor-style: successive
    scrubs continue where the last stopped and wrap around, so the whole
    array is eventually covered no matter how small the per-pass budget.
    ``sweeps`` counts those complete wrap-arounds per member.

    Thread-safe; counters are cumulative across the instance's lifetime.
    """

    def __init__(self, target, policy: ScrubPolicy | None = None) -> None:
        self.target = target
        self.policy = policy or ScrubPolicy()
        self._lock = threading.Lock()
        self._orders: dict[int, list[_Cell]] = {}
        self._cursors: dict[int, int] = {}
        self._probed: dict[int, int] = {}
        self._found: dict[int, int] = {}
        self._sweeps: dict[int, int] = {}
        self._passes = 0

    # ------------------------------------------------------------------
    # the sweep
    # ------------------------------------------------------------------
    def _order_for(self, fleet_id: int) -> list[_Cell]:
        """The fleet member's fixed, seeded probe permutation."""
        order = self._orders.get(fleet_id)
        if order is None:
            target = self.target
            order = [(sub, row, col)
                     for sub in range(target.num_arrays)
                     for row in range(target.rows)
                     for col in range(target.cols)]
            # integer-mixed seed: deterministic across processes (no
            # reliance on string hashing) and distinct per fleet member
            random.Random(self.policy.seed * 1_000_003 + fleet_id
                          ).shuffle(order)
            self._orders[fleet_id] = order
            self._cursors[fleet_id] = 0
        return order

    def scrub(self, machine_faults: dict[int, FaultMap],
              known_maps: dict[int, FaultMap] | None = None,
              budget: int | None = None, *, lanes: int = 1) -> ScrubReport:
        """March-test the next ``budget`` cells round-robin over the fleet.

        ``machine_faults`` is the ground truth being probed (fleet array
        id -> :class:`FaultMap`); ``known_maps`` holds what the service
        already knows — cells already diagnosed there are *skipped* (they
        cost no budget: patrol time belongs to the unknown).  A fault
        present in the ground truth but absent from the known map is a
        **latent fault** and lands in the report's ``discoveries``.

        The per-pass ``budget`` (default: the policy's) is divided
        round-robin across ``sorted(machine_faults)`` so no fleet member
        starves.  Returns the :class:`ScrubReport`; merging discoveries
        into the known maps is the caller's job (the service does it under
        its own lock).
        """
        spend = self.policy.budget if budget is None else budget
        if spend < 1:
            raise ServeError(f"scrub budget must be >= 1, got {spend}")
        mask = (1 << max(1, lanes)) - 1
        report = ScrubReport()
        fleet = sorted(machine_faults)
        if not fleet:
            return report
        known_maps = known_maps or {}
        with self._lock:
            self._passes += 1
            share, extra = divmod(spend, len(fleet))
            for index, fleet_id in enumerate(fleet):
                slice_budget = share + (1 if index < extra else 0)
                if slice_budget == 0:
                    continue
                self._march_slice(fleet_id, machine_faults[fleet_id],
                                  known_maps.get(fleet_id), slice_budget,
                                  mask, report)
        return report

    def _march_slice(self, fleet_id: int, ground: FaultMap,
                     known: FaultMap | None, budget: int, mask: int,
                     report: ScrubReport) -> None:
        """Consume ``budget`` unknown cells of one member's probe order."""
        order = self._order_for(fleet_id)
        cursor = self._cursors[fleet_id]
        probed = 0
        # bound the walk to one full revolution so a fully-diagnosed
        # array cannot spin the cursor forever
        for _ in range(len(order)):
            if probed >= budget:
                break
            cell = order[cursor]
            cursor += 1
            if cursor >= len(order):
                cursor = 0
                self._sweeps[fleet_id] = self._sweeps.get(fleet_id, 0) + 1
            if known is not None and known.fault_at(*cell) is not None:
                continue  # already diagnosed: free to skip
            probed += 1
            report.probed.append((fleet_id, cell))
            observed = march_test(ground, cell, mask)
            if observed is not None:
                found = report.discoveries.setdefault(fleet_id, FaultMap())
                found.set_fault(*cell, observed)
        self._cursors[fleet_id] = cursor
        self._probed[fleet_id] = self._probed.get(fleet_id, 0) + probed
        found_here = len(report.discoveries.get(fleet_id, ()))
        self._found[fleet_id] = self._found.get(fleet_id, 0) + found_here
        report.probed_per_array[fleet_id] = probed

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """The JSON-compatible ``scrub`` section of the service stats."""
        with self._lock:
            arrays = {a: {"cells_probed": self._probed.get(a, 0),
                          "latent_faults_found": self._found.get(a, 0),
                          "sweeps": self._sweeps.get(a, 0)}
                      for a in sorted(self._probed)}
            return {
                "passes": self._passes,
                "cells_probed": sum(self._probed.values()),
                "latent_faults_found": sum(self._found.values()),
                "sweeps": sum(self._sweeps.values()),
                "arrays": arrays,
            }
