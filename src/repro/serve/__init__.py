"""Resilient compile-and-serve runtime for CIM programs (:mod:`repro.serve`).

The TDO-CIM line of work compiles offload candidates ahead of time and
decides at run time whether a request executes on the CIM fabric or falls
back to the CPU.  This package is that runtime for the Sherlock compiler:

* :mod:`repro.serve.cache` — a persistent on-disk artifact cache of
  serialized compiled programs, keyed by DAG structure, target,
  configuration and fault-map content, tolerant of corrupted entries;
* :mod:`repro.serve.breaker` — a circuit breaker that trips the service
  to the CPU baseline after consecutive CIM failures and probes half-open;
* :mod:`repro.serve.health` — the per-array health registry: EWMA /
  rolling-window failure-rate estimation against the technology baseline,
  the HEALTHY/DEGRADED/QUARANTINED state machine with probation recovery,
  and the fault-density bridge to multi-array exclusions;
* :mod:`repro.serve.scrub` — the patrol scrubber: deterministic budgeted
  march-test sweeps that find *latent* faults (the ones input preloads
  hit silently) before live traffic does;
* :mod:`repro.serve.service` — the job queue + compile-worker pool with
  admission control (pluggable shed policies), per-job deadlines,
  retries, the remap rung run inside the service loop, health-aware
  placement, voted redundant execution, and the health registry's
  adaptive responses;
* :mod:`repro.serve.server` — request parsing, the batch request-file
  runner, and the line-delimited-JSON TCP server behind ``sherlock serve``.
"""

from repro.serve.breaker import BreakerState, CircuitBreaker
from repro.serve.cache import ARTIFACT_SCHEMA, ArtifactCache
from repro.serve.health import (
    ArrayHealth,
    HealthPolicy,
    HealthRegistry,
    assess_fault_map,
    subarray_exclusions,
    subarray_penalties,
)
from repro.serve.scrub import PatrolScrubber, ScrubPolicy, ScrubReport
from repro.serve.server import (
    handle_request_file,
    parse_request,
    result_to_dict,
    serve_tcp,
)
from repro.serve.service import (
    VALID_PLACEMENTS,
    VALID_SHED_POLICIES,
    CompileService,
    ServeRequest,
    ServeResult,
    ServiceStats,
)

__all__ = [
    "ARTIFACT_SCHEMA",
    "ArrayHealth",
    "ArtifactCache",
    "BreakerState",
    "CircuitBreaker",
    "CompileService",
    "HealthPolicy",
    "HealthRegistry",
    "PatrolScrubber",
    "ScrubPolicy",
    "ScrubReport",
    "ServeRequest",
    "ServeResult",
    "ServiceStats",
    "VALID_PLACEMENTS",
    "VALID_SHED_POLICIES",
    "assess_fault_map",
    "handle_request_file",
    "parse_request",
    "result_to_dict",
    "serve_tcp",
    "subarray_exclusions",
    "subarray_penalties",
]
