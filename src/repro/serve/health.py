"""Per-array health tracking: failure-rate estimation and quarantine.

The serve loop already *survives* faults one request at a time
(verify-after-write retries, spare remapping, the remap rung); this module
makes degradation *observed and anticipated*.  A :class:`HealthRegistry`
folds the telemetry every CIM execution produces —
``writes_verified``/``write_retries_used``/``write_failures_injected``
counters, stuck-at discoveries, in-loop remaps, hard faults — into a
per-array failure-rate estimate and runs each fleet member through the
state machine::

    HEALTHY --(rate > degrade_factor x baseline)--> DEGRADED
    DEGRADED --(rate > quarantine_factor x baseline)--> QUARANTINED
    DEGRADED --(rate < recover_factor x baseline)--> HEALTHY
    QUARANTINED --(probation: N clean probes after a cool-down)--> HEALTHY

The baseline is the technology's intrinsic ``write_failure_probability``
(floored so zero-probability technologies still have a scale), so the same
policy adapts across ReRAM/PCM/STT-MRAM fleets.  Two estimators run side by
side: an EWMA (the transition signal — smooth, hysteresis via the separate
degrade/recover factors, and at most *one* ladder step per sample so a
single catastrophic request still walks HEALTHY -> DEGRADED -> QUARANTINED
visibly) and a bounded rolling window (reported in snapshots for
operators).  A quarantined array answers :meth:`HealthRegistry.allow`
``False`` until ``probation_period_s`` elapses, then probes are admitted;
``probation_successes`` consecutive clean probes restore the array with
fresh estimators, while one dirty probe restarts the cool-down.

The registry is deliberately passive — it never executes anything.
:class:`repro.serve.service.CompileService` feeds it after every machine
run and consults it in the offload decision; :func:`subarray_exclusions`
is the bridge to the multi-array co-scheduler (known-fault density per
*sub-array* of one target, turned into ``CompilerConfig.exclude_arrays``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from enum import Enum

from repro.errors import ServeError

__all__ = [
    "ArrayHealth",
    "HealthPolicy",
    "HealthRegistry",
    "assess_fault_map",
    "subarray_exclusions",
    "subarray_penalties",
]

#: state transitions kept for the stats surface (a bounded ring so a
#: long-lived server does not grow without bound)
_TRANSITION_WINDOW = 64


class ArrayHealth(Enum):
    """The three health states of one served array."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    QUARANTINED = "quarantined"


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds and windows of the health state machine.

    The degrade/recover factor pair is the hysteresis band: an array
    degrades when its estimated failure rate exceeds ``degrade_factor x
    baseline`` but only recovers below ``recover_factor x baseline``, so a
    rate oscillating around one threshold cannot flap the state.
    ``quarantine_factor`` is the second rung of the ladder.  Transitions
    need at least ``min_samples`` recorded executions, and each sample
    moves the state at most one rung.
    """

    #: rolling-window samples kept per array (reported, not the signal)
    window: int = 64
    #: executions recorded before any transition may fire
    min_samples: int = 4
    #: EWMA smoothing factor (1 = last sample only)
    ewma_alpha: float = 0.25
    #: floor under the technology baseline so zero-failure-probability
    #: technologies still get a finite threshold scale
    baseline_floor: float = 1e-6
    #: HEALTHY -> DEGRADED when ewma > degrade_factor * baseline
    degrade_factor: float = 8.0
    #: DEGRADED -> HEALTHY when ewma < recover_factor * baseline
    recover_factor: float = 2.0
    #: DEGRADED -> QUARANTINED when ewma > quarantine_factor * baseline
    quarantine_factor: float = 64.0
    #: cool-down before a quarantined array may serve probe requests
    probation_period_s: float = 30.0
    #: consecutive clean probes that end the quarantine
    probation_successes: int = 3

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ServeError(f"window must be >= 1, got {self.window}")
        if self.min_samples < 1:
            raise ServeError(
                f"min_samples must be >= 1, got {self.min_samples}")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ServeError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}")
        if self.baseline_floor <= 0.0:
            raise ServeError(
                f"baseline_floor must be positive, got {self.baseline_floor}")
        if not (0.0 < self.recover_factor < self.degrade_factor
                < self.quarantine_factor):
            raise ServeError(
                "factors must satisfy 0 < recover < degrade < quarantine, "
                f"got {self.recover_factor}/{self.degrade_factor}/"
                f"{self.quarantine_factor}")
        if self.probation_period_s < 0.0:
            raise ServeError(
                f"probation_period_s must be >= 0, "
                f"got {self.probation_period_s}")
        if self.probation_successes < 1:
            raise ServeError(
                f"probation_successes must be >= 1, "
                f"got {self.probation_successes}")


class _ArrayRecord:
    """Mutable health state of one fleet member."""

    __slots__ = ("state", "ewma", "window", "samples", "probes",
                 "clean_probes", "quarantined_at", "hard_faults",
                 "faults_discovered", "retries", "transitions",
                 "scrub_probes", "scrub_faults", "vote_disagreements")

    def __init__(self) -> None:
        self.state = ArrayHealth.HEALTHY
        self.ewma: float | None = None
        self.window: list[float] = []
        self.samples = 0
        self.probes = 0
        self.clean_probes = 0
        self.quarantined_at = 0.0
        self.hard_faults = 0
        self.faults_discovered = 0
        self.retries = 0
        self.transitions = 0
        self.scrub_probes = 0
        self.scrub_faults = 0
        self.vote_disagreements = 0


class HealthRegistry:
    """Thread-safe per-array failure-rate estimators and state machine.

    ``technology`` provides the ``write_failure_probability`` baseline the
    thresholds scale from; ``clock`` is injectable so probation timing is
    deterministic in tests; ``on_transition`` (called as
    ``on_transition(array_id, old, new, reason)`` *outside* the registry
    lock) lets the service react — e.g. proactively recompiling cached
    artifacts for a degrading array.
    """

    def __init__(self, technology, policy: HealthPolicy | None = None, *,
                 clock=time.monotonic, on_transition=None) -> None:
        self.policy = policy or HealthPolicy()
        self.baseline = max(float(technology.write_failure_probability),
                            self.policy.baseline_floor)
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._records: dict[int, _ArrayRecord] = {}
        self._transitions: list[dict] = []
        self.degraded_total = 0
        self.quarantined_total = 0
        self.recovered_total = 0
        self.breaker_trips = 0
        self.vote_disagreements_total = 0

    # ------------------------------------------------------------------
    # telemetry in
    # ------------------------------------------------------------------
    def record_execution(self, array_id: int, *,
                         writes_verified: int = 0,
                         write_retries_used: int = 0,
                         write_failures_injected: int = 0,
                         discovered_faults: int = 0,
                         remaps: int = 0,
                         hard_fault: bool = False) -> ArrayHealth:
        """Fold one machine run's counters into the array's estimate.

        The per-run failure rate is ``events / attempts`` where events are
        retried writes (injected soft failures already surface as the
        retries they cost, so the two counters are max-ed, not summed)
        plus stuck-at discoveries and remaps, and attempts are all write
        commits including the retries.  ``hard_fault=True`` (the run ended
        in :class:`~repro.errors.HardFaultError`) counts as a rate-1.0
        sample.  Returns the array's state after the sample.
        """
        events = (max(write_retries_used, write_failures_injected)
                  + discovered_faults + remaps)
        attempts = max(1, writes_verified + write_retries_used)
        rate = 1.0 if hard_fault else min(1.0, events / attempts)
        fired: tuple | None = None
        with self._lock:
            rec = self._records.setdefault(array_id, _ArrayRecord())
            rec.retries += write_retries_used
            rec.faults_discovered += discovered_faults
            if hard_fault:
                rec.hard_faults += 1
            fired = self._fold(array_id, rec, rate)
            state = rec.state
        self._fire(fired)
        return state

    def record_scrub(self, array_id: int, *, cells_probed: int,
                     latent_faults: int = 0,
                     weight: float = 16.0) -> ArrayHealth:
        """Fold one patrol-scrub slice into the array's estimate.

        A scrub probes idle cells, so its discoveries are *weighted*
        (``weight`` x, default 16): one latent stuck-at found among
        hundreds of clean cells still says more about the array's decay
        than the same ratio of soft write retries would — latent faults
        corrupt results silently until found.  The sample rate is
        ``min(1, weight * latent_faults / cells_probed)``; a clean slice
        is a rate-0 sample (scrubbing actively *recovers* a DEGRADED
        array whose faults have been placed around).  Scrub samples on a
        QUARANTINED array update counters only — probation probes must be
        real serve-path successes, not background sweeps.
        """
        if cells_probed < 0 or latent_faults < 0 or weight < 0.0:
            raise ServeError("scrub sample counts must be non-negative")
        rate = min(1.0, weight * latent_faults / max(1, cells_probed))
        fired: tuple | None = None
        with self._lock:
            rec = self._records.setdefault(array_id, _ArrayRecord())
            rec.scrub_probes += cells_probed
            rec.scrub_faults += latent_faults
            rec.faults_discovered += latent_faults
            if rec.state is not ArrayHealth.QUARANTINED:
                fired = self._fold(array_id, rec, rate)
            state = rec.state
        self._fire(fired)
        return state

    def record_vote_disagreement(self, array_id: int) -> ArrayHealth:
        """Fold one voted-execution disagreement as a rate-1.0 sample.

        An array outvoted by the rest of the fleet returned a wrong
        answer that every per-cell mitigation missed — the highest-weight
        failure evidence the serve loop can produce, so it counts like a
        hard fault (and, on a quarantined array, as a dirty probation
        probe).
        """
        fired: tuple | None = None
        with self._lock:
            rec = self._records.setdefault(array_id, _ArrayRecord())
            rec.vote_disagreements += 1
            self.vote_disagreements_total += 1
            fired = self._fold(array_id, rec, 1.0)
            state = rec.state
        self._fire(fired)
        return state

    def note_breaker_trip(self) -> None:
        """Record one circuit-breaker trip (fleet-level telemetry)."""
        with self._lock:
            self.breaker_trips += 1

    # ------------------------------------------------------------------
    # the state machine
    # ------------------------------------------------------------------
    def _fold(self, array_id: int, rec: _ArrayRecord,
              rate: float) -> tuple | None:
        """Fold one rate sample under the lock: estimators + one step.

        Quarantined arrays route the sample to the probation logic
        instead of the estimators (their pre-quarantine estimate is
        frozen until probation resets it).
        """
        rec.samples += 1
        if rec.state is ArrayHealth.QUARANTINED:
            return self._probe(array_id, rec, rate)
        rec.ewma = (rate if rec.ewma is None else
                    (1.0 - self.policy.ewma_alpha) * rec.ewma
                    + self.policy.ewma_alpha * rate)
        rec.window.append(rate)
        if len(rec.window) > self.policy.window:
            del rec.window[:len(rec.window) - self.policy.window]
        return self._step(array_id, rec)

    def _step(self, array_id: int, rec: _ArrayRecord) -> tuple | None:
        """One ladder step (at most) for a non-quarantined array."""
        if rec.samples < self.policy.min_samples or rec.ewma is None:
            return None
        if rec.state is ArrayHealth.HEALTHY:
            if rec.ewma > self.policy.degrade_factor * self.baseline:
                return self._transition(
                    array_id, rec, ArrayHealth.DEGRADED,
                    f"ewma {rec.ewma:.2e} > {self.policy.degrade_factor:g}x "
                    f"baseline {self.baseline:.2e}")
            return None
        # DEGRADED: escalate or recover
        if rec.ewma > self.policy.quarantine_factor * self.baseline:
            rec.quarantined_at = self._clock()
            rec.clean_probes = 0
            return self._transition(
                array_id, rec, ArrayHealth.QUARANTINED,
                f"ewma {rec.ewma:.2e} > {self.policy.quarantine_factor:g}x "
                f"baseline {self.baseline:.2e}")
        if rec.ewma < self.policy.recover_factor * self.baseline:
            return self._transition(
                array_id, rec, ArrayHealth.HEALTHY,
                f"ewma {rec.ewma:.2e} < {self.policy.recover_factor:g}x "
                f"baseline {self.baseline:.2e}")
        return None

    def _probe(self, array_id: int, rec: _ArrayRecord,
               rate: float) -> tuple | None:
        """One probation probe of a quarantined array."""
        rec.probes += 1
        if rate <= self.policy.recover_factor * self.baseline:
            rec.clean_probes += 1
            if rec.clean_probes >= self.policy.probation_successes:
                # fresh start: the poisoned pre-quarantine estimate must
                # not drag a repaired array straight back down the ladder
                rec.ewma = None
                rec.window = []
                return self._transition(
                    array_id, rec, ArrayHealth.HEALTHY,
                    f"probation passed ({rec.clean_probes} clean probes)")
            return None
        rec.clean_probes = 0
        rec.quarantined_at = self._clock()  # dirty probe: restart cool-down
        return None

    def _transition(self, array_id: int, rec: _ArrayRecord,
                    new: ArrayHealth, reason: str) -> tuple:
        old, rec.state = rec.state, new
        rec.transitions += 1
        if new is ArrayHealth.DEGRADED:
            self.degraded_total += 1
        elif new is ArrayHealth.QUARANTINED:
            self.quarantined_total += 1
        elif old is not ArrayHealth.HEALTHY:
            self.recovered_total += 1
        self._transitions.append({
            "array": array_id, "from": old.value, "to": new.value,
            "at": self._clock(), "reason": reason})
        if len(self._transitions) > _TRANSITION_WINDOW:
            del self._transitions[:len(self._transitions)
                                  - _TRANSITION_WINDOW]
        return (array_id, old, new, reason)

    def _fire(self, transition: tuple | None) -> None:
        if transition is not None and self._on_transition is not None:
            self._on_transition(*transition)

    # ------------------------------------------------------------------
    # decisions out
    # ------------------------------------------------------------------
    def state_of(self, array_id: int) -> ArrayHealth:
        """The array's current state (unknown arrays are HEALTHY)."""
        with self._lock:
            rec = self._records.get(array_id)
            return rec.state if rec is not None else ArrayHealth.HEALTHY

    def failure_rate(self, array_id: int) -> float:
        """The array's EWMA failure-rate estimate (0.0 before any sample)."""
        with self._lock:
            rec = self._records.get(array_id)
            return (rec.ewma if rec is not None
                    and rec.ewma is not None else 0.0)

    def allow(self, array_id: int) -> bool:
        """Whether the array may serve a CIM request right now.

        Healthy and degraded arrays always may (degraded is a warning
        level, not an outage).  A quarantined array answers ``False``
        until ``probation_period_s`` has elapsed since (re-)quarantine,
        after which probe requests are admitted — their recorded samples
        drive the probation logic of :meth:`record_execution`.
        """
        with self._lock:
            rec = self._records.get(array_id)
            if rec is None or rec.state is not ArrayHealth.QUARANTINED:
                return True
            return (self._clock() - rec.quarantined_at
                    >= self.policy.probation_period_s)

    def tracked(self) -> tuple[int, ...]:
        """Sorted ids of every array the registry has seen a sample for."""
        with self._lock:
            return tuple(sorted(self._records))

    def census(self) -> tuple[int, int]:
        """``(quarantined, tracked)`` fleet counts (sampled arrays only)."""
        with self._lock:
            tracked = len(self._records)
            quarantined = sum(
                1 for rec in self._records.values()
                if rec.state is ArrayHealth.QUARANTINED)
            return quarantined, tracked

    def force_state(self, array_id: int, state: ArrayHealth,
                    reason: str = "forced") -> None:
        """Set an array's state directly (benchmarks and operator tools)."""
        if not isinstance(state, ArrayHealth):
            raise ServeError(f"not an ArrayHealth state: {state!r}")
        fired: tuple | None = None
        with self._lock:
            rec = self._records.setdefault(array_id, _ArrayRecord())
            if state is ArrayHealth.QUARANTINED:
                rec.quarantined_at = self._clock()
                rec.clean_probes = 0
            if rec.state is not state:
                fired = self._transition(array_id, rec, state, reason)
        self._fire(fired)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The JSON-compatible health section of the service stats."""
        with self._lock:
            arrays = {}
            for array_id in sorted(self._records):
                rec = self._records[array_id]
                window_rate = (sum(rec.window) / len(rec.window)
                               if rec.window else 0.0)
                arrays[array_id] = {
                    "state": rec.state.value,
                    "failure_rate": rec.ewma if rec.ewma is not None else 0.0,
                    "window_rate": window_rate,
                    "samples": rec.samples,
                    "probes": rec.probes,
                    "retries": rec.retries,
                    "faults_discovered": rec.faults_discovered,
                    "hard_faults": rec.hard_faults,
                    "transitions": rec.transitions,
                    "scrub_probes": rec.scrub_probes,
                    "scrub_faults": rec.scrub_faults,
                    "vote_disagreements": rec.vote_disagreements,
                }
            return {
                "baseline": self.baseline,
                "degraded": self.degraded_total,
                "quarantined": self.quarantined_total,
                "recovered": self.recovered_total,
                "breaker_trips": self.breaker_trips,
                "vote_disagreements": self.vote_disagreements_total,
                "arrays": arrays,
                "transitions": list(self._transitions),
            }


# ----------------------------------------------------------------------
# static fault-map assessment (the multi-array / CLI bridge)
# ----------------------------------------------------------------------
def _fault_counts(fault_map, target) -> dict[int, int]:
    """Known faults per sub-array, restricted to the usable cell window."""
    counts: dict[int, int] = {}
    if fault_map is None:
        return counts
    for (array, row, col), _fault in fault_map.cells():
        if (0 <= array < target.num_arrays and row < target.usable_rows
                and col < target.cols):
            counts[array] = counts.get(array, 0) + 1
    return counts


def subarray_exclusions(fault_map, target, *,
                        max_fault_fraction: float = 0.25) -> tuple[int, ...]:
    """Sub-arrays of ``target`` too fault-ridden to schedule onto.

    Returns the sorted array indices whose known-fault density (within
    the usable rows x cols window) exceeds ``max_fault_fraction`` — the
    set the multi-array co-scheduler should exclude via
    ``CompilerConfig.exclude_arrays``.  Never excludes *every* array: the
    least-faulty candidate stays in service so a compile remains possible
    (it will simply place very little there).
    """
    if not 0.0 < max_fault_fraction <= 1.0:
        raise ServeError(f"max_fault_fraction must be in (0, 1], "
                         f"got {max_fault_fraction}")
    counts = _fault_counts(fault_map, target)
    cells = max(1, target.usable_rows * target.cols)
    over = sorted(a for a, n in counts.items()
                  if n / cells > max_fault_fraction)
    if len(over) >= target.num_arrays:
        keep = min(over, key=lambda a: (counts[a], a))
        over = [a for a in over if a != keep]
    return tuple(over)


def subarray_penalties(fault_map, target, *,
                       degrade_fraction: float = 0.05,
                       quarantine_fraction: float = 0.25,
                       penalty: float = 4.0) -> tuple[tuple[int, float], ...]:
    """DEGRADED sub-arrays of ``target`` as assignment-cost penalties.

    The soft companion of :func:`subarray_exclusions`: sub-arrays whose
    known-fault density sits in the DEGRADED band (between
    ``degrade_fraction`` and ``quarantine_fraction``) each get ``penalty``
    subtracted from their multi-array assignment score — steering new
    placements toward healthier arrays without forbidding anything.
    Returns sorted ``(array, penalty)`` pairs ready for
    ``CompilerConfig.array_penalties``.
    """
    if penalty < 0.0:
        raise ServeError(f"penalty must be >= 0, got {penalty}")
    assessment = assess_fault_map(fault_map, target,
                                  degrade_fraction=degrade_fraction,
                                  quarantine_fraction=quarantine_fraction)
    return tuple((array, penalty) for array in sorted(assessment)
                 if assessment[array]["state"] is ArrayHealth.DEGRADED)


def assess_fault_map(fault_map, target, *,
                     degrade_fraction: float = 0.05,
                     quarantine_fraction: float = 0.25) -> dict[int, dict]:
    """Static per-sub-array health assessment of a known fault map.

    The dynamic registry rates arrays by *observed* failure traffic; this
    is the complementary cold-start view ``sherlock health`` prints: every
    sub-array's known-fault count, density, and the state its density
    alone implies.
    """
    if not 0.0 < degrade_fraction < quarantine_fraction <= 1.0:
        raise ServeError(
            "fractions must satisfy 0 < degrade < quarantine <= 1, got "
            f"{degrade_fraction}/{quarantine_fraction}")
    counts = _fault_counts(fault_map, target)
    cells = max(1, target.usable_rows * target.cols)
    out: dict[int, dict] = {}
    for array in range(target.num_arrays):
        density = counts.get(array, 0) / cells
        if density > quarantine_fraction:
            state = ArrayHealth.QUARANTINED
        elif density > degrade_fraction:
            state = ArrayHealth.DEGRADED
        else:
            state = ArrayHealth.HEALTHY
        out[array] = {"faults": counts.get(array, 0), "density": density,
                      "state": state}
    return out
