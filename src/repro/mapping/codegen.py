"""Instruction generation shared by the naive and Sherlock mappers.

Given a layout policy (where each op computes, where its operands live),
the code generator emits the Fig. 4 instruction stream:

* **gather moves** — an operand without a copy in the op's home column is
  moved there first (plain read → [bus transfer] → shift → write).  This is
  the data movement/duplication both Sec. 3.2 and Sec. 2.2 blame on poor
  mappings;
* **compute** — one scouting CIM read activating the operand rows of the
  home column (or a plain read + row-buffer NOT for unary ops);
* **result routing** — the sensed bits land in the row buffer at the home
  column and are written to the result cell, shifting/transferring first if
  the mapper placed the result elsewhere (the naive cursor does this a lot).

Two generation modes exist.  ``run_per_op`` emits one sequence per op in
b-level order — what Algorithm 1 does.  ``run_merged`` is Sherlock's
scheduler (Sec. 3.3.2/3.3.3): it walks the DAG level by level and *merges*
compatible instructions across clusters — CIM reads sharing the same
activated rows execute as a single instruction with per-column ops, and so
do aligned gather moves and result writes.  Merging requires the target's
selective-column capability.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.arch.isa import Instruction, NotInst, ReadInst, ShiftInst, TransferInst, WriteInst
from repro.arch.layout import CellAddr, Layout
from repro.arch.target import TargetSpec
from repro.dfg.blevel import blevel_order
from repro.dfg.graph import DataFlowGraph, OperandKind, OpNode
from repro.dfg.liveness import Liveness, compute_liveness, schedule_liveness
from repro.dfg.ops import OpType
from repro.errors import MappingError
from repro.mapping.base import MappingStats


class CodeGenerator:
    """Emit instructions for a DAG given per-op home columns."""

    def __init__(self, dag: DataFlowGraph, target: TargetSpec, layout: Layout,
                 stats: MappingStats,
                 pad_budget: dict[int, int] | None = None,
                 recycle: bool = False,
                 prefer_local_copies: bool = False) -> None:
        self.dag = dag
        self.target = target
        self.layout = layout
        self.stats = stats
        self.instructions: list[Instruction] = []
        #: rows per global column that row-alignment may burn as padding;
        #: the mapper sets it to (array height - planned footprint) so that
        #: padded columns can never overflow
        self.pad_budget = dict(pad_budget or {})
        self._pad_used: dict[int, int] = {}
        #: release dead operand cells as generation advances so later
        #: placements can recycle them (register-allocation style)
        self.recycle = recycle
        #: gather from the copy nearest the destination instead of the
        #: primary copy, so a copy already on the destination array never
        #: crosses the bus again.  Off by default: the multi-array scheduler
        #: opts in, the historical mappers stay byte-identical.
        self.prefer_local_copies = prefer_local_copies

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _emit(self, inst: Instruction) -> None:
        self.instructions.append(inst)

    def _check_arity(self, node: OpNode) -> None:
        if node.op is not OpType.NOT and node.arity > self.target.max_activated_rows:
            raise MappingError(
                f"op {node.node_id} ({node.op.value}) has {node.arity} operands "
                f"but the target activates at most "
                f"{self.target.max_activated_rows} rows; split the DAG first")

    def _distinct_operands(self, node: OpNode) -> list[int]:
        operands = list(dict.fromkeys(node.operands))
        if len(operands) != len(node.operands):
            raise MappingError(
                f"op {node.node_id} repeats an operand; normalize the DAG "
                "(fold duplicate operands) before mapping")
        return operands

    def _gather_source(self, operand_id: int, dst_gcol: int) -> CellAddr:
        """The copy a gather into ``dst_gcol`` reads from."""
        if self.prefer_local_copies:
            return self.layout.nearest_copy(operand_id, dst_gcol)
        return self.layout.primary(operand_id)

    def _move(self, operand_id: int, src: CellAddr, dst_gcol: int) -> CellAddr:
        """Emit one unmerged gather move and place the new copy."""
        dst_array, dst_col = self.layout.split(dst_gcol)
        self._emit(ReadInst(src.array, (src.col,), (src.row,), None))
        if src.array != dst_array:
            self._emit(TransferInst(src.array, dst_array, (src.col,)))
        delta = dst_col - src.col
        if delta:
            self._emit(ShiftInst(dst_array, delta))
        dst = self.layout.place(operand_id, dst_gcol)
        self._emit(WriteInst(dst_array, (dst_col,), dst.row))
        self.stats.gather_moves += 1
        return dst

    def _ensure_in_column(self, operand_id: int, gcol: int) -> CellAddr:
        """Source placement or gather move so the operand is in ``gcol``."""
        copy = self.layout.copy_in_column(operand_id, gcol)
        if copy is not None:
            return copy
        if not self.layout.is_placed(operand_id):
            # Resident source data (input/const): the mapper chooses where it
            # lives; placing it costs no instructions.  Preloaded data must
            # never land in a recycled cell — its previous occupant is
            # written mid-program and would clobber the value poked at t=0.
            return self.layout.place(operand_id, gcol, reuse=False)
        return self._move(operand_id, self._gather_source(operand_id, gcol), gcol)

    def release_dying(self, liveness: Liveness, position: int) -> None:
        """Free the cells of operands whose last use is ``position``.

        Intermediates are fully released; sources (inputs/constants) keep
        their primary copy because preloading pokes it before execution
        starts, so only their gather duplicates are reclaimed.  Program
        outputs never appear in ``dying_at``.
        """
        for oid in liveness.dying_at.get(position, []):
            if self.dag.operand(oid).kind is OperandKind.INTERMEDIATE:
                self.layout.release(oid)
            else:
                self.layout.release_duplicates(oid)

    def _route_result(self, home_gcol: int, result_addr: CellAddr) -> None:
        """Move the row-buffer result bit from the home column to its cell."""
        array, col = self.layout.split(home_gcol)
        if result_addr.array != array:
            self._emit(TransferInst(array, result_addr.array, (col,)))
        delta = result_addr.col - col
        if delta:
            self._emit(ShiftInst(result_addr.array, delta))
        self._emit(WriteInst(result_addr.array, (result_addr.col,), result_addr.row))

    # ------------------------------------------------------------------
    # per-op generation (Algorithm 1 and the no-merge ablation)
    # ------------------------------------------------------------------
    def run_per_op(self, home_for: Callable[[int], int],
                   place_results: bool = True) -> None:
        """One instruction sequence per op node, in b-level order.

        ``home_for`` maps an op node id to the global column it computes in.
        With ``place_results`` the result cell is allocated in the home
        column; otherwise the mapper must have placed it already (the naive
        cursor does), and the result is routed there.
        """
        schedule = blevel_order(self.dag)
        liveness = (schedule_liveness(self.dag, schedule)
                    if self.recycle else None)
        for idx, op_id in enumerate(schedule):
            self.emit_op(op_id, home_for(op_id), place_results)
            if liveness is not None:
                self.release_dying(liveness, idx)

    def emit_op(self, op_id: int, home_gcol: int,
                place_results: bool = True) -> None:
        """Gather, compute, and route one op node in its home column."""
        node = self.dag.op(op_id)
        self._check_arity(node)
        operands = self._distinct_operands(node)
        copies = [self._ensure_in_column(oid, home_gcol) for oid in operands]
        array, col = self.layout.split(home_gcol)
        if node.op is OpType.NOT:
            self._emit(ReadInst(array, (col,), (copies[0].row,), None))
            self._emit(NotInst(array, (col,)))
        else:
            rows = tuple(sorted(c.row for c in copies))
            self._emit(ReadInst(array, (col,), rows, (node.op,)))
        if place_results:
            result_addr = self.layout.place(node.result, home_gcol)
        else:
            result_addr = self.layout.primary(node.result)
        self._route_result(home_gcol, result_addr)

    # ------------------------------------------------------------------
    # level-synchronous merged generation (Sherlock's scheduler)
    # ------------------------------------------------------------------
    def run_merged(self, column_of: dict[int, int]) -> None:
        """Merge compatible instructions across clusters (Sec. 3.3.3).

        Ops are processed level by level (level = longest dependence depth),
        so every producer's result is in memory before its consumers read
        it.  Because the wordlines are shared by all columns of an array,
        two CIM reads can only merge when they activate *identical* rows —
        so the scheduler keeps columns row-aligned: the results (and gather
        copies) of one level are placed at a common base row across all
        participating columns, padding shorter columns.  Structurally
        similar clusters (what the Sec. 3.3.1 cases optimize for) then hit
        the same rows level after level.  Within a level:

        1. gather moves sharing (arrays, source row, shift distance) merge;
        2. CIM reads sharing (array, activated rows) merge into one
           instruction with per-column ops;
        3. result writes sharing (array, destination row) merge.
        """
        if not self.target.selective_columns:
            raise MappingError(
                "instruction merging needs selective-column support; "
                "use per-op generation on this target")
        levels: dict[int, int] = {}
        by_level: dict[int, list[int]] = {}
        for op_id in self.dag.topological_ops():
            pred_levels = [levels[p] for p in self.dag.pred_ops(op_id)]
            level = 1 + (max(pred_levels) if pred_levels else 0)
            levels[op_id] = level
            by_level.setdefault(level, []).append(op_id)
        liveness = (compute_liveness(self.dag, levels)
                    if self.recycle else None)
        for level in sorted(by_level):
            ops = sorted(by_level[level])
            self._place_new_sources(ops, column_of)
            self._emit_level_gathers(ops, column_of)
            self._emit_level_computes(ops, column_of)
            if liveness is not None:
                self.release_dying(liveness, level)

    def _place_new_sources(self, ops: list[int], column_of: dict[int, int]) -> None:
        """Give still-unplaced inputs/consts a primary cell.

        Resident source data costs no instructions; each source lands in the
        column of the first op that needs it, and other clusters gather it
        from there like any other external operand.  Sources live in the
        top-down region so they never perturb result-row alignment.
        """
        claimed: set[int] = set()
        for op_id in ops:
            gcol = column_of[op_id]
            for oid in self._distinct_operands(self.dag.op(op_id)):
                if oid in claimed or self.layout.is_placed(oid):
                    continue
                claimed.add(oid)
                # preloaded at t=0: never recycle a mid-program cell for it
                self.layout.place_top(oid, gcol, reuse=False)

    def _aligned_place(self, items: list[tuple[int, int]]) -> dict[tuple[int, int], CellAddr]:
        """Place (operand, gcol) pairs at a shared base row where possible.

        Participating columns start placing at the same base row (the
        deepest fill line among them), padding the shorter ones, so that
        corresponding placements land in the same wordline and the
        resulting write instructions merge.  Alignment is a performance
        optimization, never a correctness requirement: a column whose
        padding budget is exhausted falls back to its own fill line, and
        the budget (array height minus the cluster's planned footprint)
        guarantees padded columns can never overflow.
        """
        per_col: dict[int, list[int]] = {}
        for oid, gcol in items:
            per_col.setdefault(gcol, []).append(oid)
        if not per_col:
            return {}
        base = max(self.layout.column_fill(g) for g in per_col)
        placed: dict[tuple[int, int], CellAddr] = {}
        for gcol, oids in sorted(per_col.items()):
            fill = self.layout.column_fill(gcol)
            pad = base - fill
            budget = (self.pad_budget.get(gcol, 0)
                      - self._pad_used.get(gcol, 0))
            array, col = self.layout.split(gcol)
            # a faulty cell inside the aligned window forces this column
            # onto the fault-skipping unaligned path (correctness over merge)
            healthy = all(self.layout.cell_healthy(array, base + i, col)
                          for i in range(len(oids)))
            aligned = (healthy and pad <= budget
                       and base + len(oids) <= self.layout.column_capacity(gcol))
            if aligned and pad:
                self._pad_used[gcol] = self._pad_used.get(gcol, 0) + pad
            for idx, oid in enumerate(oids):
                if aligned:
                    placed[(oid, gcol)] = self.layout.place_at(oid, gcol, base + idx)
                else:
                    placed[(oid, gcol)] = self.layout.place(oid, gcol)
        return placed

    def _emit_level_gathers(self, ops: list[int], column_of: dict[int, int]) -> None:
        # (operand, dst gcol) -> src address; dict-key dedup keeps one move
        # when several ops of one cluster need the same operand.
        moves: dict[tuple[int, int], CellAddr] = {}
        for op_id in ops:
            node = self.dag.op(op_id)
            self._check_arity(node)
            gcol = column_of[op_id]
            for oid in self._distinct_operands(node):
                if self.layout.copy_in_column(oid, gcol) is not None:
                    continue
                key = (oid, gcol)
                if key not in moves:
                    moves[key] = self._gather_source(oid, gcol)
        # group by (src array, dst array, src row, shift distance)
        groups: dict[tuple[int, int, int, int], list[tuple[int, CellAddr, int]]] = {}
        for (oid, gcol), src in sorted(moves.items()):
            dst_array, dst_col = self.layout.split(gcol)
            delta = dst_col - src.col
            key = (src.array, dst_array, src.row, delta)
            groups.setdefault(key, []).append((oid, src, gcol))
        for (src_array, dst_array, src_row, delta), entries in sorted(groups.items()):
            # one read may select each source column only once
            pending = entries
            while pending:
                batch, rest, seen_cols = [], [], set()
                for entry in pending:
                    if entry[1].col in seen_cols:
                        rest.append(entry)
                    else:
                        seen_cols.add(entry[1].col)
                        batch.append(entry)
                self._emit_move_batch(src_array, dst_array, src_row, delta, batch)
                pending = rest

    def _emit_move_batch(self, src_array: int, dst_array: int, src_row: int,
                         delta: int, batch: list[tuple[int, CellAddr, int]]) -> None:
        cols = tuple(entry[1].col for entry in batch)
        self._emit(ReadInst(src_array, cols, (src_row,), None))
        if src_array != dst_array:
            self._emit(TransferInst(src_array, dst_array, cols))
        if delta:
            self._emit(ShiftInst(dst_array, delta))
        # gather copies park in the top-down region, leaving the bottom-up
        # result region's row alignment untouched
        writes: dict[int, list[int]] = {}
        for oid, src, gcol in batch:
            dst = self.layout.place_top(oid, gcol)
            writes.setdefault(dst.row, []).append(dst.col)
            self.stats.gather_moves += 1
        for row, dst_cols in sorted(writes.items()):
            self._emit(WriteInst(dst_array, tuple(sorted(dst_cols)), row))
        # an unmerged generator would have spent 3-4 instructions per move
        per_move = 3 + (1 if src_array != dst_array else 0)
        emitted = 1 + (1 if src_array != dst_array else 0) + (1 if delta else 0) + len(writes)
        self.stats.merged_instruction_savings += per_move * len(batch) - emitted

    def _emit_level_computes(self, ops: list[int], column_of: dict[int, int]) -> None:
        # bucket by compatible sensing: same array, same activated rows
        buckets: dict[tuple, list[tuple[int, int, OpNode]]] = {}
        for op_id in ops:
            node = self.dag.op(op_id)
            gcol = column_of[op_id]
            array, col = self.layout.split(gcol)
            operands = self._distinct_operands(node)
            rows = tuple(sorted(
                self.layout.copy_in_column(oid, gcol).row for oid in operands))
            if node.op is OpType.NOT:
                key = ("not", array, rows)
            else:
                key = ("cim", array, rows)
            buckets.setdefault(key, []).append((col, gcol, node))
        for key in sorted(buckets, key=str):
            kind, array, rows = key
            # a column may appear once per merged read; split on collision
            pending = buckets[key]
            while pending:
                batch, rest, seen = [], [], set()
                for entry in pending:
                    if entry[0] in seen:
                        rest.append(entry)
                    else:
                        seen.add(entry[0])
                        batch.append(entry)
                self._emit_compute_batch(kind, array, rows, batch)
                pending = rest

    def _emit_compute_batch(self, kind: str, array: int, rows: tuple[int, ...],
                            batch: list[tuple[int, int, OpNode]]) -> None:
        batch = sorted(batch, key=lambda e: e[0])
        cols = tuple(e[0] for e in batch)
        if kind == "not":
            self._emit(ReadInst(array, cols, rows, None))
            self._emit(NotInst(array, cols))
            base_cost = 3  # read + not + write per op, unmerged
        else:
            ops = tuple(e[2].op for e in batch)
            self._emit(ReadInst(array, cols, rows, ops))
            base_cost = 2  # read + write per op, unmerged
        # the batch members share their operand rows; aligning their result
        # rows too keeps them mergeable level after level
        results = self._aligned_place([(node.result, gcol)
                                       for _, gcol, node in batch])
        writes: dict[int, list[int]] = {}
        for col, gcol, node in batch:
            result_addr = results[(node.result, gcol)]
            writes.setdefault(result_addr.row, []).append(result_addr.col)
        for row, dst_cols in sorted(writes.items()):
            self._emit(WriteInst(array, tuple(sorted(dst_cols)), row))
        emitted = (2 if kind == "not" else 1) + len(writes)
        self.stats.merged_instruction_savings += base_cost * len(batch) - emitted
