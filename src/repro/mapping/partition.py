"""Spill-and-partition fallback: split a DAG that does not fit into stages.

When a mapper runs out of capacity even with cell recycling, the schedule
is bisected along a *min-cut* — the cut point (restricted to the middle
third, so stages stay balanced) crossed by the fewest live values — and
each side is retried recursively until every stage fits the target on its
own.  Stages execute back to back on the same arrays: each stage is an
independent sub-DAG whose foreign operands become boundary inputs named
``__b<oid>`` and whose results needed later become boundary outputs.

Between two adjacent stages the boundary values are carried *in-array* by
bridge instructions (plain read → transfer → shift → write from the cell
the producing stage left them in to the cell the consuming stage expects),
ordered so no copy overwrites a cell another copy still reads.  Values
that skip a stage, or copies forming an overwrite cycle, fall back to
host staging: the executor re-pokes them from the boundary values it
extracted after the producing stage — the same channel that preloads
program inputs.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.arch.isa import Instruction, ReadInst, ShiftInst, TransferInst, WriteInst
from repro.arch.target import TargetSpec
from repro.dfg.blevel import blevel_order
from repro.dfg.graph import DataFlowGraph, OperandKind, input_ids
from repro.errors import CapacityError, MappingError, SimulationError
from repro.mapping.base import MappingResult, MappingStats
from repro.sim.executor import ArrayMachine, extract_outputs, preload_sources

#: prefix of the synthetic input/output names carrying values across stages
BOUNDARY_PREFIX = "__b"

#: hard ceiling on the number of stages recursive bisection may produce
MAX_STAGES = 64

MapperFn = Callable[[DataFlowGraph], MappingResult]


@dataclass
class Stage:
    """One partition: a sub-DAG that fits the target, plus its glue."""

    dag: DataFlowGraph
    mapping: MappingResult
    #: boundary input name (``__b<oid>``) -> operand id in the *full* DAG
    imports: dict[str, int]
    #: boundary output name (``__b<oid>``) -> operand id in the *full* DAG
    exports: dict[str, int]
    #: instructions run before this stage to carry values handed over from
    #: the immediately preceding stage into this stage's cells
    bridge: list[Instruction] = field(default_factory=list)
    #: boundary input names the bridge carries (the rest are host-poked)
    bridged: set[str] = field(default_factory=set)


@dataclass
class _StagePlan:
    dag: DataFlowGraph
    imports: dict[str, int]
    exports: dict[str, int]


def _build_stage(dag: DataFlowGraph, schedule: list[int],
                 pos: dict[int, int], lo: int, hi: int) -> _StagePlan:
    """Extract schedule positions [lo, hi) as a self-contained sub-DAG."""
    sub = DataFlowGraph(f"{dag.name}.part{lo}_{hi}")
    id_map: dict[int, int] = {}  # full-DAG operand id -> sub-DAG id
    imports: dict[str, int] = {}
    exports: dict[str, int] = {}
    output_ids = set(dag.outputs.values())

    def import_operand(oid: int) -> int:
        if oid in id_map:
            return id_map[oid]
        operand = dag.operand(oid)
        if operand.kind is OperandKind.CONST:
            nid = sub.add_const(operand.const_value, operand.name)
        elif operand.kind is OperandKind.INPUT:
            nid = sub.add_input(operand.name)
        else:
            # produced by an earlier stage: becomes a boundary input
            name = f"{BOUNDARY_PREFIX}{oid}"
            nid = sub.add_input(name)
            imports[name] = oid
        id_map[oid] = nid
        return nid

    for op_id in schedule[lo:hi]:
        node = dag.op(op_id)
        operands = [import_operand(oid) for oid in node.operands]
        id_map[node.result] = sub.add_op(node.op, operands)

    for op_id in schedule[lo:hi]:
        result = dag.op(op_id).result
        needed_later = any(pos[c] >= hi for c in dag.consumers(result))
        if needed_later or result in output_ids:
            name = f"{BOUNDARY_PREFIX}{result}"
            sub.mark_output(id_map[result], name)
            exports[name] = result
    return _StagePlan(dag=sub, imports=imports, exports=exports)


def _best_cut(dag: DataFlowGraph, schedule: list[int],
              pos: dict[int, int], lo: int, hi: int) -> int:
    """The middle-third cut point crossed by the fewest live values."""
    output_ids = set(dag.outputs.values())
    third = max(1, (hi - lo) // 3)
    candidates = range(lo + third, hi - third + 1)
    if not candidates:
        candidates = range(lo + (hi - lo) // 2, lo + (hi - lo) // 2 + 1)

    def crossing(cut: int) -> int:
        count = 0
        for op_id in schedule[lo:cut]:
            result = dag.op(op_id).result
            if (result in output_ids
                    or any(pos[c] >= cut for c in dag.consumers(result))):
                count += 1
        return count

    return min(candidates, key=lambda c: (crossing(c), c))


def _build_bridge(prev: Stage, stage: Stage) -> None:
    """Emit in-array copies handing adjacent boundary values over.

    Each copy reads the value from the cell the previous stage's layout
    keeps it in and writes it to the cell the next stage's layout expects.
    Copies are ordered so that none overwrites a cell another copy has yet
    to read; copies caught in an overwrite cycle stay host-poked.
    """
    stage_inputs = input_ids(stage.dag)
    copies: dict[str, tuple] = {}  # name -> (src, dst)
    for name in sorted(stage.imports):
        if name not in prev.exports:
            continue  # produced before the previous stage: host-poked
        src = prev.mapping.layout.primary(prev.dag.outputs[name])
        dst = stage.mapping.layout.primary(stage_inputs[name])
        if src == dst:
            # the value already sits where the next stage expects it
            stage.bridged.add(name)
            continue
        copies[name] = (src, dst)
    # copy A must run before copy B when B's write clobbers A's read, so a
    # copy is ready only when no pending copy still reads the cell it writes
    remaining = dict(copies)
    while remaining:
        ready = [name for name, (_, dst) in remaining.items()
                 if not any(src == dst for other, (src, _) in
                            remaining.items() if other != name)]
        if not ready:
            break  # overwrite cycle: leave the rest to host staging
        for name in sorted(ready):
            src, dst = remaining.pop(name)
            stage.bridge.append(
                ReadInst(src.array, (src.col,), (src.row,), None))
            if src.array != dst.array:
                stage.bridge.append(
                    TransferInst(src.array, dst.array, (src.col,)))
            delta = dst.col - src.col
            if delta:
                stage.bridge.append(ShiftInst(dst.array, delta))
            stage.bridge.append(WriteInst(dst.array, (dst.col,), dst.row))
            stage.bridged.add(name)


def map_partitioned(dag: DataFlowGraph, target: TargetSpec,
                    mapper: MapperFn) -> list[Stage]:
    """Bisect the schedule until every stage fits; map each stage.

    ``mapper`` maps one sub-DAG (typically :func:`repro.mapping.naive.
    map_naive` or :func:`~repro.mapping.optimized.map_sherlock` with
    recycling on).  Raises :class:`CapacityError` when even a single
    schedule position does not fit, or the stage count explodes.
    """
    dag.validate()
    schedule = blevel_order(dag)
    if not schedule:
        raise CapacityError(
            "cannot partition a DAG with no operations; the passthrough "
            "outputs alone exceed the target")
    pos = {op_id: i for i, op_id in enumerate(schedule)}
    stages: list[Stage] = []

    def fit(lo: int, hi: int) -> None:
        if len(stages) >= MAX_STAGES:
            raise CapacityError(
                f"partitioning exceeded {MAX_STAGES} stages; the target is "
                "far too small for this DAG")
        plan = _build_stage(dag, schedule, pos, lo, hi)
        try:
            mapping = mapper(plan.dag)
        except MappingError as exc:
            if hi - lo <= 1:
                raise CapacityError(
                    f"partitioning bottomed out: op {lo} of the schedule "
                    f"does not fit the target on its own ({exc})",
                    num_arrays=target.num_arrays) from exc
            cut = _best_cut(dag, schedule, pos, lo, hi)
            fit(lo, cut)
            fit(cut, hi)
            return
        stages.append(Stage(dag=plan.dag, mapping=mapping,
                            imports=plan.imports, exports=plan.exports))

    fit(0, len(schedule))
    for prev, stage in zip(stages, stages[1:]):
        _build_bridge(prev, stage)
    return stages


def combined_mapping(dag: DataFlowGraph, target: TargetSpec,
                     stages: list[Stage], mapper_name: str) -> MappingResult:
    """One MappingResult view over a staged program, for metrics/reports.

    The instruction list concatenates every stage's bridge and body in
    execution order, so latency/energy metrics price the full fallback
    cost.  The layout is the final stage's (stages reuse physical cells,
    so no single layout describes the whole run).
    """
    instructions: list[Instruction] = []
    stats = MappingStats(mapper_name)
    for stage in stages:
        instructions.extend(stage.bridge)
        instructions.extend(stage.mapping.instructions)
        stats.gather_moves += stage.mapping.stats.gather_moves
        stats.merged_instruction_savings += \
            stage.mapping.stats.merged_instruction_savings
        stats.recycled_cells += stage.mapping.stats.recycled_cells
        stats.duplicates += stage.mapping.stats.duplicates
        stats.columns_used = max(stats.columns_used,
                                 stage.mapping.stats.columns_used)
        stats.arrays_used = max(stats.arrays_used,
                                stage.mapping.stats.arrays_used)
        stats.cells_used = max(stats.cells_used,
                               stage.mapping.stats.cells_used)
    return MappingResult(dag=dag, target=target,
                         layout=stages[-1].mapping.layout,
                         instructions=instructions, stats=stats)


def execute_staged(stages: list[Stage], dag: DataFlowGraph,
                   target: TargetSpec, inputs: dict[str, int],
                   lanes: int = 64, fault_rng=None, observer=None,
                   strict_shift: bool = True,
                   machine: ArrayMachine | None = None) -> dict[str, int]:
    """Run a staged program end to end on one shared :class:`ArrayMachine`.

    ``dag`` is the full (transformed) DAG the stages were cut from; its
    outputs name the values to return.  Boundary values are extracted
    after each stage and re-injected into later stages — by the bridge
    instructions where possible, by host pokes otherwise.  A caller may
    supply a pre-configured ``machine`` (fault map, verify-after-write);
    the other machine knobs are then ignored.
    """
    if machine is None:
        machine = ArrayMachine(target, lanes, fault_rng,
                               strict_shift=strict_shift, observer=observer)
    boundary: dict[int, int] = {}
    for stage in stages:
        machine.run(stage.bridge)
        stage_inputs: dict[str, int] = {}
        for operand in stage.dag.inputs():
            if operand.name in stage.imports:
                stage_inputs[operand.name] = boundary[
                    stage.imports[operand.name]]
            else:
                stage_inputs[operand.name] = inputs[operand.name]
        poked = {name for name in stage_inputs if name not in stage.bridged}
        preload_sources(machine, stage.mapping.layout, stage.dag,
                        stage_inputs, only=poked)
        machine.run(stage.mapping.instructions)
        for name, value in extract_outputs(
                machine, stage.mapping.layout, stage.dag).items():
            boundary[stage.exports[name]] = value
    results: dict[str, int] = {}
    for name, oid in dag.outputs.items():
        operand = dag.operand(oid)
        if operand.producer is None:
            if operand.kind is OperandKind.CONST:
                results[name] = machine.mask if operand.const_value else 0
            elif operand.name not in inputs:
                raise SimulationError(
                    f"missing input value for passthrough output {name!r}")
            else:
                results[name] = inputs[operand.name] & machine.mask
        else:
            results[name] = boundary[oid]
    return results
