"""Mapping and scheduling: Algorithm 1 (naive) and Algorithm 2 (Sherlock)."""

from repro.mapping.base import MappingResult, MappingStats
from repro.mapping.clustering import Cluster, find_clusters, merge_clusters
from repro.mapping.multiarray import (
    ArrayAssignment,
    MultiArrayOptions,
    apply_recompute,
    assign_arrays,
    map_multiarray,
)
from repro.mapping.naive import map_naive
from repro.mapping.optimized import SherlockOptions, map_sherlock
from repro.mapping.partition import (
    Stage,
    combined_mapping,
    execute_staged,
    map_partitioned,
)

__all__ = [
    "ArrayAssignment",
    "Cluster",
    "MappingResult",
    "MappingStats",
    "MultiArrayOptions",
    "SherlockOptions",
    "Stage",
    "apply_recompute",
    "assign_arrays",
    "combined_mapping",
    "execute_staged",
    "find_clusters",
    "map_multiarray",
    "map_naive",
    "map_partitioned",
    "map_sherlock",
    "merge_clusters",
]
