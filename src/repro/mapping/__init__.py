"""Mapping and scheduling: Algorithm 1 (naive) and Algorithm 2 (Sherlock)."""

from repro.mapping.base import MappingResult, MappingStats
from repro.mapping.clustering import Cluster, find_clusters, merge_clusters
from repro.mapping.naive import map_naive
from repro.mapping.optimized import SherlockOptions, map_sherlock

__all__ = [
    "Cluster",
    "MappingResult",
    "MappingStats",
    "SherlockOptions",
    "find_clusters",
    "map_naive",
    "map_sherlock",
    "merge_clusters",
]
