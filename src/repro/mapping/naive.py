"""Algorithm 1: the naive (state-of-the-art) mapping of a DAG to CIM arrays.

Op nodes are visited in descending b-level order; every operand (and the
op's result) that is not yet in memory is packed at a monotonically
advancing column cursor, spilling into the next column — and eventually the
next array — when a column fills up.  Because the cursor ignores the DAG
structure, the operands of later ops end up scattered over many columns,
and code generation has to gather them with plain-read/shift/write move
sequences, duplicating data.  That movement is exactly the inefficiency
Sherlock's clustering eliminates (Sec. 2.2, "The mapping problem").
"""

from __future__ import annotations

from repro.arch.layout import Layout
from repro.arch.target import TargetSpec
from repro.dfg.blevel import blevel_order
from repro.dfg.graph import DataFlowGraph
from repro.errors import MappingError
from repro.mapping.base import MappingResult, MappingStats
from repro.mapping.codegen import CodeGenerator


def map_naive(dag: DataFlowGraph, target: TargetSpec) -> MappingResult:
    """Map and schedule ``dag`` with the naive column-major packing."""
    dag.validate()
    layout = Layout(target)
    stats = MappingStats("naive")
    gen = CodeGenerator(dag, target, layout, stats)

    cursor = 0
    planned_rows = target.usable_rows  # leave slack for gather duplicates

    def place_at_cursor(operand_id: int) -> None:
        nonlocal cursor
        while layout.column_fill(cursor) >= planned_rows:
            cursor += 1
            if cursor >= layout.num_global_cols:
                raise MappingError(
                    "naive mapping ran out of columns: "
                    f"{layout.num_global_cols} columns of "
                    f"{planned_rows} usable rows; increase num_arrays")
        layout.place(operand_id, cursor)

    # Algorithm 1 lines 5-17: pack unmapped operands and results in b-level
    # order at the cursor.
    for op_id in blevel_order(dag):
        node = dag.op(op_id)
        for oid in dict.fromkeys(node.operands):
            if not layout.is_placed(oid):
                place_at_cursor(oid)
        place_at_cursor(node.result)

    # Algorithm 1 line 18: generate instructions per node.  The home column
    # is the one already holding most of the op's operands (ties: lowest
    # column) and with room for the missing gather copies.
    def home_for(op_id: int) -> int:
        node = dag.op(op_id)
        operands = list(dict.fromkeys(node.operands))
        votes: dict[int, int] = {}
        for oid in operands:
            for addr in layout.copies(oid):
                gcol = layout.global_col(addr.array, addr.col)
                votes[gcol] = votes.get(gcol, 0) + 1
        candidates = sorted(votes, key=lambda g: (-votes[g], g))
        for gcol in candidates:
            missing = len(operands) - votes[gcol]
            if layout.column_free(gcol) >= missing:
                return gcol
        # no populated column has room: gather everything into a fresh one
        for gcol in range(layout.num_global_cols):
            if layout.column_free(gcol) >= len(operands):
                return gcol
        raise MappingError(
            "no column can host the gather copies; increase num_arrays "
            "or lower column_fill_factor")

    gen.run_per_op(home_for, place_results=False)

    result = MappingResult(dag=dag, target=target, layout=layout,
                           instructions=gen.instructions, stats=stats)
    result.finalize_stats()
    return result
