"""Algorithm 1: the naive (state-of-the-art) mapping of a DAG to CIM arrays.

Op nodes are visited in descending b-level order; every operand (and the
op's result) that is not yet in memory is packed at a monotonically
advancing column cursor, spilling into the next column — and eventually the
next array — when a column fills up.  Because the cursor ignores the DAG
structure, the operands of later ops end up scattered over many columns,
and code generation has to gather them with plain-read/shift/write move
sequences, duplicating data.  That movement is exactly the inefficiency
Sherlock's clustering eliminates (Sec. 2.2, "The mapping problem").

With ``recycle`` the mapper interleaves placement with code generation and
releases every operand's cells past its last use, so near-capacity DAGs can
pack into the reclaimed cells instead of failing.  Independently of that
flag, the gather fallback reclaims dead copies in candidate columns before
declaring the DAG unmappable — a path that previously hard-failed.
"""

from __future__ import annotations

from repro.arch.layout import Layout
from repro.arch.target import TargetSpec
from repro.dfg.blevel import blevel_order
from repro.dfg.graph import DataFlowGraph, OperandKind
from repro.dfg.liveness import schedule_liveness
from repro.errors import CapacityError, MappingError
from repro.mapping.base import MappingResult, MappingStats
from repro.mapping.codegen import CodeGenerator


def map_naive(dag: DataFlowGraph, target: TargetSpec,
              recycle: bool = False, fault_map=None) -> MappingResult:
    """Map and schedule ``dag`` with the naive column-major packing.

    ``fault_map`` (a :class:`repro.devices.FaultMap`) makes the placement
    fault-aware: operands land only on healthy cells, faulty rows are
    burned as padding.
    """
    dag.validate()
    layout = Layout(target, fault_map=fault_map)
    stats = MappingStats("naive")
    gen = CodeGenerator(dag, target, layout, stats, recycle=recycle)

    cursor = 0
    planned_rows = target.usable_rows  # leave slack for gather duplicates
    schedule = blevel_order(dag)
    liveness = schedule_liveness(dag, schedule)
    order_index = {op_id: idx for idx, op_id in enumerate(schedule)}

    def capacity_error(message: str) -> CapacityError:
        required = (layout.cells_used
                    + sum(1 for _ in dag.operand_nodes()
                          if not layout.is_placed(_.node_id)))
        return CapacityError(
            message,
            required_cells=required,
            available_cells=layout.num_global_cols * planned_rows,
            num_arrays=target.num_arrays)

    def place_at_cursor(operand_id: int, reuse: bool) -> None:
        nonlocal cursor
        if reuse:
            # recycle mode: dead cells anywhere beat a fresh cursor cell
            for gcol in layout.reusable_columns():
                layout.place(operand_id, gcol)
                return
        while True:
            while layout.column_fill(cursor) >= planned_rows:
                cursor += 1
                if cursor >= layout.num_global_cols:
                    raise capacity_error(
                        "naive mapping ran out of columns: "
                        f"{layout.num_global_cols} columns of "
                        f"{planned_rows} usable rows; increase num_arrays")
            try:
                layout.place(operand_id, cursor, reuse=False)
                return
            except MappingError:
                # fault-aware placement can exhaust a column that still
                # looked open at the fill line: move on to the next one
                cursor += 1
                if cursor >= layout.num_global_cols:
                    raise capacity_error(
                        "naive mapping ran out of healthy cells: "
                        f"{layout.num_global_cols} columns of "
                        f"{planned_rows} usable rows; increase num_arrays"
                        ) from None

    def reclaim_dead(gcol: int, position: int) -> int:
        """Release dead residents of ``gcol`` so their cells can be reused."""
        freed = 0
        for oid in layout.residents(gcol):
            if not liveness.dead_before(oid, position):
                continue
            if dag.operand(oid).kind is OperandKind.INTERMEDIATE:
                freed += layout.release(oid)
            else:
                freed += layout.release_duplicates(oid)
        return freed

    # Algorithm 1 line 18 policy: the home column is the one already holding
    # most of the op's operands (ties: lowest column) and with room for the
    # missing gather copies.
    def home_for(op_id: int) -> int:
        node = dag.op(op_id)
        operands = list(dict.fromkeys(node.operands))
        votes: dict[int, int] = {}
        for oid in operands:
            for addr in layout.copies(oid):
                gcol = layout.global_col(addr.array, addr.col)
                votes[gcol] = votes.get(gcol, 0) + 1
        candidates = sorted(votes, key=lambda g: (-votes[g], g))
        for gcol in candidates:
            missing = len(operands) - votes[gcol]
            if layout.column_free_healthy(gcol) >= missing:
                return gcol
        # no populated column has room: gather everything into a fresh one
        for gcol in range(layout.num_global_cols):
            if layout.column_free_healthy(gcol) >= len(operands):
                return gcol
        # last resort: recycle dead copies in the candidate columns before
        # giving up (the op's own operands are live, so they are untouched)
        position = order_index[op_id]
        for gcol in candidates + list(range(layout.num_global_cols)):
            reclaim_dead(gcol, position)
            missing = len(operands) - votes.get(gcol, 0)
            if (layout.column_free_healthy(gcol)
                    + layout.column_reusable(gcol)) >= missing:
                return gcol
        raise capacity_error(
            "no column can host the gather copies; increase num_arrays "
            "or lower column_fill_factor")

    if recycle:
        # Interleave placement, generation, and release so each op can pack
        # its result into cells freed by operands that just died.
        for idx, op_id in enumerate(schedule):
            node = dag.op(op_id)
            for oid in dict.fromkeys(node.operands):
                if not layout.is_placed(oid):
                    # unplaced operands here are sources, preloaded at t=0
                    place_at_cursor(oid, reuse=False)
            place_at_cursor(node.result, reuse=True)
            gen.emit_op(op_id, home_for(op_id), place_results=False)
            gen.release_dying(liveness, idx)
    else:
        # Algorithm 1 lines 5-17: pack unmapped operands and results in
        # b-level order at the cursor, then generate instructions per node.
        for op_id in schedule:
            node = dag.op(op_id)
            for oid in dict.fromkeys(node.operands):
                if not layout.is_placed(oid):
                    place_at_cursor(oid, reuse=False)
            place_at_cursor(node.result, reuse=False)
        gen.run_per_op(home_for, place_results=False)

    result = MappingResult(dag=dag, target=target, layout=layout,
                           instructions=gen.instructions, stats=stats)
    result.finalize_stats()
    return result
