"""DAG op-node clustering (Sec. 3.3.1, the core of Algorithm 2).

Each cluster becomes one CIM column, so the clustering objective is to keep
dependent ops together (intra-cluster dependencies are free; cross-cluster
dependencies cost gather moves) while keeping every cluster's memory
*footprint* — the result cells of its ops plus the externally produced
operands that must be copied into its column — within the column height.

Nodes are visited in descending b-level order.  A node without predecessors
opens a new cluster.  Otherwise the five cases of Fig. 5 apply; all of them
are instances of the assignment score of Eq. 1:

    score(d, C) = α · Σ_{q ∈ pred(d) ∩ C} ρ(d, q)  −  β · |C|

with ρ(d, q) = 1 / (b(q) − b(d)): more predecessors in a cluster and
smaller priority differences (the node extends that cluster's critical
path) raise the score — cases 3 and 4 — while β penalizes large clusters to
balance load — case 5.  Case 2's special "merge equal-sized predecessor
clusters" rule is applied before scoring.  Finally, clusters are greedily
merged down toward ``k`` (the column budget), preferring pairs with the
most inter-cluster dependencies (Sec. 3.3.1, MergeClusters).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.dfg.blevel import compute_blevels
from repro.dfg.graph import DataFlowGraph
from repro.errors import MappingError


@dataclass
class Cluster:
    """A set of op nodes bound for one CIM column."""

    cluster_id: int
    ops: list[int] = field(default_factory=list)
    #: operand ids produced by ops inside the cluster
    results: set[int] = field(default_factory=set)
    #: operand ids consumed from outside (inputs or other clusters' results)
    external: set[int] = field(default_factory=set)

    @property
    def footprint(self) -> int:
        """Cells the cluster's column needs: results + gathered externals."""
        return len(self.results) + len(self.external)

    @property
    def size(self) -> int:
        """Number of ops currently in the cluster."""
        return len(self.ops)

    def addition_cost(self, result: int, operands: list[int]) -> int:
        """Extra cells needed if the op joined this cluster."""
        cost = 1  # the result cell
        for oid in operands:
            if oid not in self.results and oid not in self.external:
                cost += 1
        return cost

    def add(self, op_id: int, result: int, operands: list[int]) -> None:
        """Assign an op to the cluster, updating the footprint sets."""
        self.ops.append(op_id)
        self.results.add(result)
        for oid in operands:
            if oid not in self.results:
                self.external.add(oid)
        self.external -= self.results


def find_clusters(dag: DataFlowGraph, c_max: int, alpha: float = 1.0,
                  beta: float = 0.05) -> list[Cluster]:
    """Partition the DAG's op nodes into footprint-bounded clusters."""
    if c_max < 3:
        raise MappingError(f"column height {c_max} too small to cluster into")
    levels = compute_blevels(dag)
    order = sorted(levels, key=lambda op_id: (-levels[op_id], op_id))
    cluster_of: dict[int, Cluster] = {}
    clusters: list[Cluster] = []
    next_id = 0

    def new_cluster() -> Cluster:
        nonlocal next_id
        cluster = Cluster(next_id)
        next_id += 1
        clusters.append(cluster)
        return cluster

    for op_id in order:
        node = dag.op(op_id)
        operands = list(dict.fromkeys(node.operands))
        preds = dag.pred_ops(op_id)
        pred_clusters: list[Cluster] = []
        seen_ids: set[int] = set()
        for pred in preds:
            cluster = cluster_of[pred]
            if cluster.cluster_id not in seen_ids:
                seen_ids.add(cluster.cluster_id)
                pred_clusters.append(cluster)

        target_cluster: Cluster | None = None
        if not pred_clusters:
            target_cluster = new_cluster()
        else:
            if len(pred_clusters) > 1:
                sizes = {c.size for c in pred_clusters}
                if len(sizes) == 1:
                    # Case 2: equal-sized predecessor clusters merge if the
                    # union plus the new node still fits one column.
                    merged = _union_footprint(pred_clusters, node.result, operands)
                    if merged <= c_max:
                        target_cluster = _merge_into_first(pred_clusters, cluster_of)
                        clusters[:] = [c for c in clusters
                                       if c is target_cluster or c not in pred_clusters[1:]]
            if target_cluster is None:
                target_cluster = _best_scoring(
                    pred_clusters, op_id, operands, node.result,
                    dag, levels, cluster_of, c_max, alpha, beta)
            if target_cluster is None:
                target_cluster = new_cluster()
        target_cluster.add(op_id, node.result, operands)
        cluster_of[op_id] = target_cluster
    return clusters


def _union_footprint(group: list[Cluster], result: int, operands: list[int]) -> int:
    results: set[int] = set()
    external: set[int] = set()
    for cluster in group:
        results |= cluster.results
        external |= cluster.external
    results.add(result)
    external.update(operands)
    return len(results) + len(external - results)


def _merge_into_first(group: list[Cluster], cluster_of: dict[int, Cluster]) -> Cluster:
    base = group[0]
    for other in group[1:]:
        base.ops.extend(other.ops)
        base.results |= other.results
        base.external |= other.external
        for op_id in other.ops:
            cluster_of[op_id] = base
    base.external -= base.results
    return base


def _best_scoring(pred_clusters: list[Cluster], op_id: int, operands: list[int],
                  result: int, dag: DataFlowGraph, levels: dict[int, int],
                  cluster_of: dict[int, Cluster], c_max: int,
                  alpha: float, beta: float) -> Cluster | None:
    """Eq. 1 over the predecessor clusters with remaining capacity."""
    best: Cluster | None = None
    best_key: tuple[float, int, int] | None = None
    my_level = levels[op_id]
    for cluster in pred_clusters:
        cost = cluster.addition_cost(result, operands)
        if cluster.footprint + cost > c_max:
            continue
        closeness = 0.0
        for pred in dag.pred_ops(op_id):
            if cluster_of[pred] is cluster:
                closeness += 1.0 / (levels[pred] - my_level)
        score = alpha * closeness - beta * cluster.size
        key = (score, -cluster.size, -cluster.cluster_id)
        if best_key is None or key > best_key:
            best_key = key
            best = cluster
    return best


def merge_clusters(clusters: list[Cluster], k: int, c_max: int,
                   dag: DataFlowGraph) -> tuple[list[Cluster], int]:
    """Greedily merge clusters toward ``k``, most-dependent pairs first.

    Returns the surviving clusters and the number of merges performed.
    Merging stops early when no pair fits within the footprint bound.
    """
    if k < 1:
        raise MappingError(f"column budget k must be positive, got {k}")
    alive: dict[int, Cluster] = {c.cluster_id: c for c in clusters}
    cluster_of_op = {op_id: c.cluster_id for c in clusters for op_id in c.ops}

    # inter-cluster dependency weights as a symmetric adjacency structure,
    # so folding a merged cluster's edges is proportional to its degree
    adj: dict[int, dict[int, int]] = {cid: {} for cid in alive}
    for op_id, src in cluster_of_op.items():
        for succ in dag.succ_ops(op_id):
            dst = cluster_of_op[succ]
            if src != dst:
                adj[src][dst] = adj[src].get(dst, 0) + 1
                adj[dst][src] = adj[dst].get(src, 0) + 1

    heap: list[tuple[int, int, int, int]] = []
    for a, neighbours in adj.items():
        for b, w in neighbours.items():
            if a < b:
                fp = alive[a].footprint + alive[b].footprint
                heapq.heappush(heap, (-w, fp, a, b))

    merges = 0
    while len(alive) > k:
        merged_pair = None
        while heap:
            neg_w, fp, a, b = heapq.heappop(heap)
            if a not in alive or b not in alive:
                continue
            if adj[a].get(b, 0) != -neg_w \
                    or alive[a].footprint + alive[b].footprint != fp:
                continue  # stale entry
            if _merged_footprint(alive[a], alive[b]) <= c_max:
                merged_pair = (a, b)
                break
        if merged_pair is None:
            # no dependent pair fits; fall back to the two smallest clusters
            order = sorted(alive.values(), key=lambda c: (c.footprint, c.cluster_id))
            found = False
            for i in range(len(order)):
                for j in range(i + 1, len(order)):
                    if _merged_footprint(order[i], order[j]) <= c_max:
                        merged_pair = (order[i].cluster_id, order[j].cluster_id)
                        found = True
                        break
                if found or order[i].footprint * 2 > c_max:
                    break
            if merged_pair is None:
                break  # nothing fits: accept more than k clusters
        a, b = merged_pair
        keep, gone = alive[a], alive[b]
        keep.ops.extend(gone.ops)
        keep.results |= gone.results
        keep.external = (keep.external | gone.external) - keep.results
        for op_id in gone.ops:
            cluster_of_op[op_id] = a
        del alive[b]
        merges += 1
        # fold b's edges into a's and refresh the affected heap entries
        for other, w in adj.pop(b).items():
            if other == b or other not in alive:
                continue
            adj[other].pop(b, None)
            if other == a:
                continue
            adj[a][other] = adj[a].get(other, 0) + w
            adj[other][a] = adj[a][other]
        for other, w in adj[a].items():
            if other in alive:
                fp = alive[a].footprint + alive[other].footprint
                heapq.heappush(
                    heap, (-w, fp, min(a, other), max(a, other)))
    return list(alive.values()), merges


def _merged_footprint(a: Cluster, b: Cluster) -> int:
    results = a.results | b.results
    external = (a.external | b.external) - results
    return len(results) + len(external)
