"""Algorithm 2: Sherlock's optimizing mapper.

The DAG's op nodes are clustered (Sec. 3.3.1) so that dependent ops share a
column, the clusters are greedily merged down to the column budget
``k = ⌈operands / m⌉``, each surviving cluster is bound to one CIM column,
and the level-synchronous scheduler generates code, merging compatible
instructions across clusters (Sec. 3.3.2/3.3.3).  Instruction merging can
be disabled for ablation studies, and is automatically unavailable on
targets without selective-column control.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.layout import Layout
from repro.arch.target import TargetSpec
from repro.dfg.graph import DataFlowGraph
from repro.errors import CapacityError, MappingError
from repro.mapping.base import MappingResult, MappingStats
from repro.mapping.clustering import find_clusters, merge_clusters
from repro.mapping.codegen import CodeGenerator


@dataclass(frozen=True)
class SherlockOptions:
    """Tuning knobs of the optimizing mapper."""

    #: Eq. 1 weights: α scales dependency closeness, β the size penalty
    alpha: float = 1.0
    beta: float = 0.05
    #: merge compatible instructions across clusters (Sec. 3.3.3)
    merge_instructions: bool = True
    #: fraction of the column the cluster-merging phase may fill; the rest
    #: stays free as row-alignment padding budget, which keeps instruction
    #: merging alive on deep DAGs (1.0 = pack columns completely)
    merge_headroom: float = 0.6
    #: release dead operand cells during generation so near-capacity DAGs
    #: can recycle them (may change codegen; off by default)
    recycle: bool = False


def map_sherlock(dag: DataFlowGraph, target: TargetSpec,
                 options: SherlockOptions | None = None,
                 fault_map=None) -> MappingResult:
    """Map and schedule ``dag`` with Sherlock's clustering mapper.

    ``fault_map`` (a :class:`repro.devices.FaultMap`) makes the placement
    fault-aware: faulty rows are burned as padding, and aligned placements
    fall back to the unaligned path when a fault sits in their window.
    """
    options = options or SherlockOptions()
    dag.validate()
    layout = Layout(target, fault_map=fault_map)
    stats = MappingStats("sherlock")
    c_max = target.usable_rows

    if not 0 < options.merge_headroom <= 1:
        raise MappingError(
            f"merge_headroom must be in (0, 1], got {options.merge_headroom}")
    k = max(1, math.ceil(dag.num_operands / c_max))
    build_cap = max(3, int(c_max * options.merge_headroom))
    clusters = find_clusters(dag, build_cap, options.alpha, options.beta)
    clusters, merges = merge_clusters(clusters, k, build_cap, dag)
    stats.clusters = len(clusters)
    stats.cluster_merges = merges

    if len(clusters) > layout.num_global_cols:
        raise CapacityError(
            f"need {len(clusters)} columns but the target only has "
            f"{layout.num_global_cols}; increase num_arrays",
            required_cells=dag.num_operands,
            available_cells=layout.num_global_cols * c_max,
            num_arrays=target.num_arrays,
            suggested_num_arrays=math.ceil(
                len(clusters) / target.cols))

    # bind cluster i to global column i, in creation order; the headroom
    # above each cluster's planned footprint becomes the row-alignment
    # padding budget of its column
    column_of: dict[int, int] = {}
    pad_budget: dict[int, int] = {}
    for gcol, cluster in enumerate(clusters):
        for op_id in cluster.ops:
            column_of[op_id] = gcol
        pad_budget[gcol] = max(0, target.rows - cluster.footprint)

    _stage_shared_sources(dag, layout, column_of, first_free=len(clusters))

    gen = CodeGenerator(dag, target, layout, stats, pad_budget=pad_budget,
                        recycle=options.recycle)
    if options.merge_instructions and target.selective_columns:
        gen.run_merged(column_of)
    else:
        gen.run_per_op(lambda op_id: column_of[op_id], place_results=True)

    result = MappingResult(dag=dag, target=target, layout=layout,
                           instructions=gen.instructions, stats=stats)
    result.finalize_stats()
    return result


def _stage_shared_sources(dag: DataFlowGraph, layout: Layout,
                          column_of: dict[int, int], first_free: int) -> None:
    """Park source data shared between clusters in dedicated columns.

    A primary input sitting in one cluster's column desynchronizes that
    column's top-down region from its structural peers and breaks
    instruction merging, so multi-cluster inputs live in staging columns
    and *every* consumer gathers a copy symmetrically.  Sources consumed
    by a single cluster stay unplaced here; the code generator parks them
    in that cluster's column for free.
    """
    gcol = first_free
    usable = layout.target.usable_rows
    for operand in sorted(dag.operand_nodes(), key=lambda o: o.node_id):
        if operand.producer is not None:
            continue
        consuming = {column_of[op_id] for op_id in dag.consumers(operand.node_id)}
        if len(consuming) <= 1:
            continue
        while True:
            while (gcol < layout.num_global_cols
                   and layout.column_fill(gcol) >= usable):
                gcol += 1
            if gcol >= layout.num_global_cols:
                # staging space exhausted: the remaining sources fall back
                # to first-user placement inside the code generator
                return
            try:
                # preloaded at t=0: never place sources into a recycled cell
                layout.place(operand.node_id, gcol, reuse=False)
                break
            except MappingError:
                # fault-aware placement exhausted the column's healthy cells
                gcol += 1
