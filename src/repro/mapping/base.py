"""Common result types shared by the naive and Sherlock mappers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.isa import Instruction, TransferInst
from repro.arch.layout import Layout
from repro.arch.target import TargetSpec
from repro.dfg.graph import DataFlowGraph


@dataclass
class MappingStats:
    """Diagnostics both algorithms report (Sec. 3.2/3.3 discussion)."""

    mapper: str
    gather_moves: int = 0
    merged_instruction_savings: int = 0
    clusters: int | None = None
    cluster_merges: int | None = None
    columns_used: int = 0
    arrays_used: int = 0
    duplicates: int = 0
    #: operand cells in use after mapping and code generation
    cells_used: int = 0
    #: placements that reused a cell released by liveness recycling
    recycled_cells: int = 0
    #: ``xfer`` instructions in the trace (inter-array bus copies)
    cross_array_transfers: int = 0
    #: ops the multi-array scheduler duplicated instead of bridging
    recomputed_ops: int = 0

    def as_dict(self) -> dict[str, object]:
        """All statistics as a flat dictionary."""
        return {k: v for k, v in self.__dict__.items()}


@dataclass
class MappingResult:
    """Layout + generated instructions: the output of Algorithm 1/2."""

    dag: DataFlowGraph
    target: TargetSpec
    layout: Layout
    instructions: list[Instruction] = field(default_factory=list)
    stats: MappingStats = field(default_factory=lambda: MappingStats("unknown"))

    def finalize_stats(self) -> None:
        """Fill the layout-derived statistics after code generation."""
        self.stats.columns_used = self.layout.columns_used
        self.stats.arrays_used = self.layout.arrays_used
        self.stats.duplicates = self.layout.duplicates
        self.stats.cells_used = self.layout.cells_used
        self.stats.recycled_cells = self.layout.recycled
        self.stats.cross_array_transfers = sum(
            1 for inst in self.instructions if isinstance(inst, TransferInst))
