"""Multi-array co-scheduler: partition the DAG across arrays (MASIM-style).

The historical mappers treat ``TargetSpec.num_arrays`` as extra capacity
behind one global column space: columns spill into the next array when the
previous one fills, and spill-and-partition runs its stages *serially*.
This module instead partitions the schedule across the arrays so that
independent regions of the DAG execute *concurrently*, synchronizing only
at explicit ``xfer`` bridge copies on the shared global bus.

The partition works at the granularity of the clustering mapper's Eq. 1
clusters (:mod:`repro.mapping.clustering`): structurally similar clusters
are what keeps the level-synchronous scheduler's instruction merging
alive, so clusters — not single ops — are the unit that moves between
arrays.  The assignment pass walks the clusters in schedule order and
scores every array for every cluster:

* **affinity** — external operands whose producers already compute on an
  array pull the cluster there (each avoided bridge saves a read + xfer +
  shift + write chain on the bus),
* **balance** — estimated cell load (cluster footprints), relative to the
  array's *healthy* capacity under the compile's fault map, pushes
  clusters away from crowded or fault-ridden arrays.

Each cross-array operand edge is then priced: carrying the value over
costs a bridge chain, while *recomputing* the producer on the consumer's
array costs one CIM read + write — legal only when every producer operand
already has a copy there.  Cheaper recomputes are applied as real DAG
duplication (:func:`apply_recompute`), trading cells for bus traffic the
same way the naive mapper trades cells for gathers.

Every cluster then binds to one column of its assigned array, and the
shared :class:`repro.mapping.codegen.CodeGenerator` emits the
level-synchronous merged schedule with ``prefer_local_copies`` on, so a
copy that already crossed the bus is never fetched across it again.  The
resulting single instruction stream interleaves per-array sub-streams;
the overlap model (:func:`repro.sim.metrics.analyze_overlap`) and the
:class:`repro.sim.executor.ArraySetMachine` execute them concurrently.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.arch.layout import Layout
from repro.arch.target import TargetSpec
from repro.dfg.blevel import blevel_order
from repro.dfg.graph import DataFlowGraph
from repro.errors import CapacityError, MappingError
from repro.mapping.base import MappingResult, MappingStats
from repro.mapping.clustering import Cluster, find_clusters, merge_clusters
from repro.mapping.codegen import CodeGenerator

__all__ = [
    "ArrayAssignment",
    "MultiArrayOptions",
    "apply_recompute",
    "assign_arrays",
    "map_multiarray",
]


@dataclass(frozen=True)
class MultiArrayOptions:
    """Tuning knobs of the multi-array co-scheduler."""

    #: Eq. 1 clustering weights (same roles as ``SherlockOptions``)
    alpha: float = 1.0
    beta: float = 0.05
    #: score per operand copy already resident on a candidate array
    affinity_weight: float = 1.0
    #: penalty per unit of relative cell load on a candidate array
    balance_weight: float = 2.0
    #: duplicate a producer op instead of bridging its value when the
    #: recompute is legal (operands resident) and priced cheaper
    recompute: bool = True
    #: merge compatible instructions across columns (needs selective columns)
    merge_instructions: bool = True
    #: fraction of a column the clustering phase may fill; the rest stays
    #: free as row-alignment padding budget (mirrors ``SherlockOptions``)
    merge_headroom: float = 0.6
    #: release dead operand cells during generation (ladder rung)
    recycle: bool = False
    #: array ids the assignment must not place onto (health quarantine);
    #: excluding every array is a MappingError
    exclude_arrays: tuple[int, ...] = ()
    #: ``(array, cost)`` pairs subtracted from a candidate array's
    #: assignment score — the health registry's DEGRADED verdict as a
    #: soft preference (quarantine is the hard ``exclude_arrays`` form)
    array_penalties: tuple[tuple[int, float], ...] = ()

    def penalty_of(self) -> dict[int, float]:
        """The ``array_penalties`` pairs as a lookup dict."""
        return {int(a): float(p) for a, p in self.array_penalties}


@dataclass
class ArrayAssignment:
    """Where every op computes, and what the partition is estimated to cost."""

    #: op node id -> array id
    array_of: dict[int, int] = field(default_factory=dict)
    #: producer op id -> arrays it is duplicated onto (recompute sites)
    recomputed: dict[int, tuple[int, ...]] = field(default_factory=dict)
    #: cross-array operand edges priced as xfer bridge chains
    bridge_edges: int = 0
    #: modeled cycles of those bridge chains (read + xfer + shift + write)
    bridge_cycles: int = 0
    #: modeled cycles spent on duplicate recomputes instead of bridges
    recompute_cycles: int = 0
    #: estimated operand cells per array (results + gather copies)
    load: dict[int, int] = field(default_factory=dict)

    def arrays_used(self) -> int:
        """Number of arrays the assignment actually populates."""
        return len(set(self.array_of.values()))


def _bridge_cycles(target: TargetSpec) -> int:
    """Modeled cycles of one cross-array gather chain."""
    cost = target.cost_model

    def cycles(ns: float) -> int:
        return max(1, math.ceil(ns * target.clock_ghz))

    return (cycles(cost.read_latency_ns(1)) + cycles(cost.transfer_latency_ns())
            + cycles(cost.shift_latency_ns()) + cycles(cost.write_latency_ns()))


def _recompute_cycles(target: TargetSpec, arity: int) -> int:
    """Modeled cycles of re-running one op (CIM read + result write)."""
    cost = target.cost_model

    def cycles(ns: float) -> int:
        return max(1, math.ceil(ns * target.clock_ghz))

    return (cycles(cost.read_latency_ns(max(1, arity)))
            + cycles(cost.write_latency_ns()))


def _healthy_capacity(target: TargetSpec, fault_map,
                      exclude: tuple[int, ...] = ()) -> dict[int, int]:
    """Usable cells per array, discounting permanently faulty cells.

    Arrays in ``exclude`` (quarantined by the health registry) are
    dropped from the capacity map entirely, so neither the cluster
    assignment nor the capacity check ever considers them.
    """
    capacity = {a: target.cols * target.usable_rows
                for a in range(target.num_arrays) if a not in exclude}
    if not capacity:
        raise MappingError(
            f"exclude_arrays {tuple(sorted(exclude))} leaves none of the "
            f"target's {target.num_arrays} arrays schedulable")
    if fault_map is not None:
        for (array, row, col), _fault in fault_map.cells():
            if (array in capacity and row < target.usable_rows
                    and col < target.cols):
                capacity[array] -= 1
    return capacity


def _assign_clusters(dag: DataFlowGraph, clusters: list[Cluster],
                     options: MultiArrayOptions, capacity: dict[int, int],
                     cols: int) -> dict[int, int]:
    """Greedy cluster -> array choice: affinity minus load imbalance.

    Clusters are visited in schedule order (earliest op in the b-level
    schedule first), so producers' homes are known when their consumers'
    clusters are placed.  An array is a candidate only while it has both
    healthy cells for the cluster's footprint and a free column to bind
    it to — columns, not cells, are the scarce resource on small targets.
    Returns op id -> array for every clustered op.
    """
    arrays = sorted(capacity)
    scale = max(1, sum(capacity.values()) // max(1, len(arrays)))
    penalty = options.penalty_of()
    load = {a: 0 for a in arrays}
    cols_used = {a: 0 for a in arrays}
    position = {op_id: idx for idx, op_id in enumerate(blevel_order(dag))}
    op_array: dict[int, int] = {}

    for cluster in sorted(clusters,
                          key=lambda c: min(position[op] for op in c.ops)):
        producers = {dag.operand(oid).producer for oid in cluster.external}
        producers.discard(None)

        def score(a: int) -> float:
            resident = sum(1 for p in producers if op_array.get(p) == a)
            return (options.affinity_weight * resident
                    - options.balance_weight * load[a] / scale
                    - penalty.get(a, 0.0))

        fitting = [a for a in arrays
                   if load[a] + cluster.footprint <= capacity[a]
                   and cols_used[a] < cols]
        candidates = fitting or arrays
        best = max(candidates, key=lambda a: (score(a), -a))
        load[best] += cluster.footprint
        cols_used[best] += 1
        for op_id in cluster.ops:
            op_array[op_id] = best
    return op_array


def assign_arrays(dag: DataFlowGraph, target: TargetSpec,
                  options: MultiArrayOptions | None = None,
                  fault_map=None,
                  clusters: list[Cluster] | None = None) -> ArrayAssignment:
    """Partition the schedule across the target's arrays.

    With ``clusters`` (the production path), whole Eq. 1 clusters move
    between arrays — structural similarity inside an array is what keeps
    instruction merging effective — and the b-level walk only prices the
    resulting cross-array operand edges.  Without clusters the same
    greedy runs per op: each op lands on the array maximizing operand
    affinity minus load imbalance.  Either way every cross-array edge is
    priced as a bridge chain or (when legal and cheaper) a duplicate
    recompute.  The estimates steer the partition; correctness never
    depends on them — the code generator gathers whatever is missing.
    """
    options = options or MultiArrayOptions()
    assignment = ArrayAssignment()
    capacity = _healthy_capacity(target, fault_map,
                                 exclude=options.exclude_arrays)
    arrays = sorted(capacity)
    scale = max(1, sum(capacity.values()) // max(1, len(arrays)))
    penalty = options.penalty_of()
    bridge = _bridge_cycles(target)
    preassigned = (_assign_clusters(dag, clusters, options, capacity,
                                    target.cols)
                   if clusters is not None else {})
    # operand id -> arrays estimated to hold a physical copy
    sites: dict[int, set[int]] = {}
    recomputed: dict[int, set[int]] = {}
    load = {a: 0 for a in arrays}

    for op_id in blevel_order(dag):
        node = dag.op(op_id)
        operands = list(dict.fromkeys(node.operands))

        if op_id in preassigned:
            best = preassigned[op_id]
        else:
            def score(a: int) -> float:
                resident = sum(1 for oid in operands
                               if a in sites.get(oid, ()))
                return (options.affinity_weight * resident
                        - options.balance_weight * load[a] / scale
                        - penalty.get(a, 0.0))

            need = {a: 1 + sum(1 for oid in operands
                               if a not in sites.get(oid, ()))
                    for a in arrays}
            fitting = [a for a in arrays if load[a] + need[a] <= capacity[a]]
            candidates = fitting or arrays
            best = max(candidates, key=lambda a: (score(a), -a))
            load[best] += need[best]

        for oid in operands:
            holders = sites.setdefault(oid, set())
            if best in holders:
                continue
            producer = dag.operand(oid).producer
            if producer is None and not holders:
                # a source's first placement is free: it is preloaded (or a
                # constant poked) wherever its first consumer computes
                holders.add(best)
                continue
            legal = (options.recompute and producer is not None
                     and best not in recomputed.get(producer, set())
                     and all(best in sites.get(q, set())
                             for q in dag.op(producer).operands))
            if legal:
                cost = _recompute_cycles(target, dag.op(producer).arity)
                if cost < bridge:
                    recomputed.setdefault(producer, set()).add(best)
                    assignment.recompute_cycles += cost
                    holders.add(best)
                    continue
            assignment.bridge_edges += 1
            assignment.bridge_cycles += bridge
            holders.add(best)
        assignment.array_of[op_id] = best
        sites.setdefault(node.result, set()).add(best)

    assignment.recomputed = {p: tuple(sorted(a)) for p, a in
                             sorted(recomputed.items())}
    counts: dict[int, int] = {}
    for array in assignment.array_of.values():
        counts[array] = counts.get(array, 0) + 1
    assignment.load = dict(sorted(counts.items()))
    return assignment


def apply_recompute(dag: DataFlowGraph, assignment: ArrayAssignment) -> int:
    """Materialize the assignment's recompute sites as DAG duplication.

    Each recomputed producer is cloned once per extra array and the
    consumers assigned there are rewired to the clone, so the value never
    crosses the bus.  The original op keeps the program outputs and the
    consumers on its own array.  Returns the number of clones added.
    """
    clones = 0
    for producer_id, extra_arrays in assignment.recomputed.items():
        node = dag.op(producer_id)
        home = assignment.array_of.get(producer_id)
        for array in extra_arrays:
            if array == home:
                continue
            rewire = [c for c in dag.consumers(node.result)
                      if assignment.array_of.get(c) == array]
            if not rewire:
                continue
            clone_result = dag.add_op(node.op, list(node.operands))
            clone_id = dag.operand(clone_result).producer
            assignment.array_of[clone_id] = array
            for consumer in rewire:
                consumer_node = dag.op(consumer)
                dag.replace_op(consumer, operands=[
                    clone_result if oid == node.result else oid
                    for oid in consumer_node.operands])
            clones += 1
    return clones


def _bind_clusters(dag: DataFlowGraph, target: TargetSpec,
                   clusters: list[Cluster],
                   assignment: ArrayAssignment,
                   available: int) -> tuple[dict[int, int], dict[int, int],
                                           dict[int, int]]:
    """One column per cluster on its assigned array; clones ride along.

    Mirrors the clustering mapper's binding: cluster *i* of an array takes
    that array's next local column, and the headroom above its planned
    footprint becomes the column's row-alignment padding budget.
    Recompute clones (ops outside every cluster) join the column of a
    consumer they were cloned for, spending that column's padding.
    Raises :class:`CapacityError` when an array runs out of columns.
    """
    local_next = {a: 0 for a in range(target.num_arrays)}
    column_of: dict[int, int] = {}
    pad_budget: dict[int, int] = {}
    for cluster in clusters:
        array = assignment.array_of[cluster.ops[0]]
        if local_next[array] >= target.cols:
            raise CapacityError(
                f"array {array} needs more than its {target.cols} columns "
                "for the co-scheduled clusters",
                required_cells=dag.num_operands,
                available_cells=available,
                num_arrays=target.num_arrays,
                suggested_num_arrays=max(target.num_arrays + 1, math.ceil(
                    len(clusters) / target.cols)))
        gcol = array * target.cols + local_next[array]
        local_next[array] += 1
        for op_id in cluster.ops:
            column_of[op_id] = gcol
        pad_budget[gcol] = max(0, target.rows - cluster.footprint)

    for op_id, array in assignment.array_of.items():
        if op_id in column_of:
            continue
        node = dag.op(op_id)
        gcol = next((column_of[c] for c in dag.consumers(node.result)
                     if c in column_of), None)
        if gcol is None:
            continue  # clone without bound consumers: codegen never reaches it
        column_of[op_id] = gcol
        pad_budget[gcol] = max(0, pad_budget[gcol] - (1 + node.arity))
    return column_of, pad_budget, local_next


def _stage_shared_sources(dag: DataFlowGraph, layout: Layout,
                          column_of: dict[int, int], target: TargetSpec,
                          local_next: dict[int, int]) -> None:
    """Park source data shared between clusters in per-array staging columns.

    Same rationale as the clustering mapper's staging pass: a primary
    input sitting in one cluster's column desynchronizes that column's
    top-down region from its structural peers and breaks instruction
    merging.  Each multi-cluster source lands in a staging column of the
    array where most of its consumers compute (only the primary copy is
    preloaded, so there is exactly one staging site per source); arrays
    whose staging space is exhausted fall back to first-user placement
    inside the code generator.
    """
    usable = target.usable_rows
    staged = {a: a * target.cols + local_next[a]
              for a in range(target.num_arrays)}
    for operand in sorted(dag.operand_nodes(), key=lambda o: o.node_id):
        if operand.producer is not None:
            continue
        consuming = {column_of[op_id]
                     for op_id in dag.consumers(operand.node_id)
                     if op_id in column_of}
        if len(consuming) <= 1:
            continue
        votes: dict[int, int] = {}
        for gcol in consuming:
            array = gcol // target.cols
            votes[array] = votes.get(array, 0) + 1
        array = max(sorted(votes), key=lambda a: votes[a])
        limit = (array + 1) * target.cols
        gcol = staged[array]
        while gcol < limit:
            if layout.column_fill(gcol) >= usable:
                gcol += 1
                continue
            try:
                # preloaded at t=0: never place sources into a recycled cell
                layout.place(operand.node_id, gcol, reuse=False)
                break
            except MappingError:
                # fault-aware placement exhausted the column's healthy cells
                gcol += 1
        staged[array] = min(gcol, limit)


def map_multiarray(dag: DataFlowGraph, target: TargetSpec,
                   options: MultiArrayOptions | None = None,
                   fault_map=None) -> MappingResult:
    """Map and schedule ``dag`` as a concurrent multi-array program.

    The input DAG is left untouched: recompute duplication mutates a
    private copy, which the returned :class:`MappingResult` carries as its
    ``dag`` (callers compiling through the pass manager adopt it as the
    working graph).  ``fault_map`` steers the assignment (per-array
    healthy capacity), the placement (faulty rows are burned), and the
    merge decisions (faulty aligned windows fall back to unaligned).
    """
    options = options or MultiArrayOptions()
    dag.validate()
    if not 0 < options.merge_headroom <= 1:
        raise MappingError(
            f"merge_headroom must be in (0, 1], got {options.merge_headroom}")
    work = dag.copy()
    c_max = target.usable_rows
    build_cap = max(3, int(c_max * options.merge_headroom))
    k = max(1, math.ceil(work.num_operands / c_max))
    clusters = find_clusters(work, build_cap, options.alpha, options.beta)
    clusters, merges = merge_clusters(clusters, k, build_cap, work)

    assignment = assign_arrays(work, target, options, fault_map=fault_map,
                               clusters=clusters)
    clones = apply_recompute(work, assignment)
    available = sum(_healthy_capacity(
        target, fault_map, exclude=options.exclude_arrays).values())
    if work.num_operands > available:
        raise CapacityError(
            f"DAG needs at least {work.num_operands} cells but the target's "
            f"{target.num_arrays} arrays only offer {available} healthy "
            "usable cells; co-scheduling cannot fit it either",
            required_cells=work.num_operands,
            available_cells=available,
            num_arrays=target.num_arrays)
    column_of, pad_budget, local_next = _bind_clusters(
        work, target, clusters, assignment, available)

    layout = Layout(target, fault_map=fault_map)
    _stage_shared_sources(work, layout, column_of, target, local_next)
    stats = MappingStats("multiarray")
    stats.clusters = len(clusters)
    stats.cluster_merges = merges
    stats.recomputed_ops = clones
    gen = CodeGenerator(work, target, layout, stats, pad_budget=pad_budget,
                        recycle=options.recycle, prefer_local_copies=True)
    if options.merge_instructions and target.selective_columns:
        gen.run_merged(column_of)
    else:
        gen.run_per_op(lambda op_id: column_of[op_id], place_results=True)

    result = MappingResult(dag=work, target=target, layout=layout,
                           instructions=gen.instructions, stats=stats)
    result.finalize_stats()
    return result
