"""Parsing the Fig. 4 instruction text format back into instructions.

`:func:`repro.arch.isa.program_text` renders a program as text; this module
is its inverse, so programs can be stored, diffed, and re-executed from
their textual form (``sherlock compile --emit`` output round-trips).
"""

from __future__ import annotations

import re

from repro.arch.isa import (
    Instruction,
    NotInst,
    ReadInst,
    ShiftInst,
    TransferInst,
    WriteInst,
)
from repro.dfg.ops import OpType
from repro.errors import SimulationError

_READ = re.compile(
    r"read \[(\d+)\]\[([\d,]+)\]\[([\d,]+)\](?: \[([a-z,]+)\])?$")
_WRITE = re.compile(r"write \[(\d+)\]\[([\d,]+)\]\[(\d+)\]$")
_SHIFT = re.compile(r"shift \[(\d+)\] ([RL])\[(\d+)\]$")
_NOT = re.compile(r"not \[(\d+)\]\[([\d,]+)\]$")
_XFER = re.compile(r"xfer \[(\d+)->(\d+)\]\[([\d,]+)\]$")


def _ints(csv: str) -> tuple[int, ...]:
    return tuple(int(x) for x in csv.split(","))


def parse_instruction(line: str) -> Instruction:
    """Parse one line of the Fig. 4 format; raises on malformed input."""
    line = line.strip()
    match = _READ.match(line)
    if match:
        array, cols, rows, ops = match.groups()
        op_tuple = None
        if ops is not None:
            try:
                op_tuple = tuple(OpType(op) for op in ops.split(","))
            except ValueError as error:
                raise SimulationError(f"unknown op in {line!r}: {error}") from None
        return ReadInst(int(array), _ints(cols), _ints(rows), op_tuple)
    match = _WRITE.match(line)
    if match:
        array, cols, row = match.groups()
        return WriteInst(int(array), _ints(cols), int(row))
    match = _SHIFT.match(line)
    if match:
        array, direction, amount = match.groups()
        value = int(amount)
        return ShiftInst(int(array), value if direction == "R" else -value)
    match = _NOT.match(line)
    if match:
        array, cols = match.groups()
        return NotInst(int(array), _ints(cols))
    match = _XFER.match(line)
    if match:
        src, dst, cols = match.groups()
        return TransferInst(int(src), int(dst), _ints(cols))
    raise SimulationError(f"cannot parse instruction: {line!r}")


def parse_program(text: str) -> list[Instruction]:
    """Parse a whole program; blank lines and ``#`` comments are skipped."""
    instructions = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        instructions.append(parse_instruction(stripped))
    return instructions
