"""Memory layout: where each DAG operand lives in the CIM arrays.

The layout is the first half of both mapping algorithms' output ("indicating
how operands in the application are mapped to the memory array").  Columns
are addressed *globally*: global column ``g`` maps to array ``g // cols``,
local column ``g % cols``.  An operand may have several physical copies —
the data duplication the naive mapping incurs when an op's operands have to
be gathered into a common column.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.target import TargetSpec
from repro.errors import MappingError


@dataclass(frozen=True)
class CellAddr:
    """One cell of one array (all lanes of it)."""

    array: int
    row: int
    col: int


class Layout:
    """Tracks operand placements and per-column occupancy.

    With a ``fault_map`` the allocator is *fault-aware*: both fill
    directions skip rows whose cell is permanently faulty in the column
    being placed, burning them as padding, so operands only ever land on
    healthy cells.  Burned cells are excluded from ``cells_used``.
    """

    def __init__(self, target: TargetSpec, fault_map=None) -> None:
        self.target = target
        #: optional :class:`repro.devices.FaultMap` steering placements
        self.fault_map = fault_map
        self._fill: dict[int, int] = {}  # global col -> rows used bottom-up
        self._top_fill: dict[int, int] = {}  # global col -> rows used top-down
        self._copies: dict[int, list[CellAddr]] = {}  # operand id -> cells
        self._duplicates = 0
        # cells released by liveness-based recycling, reusable by later
        # placements (global col -> freed addresses, sorted by row)
        self._free_pool: dict[int, list[CellAddr]] = {}
        self._recycled = 0
        self._burned = 0

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------
    @property
    def num_global_cols(self) -> int:
        """Total column capacity across every array of the target."""
        return self.target.num_arrays * self.target.cols

    def split(self, gcol: int) -> tuple[int, int]:
        """Global column -> (array, local column)."""
        if not 0 <= gcol < self.num_global_cols:
            raise MappingError(
                f"global column {gcol} out of range "
                f"(target has {self.num_global_cols})")
        return divmod(gcol, self.target.cols)

    def global_col(self, array: int, col: int) -> int:
        """(array, local column) -> global column index."""
        return array * self.target.cols + col

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def column_fill(self, gcol: int) -> int:
        """Rows already used bottom-up in the given global column."""
        self.split(gcol)
        return self._fill.get(gcol, 0)

    def column_top_fill(self, gcol: int) -> int:
        """Rows already used top-down in the given global column."""
        self.split(gcol)
        return self._top_fill.get(gcol, 0)

    def column_capacity(self, gcol: int) -> int:
        """Highest row (exclusive) the bottom-up region may still reach."""
        return self.target.rows - self.column_top_fill(gcol)

    def column_free(self, gcol: int) -> int:
        """Rows still unallocated between the two fill regions."""
        return self.column_capacity(gcol) - self.column_fill(gcol)

    def column_free_healthy(self, gcol: int) -> int:
        """Unallocated rows that are also healthy (= ``column_free`` without
        a fault map); the count fault-aware placement can actually deliver."""
        free = self.column_free(gcol)
        if self.fault_map is None:
            return free
        array, col = self.split(gcol)
        return sum(1 for row in range(self.column_fill(gcol),
                                      self.column_capacity(gcol))
                   if self.fault_map.is_healthy(array, row, col))

    def column_reusable(self, gcol: int) -> int:
        """Released (recyclable) cells available in the given column."""
        self.split(gcol)
        return len(self._free_pool.get(gcol, []))

    def reusable_columns(self) -> list[int]:
        """Global columns holding at least one released cell, sorted."""
        return sorted(g for g, pool in self._free_pool.items() if pool)

    def cell_healthy(self, array: int, row: int, col: int) -> bool:
        """Whether the cell is free of permanent faults (no map = healthy)."""
        return self.fault_map is None or self.fault_map.is_healthy(array, row, col)

    def _record(self, operand_id: int, addr: CellAddr) -> CellAddr:
        existing = self._copies.setdefault(operand_id, [])
        if existing:
            self._duplicates += 1
        existing.append(addr)
        return addr

    def _reuse_from_pool(self, operand_id: int, gcol: int) -> CellAddr | None:
        pool = self._free_pool.get(gcol)
        if not pool:
            return None
        addr = pool.pop(0)  # lowest freed row first, deterministically
        if not pool:
            del self._free_pool[gcol]
        self._recycled += 1
        return self._record(operand_id, addr)

    def place(self, operand_id: int, gcol: int, *,
              reuse: bool = True) -> CellAddr:
        """Allocate the next bottom-up row of ``gcol`` for an operand copy.

        With ``reuse`` (the default) a released cell of the column is
        recycled before a fresh row is claimed.  Call sites placing
        *preload* data (inputs/constants poked before the program runs)
        must pass ``reuse=False``: a recycled cell's previous occupant is
        written mid-program and would overwrite the preloaded value.
        """
        if reuse:
            recycled = self._reuse_from_pool(operand_id, gcol)
            if recycled is not None:
                return recycled
        array, col = self.split(gcol)
        row = self._fill.get(gcol, 0)
        capacity = self.column_capacity(gcol)
        while row < capacity and not self.cell_healthy(array, row, col):
            row += 1
            self._burned += 1
        if row >= capacity:
            raise MappingError(
                f"column {gcol} (array {array}, col {col}) is full "
                f"({self.target.rows} rows, "
                f"{self.column_top_fill(gcol)} used top-down)")
        self._fill[gcol] = row + 1
        return self._record(operand_id, CellAddr(array, row, col))

    def place_top(self, operand_id: int, gcol: int, *,
                  reuse: bool = True) -> CellAddr:
        """Allocate the next top-down row of ``gcol``.

        The scheduler parks resident inputs and gather copies here so they
        never perturb the row alignment of the bottom-up result region.
        ``reuse`` follows the same preload rule as :meth:`place`.
        """
        if reuse:
            recycled = self._reuse_from_pool(operand_id, gcol)
            if recycled is not None:
                return recycled
        array, col = self.split(gcol)
        used = self._top_fill.get(gcol, 0)
        row = self.target.rows - 1 - used
        fill = self.column_fill(gcol)
        while row >= fill and not self.cell_healthy(array, row, col):
            row -= 1
            used += 1
            self._burned += 1
        if row < fill:
            raise MappingError(
                f"column {gcol} (array {array}, col {col}) is full "
                f"({self.target.rows} rows, {self.column_fill(gcol)} "
                "used bottom-up)")
        self._top_fill[gcol] = used + 1
        return self._record(operand_id, CellAddr(array, row, col))

    # ------------------------------------------------------------------
    # liveness-based recycling
    # ------------------------------------------------------------------
    def _release_addrs(self, addrs: list[CellAddr]) -> int:
        for addr in addrs:
            gcol = self.global_col(addr.array, addr.col)
            pool = self._free_pool.setdefault(gcol, [])
            pool.append(addr)
            pool.sort(key=lambda a: a.row)
        return len(addrs)

    def release(self, operand_id: int) -> int:
        """Free every cell of a dead operand for reuse; returns the count.

        The caller must guarantee the operand is never read again (its
        live range ended) and is neither a program output nor preloaded
        source data — use :meth:`release_duplicates` for dead sources.
        """
        addrs = self._copies.pop(operand_id, [])
        if len(addrs) > 1:
            self._duplicates -= len(addrs) - 1
        return self._release_addrs(addrs)

    def release_duplicates(self, operand_id: int) -> int:
        """Free the non-primary copies of an operand; returns the count.

        The primary copy survives because sources are preloaded there
        before execution starts (and outputs are read back from there).
        """
        addrs = self._copies.get(operand_id)
        if not addrs or len(addrs) == 1:
            return 0
        extras = addrs[1:]
        del addrs[1:]
        self._duplicates -= len(extras)
        return self._release_addrs(extras)

    def residents(self, gcol: int) -> list[int]:
        """Operand ids with at least one copy in the given column."""
        array, col = self.split(gcol)
        found = []
        for oid, addrs in self._copies.items():
            if any(a.array == array and a.col == col for a in addrs):
                found.append(oid)
        return sorted(found)

    def place_at(self, operand_id: int, gcol: int, row: int) -> CellAddr:
        """Place at a specific row at or beyond the bottom-up fill line.

        Used by the row-aligned scheduler: skipped rows become unusable
        padding, the price of keeping result rows aligned across columns so
        that instructions can merge (wordlines are shared array-wide).
        """
        array, col = self.split(gcol)
        fill = self._fill.get(gcol, 0)
        if row < fill:
            raise MappingError(
                f"row {row} of column {gcol} is already below the fill "
                f"line ({fill})")
        if row >= self.column_capacity(gcol):
            raise MappingError(
                f"column {gcol} cannot reach row {row} "
                f"(array height {self.target.rows}, "
                f"{self.column_top_fill(gcol)} rows used top-down)")
        if not self.cell_healthy(array, row, col):
            raise MappingError(
                f"cell (array={array}, row={row}, col={col}) is permanently "
                "faulty; aligned placement must pick a healthy row")
        self._fill[gcol] = row + 1
        return self._record(operand_id, CellAddr(array, row, col))

    # ------------------------------------------------------------------
    # spare provisioning
    # ------------------------------------------------------------------
    def spare_cells(self, limit_per_column: int | None = 4) -> list[CellAddr]:
        """Healthy unallocated cells of the touched columns, for remapping.

        Verify-after-write escalates a persistently failing cell to a spare
        of the *same column* (a remapped read must stay on the same bitline).
        The spares are the rows left between the bottom-up and top-down fill
        regions of every column the program actually uses, healthiest-first
        order being simply ascending row.  ``limit_per_column`` bounds the
        list (``None`` = all free rows).
        """
        spares: list[CellAddr] = []
        for gcol in sorted(self._touched_cols()):
            array, col = self.split(gcol)
            taken = 0
            for row in range(self.column_fill(gcol), self.column_capacity(gcol)):
                if limit_per_column is not None and taken >= limit_per_column:
                    break
                if self.cell_healthy(array, row, col):
                    spares.append(CellAddr(array, row, col))
                    taken += 1
        return spares

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def is_placed(self, operand_id: int) -> bool:
        """Whether the operand has at least one physical copy."""
        return operand_id in self._copies

    def copies(self, operand_id: int) -> list[CellAddr]:
        """All physical copies of an operand (possibly none)."""
        return list(self._copies.get(operand_id, []))

    def primary(self, operand_id: int) -> CellAddr:
        """The first (authoritative) copy; raises if unplaced."""
        try:
            return self._copies[operand_id][0]
        except KeyError:
            raise MappingError(f"operand {operand_id} is not placed") from None

    def nearest_copy(self, operand_id: int, gcol: int) -> CellAddr:
        """The cheapest source copy for a gather into ``gcol``.

        A copy on the destination's own array avoids the inter-array bus
        entirely (the gather lowers to read + shift + write); among those,
        the smallest shift distance wins.  Without a local copy the primary
        copy is used, matching the historical single-array behavior.
        Raises if the operand is unplaced.
        """
        addrs = self._copies.get(operand_id)
        if not addrs:
            raise MappingError(f"operand {operand_id} is not placed")
        array, col = self.split(gcol)
        local = [a for a in addrs if a.array == array]
        if local:
            return min(local, key=lambda a: (abs(a.col - col), a.row, a.col))
        return addrs[0]

    def copy_in_column(self, operand_id: int, gcol: int) -> CellAddr | None:
        """A copy of the operand living in the given global column, if any."""
        array, col = self.split(gcol)
        for addr in self._copies.get(operand_id, []):
            if addr.array == array and addr.col == col:
                return addr
        return None

    def placements(self) -> dict[int, list[CellAddr]]:
        """All placements (operand id -> copies), for reporting."""
        return {oid: list(addrs) for oid, addrs in self._copies.items()}

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def cells_used(self) -> int:
        """Number of cells occupied by placed operands and copies."""
        freed = sum(len(pool) for pool in self._free_pool.values())
        return (sum(self._fill.values()) + sum(self._top_fill.values())
                - freed - self._burned)

    @property
    def duplicates(self) -> int:
        """Extra physical copies beyond one per operand."""
        return self._duplicates

    @property
    def burned(self) -> int:
        """Faulty cells skipped (lost as padding) by fault-aware placement."""
        return self._burned

    @property
    def recycled(self) -> int:
        """Number of placements that reused a released (dead) cell."""
        return self._recycled

    def _touched_cols(self) -> set[int]:
        cols = {g for g, used in self._fill.items() if used}
        cols |= {g for g, used in self._top_fill.items() if used}
        return cols

    @property
    def columns_used(self) -> int:
        """Number of distinct global columns holding at least one cell."""
        return len(self._touched_cols())

    @property
    def arrays_used(self) -> int:
        """Number of distinct arrays holding at least one placed cell."""
        return len({gcol // self.target.cols for gcol in self._touched_cols()})

    def cells_used_by_array(self) -> dict[int, int]:
        """Operand cells held per array (array id -> count), for reporting."""
        counts: dict[int, int] = {}
        for addrs in self._copies.values():
            for addr in addrs:
                counts[addr.array] = counts.get(addr.array, 0) + 1
        return dict(sorted(counts.items()))

    def columns_used_by_array(self) -> dict[int, int]:
        """Touched columns per array (array id -> count), for reporting."""
        counts: dict[int, int] = {}
        for gcol in self._touched_cols():
            array = gcol // self.target.cols
            counts[array] = counts.get(array, 0) + 1
        return dict(sorted(counts.items()))

    def utilization(self) -> float:
        """Fraction of the touched arrays' cells holding data."""
        touched = self.arrays_used
        if touched == 0:
            return 0.0
        return self.cells_used / (touched * self.target.cells_per_array)
