"""Instruction set of the CIM controller (Fig. 4 of the paper).

Four instruction kinds drive an array:

* ``read``   — activate one row (plain read) or several rows (scouting
  CIM op) and deposit the per-column result into the row buffer.  With
  selective columns, each selected column may compute a different op.
* ``write``  — program row-buffer bits at the selected columns into one row.
* ``shift``  — logically shift the row-buffer contents for column alignment.
* ``not``    — invert row-buffer bits at the selected columns (CMOS).
* ``xfer``   — copy row-buffer bits between two arrays over the global bus
  (our explicit modelling of inter-array movement; the paper's single-array
  examples never need it).

Instructions render to the text format of Fig. 4, e.g.::

    read [0][4,8,12,16][933,934] [xor,and,or,xor]
    write [0][4,8,12,16][932]
    shift [0] R[3]
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dfg.ops import OpType
from repro.errors import SimulationError


@dataclass(frozen=True)
class Instruction:
    """Base class for all CIM instructions."""

    array: int

    def to_text(self) -> str:
        """Render in the Fig. 4 text format."""
        raise NotImplementedError


def _cols_str(cols: tuple[int, ...]) -> str:
    return ",".join(str(c) for c in cols)


@dataclass(frozen=True)
class ReadInst(Instruction):
    """Plain read (``ops is None``, single row) or CIM scouting read."""

    cols: tuple[int, ...]
    rows: tuple[int, ...]
    ops: tuple[OpType, ...] | None = None

    def __post_init__(self) -> None:
        if not self.cols or not self.rows:
            raise SimulationError("read needs at least one column and row")
        if len(set(self.cols)) != len(self.cols):
            raise SimulationError(f"duplicate columns in read: {self.cols}")
        if len(set(self.rows)) != len(self.rows):
            raise SimulationError(f"duplicate rows in read: {self.rows}")
        if self.ops is None:
            if len(self.rows) != 1:
                raise SimulationError("plain read must activate exactly one row")
        else:
            if len(self.ops) != len(self.cols):
                raise SimulationError("need one op per selected column")
            if any(op is OpType.NOT for op in self.ops):
                raise SimulationError("NOT is a row-buffer op, not a CIM read op")
            if len(self.rows) < 2:
                raise SimulationError("CIM read needs at least two rows")

    @property
    def is_cim(self) -> bool:
        """Whether this read computes column logic (vs a plain row read)."""
        return self.ops is not None

    def to_text(self) -> str:
        """Render in the Fig. 4 text format."""
        base = f"read [{self.array}][{_cols_str(self.cols)}][{_cols_str(self.rows)}]"
        if self.ops is not None:
            base += " [" + ",".join(op.value for op in self.ops) + "]"
        return base


@dataclass(frozen=True)
class WriteInst(Instruction):
    """Write the row buffer's columns back into one row of the array."""

    cols: tuple[int, ...]
    row: int

    def __post_init__(self) -> None:
        if not self.cols:
            raise SimulationError("write needs at least one column")
        if len(set(self.cols)) != len(self.cols):
            raise SimulationError(f"duplicate columns in write: {self.cols}")

    def to_text(self) -> str:
        """Render in the Fig. 4 text format."""
        return f"write [{self.array}][{_cols_str(self.cols)}][{self.row}]"


@dataclass(frozen=True)
class ShiftInst(Instruction):
    """Shift row buffer columns by ``amount`` (positive = higher indices)."""

    amount: int

    def __post_init__(self) -> None:
        if self.amount == 0:
            raise SimulationError("zero-distance shift is a no-op; do not emit it")

    def to_text(self) -> str:
        """Render in the Fig. 4 text format."""
        direction = "R" if self.amount > 0 else "L"
        return f"shift [{self.array}] {direction}[{abs(self.amount)}]"


@dataclass(frozen=True)
class NotInst(Instruction):
    """Invert row-buffer bits at the selected columns (row-buffer CMOS)."""

    cols: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.cols:
            raise SimulationError("not needs at least one column")
        if len(set(self.cols)) != len(self.cols):
            raise SimulationError(f"duplicate columns in not: {self.cols}")

    def to_text(self) -> str:
        """Render in the Fig. 4 text format."""
        return f"not [{self.array}][{_cols_str(self.cols)}]"


@dataclass(frozen=True)
class TransferInst(Instruction):
    """Copy row-buffer bits of ``cols`` from ``array`` to ``dst_array``."""

    dst_array: int
    cols: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.cols:
            raise SimulationError("xfer needs at least one column")
        if self.dst_array == self.array:
            raise SimulationError("xfer within one array is a no-op")

    def to_text(self) -> str:
        """Render in the Fig. 4 text format."""
        return f"xfer [{self.array}->{self.dst_array}][{_cols_str(self.cols)}]"


def instruction_arrays(inst: Instruction) -> tuple[int, ...]:
    """The array ids an instruction occupies (both ends of an ``xfer``).

    The multi-array scheduler uses this to split a merged trace into
    per-array sub-streams and to account bus/array occupancy.
    """
    if isinstance(inst, TransferInst):
        return (inst.array, inst.dst_array)
    return (inst.array,)


def program_text(instructions: list[Instruction]) -> str:
    """The whole program in the Fig. 4 text format."""
    return "\n".join(inst.to_text() for inst in instructions)
