"""Target system specification (Sec. 2.1 and Table 1).

A target is a set of identical CIM-capable NVM arrays of ``rows × cols``
cells plus a row buffer per array with CMOS shift/NOT circuitry.  The
``data_width`` is the lockstep lane count: following Table 1, an ``N × N``
array configuration exposes a ``4N``-bit data path (e.g. 512 {2048}), so a
bulk operand is a ``data_width``-wide bit vector and every instruction
operates on all lanes simultaneously.

``max_activated_rows`` is the multi-row-activation (MRA) limit: the largest
number of rows scouting logic may sense at once, i.e. the largest op arity
the mapper may emit.  ``selective_columns`` models the fine-grained variant
of Sec. 2.1 in which multiplexers let each instruction address an arbitrary
subset of columns and compute *different* ops on different columns; without
it, instruction merging across clusters is impossible.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import cached_property

from repro.devices.arraymodel import ArrayCostModel
from repro.devices.technology import Technology, get_technology
from repro.errors import TargetError


@dataclass(frozen=True)
class TargetSpec:
    """A CIM accelerator configuration the compiler maps onto."""

    technology: Technology
    rows: int
    cols: int
    data_width: int
    num_arrays: int = 16
    max_activated_rows: int = 2
    selective_columns: bool = True
    clock_ghz: float = 1.0
    #: fraction of a column the mapper may fill with planned operands;
    #: the remainder absorbs gather copies created during code generation
    column_fill_factor: float = 0.9

    def __post_init__(self) -> None:
        if self.rows < 2 or self.cols < 1:
            raise TargetError("array must have at least 2 rows and 1 column")
        if self.data_width < 1:
            raise TargetError("data_width must be positive")
        if self.num_arrays < 1:
            raise TargetError("num_arrays must be positive")
        if self.max_activated_rows < 2:
            raise TargetError("max_activated_rows must be at least 2")
        if self.max_activated_rows > self.technology.max_activated_rows:
            raise TargetError(
                f"{self.technology.name} caps MRA at "
                f"{self.technology.max_activated_rows}, "
                f"requested {self.max_activated_rows}")
        if self.max_activated_rows > self.rows:
            raise TargetError("cannot activate more rows than the array has")
        if self.clock_ghz <= 0:
            raise TargetError("clock_ghz must be positive")
        if not 0 < self.column_fill_factor <= 1:
            raise TargetError("column_fill_factor must be in (0, 1]")

    @classmethod
    def square(cls, size: int, technology: Technology | str, **kwargs) -> "TargetSpec":
        """Table 1 style configuration: ``size × size`` array, 4·size lanes."""
        if isinstance(technology, str):
            technology = get_technology(technology)
        kwargs.setdefault("data_width", 4 * size)
        return cls(technology=technology, rows=size, cols=size, **kwargs)

    @cached_property
    def cost_model(self) -> ArrayCostModel:
        """The NVSim-style per-array cost model for this geometry."""
        return ArrayCostModel(self.technology, self.rows, self.cols)

    @property
    def cells_per_array(self) -> int:
        """Cells in one array (rows x cols)."""
        return self.rows * self.cols

    @property
    def capacity(self) -> int:
        """Total operand cells across all arrays."""
        return self.cells_per_array * self.num_arrays

    @property
    def usable_rows(self) -> int:
        """Rows per column the mapper may plan with (fill factor applied)."""
        return max(2, int(self.rows * self.column_fill_factor))

    @property
    def cycle_ns(self) -> float:
        """Controller clock period in nanoseconds."""
        return 1.0 / self.clock_ghz

    def with_(self, **kwargs) -> "TargetSpec":
        """A modified copy (convenience for sweeps)."""
        return replace(self, **kwargs)

    def describe(self) -> str:
        """One-line human-readable summary of the configuration."""
        return (f"{self.technology.name} {self.rows}x{self.cols} "
                f"x{self.num_arrays} arrays, {self.data_width}-bit data path, "
                f"MRA<={self.max_activated_rows}, "
                f"{'selective' if self.selective_columns else 'full-row'} columns")
