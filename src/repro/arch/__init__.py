"""Architecture substrate: target specs, the CIM ISA, and memory layouts."""

from repro.arch.isa import (
    Instruction,
    NotInst,
    ReadInst,
    ShiftInst,
    TransferInst,
    WriteInst,
    program_text,
)
from repro.arch.layout import CellAddr, Layout
from repro.arch.parse import parse_instruction, parse_program
from repro.arch.target import TargetSpec

__all__ = [
    "CellAddr",
    "Instruction",
    "Layout",
    "NotInst",
    "ReadInst",
    "ShiftInst",
    "TargetSpec",
    "TransferInst",
    "WriteInst",
    "parse_instruction",
    "parse_program",
    "program_text",
]
