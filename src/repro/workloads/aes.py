"""Bit-sliced AES-128 (the Usuba-style encryption workload).

Usuba compiles AES into a pure AND/XOR/NOT network where every lane
processes an independent 16-byte block.  We generate an equivalent network
from first principles:

* **S-box** — algebraic construction: GF(2⁸) inversion via the Fermat
  chain ``x⁻¹ = x²⁵⁴ = x²·x⁴·x⁸·x¹⁶·x³²·x⁶⁴·x¹²⁸`` (7 squarings, 6 gate-level
  multiplications) followed by the affine transform.  Squarings and the
  affine map are linear (XOR networks derived symbolically from the field
  polynomial ``x⁸+x⁴+x³+x+1``); each multiplication is the classic
  64-AND/XOR-tree schoolbook circuit.  The circuit is verified against the
  standard S-box table for all 256 inputs in the test suite.
* **ShiftRows** — free rewiring of byte positions.
* **MixColumns** — xtime (multiply-by-2) XOR networks.
* **AddRoundKey** — XOR with round-key input slices, so every lane may even
  use its own key.

The result is a DAG of roughly 10⁵ operation nodes for the full 10 rounds —
the "large DFG" regime in which the paper reports Sherlock's biggest wins.
A pure-Python table-based AES (verified against the FIPS-197 vector) serves
as the reference implementation.
"""

from __future__ import annotations

from collections.abc import Sequence
from functools import lru_cache

from repro.dfg.builder import DFGBuilder, Wire
from repro.dfg.graph import DataFlowGraph
from repro.errors import SherlockError

#: the AES field polynomial x^8 + x^4 + x^3 + x + 1
AES_POLY = 0x11B
NUM_ROUNDS = 10


# ----------------------------------------------------------------------
# GF(2^8) integer arithmetic (reference + symbolic matrices)
# ----------------------------------------------------------------------
def gf_mul_int(a: int, b: int) -> int:
    """Table-free GF(2⁸) multiplication on integers."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        if a & 0x100:
            a ^= AES_POLY
        b >>= 1
    return result


@lru_cache(maxsize=None)
def _power_reduction(k: int) -> int:
    """``x^k mod (x⁸+x⁴+x³+x+1)`` as an 8-bit mask."""
    value = 1 << k
    for bit in range(k, 7, -1):
        if value >> bit & 1:
            value ^= AES_POLY << (bit - 8)
    return value


@lru_cache(maxsize=None)
def _square_matrix() -> tuple[int, ...]:
    """Row ``i``: which output bits receive input bit ``i`` when squaring."""
    return tuple(_power_reduction(2 * i) for i in range(8))


# ----------------------------------------------------------------------
# gate-level GF(2^8) circuits over LSB-first 8-wire bytes
# ----------------------------------------------------------------------
def xor_tree(b: DFGBuilder, wires: list[Wire]) -> Wire:
    """Balanced XOR reduction (empty list -> constant 0)."""
    if not wires:
        return b.const(0)
    level = list(wires)
    while len(level) > 1:
        level = [level[i] ^ level[i + 1] if i + 1 < len(level) else level[i]
                 for i in range(0, len(level), 2)]
    return level[0]


def gf_mul_circuit(b: DFGBuilder, x: list[Wire], y: list[Wire]) -> list[Wire]:
    """Schoolbook multiplier: 64 ANDs + per-bit XOR reduction trees."""
    partials = [[x[i] & y[j] for j in range(8)] for i in range(8)]
    contributions: list[list[Wire]] = [[] for _ in range(8)]
    for i in range(8):
        for j in range(8):
            mask = _power_reduction(i + j)
            term = partials[i][j]
            for out_bit in range(8):
                if mask >> out_bit & 1:
                    contributions[out_bit].append(term)
    return [xor_tree(b, terms) for terms in contributions]


def gf_square_circuit(b: DFGBuilder, x: list[Wire]) -> list[Wire]:
    """Squaring is linear over GF(2): pure XOR network."""
    matrix = _square_matrix()
    out = []
    for out_bit in range(8):
        terms = [x[i] for i in range(8) if matrix[i] >> out_bit & 1]
        out.append(xor_tree(b, terms))
    return out


def gf_inverse_circuit(b: DFGBuilder, x: list[Wire]) -> list[Wire]:
    """``x⁻¹ = x²⁵⁴`` via the addition chain 2+4+8+16+32+64+128."""
    square = gf_square_circuit(b, x)  # x^2
    acc = square
    power = square
    for _ in range(6):  # x^4 .. x^128
        power = gf_square_circuit(b, power)
        acc = gf_mul_circuit(b, acc, power)
    return acc


def sbox_circuit(b: DFGBuilder, x: list[Wire]) -> list[Wire]:
    """S(x) = affine(x⁻¹): the complete AES S-box as gates."""
    inv = gf_inverse_circuit(b, x)
    out = []
    for i in range(8):
        bits = [inv[i], inv[(i + 4) % 8], inv[(i + 5) % 8],
                inv[(i + 6) % 8], inv[(i + 7) % 8]]
        value = xor_tree(b, bits)
        if (0x63 >> i) & 1:
            value = ~value
        out.append(value)
    return out


def xtime_circuit(b: DFGBuilder, s: list[Wire]) -> list[Wire]:
    """Multiply by 2: shift plus conditional reduction by 0x1B."""
    out = [s[7]]  # bit 0
    for i in range(1, 8):
        if (AES_POLY >> i) & 1:
            out.append(s[i - 1] ^ s[7])
        else:
            out.append(s[i - 1])
    return out


# ----------------------------------------------------------------------
# full cipher as a DAG
# ----------------------------------------------------------------------
def aes_dag(rounds: int = NUM_ROUNDS) -> DataFlowGraph:
    """Bit-sliced AES-128 encryption with ``rounds`` rounds.

    Inputs: ``pt{byte}[{bit}]`` plaintext slices and
    ``rk{r}_{byte}[{bit}]`` round-key slices for r = 0..rounds.
    Outputs: ``ct{byte}[{bit}]``.  ``rounds < 10`` builds the reduced-round
    variant (the final round still skips MixColumns, as in AES).
    """
    if not 1 <= rounds <= NUM_ROUNDS:
        raise SherlockError(f"rounds must be in 1..{NUM_ROUNDS}, got {rounds}")
    b = DFGBuilder(f"aes{rounds}")
    state = [[b.input(f"pt{byte}[{bit}]") for bit in range(8)]
             for byte in range(16)]
    round_keys = [
        [[b.input(f"rk{r}_{byte}[{bit}]") for bit in range(8)]
         for byte in range(16)]
        for r in range(rounds + 1)
    ]

    def add_round_key(state, rk):
        return [[s ^ k for s, k in zip(byte, key_byte)]
                for byte, key_byte in zip(state, rk)]

    def sub_bytes(state):
        return [sbox_circuit(b, byte) for byte in state]

    def _xor_bytes(*bytes_):
        return [xor_tree(b, [byte[i] for byte in bytes_]) for i in range(8)]

    def mix_columns(state):
        mixed = []
        for col in range(4):
            s = [state[4 * col + row] for row in range(4)]
            x = [xtime_circuit(b, byte) for byte in s]
            mixed.extend([
                _xor_bytes(x[0], x[1], s[1], s[2], s[3]),
                _xor_bytes(s[0], x[1], x[2], s[2], s[3]),
                _xor_bytes(s[0], s[1], x[2], x[3], s[3]),
                _xor_bytes(x[0], s[0], s[1], s[2], x[3]),
            ])
        return mixed

    state = add_round_key(state, round_keys[0])
    for r in range(1, rounds + 1):
        state = sub_bytes(state)
        state = _shift_rows(state)
        if r != rounds:
            state = mix_columns(state)
        state = add_round_key(state, round_keys[r])
    for byte in range(16):
        for bit in range(8):
            b.output(f"ct{byte}[{bit}]", state[byte][bit])
    return b.build()


def _shift_rows(state):
    """ShiftRows on the byte list (state[r + 4c]; row r rotates left r)."""
    out = [None] * 16
    for col in range(4):
        for row in range(4):
            out[row + 4 * col] = state[row + 4 * ((col + row) % 4)]
    return out


# ----------------------------------------------------------------------
# reference implementation (table-based AES-128)
# ----------------------------------------------------------------------
@lru_cache(maxsize=None)
def sbox_table() -> tuple[int, ...]:
    """The AES S-box derived from the same algebra (not hard-coded)."""
    table = []
    for x in range(256):
        inv = _gf_inverse_int(x)
        y = 0
        for i in range(8):
            bit = (inv >> i) & 1
            bit ^= (inv >> ((i + 4) % 8)) & 1
            bit ^= (inv >> ((i + 5) % 8)) & 1
            bit ^= (inv >> ((i + 6) % 8)) & 1
            bit ^= (inv >> ((i + 7) % 8)) & 1
            bit ^= (0x63 >> i) & 1
            y |= bit << i
        table.append(y)
    return tuple(table)


def _gf_inverse_int(x: int) -> int:
    """``x⁻¹ = x²⁵⁴ = Π x^(2^i), i = 1..7`` (0 maps to 0 as in AES)."""
    if x == 0:
        return 0
    result = 1
    power = x
    for _ in range(7):
        power = gf_mul_int(power, power)
        result = gf_mul_int(result, power)
    return result


def expand_key(key: bytes, rounds: int = NUM_ROUNDS) -> list[list[int]]:
    """AES-128 key schedule: ``rounds + 1`` round keys of 16 bytes."""
    if len(key) != 16:
        raise SherlockError(f"AES-128 key must be 16 bytes, got {len(key)}")
    sbox = sbox_table()
    words = [list(key[4 * i:4 * i + 4]) for i in range(4)]
    rcon = 1
    while len(words) < 4 * (rounds + 1):
        word = list(words[-1])
        if len(words) % 4 == 0:
            word = word[1:] + word[:1]
            word = [sbox[v] for v in word]
            word[0] ^= rcon
            rcon = gf_mul_int(rcon, 2)
        word = [w ^ p for w, p in zip(word, words[-4])]
        words.append(word)
    return [sum((words[4 * r + c] for c in range(4)), [])
            for r in range(rounds + 1)]


def encrypt_reference(plaintext: bytes, key: bytes,
                      rounds: int = NUM_ROUNDS) -> bytes:
    """Table-based AES-128 encryption (reduced rounds supported)."""
    if len(plaintext) != 16:
        raise SherlockError("AES block must be 16 bytes")
    sbox = sbox_table()
    round_keys = expand_key(key, rounds)
    state = [p ^ k for p, k in zip(plaintext, round_keys[0])]
    for r in range(1, rounds + 1):
        state = [sbox[v] for v in state]
        state = _shift_rows(state)
        if r != rounds:
            mixed = []
            for col in range(4):
                s = state[4 * col:4 * col + 4]
                mixed.extend([
                    gf_mul_int(s[0], 2) ^ gf_mul_int(s[1], 3) ^ s[2] ^ s[3],
                    s[0] ^ gf_mul_int(s[1], 2) ^ gf_mul_int(s[2], 3) ^ s[3],
                    s[0] ^ s[1] ^ gf_mul_int(s[2], 2) ^ gf_mul_int(s[3], 3),
                    gf_mul_int(s[0], 3) ^ s[1] ^ s[2] ^ gf_mul_int(s[3], 2),
                ])
            state = mixed
        state = [v ^ k for v, k in zip(state, round_keys[r])]
    return bytes(state)


# ----------------------------------------------------------------------
# input encoding
# ----------------------------------------------------------------------
def block_inputs(blocks: Sequence[bytes], key: bytes,
                 rounds: int = NUM_ROUNDS) -> dict[str, int]:
    """DFG inputs for per-lane plaintext blocks under one key."""
    round_keys = expand_key(key, rounds)
    inputs: dict[str, int] = {}
    for byte in range(16):
        for bit in range(8):
            mask = 0
            for lane, block in enumerate(blocks):
                if len(block) != 16:
                    raise SherlockError("AES blocks must be 16 bytes")
                mask |= ((block[byte] >> bit) & 1) << lane
            inputs[f"pt{byte}[{bit}]"] = mask
    lanes_mask = (1 << len(blocks)) - 1
    for r, rk in enumerate(round_keys):
        for byte in range(16):
            for bit in range(8):
                value = lanes_mask if (rk[byte] >> bit) & 1 else 0
                inputs[f"rk{r}_{byte}[{bit}]"] = value
    return inputs


def decode_blocks(outputs: dict[str, int], lanes: int) -> list[bytes]:
    """Per-lane ciphertext blocks from the DFG output slices."""
    blocks = []
    for lane in range(lanes):
        block = bytearray(16)
        for byte in range(16):
            for bit in range(8):
                if (outputs[f"ct{byte}[{bit}]"] >> lane) & 1:
                    block[byte] |= 1 << bit
        blocks.append(bytes(block))
    return blocks


#: FIPS-197 Appendix C test vector
FIPS_KEY = bytes(range(16))
FIPS_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")
FIPS_CIPHERTEXT = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
