"""BitWeaving-V column scans (Li & Patel, SIGMOD'13) — the database workload.

BitWeaving stores a database column vertically: bit-slice ``i`` holds bit
``i`` (MSB first in storage order) of many consecutive codes.  A predicate
scan then becomes a short bulk-bitwise recurrence per slice — the paper's
running example (Fig. 3) is the ``BETWEEN C1 AND C2`` predicate, whose
one-iteration DFG is what Sherlock maps.

This module generates the kernels both ways: as C source fed through our
front-end (the paper's flow) and directly via the builder.  A lane is one
database record; scanning a table of ``R`` records on a ``W``-lane target
takes ``ceil(R / W)`` back-to-back runs of the compiled program.
"""

from __future__ import annotations

import math
import random
from collections.abc import Sequence

from repro.dfg.graph import DataFlowGraph
from repro.errors import SherlockError
from repro.frontend import c_to_dfg


def between_kernel_source(bits: int = 8) -> str:
    """C source of the BETWEEN predicate scan over ``bits``-bit codes.

    ``C1``/``C2`` are the constant bounds' bit-slices (broadcast per lane),
    ``x`` the column's bit-slices, MSB first (index 0 = MSB), mirroring the
    pseudo-code of Fig. 3a: ``gt`` accumulates ``x > C1`` and ``lt``
    accumulates ``x < C2`` while ``eq*`` track prefix equality.
    """
    if bits < 1:
        raise SherlockError(f"code width must be positive, got {bits}")
    return f"""
word_t between(word_t C1[{bits}], word_t C2[{bits}], word_t x[{bits}]) {{
    word_t gt = 0;
    word_t eq1 = ~0;
    word_t lt = 0;
    word_t eq2 = ~0;
    for (int i = 0; i < {bits}; i++) {{
        gt = gt | (eq1 & x[i] & ~C1[i]);
        eq1 = eq1 & ~(x[i] ^ C1[i]);
        lt = lt | (eq2 & ~x[i] & C2[i]);
        eq2 = eq2 & ~(x[i] ^ C2[i]);
    }}
    return gt & lt;
}}
"""


def between_dag(bits: int = 8) -> DataFlowGraph:
    """The BETWEEN scan DFG for ``bits`` unrolled slice iterations."""
    return c_to_dfg(between_kernel_source(bits))


def between_batch_dag(bits: int = 8, segments: int = 16) -> DataFlowGraph:
    """BETWEEN scans over ``segments`` independent column segments.

    BitWeaving partitions a column into fixed-size segments whose bit-slices
    are distinct memory words; a scan evaluates the predicate on many
    segments back to back, and mapping a group of segments at once is what
    fills several CIM columns (the regime of Table 2).  Input/output names
    get a ``s<j>_`` prefix per segment.
    """
    if segments < 1:
        raise SherlockError(f"segments must be positive, got {segments}")
    from repro.dfg.compose import union

    components = []
    for j in range(segments):
        # every segment scans its own slices but shares the predicate
        # constants C1/C2 — the data reuse the mappers handle differently
        source = f"""
word_t scan(word_t C1[{bits}], word_t C2[{bits}], word_t s{j}_x[{bits}]) {{
    word_t gt = 0;
    word_t eq1 = ~0;
    word_t lt = 0;
    word_t eq2 = ~0;
    for (int i = 0; i < {bits}; i++) {{
        gt = gt | (eq1 & s{j}_x[i] & ~C1[i]);
        eq1 = eq1 & ~(s{j}_x[i] ^ C1[i]);
        lt = lt | (eq2 & ~s{j}_x[i] & C2[i]);
        eq2 = eq2 & ~(s{j}_x[i] ^ C2[i]);
    }}
    return gt & lt;
}}
"""
        components.append(c_to_dfg(source))
    return union(components, prefixes=[f"s{j}_" for j in range(segments)],
                 name=f"bitweaving_x{segments}")


def iteration_dag() -> DataFlowGraph:
    """The single-iteration DFG of Fig. 3b (one slice step of the scan)."""
    source = """
word_t step(word_t gt, word_t eq1, word_t lt, word_t eq2,
            word_t x, word_t c1, word_t c2,
            word_t out[4]) {
    out[0] = gt | (eq1 & x & ~c1);
    out[1] = eq1 & ~(x ^ c1);
    out[2] = lt | (eq2 & ~x & c2);
    out[3] = eq2 & ~(x ^ c2);
    return out[0];
}
"""
    return c_to_dfg(source)


# ----------------------------------------------------------------------
# reference implementation and input encoding
# ----------------------------------------------------------------------
def to_slices(values: Sequence[int], bits: int) -> dict[int, int]:
    """Pack per-lane codes into MSB-first slice bitmasks (slice -> lanes)."""
    slices: dict[int, int] = {}
    for i in range(bits):
        shift = bits - 1 - i
        slices[i] = sum(((v >> shift) & 1) << lane for lane, v in enumerate(values))
    return slices


def scan_inputs(c1: int, c2: int, column: Sequence[int], bits: int = 8) -> dict[str, int]:
    """DFG input dictionary for one batch of records (one lane per record)."""
    limit = 1 << bits
    for value in (c1, c2, *column):
        if not 0 <= value < limit:
            raise SherlockError(f"code {value} does not fit in {bits} bits")
    lanes = len(column)
    inputs: dict[str, int] = {}
    for i, mask in to_slices([c1] * lanes, bits).items():
        inputs[f"C1[{i}]"] = mask
    for i, mask in to_slices([c2] * lanes, bits).items():
        inputs[f"C2[{i}]"] = mask
    for i, mask in to_slices(list(column), bits).items():
        inputs[f"x[{i}]"] = mask
    return inputs


def between_reference(c1: int, c2: int, column: Sequence[int]) -> int:
    """Reference result: lane bitmask of records with ``C1 < x < C2``."""
    return sum(1 << lane for lane, v in enumerate(column) if c1 < v < c2)


def batch_scan_inputs(c1: int, c2: int, segments: Sequence[Sequence[int]],
                      bits: int = 8) -> dict[str, int]:
    """Inputs for :func:`between_batch_dag`: per-segment record batches."""
    if not segments:
        raise SherlockError("need at least one segment")
    lanes = len(segments[0])
    inputs: dict[str, int] = {}
    for i, mask in to_slices([c1] * lanes, bits).items():
        inputs[f"C1[{i}]"] = mask
    for i, mask in to_slices([c2] * lanes, bits).items():
        inputs[f"C2[{i}]"] = mask
    for j, column in enumerate(segments):
        if len(column) != lanes:
            raise SherlockError("all segments must have the same lane count")
        for i, mask in to_slices(list(column), bits).items():
            inputs[f"s{j}_x[{i}]"] = mask
    return inputs


def random_column(rng: random.Random, lanes: int, bits: int = 8) -> list[int]:
    """Uniformly random codes, one per lane."""
    return [rng.randrange(1 << bits) for _ in range(lanes)]


def scan_iterations(num_records: int, data_width: int) -> int:
    """Program runs needed to scan a column of ``num_records`` records."""
    if num_records < 1 or data_width < 1:
        raise SherlockError("records and data width must be positive")
    return math.ceil(num_records / data_width)
