"""Bulk-bitwise breadth-first search step (graph-processing extension).

The paper's introduction lists graph processing among the bulk-bitwise
domains.  The classic formulation operates on a Boolean adjacency matrix:
one BFS level expands the frontier with an AND/OR matrix-vector product,

    next[i]    = ( OR_j  A[i][j] AND f[j] )  AND  NOT visited[i]
    visited'[i] = visited[i] OR next[i]

Bit-sliced over lanes, every lane traverses an *independent graph instance*
with the same program — useful for batched reachability queries and motif
search.  The DAG has wide OR-reduction trees feeding per-vertex updates, a
different shape from the paper's three workloads (shallow and very wide),
which exercises the mapper's load-balancing cases.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.dfg.builder import DFGBuilder
from repro.dfg.graph import DataFlowGraph
from repro.errors import SherlockError


def bfs_step_dag(num_vertices: int = 16) -> DataFlowGraph:
    """One frontier-expansion step for graphs of ``num_vertices`` vertices.

    Inputs: ``A{i}_{j}`` adjacency bits (edge j -> i), ``f{j}`` frontier
    bits, ``vis{i}`` visited bits.  Outputs: ``next{i}`` and ``visnew{i}``.
    """
    if num_vertices < 2:
        raise SherlockError(f"need at least 2 vertices, got {num_vertices}")
    b = DFGBuilder(f"bfs{num_vertices}")
    frontier = [b.input(f"f{j}") for j in range(num_vertices)]
    visited = [b.input(f"vis{i}") for i in range(num_vertices)]
    for i in range(num_vertices):
        terms = [b.input(f"A{i}_{j}") & frontier[j]
                 for j in range(num_vertices)]
        # balanced OR-reduction tree
        level = terms
        while len(level) > 1:
            level = [level[k] | level[k + 1] if k + 1 < len(level) else level[k]
                     for k in range(0, len(level), 2)]
        reached = level[0]
        next_i = reached & ~visited[i]
        b.output(f"next{i}", next_i)
        b.output(f"visnew{i}", visited[i] | next_i)
    return b.build()


# ----------------------------------------------------------------------
# input encoding and reference
# ----------------------------------------------------------------------
def step_inputs(graphs: Sequence[Sequence[Sequence[int]]],
                frontiers: Sequence[set[int]],
                visited: Sequence[set[int]]) -> dict[str, int]:
    """Encode per-lane graphs/frontiers/visited sets into DFG inputs.

    ``graphs[lane][i][j]`` is 1 when there is an edge j -> i.
    """
    if not graphs or len(graphs) != len(frontiers) or len(graphs) != len(visited):
        raise SherlockError("need one graph, frontier and visited set per lane")
    n = len(graphs[0])
    inputs: dict[str, int] = {}
    for i in range(n):
        for j in range(n):
            inputs[f"A{i}_{j}"] = sum(
                (graphs[lane][i][j] & 1) << lane for lane in range(len(graphs)))
    for j in range(n):
        inputs[f"f{j}"] = sum(
            (1 << lane) for lane, f in enumerate(frontiers) if j in f)
    for i in range(n):
        inputs[f"vis{i}"] = sum(
            (1 << lane) for lane, v in enumerate(visited) if i in v)
    return inputs


def step_reference(graph: Sequence[Sequence[int]], frontier: set[int],
                   visited: set[int]) -> tuple[set[int], set[int]]:
    """(next frontier, new visited) of one BFS step on one lane."""
    n = len(graph)
    reached = {i for i in range(n)
               if any(graph[i][j] and j in frontier for j in range(n))}
    next_frontier = reached - visited
    return next_frontier, visited | next_frontier


def decode_step(outputs: dict[str, int], lane: int,
                num_vertices: int) -> tuple[set[int], set[int]]:
    """Per-lane (next frontier, new visited) from the DFG outputs."""
    next_frontier = {i for i in range(num_vertices)
                     if (outputs[f"next{i}"] >> lane) & 1}
    new_visited = {i for i in range(num_vertices)
                   if (outputs[f"visnew{i}"] >> lane) & 1}
    return next_frontier, new_visited


def bfs_reference(graph: Sequence[Sequence[int]], source: int) -> dict[int, int]:
    """Whole-graph BFS levels (vertex -> level), for end-to-end checks."""
    levels = {source: 0}
    frontier = {source}
    visited = {source}
    level = 0
    while frontier:
        level += 1
        frontier, visited = step_reference(graph, frontier, visited)
        for vertex in frontier:
            levels[vertex] = level
    return levels
