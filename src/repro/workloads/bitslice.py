"""Bit-sliced arithmetic circuits over DFG wires.

Bit-sliced ("vertical") layouts store bit ``i`` of many values in one bulk
vector, so word-level arithmetic becomes a gate network over slices — the
representation BitWeaving-V, the bit-sliced Sobel of [18], and Usuba's AES
all share.  These helpers build the classic networks (ripple-carry adder,
two's-complement negation, absolute value...) with the builder DSL; slice
lists are LSB-first throughout.
"""

from __future__ import annotations

from repro.dfg.builder import DFGBuilder, Wire
from repro.errors import GraphError


def constant_slices(builder: DFGBuilder, value: int, width: int) -> list[Wire]:
    """Broadcast an integer constant into LSB-first slices."""
    if width < 1:
        raise GraphError(f"width must be positive, got {width}")
    return [builder.const((value >> i) & 1) for i in range(width)]


def full_adder(builder: DFGBuilder, a: Wire, b: Wire,
               carry: Wire | None) -> tuple[Wire, Wire]:
    """One full adder: returns (sum, carry_out)."""
    axb = a ^ b
    if carry is None:
        return axb, a & b
    return axb ^ carry, (a & b) | (axb & carry)


def ripple_add(builder: DFGBuilder, a: list[Wire], b: list[Wire],
               width: int | None = None) -> list[Wire]:
    """Bit-sliced ripple-carry addition.

    The result has ``max(len(a), len(b)) + 1`` slices unless ``width`` caps
    it (modular arithmetic).  Shorter operands are zero-extended.
    """
    if not a or not b:
        raise GraphError("addition needs non-empty slice lists")
    n = max(len(a), len(b))
    out_width = n + 1 if width is None else width
    zero = builder.const(0)
    a = list(a) + [zero] * (n - len(a))
    b = list(b) + [zero] * (n - len(b))
    result: list[Wire] = []
    carry: Wire | None = None
    for i in range(min(n, out_width)):
        s, carry = full_adder(builder, a[i], b[i], carry)
        result.append(s)
    if len(result) < out_width and carry is not None:
        result.append(carry)
    while len(result) < out_width:
        result.append(zero)
    return result[:out_width]


def shift_left(builder: DFGBuilder, a: list[Wire], amount: int,
               width: int | None = None) -> list[Wire]:
    """Multiply by ``2**amount``: free rewiring plus zero low slices."""
    if amount < 0:
        raise GraphError(f"shift amount must be non-negative, got {amount}")
    zero = builder.const(0)
    result = [zero] * amount + list(a)
    if width is not None:
        result = result[:width]
    return result


def negate(builder: DFGBuilder, a: list[Wire]) -> list[Wire]:
    """Two's-complement negation at the same width: ~a + 1."""
    inverted = [~w for w in a]
    one = constant_slices(builder, 1, len(a))
    return ripple_add(builder, inverted, one, width=len(a))


def subtract(builder: DFGBuilder, a: list[Wire], b: list[Wire],
             width: int | None = None) -> list[Wire]:
    """Bit-sliced subtraction ``a - b`` of unsigned operands.

    Operands are zero-extended to the common width plus one slice so the
    sign of the difference is representable; the result is two's complement
    with the MSB as sign (default width: common width + 1).
    """
    n = max(len(a), len(b)) + 1
    zero = builder.const(0)
    a = list(a) + [zero] * (n - len(a))
    b_ext = list(b) + [zero] * (n - len(b))
    not_b = [~w for w in b_ext]
    one = constant_slices(builder, 1, n)
    partial = ripple_add(builder, a, not_b, width=n)
    result = ripple_add(builder, partial, one, width=n)
    if width is not None:
        if width > n:
            raise GraphError("cannot widen a subtraction result")
        result = result[:width]
    return result


def conditional_negate(builder: DFGBuilder, a: list[Wire], sign: Wire) -> list[Wire]:
    """``sign ? -a : a`` — XOR with the sign then add it back (two's compl.)."""
    flipped = [w ^ sign for w in a]
    sign_slices = [sign] + [builder.const(0)] * (len(a) - 1)
    return ripple_add(builder, flipped, sign_slices, width=len(a))


def absolute(builder: DFGBuilder, a: list[Wire]) -> list[Wire]:
    """|a| of a two's-complement slice list (MSB is the sign)."""
    return conditional_negate(builder, a, a[-1])


def equals(builder: DFGBuilder, a: list[Wire], b: list[Wire]) -> Wire:
    """Slice-wise equality reduced with ANDs (XNOR tree)."""
    if len(a) != len(b):
        raise GraphError("equality needs equal widths")
    bits = [builder.xnor(x, y) for x, y in zip(a, b)]
    acc = bits[0]
    for bit in bits[1:]:
        acc = acc & bit
    return acc


def less_than(builder: DFGBuilder, a: list[Wire], b: list[Wire]) -> Wire:
    """Unsigned ``a < b`` over MSB-down scan (the BitWeaving recurrence)."""
    if len(a) != len(b):
        raise GraphError("comparison needs equal widths")
    lt = None
    eq = None
    for x, y in zip(reversed(a), reversed(b)):  # MSB first
        bit_lt = ~x & y
        if lt is None:
            lt = bit_lt
            eq = builder.xnor(x, y)
        else:
            lt = lt | (eq & bit_lt)
            eq = eq & builder.xnor(x, y)
    return lt
