"""Synthetic DAG generator for stress tests and ablations.

Real kernels sit between two extremes: fully independent chains (perfect
clustering) and uniformly random dependencies (no locality).  The
``locality`` knob interpolates: each new op draws its operands from a
recent window of results within one of ``groups`` independent streams
(high locality) or from anywhere (low locality).
"""

from __future__ import annotations

import random

from repro.dfg.graph import DataFlowGraph
from repro.dfg.ops import OpType
from repro.errors import SherlockError

_OPS = (OpType.AND, OpType.OR, OpType.XOR)


def synthetic_dag(num_ops: int = 200, num_inputs: int = 32, groups: int = 4,
                  locality: float = 0.9, seed: int = 0,
                  name: str | None = None) -> DataFlowGraph:
    """Random bulk-bitwise DAG with controllable dependence locality."""
    if num_ops < 1 or num_inputs < 2 or groups < 1:
        raise SherlockError("need at least 1 op, 2 inputs and 1 group")
    if not 0.0 <= locality <= 1.0:
        raise SherlockError(f"locality must be in [0, 1], got {locality}")
    rng = random.Random(seed)
    dag = DataFlowGraph(name or f"synthetic{num_ops}")
    inputs = [dag.add_input(f"x{i}") for i in range(num_inputs)]
    streams: list[list[int]] = [[] for _ in range(groups)]
    for i, operand in enumerate(inputs):
        streams[i % groups].append(operand)
    all_values = list(inputs)
    for _ in range(num_ops):
        group = rng.randrange(groups)
        operands = []
        for _ in range(2):
            if rng.random() < locality and streams[group]:
                window = streams[group][-8:]
                operands.append(rng.choice(window))
            else:
                operands.append(rng.choice(all_values))
        if operands[0] == operands[1]:
            operands[1] = rng.choice(inputs)
            if operands[0] == operands[1]:
                operands[1] = inputs[0] if operands[0] != inputs[0] else inputs[1]
        result = dag.add_op(rng.choice(_OPS), operands)
        streams[group].append(result)
        all_values.append(result)
    for g, stream in enumerate(streams):
        if stream:
            dag.mark_output(stream[-1], f"out{g}")
    dag.validate()
    return dag
