"""Bulk-bitwise DNA k-mer matching (bio-informatics extension).

DNA alignment pipelines spend much of their time on exact k-mer seeding:
finding every position of a reference where a short pattern matches.  With
2-bit base encoding (A=00, C=01, G=10, T=11) and one *candidate position
per lane*, the match test is pure bulk-bitwise logic:

    hit = AND over offsets o of XNOR(text_bit(o), pattern_bit(o))

i.e. a bit-sliced equality over ``2k`` slices — the same XNOR/AND shape as
BitWeaving's equality scan, but deeper and with broadcast pattern
constants, which makes it a nice additional stress for the node
substitution transform (long AND chains merge into multi-row activations).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.dfg.builder import DFGBuilder
from repro.dfg.graph import DataFlowGraph
from repro.errors import SherlockError

#: 2-bit encoding of the four bases
BASE_BITS = {"A": 0, "C": 1, "G": 2, "T": 3}


def kmer_match_dag(k: int = 8) -> DataFlowGraph:
    """Match a ``k``-mer pattern at one candidate position per lane.

    Inputs: ``t{o}[b]`` — bit ``b`` of the text base at offset ``o`` from
    the candidate position, and ``p{o}[b]`` — the pattern's bases (the host
    broadcasts the same pattern to all lanes, but per-lane patterns work
    too).  Output: ``hit`` — the per-lane match verdict.
    """
    if k < 1:
        raise SherlockError(f"k must be positive, got {k}")
    b = DFGBuilder(f"kmer{k}")
    bits = []
    for o in range(k):
        for bit in range(2):
            text = b.input(f"t{o}[{bit}]")
            pattern = b.input(f"p{o}[{bit}]")
            bits.append(b.xnor(text, pattern))
    acc = bits[0]
    for wire in bits[1:]:
        acc = acc & wire
    b.output("hit", acc)
    return b.build()


def encode_sequence(sequence: str) -> list[int]:
    """DNA string -> list of 2-bit base codes."""
    try:
        return [BASE_BITS[ch] for ch in sequence.upper()]
    except KeyError as error:
        raise SherlockError(f"not a DNA base: {error}") from None


def match_inputs(text: str, pattern: str, positions: Sequence[int]) -> dict[str, int]:
    """Inputs testing ``pattern`` at each candidate ``positions[lane]``."""
    k = len(pattern)
    if k < 1:
        raise SherlockError("pattern must be non-empty")
    codes = encode_sequence(text)
    pattern_codes = encode_sequence(pattern)
    inputs: dict[str, int] = {}
    for o in range(k):
        for bit in range(2):
            mask = 0
            for lane, pos in enumerate(positions):
                if not 0 <= pos + k <= len(codes):
                    raise SherlockError(
                        f"candidate position {pos} leaves no room for a "
                        f"{k}-mer in a text of length {len(codes)}")
                mask |= ((codes[pos + o] >> bit) & 1) << lane
            inputs[f"t{o}[{bit}]"] = mask
            pattern_bit = (pattern_codes[o] >> bit) & 1
            inputs[f"p{o}[{bit}]"] = ((1 << len(positions)) - 1) * pattern_bit
    return inputs


def match_reference(text: str, pattern: str, positions: Sequence[int]) -> int:
    """Lane bitmask of candidate positions where the pattern matches."""
    return sum(1 << lane for lane, pos in enumerate(positions)
               if text[pos:pos + len(pattern)].upper() == pattern.upper())


def find_all(text: str, pattern: str) -> list[int]:
    """All match positions (reference helper for end-to-end checks)."""
    k = len(pattern)
    return [i for i in range(len(text) - k + 1)
            if text[i:i + k].upper() == pattern.upper()]
