"""Bit-sliced Sobel edge detection (Joshi et al., iSES'20) — image workload.

Per output pixel, the Sobel operator convolves the 3×3 neighbourhood with

    Gx = (p02 + 2·p12 + p22) − (p00 + 2·p10 + p20)
    Gy = (p20 + 2·p21 + p22) − (p00 + 2·p01 + p02)

and reports ``|Gx| + |Gy|`` (the common first-derivative magnitude
approximation).  In the bit-sliced formulation every lane is one output
pixel: the nine neighbourhood pixels become 9 × 8 input slices and the
arithmetic turns into ripple-carry adder networks of AND/OR/XOR gates —
a DAG an order of magnitude larger than BitWeaving's, which is why the
paper sees bigger mapping gains on Sobel (Sec. 4.1).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.dfg.builder import DFGBuilder
from repro.dfg.graph import DataFlowGraph
from repro.errors import SherlockError
from repro.workloads.bitslice import absolute, ripple_add, shift_left, subtract

#: neighbourhood positions in (row, col) offsets, named p<r><c>
_POSITIONS = [(r, c) for r in range(3) for c in range(3)]


def sobel_dag(bits: int = 8) -> DataFlowGraph:
    """Bit-sliced Sobel magnitude for ``bits``-bit grayscale pixels."""
    if bits < 2:
        raise SherlockError(f"pixel depth must be at least 2 bits, got {bits}")
    b = DFGBuilder("sobel")
    pixels = {}
    for r, c in _POSITIONS:
        pixels[(r, c)] = [b.input(f"p{r}{c}[{i}]") for i in range(bits)]
    _sobel_body(b, pixels)
    return b.build()


def sobel_tile_dag(tile: int = 4, bits: int = 8) -> DataFlowGraph:
    """Sobel over a ``tile × tile`` block of output pixels at once.

    Adjacent output pixels share most of their 3×3 neighbourhoods (a
    ``(tile+2)²`` input window), so the tiled DAG has heavy input reuse
    across its sub-kernels — data the naive mapping duplicates into every
    consumer column while Sherlock's clustering keeps it shared.  Each lane
    is one tile; inputs are named ``w<r>_<c>[bit]`` over the window, and
    outputs ``t<r>_<c>_mag[bit]`` per tile position.
    """
    if tile < 1:
        raise SherlockError(f"tile must be positive, got {tile}")
    from repro.dfg.compose import union

    def renamed_component(r: int, c: int) -> DataFlowGraph:
        b = DFGBuilder(f"sobel_{r}_{c}")
        pixels = {}
        for dr, dc in _POSITIONS:
            name = f"w{r + dr}_{c + dc}"
            pixels[(dr, dc)] = [b.input(f"{name}[{i}]") for i in range(bits)]
        _sobel_body(b, pixels)
        return b.build()

    components = [renamed_component(r, c)
                  for r in range(tile) for c in range(tile)]
    prefixes = [f"t{r}_{c}_" for r in range(tile) for c in range(tile)]
    return union(components, prefixes, name=f"sobel_tile{tile}")


def _sobel_body(b: DFGBuilder, pixels: dict) -> None:
    """Shared gradient/magnitude network over a 3×3 pixel dict."""
    def weighted_sum(a, double, c):
        doubled = shift_left(b, double, 1)
        return ripple_add(b, ripple_add(b, a, doubled), c)

    gx_pos = weighted_sum(pixels[(0, 2)], pixels[(1, 2)], pixels[(2, 2)])
    gx_neg = weighted_sum(pixels[(0, 0)], pixels[(1, 0)], pixels[(2, 0)])
    gy_pos = weighted_sum(pixels[(2, 0)], pixels[(2, 1)], pixels[(2, 2)])
    gy_neg = weighted_sum(pixels[(0, 0)], pixels[(0, 1)], pixels[(0, 2)])
    gx = subtract(b, gx_pos, gx_neg)
    gy = subtract(b, gy_pos, gy_neg)
    magnitude = ripple_add(b, absolute(b, gx), absolute(b, gy))
    for i, wire in enumerate(magnitude):
        b.output(f"mag[{i}]", wire)


def tile_inputs(windows: Sequence[Sequence[Sequence[int]]], tile: int = 4,
                bits: int = 8) -> dict[str, int]:
    """Inputs for :func:`sobel_tile_dag`.

    ``windows[lane][r][c]`` is the pixel at window position (r, c) for that
    lane's tile; the window is ``(tile+2) × (tile+2)``.
    """
    size = tile + 2
    limit = 1 << bits
    inputs: dict[str, int] = {}
    for r in range(size):
        for c in range(size):
            for i in range(bits):
                mask = 0
                for lane, window in enumerate(windows):
                    pixel = window[r][c]
                    if not 0 <= pixel < limit:
                        raise SherlockError(
                            f"pixel {pixel} does not fit {bits} bits")
                    mask |= ((pixel >> i) & 1) << lane
                inputs[f"w{r}_{c}[{i}]"] = mask
    return inputs


def decode_tile_magnitudes(outputs: dict[str, int], lanes: int,
                           tile: int = 4) -> list[list[list[int]]]:
    """Per-lane ``tile × tile`` magnitude grids from the tiled outputs."""
    grids = []
    for lane in range(lanes):
        grid = []
        for r in range(tile):
            row = []
            for c in range(tile):
                value = 0
                i = 0
                while f"t{r}_{c}_mag[{i}]" in outputs:
                    value |= ((outputs[f"t{r}_{c}_mag[{i}]"] >> lane) & 1) << i
                    i += 1
                row.append(value)
            grid.append(row)
        grids.append(grid)
    return grids


# ----------------------------------------------------------------------
# reference implementation and input encoding
# ----------------------------------------------------------------------
def neighbourhood_inputs(neighbourhoods: Sequence[Sequence[Sequence[int]]],
                         bits: int = 8) -> dict[str, int]:
    """Encode per-lane 3×3 neighbourhoods into DFG slice inputs.

    ``neighbourhoods[lane][r][c]`` is the pixel at offset (r, c) for that
    lane.  Slices are LSB-first, matching :func:`sobel_dag`.
    """
    limit = 1 << bits
    inputs: dict[str, int] = {}
    for r, c in _POSITIONS:
        for i in range(bits):
            mask = 0
            for lane, nb in enumerate(neighbourhoods):
                pixel = nb[r][c]
                if not 0 <= pixel < limit:
                    raise SherlockError(f"pixel {pixel} does not fit {bits} bits")
                mask |= ((pixel >> i) & 1) << lane
            inputs[f"p{r}{c}[{i}]"] = mask
    return inputs


def sobel_reference(neighbourhood: Sequence[Sequence[int]]) -> int:
    """|Gx| + |Gy| of one 3×3 neighbourhood (full precision)."""
    p = neighbourhood
    gx = (p[0][2] + 2 * p[1][2] + p[2][2]) - (p[0][0] + 2 * p[1][0] + p[2][0])
    gy = (p[2][0] + 2 * p[2][1] + p[2][2]) - (p[0][0] + 2 * p[0][1] + p[0][2])
    return abs(gx) + abs(gy)


def decode_magnitudes(outputs: dict[str, int], lanes: int) -> list[int]:
    """Per-lane magnitudes from the DFG output slices."""
    slices = sorted(
        ((int(name[4:-1]), mask) for name, mask in outputs.items()
         if name.startswith("mag[")), key=lambda kv: kv[0])
    values = []
    for lane in range(lanes):
        value = 0
        for i, mask in slices:
            value |= ((mask >> lane) & 1) << i
        values.append(value)
    return values


def image_neighbourhoods(image: Sequence[Sequence[int]]) -> list[list[list[int]]]:
    """All interior 3×3 neighbourhoods of an image, row-major."""
    height = len(image)
    width = len(image[0]) if height else 0
    if height < 3 or width < 3:
        raise SherlockError("image must be at least 3x3")
    result = []
    for r in range(1, height - 1):
        for c in range(1, width - 1):
            result.append([[image[r + dr - 1][c + dc - 1] for dc in range(3)]
                           for dr in range(3)])
    return result


def image_iterations(height: int, width: int, data_width: int) -> int:
    """Program runs to filter a ``height × width`` image."""
    pixels = max(0, (height - 2)) * max(0, (width - 2))
    if pixels == 0:
        raise SherlockError("image too small for a 3x3 filter")
    return math.ceil(pixels / data_width)
