"""Benchmark workloads: the paper's three applications plus synthetic DAGs.

Each registry entry packages a DAG factory, an input generator, and an
output checker behind one interface so the benchmark harness and tests can
treat all workloads uniformly.  The default parameters reproduce the
regimes of the paper's evaluation (multi-column DAGs on 512/1024 arrays).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.dfg.graph import DataFlowGraph
from repro.errors import SherlockError
from repro.sim.cpu import CpuEvents, aes_events, bitweaving_events, sobel_events
from repro.workloads import aes, bfs, bitweaving, dna, sobel
from repro.workloads.synthetic import synthetic_dag


@dataclass(frozen=True)
class Workload:
    """A benchmarkable kernel with reference semantics."""

    name: str
    description: str
    build_dag: Callable[[], DataFlowGraph]
    #: (rng, lanes) -> input dict for DFG evaluation / program execution
    make_inputs: Callable[[random.Random, int], dict[str, int]]
    #: (inputs, outputs, lanes) -> raises on mismatch with the reference
    check: Callable[[dict[str, int], dict[str, int], int], None]
    #: lanes -> scalar-CPU event counts for the same work (Fig. 7 baseline)
    cpu_events: Callable[[int], CpuEvents]
    #: full-application scale factor: program runs for a realistic dataset
    #: program runs needed for the workload's realistic dataset size
    dataset_iterations: Callable[[int], int] = field(
        default=lambda data_width: 1)


# ----------------------------------------------------------------------
# bitweaving: 32-segment BETWEEN scan, 8-bit codes, 1M-record column
# ----------------------------------------------------------------------
_BW_SEGMENTS = 32
_BW_BITS = 8
_BW_RECORDS = 1_000_000
_BW_LO, _BW_HI = 50, 200


def _bw_inputs(rng: random.Random, lanes: int) -> dict[str, int]:
    segments = [[rng.randrange(1 << _BW_BITS) for _ in range(lanes)]
                for _ in range(_BW_SEGMENTS)]
    return bitweaving.batch_scan_inputs(_BW_LO, _BW_HI, segments, _BW_BITS)


def _bw_check(inputs: dict[str, int], outputs: dict[str, int], lanes: int) -> None:
    for j in range(_BW_SEGMENTS):
        column = []
        for lane in range(lanes):
            value = 0
            for i in range(_BW_BITS):
                bit = (inputs[f"s{j}_x[{i}]"] >> lane) & 1
                value |= bit << (_BW_BITS - 1 - i)
            column.append(value)
        expected = bitweaving.between_reference(_BW_LO, _BW_HI, column)
        if outputs[f"s{j}_return"] != expected:
            raise SherlockError(f"bitweaving segment {j} mismatch")


# ----------------------------------------------------------------------
# sobel: 4x4 output tile, 8-bit pixels, 512x512 image
# ----------------------------------------------------------------------
_SOBEL_TILE = 4
_SOBEL_IMAGE = 512


def _sobel_inputs(rng: random.Random, lanes: int) -> dict[str, int]:
    windows = [[[rng.randrange(256) for _ in range(_SOBEL_TILE + 2)]
                for _ in range(_SOBEL_TILE + 2)] for _ in range(lanes)]
    return sobel.tile_inputs(windows, _SOBEL_TILE)


def _sobel_check(inputs: dict[str, int], outputs: dict[str, int], lanes: int) -> None:
    size = _SOBEL_TILE + 2
    grids = sobel.decode_tile_magnitudes(outputs, lanes, _SOBEL_TILE)
    for lane in range(lanes):
        window = [[0] * size for _ in range(size)]
        for r in range(size):
            for c in range(size):
                value = 0
                for i in range(8):
                    value |= ((inputs[f"w{r}_{c}[{i}]"] >> lane) & 1) << i
                window[r][c] = value
        for r in range(_SOBEL_TILE):
            for c in range(_SOBEL_TILE):
                nb = [[window[r + dr][c + dc] for dc in range(3)]
                      for dr in range(3)]
                if grids[lane][r][c] != sobel.sobel_reference(nb):
                    raise SherlockError(f"sobel mismatch at lane {lane} ({r},{c})")


# ----------------------------------------------------------------------
# aes: full AES-128 over one block per lane
# ----------------------------------------------------------------------
_AES_ROUNDS = 10
_AES_KEY = aes.FIPS_KEY
_AES_BLOCKS = 4096  # dataset: 64 KiB of plaintext


def _aes_inputs(rng: random.Random, lanes: int) -> dict[str, int]:
    blocks = [bytes(rng.randrange(256) for _ in range(16)) for _ in range(lanes)]
    return aes.block_inputs(blocks, _AES_KEY, _AES_ROUNDS)


def _aes_check(inputs: dict[str, int], outputs: dict[str, int], lanes: int) -> None:
    got = aes.decode_blocks(outputs, lanes)
    for lane in range(lanes):
        block = bytes(
            sum(((inputs[f"pt{byte}[{bit}]"] >> lane) & 1) << bit
                for bit in range(8))
            for byte in range(16))
        expected = aes.encrypt_reference(block, _AES_KEY, _AES_ROUNDS)
        if got[lane] != expected:
            raise SherlockError(f"aes mismatch at lane {lane}")


# ----------------------------------------------------------------------
# bfs: bulk-bitwise frontier expansion (graph-processing extension)
# ----------------------------------------------------------------------
_BFS_VERTICES = 16
_BFS_DENSITY = 0.2


def _bfs_random_state(rng: random.Random, lanes: int):
    graphs = [[[1 if rng.random() < _BFS_DENSITY and i != j else 0
                for j in range(_BFS_VERTICES)] for i in range(_BFS_VERTICES)]
              for _ in range(lanes)]
    sources = [rng.randrange(_BFS_VERTICES) for _ in range(lanes)]
    return graphs, sources


def _bfs_inputs(rng: random.Random, lanes: int) -> dict[str, int]:
    graphs, sources = _bfs_random_state(rng, lanes)
    return bfs.step_inputs(graphs, [{s} for s in sources],
                           [{s} for s in sources])


def _bfs_check(inputs: dict[str, int], outputs: dict[str, int], lanes: int) -> None:
    n = _BFS_VERTICES
    for lane in range(lanes):
        graph = [[(inputs[f"A{i}_{j}"] >> lane) & 1 for j in range(n)]
                 for i in range(n)]
        frontier = {j for j in range(n) if (inputs[f"f{j}"] >> lane) & 1}
        visited = {i for i in range(n) if (inputs[f"vis{i}"] >> lane) & 1}
        expected = bfs.step_reference(graph, frontier, visited)
        if bfs.decode_step(outputs, lane, n) != expected:
            raise SherlockError(f"bfs mismatch at lane {lane}")


def _bfs_cpu_events(lanes: int) -> CpuEvents:
    # one AND + OR-accumulate per edge slot, on bit-packed vertex words
    words = max(1, -(-_BFS_VERTICES // 64))
    per_step = CpuEvents(alu_ops=2 * _BFS_VERTICES * words + 2 * _BFS_VERTICES,
                         loads=_BFS_VERTICES * words + 2 * _BFS_VERTICES,
                         stores=2 * _BFS_VERTICES)
    return per_step.scaled(lanes)


WORKLOADS: dict[str, Workload] = {
    "bitweaving": Workload(
        name="bitweaving",
        description=(f"BitWeaving-V BETWEEN scan, {_BW_SEGMENTS} segments "
                     f"of {_BW_BITS}-bit codes"),
        build_dag=lambda: bitweaving.between_batch_dag(_BW_BITS, _BW_SEGMENTS),
        make_inputs=_bw_inputs,
        check=_bw_check,
        cpu_events=lambda lanes: bitweaving_events(lanes, _BW_BITS, _BW_SEGMENTS),
        dataset_iterations=lambda dw: bitweaving.scan_iterations(
            _BW_RECORDS, dw * _BW_SEGMENTS),
    ),
    "sobel": Workload(
        name="sobel",
        description=f"bit-sliced Sobel, {_SOBEL_TILE}x{_SOBEL_TILE} pixel tile",
        build_dag=lambda: sobel.sobel_tile_dag(_SOBEL_TILE),
        make_inputs=_sobel_inputs,
        check=_sobel_check,
        cpu_events=lambda lanes: sobel_events(lanes, tile=_SOBEL_TILE),
        dataset_iterations=lambda dw: sobel.image_iterations(
            _SOBEL_IMAGE, _SOBEL_IMAGE, dw * _SOBEL_TILE * _SOBEL_TILE),
    ),
    "aes": Workload(
        name="aes",
        description="bit-sliced AES-128 (Usuba-style), one block per lane",
        build_dag=lambda: aes.aes_dag(_AES_ROUNDS),
        make_inputs=_aes_inputs,
        check=_aes_check,
        cpu_events=lambda lanes: aes_events(lanes, _AES_ROUNDS),
        dataset_iterations=lambda dw: max(1, -(-_AES_BLOCKS // dw)),
    ),
    "bfs": Workload(
        name="bfs",
        description=(f"bulk-bitwise BFS step, {_BFS_VERTICES}-vertex graphs, "
                     "one graph per lane (extension)"),
        build_dag=lambda: bfs.bfs_step_dag(_BFS_VERTICES),
        make_inputs=_bfs_inputs,
        check=_bfs_check,
        cpu_events=_bfs_cpu_events,
    ),
}


def get_workload(name: str) -> Workload:
    """Look up a registered workload by name."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise SherlockError(
            f"unknown workload {name!r}; known: {sorted(WORKLOADS)}") from None


__all__ = [
    "WORKLOADS",
    "Workload",
    "aes",
    "bfs",
    "bitweaving",
    "dna",
    "get_workload",
    "sobel",
    "synthetic_dag",
]
