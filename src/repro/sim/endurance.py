"""Endurance/wear analysis of compiled programs (reproduction extension).

NVM cells endure a bounded number of program cycles (ReRAM ~1e9, PCM ~1e8;
STT-MRAM is effectively wear-free).  Because CIM turns every intermediate
result into a cell write, write traffic concentrates on the result cells of
hot columns; this module quantifies that and projects how many kernel
executions the array sustains before the hottest cell wears out — a
first-order lifetime bound for the accelerator.

Wear can be measured two ways: from a functional run — the
:class:`repro.sim.executor.ArrayMachine` accumulates per-cell write counts
in its ``write_counts`` dictionary ((array, row, col) -> writes received),
which feeds :func:`wear_from_counts` directly — or statically from the
instruction trace (each write instruction programs one cell per selected
column, see :func:`static_write_counts`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.isa import Instruction, WriteInst
from repro.devices.technology import Technology
from repro.errors import SimulationError


@dataclass(frozen=True)
class WearReport:
    """Write-traffic statistics of one program execution."""

    total_cell_writes: int
    cells_written: int
    max_writes_per_cell: int
    mean_writes_per_cell: float
    #: (array, row, col) of the most-written cell
    hottest_cell: tuple[int, int, int] | None

    def lifetime_executions(self, technology: Technology) -> float:
        """Kernel executions until the hottest cell exceeds its endurance.

        An empty trace (no writes) and a wear-free technology (STT-MRAM's
        ``endurance_cycles`` is ``inf``) both yield ``inf``, never a
        division error.
        """
        if self.max_writes_per_cell == 0:
            return float("inf")
        return technology.endurance_cycles / self.max_writes_per_cell


def wear_from_counts(write_counts: dict[tuple[int, int, int], int]) -> WearReport:
    """Build a report from per-cell write counters (machine or static)."""
    if not write_counts:
        return WearReport(0, 0, 0, 0.0, None)
    total = sum(write_counts.values())
    hottest = max(write_counts, key=lambda k: (write_counts[k], k))
    return WearReport(
        total_cell_writes=total,
        cells_written=len(write_counts),
        max_writes_per_cell=write_counts[hottest],
        mean_writes_per_cell=total / len(write_counts),
        hottest_cell=hottest,
    )


def wear_by_array(write_counts: dict[tuple[int, int, int], int],
                  ) -> dict[int, WearReport]:
    """Per-array wear reports, keyed by array index.

    A single aggregate report conflates the arrays: one array's cold cells
    drag the mean down while another's hot column quietly approaches its
    endurance.  Splitting by the address's array coordinate keeps each
    array's hottest cell (and hence its lifetime bound) visible.
    """
    per_array: dict[int, dict[tuple[int, int, int], int]] = {}
    for key, count in write_counts.items():
        per_array.setdefault(key[0], {})[key] = count
    return {array: wear_from_counts(counts)
            for array, counts in sorted(per_array.items())}


def static_write_counts(instructions: list[Instruction]) -> dict[tuple[int, int, int], int]:
    """Per-cell write counts derived from the trace alone."""
    counts: dict[tuple[int, int, int], int] = {}
    for inst in instructions:
        if isinstance(inst, WriteInst):
            for col in inst.cols:
                key = (inst.array, inst.row, col)
                counts[key] = counts.get(key, 0) + 1
    return counts


def wear_report(instructions: list[Instruction]) -> WearReport:
    """Static wear report of one program run."""
    if instructions is None:
        raise SimulationError("need an instruction trace")
    return wear_from_counts(static_write_counts(instructions))
