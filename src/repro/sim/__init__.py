"""Simulation substrate: functional trace execution and cost accounting."""

from repro.sim.endurance import (
    WearReport,
    static_write_counts,
    wear_by_array,
    wear_from_counts,
    wear_report,
)
from repro.sim.executor import (
    ArrayMachine,
    MachineState,
    SenseObserver,
    extract_outputs,
    preload_sources,
)
from repro.sim.metrics import (
    TraceMetrics,
    analyze_trace,
    instruction_cost,
    operation_failures,
    p_app_of,
    parallel_latency_cycles,
    read_cost,
    rowbuf_not_cost,
    write_cost,
)
from repro.sim.wearlevel import (
    RotatedProgram,
    placement_conflicts,
    rotate_cell,
    rotate_instructions,
    rotate_layout,
    rotate_program,
)

__all__ = [
    "ArrayMachine",
    "MachineState",
    "RotatedProgram",
    "SenseObserver",
    "TraceMetrics",
    "analyze_trace",
    "extract_outputs",
    "instruction_cost",
    "operation_failures",
    "p_app_of",
    "parallel_latency_cycles",
    "placement_conflicts",
    "preload_sources",
    "read_cost",
    "rotate_cell",
    "rotate_instructions",
    "rotate_layout",
    "rotate_program",
    "rowbuf_not_cost",
    "static_write_counts",
    "wear_by_array",
    "wear_from_counts",
    "wear_report",
    "write_cost",
    "WearReport",
]
