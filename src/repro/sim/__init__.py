"""Simulation substrate: functional trace execution and cost accounting."""

from repro.sim.endurance import WearReport, static_write_counts, wear_from_counts, wear_report
from repro.sim.executor import (
    ArrayMachine,
    MachineState,
    SenseObserver,
    extract_outputs,
    preload_sources,
)
from repro.sim.metrics import (
    TraceMetrics,
    analyze_trace,
    instruction_cost,
    operation_failures,
    p_app_of,
    parallel_latency_cycles,
    read_cost,
    rowbuf_not_cost,
    write_cost,
)

__all__ = [
    "ArrayMachine",
    "MachineState",
    "SenseObserver",
    "TraceMetrics",
    "analyze_trace",
    "extract_outputs",
    "instruction_cost",
    "operation_failures",
    "p_app_of",
    "parallel_latency_cycles",
    "preload_sources",
    "read_cost",
    "rowbuf_not_cost",
    "static_write_counts",
    "wear_from_counts",
    "wear_report",
    "write_cost",
    "WearReport",
]
