"""Simulation substrate: functional trace execution and cost accounting."""

from repro.sim.endurance import WearReport, static_write_counts, wear_from_counts, wear_report
from repro.sim.executor import ArrayMachine, extract_outputs, preload_sources
from repro.sim.metrics import (
    TraceMetrics,
    analyze_trace,
    operation_failures,
    p_app_of,
    parallel_latency_cycles,
)

__all__ = [
    "ArrayMachine",
    "TraceMetrics",
    "analyze_trace",
    "extract_outputs",
    "operation_failures",
    "p_app_of",
    "parallel_latency_cycles",
    "preload_sources",
    "static_write_counts",
    "wear_from_counts",
    "wear_report",
    "WearReport",
]
