"""Round-robin wear-leveling: rotate a compiled program across rows.

CIM write traffic is brutally uneven — every intermediate result lands in
the same few result rows of the same columns (see
:mod:`repro.sim.endurance`), so the hottest cell bounds the whole array's
lifetime while most cells stay pristine.  The classic fix is start-gap /
round-robin remapping: shift where data physically lives by a rotating
offset so the hot logical rows sweep across all physical rows over time.

Row rotation is a *bijection* ``row' = (row + offset) % rows`` applied
consistently to the layout's cell placements and to the row fields of
every read/write instruction, so the rotated program is semantically
identical to the original — no recompilation, no re-verification needed.
Only the *physical* wear pattern changes: over ``rows`` epochs every
physical row carries the hot logical row exactly once, multiplying the
executions-to-first-wear-out of the hottest cell by up to the rotation
period.

Permanent faults do NOT rotate — they are physical.  After changing the
offset, :func:`placement_conflicts` reports program cells that now sit on
faulty cells; a non-empty conflict list means this offset needs the
fault-aware recompile (``SherlockCompiler.remap``) instead of the free
rotation.  The lifetime campaign (:mod:`repro.reliability.lifetime`) walks
exactly that ladder.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.arch.isa import Instruction, ReadInst, WriteInst
from repro.arch.layout import CellAddr, Layout
from repro.errors import SimulationError
from repro.sim.executor import ArrayMachine, extract_outputs, preload_sources

__all__ = [
    "RotatedProgram",
    "placement_conflicts",
    "rotate_cell",
    "rotate_instructions",
    "rotate_layout",
    "rotate_program",
]


def rotate_cell(addr: CellAddr, offset: int, rows: int) -> CellAddr:
    """One placement under the rotation bijection (same array and column)."""
    return CellAddr(addr.array, (addr.row + offset) % rows, addr.col)


def rotate_instructions(instructions: list[Instruction], offset: int,
                        rows: int) -> list[Instruction]:
    """The trace with every read/write row field rotated by ``offset``.

    Shift, NOT and transfer instructions act on row buffers, not rows, and
    pass through unchanged.  ``offset == 0`` still returns a fresh list.
    """
    if rows <= 0:
        raise SimulationError(f"row count must be positive, got {rows}")
    rotated: list[Instruction] = []
    for inst in instructions:
        if isinstance(inst, ReadInst):
            rotated.append(ReadInst(
                array=inst.array, cols=inst.cols,
                rows=tuple((r + offset) % rows for r in inst.rows),
                ops=inst.ops))
        elif isinstance(inst, WriteInst):
            rotated.append(WriteInst(
                array=inst.array, cols=inst.cols,
                row=(inst.row + offset) % rows))
        else:
            rotated.append(inst)
    return rotated


def rotate_layout(layout: Layout, offset: int) -> Layout:
    """An execution-view copy of the layout with rotated placements.

    The copy carries the operand-to-cell placements (what
    :func:`repro.sim.executor.preload_sources` and
    :func:`~repro.sim.executor.extract_outputs` need) and the fault map;
    its fill-line bookkeeping is deliberately left empty because rotated
    occupancy wraps around the row axis and cannot be expressed as two
    fill regions.  Do not place new operands into a rotated layout.
    """
    rows = layout.target.rows
    view = Layout(layout.target, fault_map=layout.fault_map)
    for oid, addrs in layout.placements().items():
        view._copies[oid] = [rotate_cell(a, offset, rows) for a in addrs]
    return view


def placement_conflicts(layout: Layout, fault_map) -> list[CellAddr]:
    """Placed cells that sit on faulty cells (rotation landed on a fault).

    ``fault_map`` is a :class:`repro.devices.FaultMap`; ``None`` or an
    empty map conflicts with nothing.  The result is deterministically
    sorted.
    """
    if not fault_map:
        return []
    conflicts = {
        addr
        for addrs in layout.placements().values()
        for addr in addrs
        if not fault_map.is_healthy(addr.array, addr.row, addr.col)}
    return sorted(conflicts, key=lambda a: (a.array, a.row, a.col))


@dataclass
class RotatedProgram:
    """A compiled program viewed through one wear-leveling offset.

    Semantically identical to ``base`` (rotation is a bijection); only the
    physical cells touched differ.  Build with :func:`rotate_program`.
    """

    base: object  # the CompiledProgram (kept untyped to avoid an import cycle)
    offset: int
    instructions: list[Instruction]
    layout: Layout
    #: healthy spare cells of the rotated footprint (same-column remapping)
    spare_pool: list[CellAddr]

    # the CompiledProgram surface the execution engines read, so a rotated
    # program runs anywhere the base program does
    @property
    def stages(self):
        """Always ``None``: staged programs cannot rotate."""
        return None

    @property
    def dag(self):
        """The base program's (transformed) data-flow graph."""
        return self.base.dag

    @property
    def target(self):
        """The base program's hardware target."""
        return self.base.target

    @property
    def fault_map(self):
        """The base program's persistent fault map."""
        return self.base.fault_map

    @property
    def config(self):
        """The base program's compiler configuration."""
        return self.base.config

    def machine(self, lanes: int = 64,
                fault_rng: random.Random | int | None = None,
                observer=None, verify_writes: bool = False) -> ArrayMachine:
        """An :class:`ArrayMachine` configured for the rotated program."""
        return ArrayMachine(
            self.base.target, lanes, fault_rng, strict_shift=True,
            observer=observer, fault_map=self.base.fault_map,
            verify_writes=verify_writes,
            write_retries=self.base.config.write_retries,
            spare_pool=self.spare_pool if verify_writes else None)

    def execute(self, inputs: dict[str, int], lanes: int = 64,
                fault_rng: random.Random | int | None = None,
                observer=None, verify_writes: bool = False,
                engine: str = "auto") -> dict[str, int]:
        """Functionally execute the rotated trace (cf. the base program)."""
        from repro.sim.vectorized import resolve_engine

        engine = resolve_engine(engine, observer=observer,
                                fault_rng=fault_rng,
                                verify_writes=verify_writes)
        if engine == "vectorized":
            if observer is not None:
                raise SimulationError(
                    "the vectorized engine does not support sense "
                    "observers; use engine='interpreted'")
            from repro.sim.vectorized import execute as vector_execute

            return vector_execute(self, inputs, lanes=lanes,
                                  fault_rng=fault_rng,
                                  verify_writes=verify_writes)
        machine = self.machine(lanes, fault_rng, observer=observer,
                               verify_writes=verify_writes)
        preload_sources(machine, self.layout, self.base.dag, inputs)
        machine.run(self.instructions)
        return extract_outputs(machine, self.layout, self.base.dag)

    def conflicts(self) -> list[CellAddr]:
        """Rotated program cells colliding with the base fault map."""
        return placement_conflicts(self.layout, self.base.fault_map)


def rotate_program(program, offset: int) -> RotatedProgram:
    """Rotate a :class:`repro.core.compiler.CompiledProgram` by ``offset``.

    Staged (spill-and-partition) programs cannot rotate: their bridge
    instructions re-derive rows stage by stage, so rotating the combined
    trace would desynchronize them.  The lifetime campaign simply keeps
    staged programs at offset 0.
    """
    if getattr(program, "stages", None) is not None:
        raise SimulationError(
            "staged programs cannot be wear-level rotated; "
            "recompile unstaged or keep offset 0")
    rows = program.target.rows
    offset %= rows
    return RotatedProgram(
        base=program,
        offset=offset,
        instructions=rotate_instructions(program.instructions, offset, rows),
        layout=rotate_layout(program.layout, offset),
        spare_pool=[rotate_cell(a, offset, rows)
                    for a in program.layout.spare_cells()])
